// Structure-aware fuzzer for the portbox AEAD (crypto/portbox.hpp) — the
// construction that hides Drum's random ports from the attacker (paper §4).
//
// Contracts under test:
//   * portbox_open / portbox_open_port never crash or over-read on ANY box
//     bytes — they return nullopt for everything that was not sealed under
//     the same key;
//   * roundtrip: open(seal(pt)) == pt, and the u16 port convenience wrapper
//     agrees with it;
//   * integrity: ANY mutation of a sealed box (bit flip, truncation,
//     extension, splice) must fail to open — the MAC covers nonce and
//     ciphertext, so a forgery would be a real break;
//   * wrong key never opens.
//
// Standalone mode runs a deterministic seed-driven loop (ctest target
// "fuzz_portbox_10k", also under ASan/TSan via scripts/check.sh); with
// DRUM_LIBFUZZER the byte-oriented fuzz_one() becomes a libFuzzer target.
#include <algorithm>
#include <string>

#include "drum/crypto/portbox.hpp"
#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"
#include "fuzz_common.hpp"

namespace {

using drum::util::Bytes;
using drum::util::ByteSpan;

// Byte-level entry: first 32 bytes are the key, the rest is the box. Open
// must never crash regardless of shape.
void fuzz_one(ByteSpan data) {
  std::uint8_t key[drum::crypto::kPortBoxKeySize] = {};
  const std::size_t klen =
      std::min<std::size_t>(data.size(), drum::crypto::kPortBoxKeySize);
  for (std::size_t i = 0; i < klen; ++i) key[i] = data[i];
  ByteSpan box = data.size() > drum::crypto::kPortBoxKeySize
                     ? data.subspan(drum::crypto::kPortBoxKeySize)
                     : ByteSpan();
  (void)drum::crypto::portbox_open(ByteSpan(key, sizeof key), box);
  (void)drum::crypto::portbox_open_port(ByteSpan(key, sizeof key), box);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(ByteSpan(data, size));
  return 0;
}

#ifndef DRUM_LIBFUZZER

int main(int argc, char** argv) {
  const auto args = drum::fuzz::parse_driver_args(argc, argv);
  drum::util::Rng rng(args.seed);
  for (std::uint64_t i = 0; i < args.iterations; ++i) {
    const Bytes key = drum::fuzz::random_bytes(
        rng, drum::crypto::kPortBoxKeySize);

    // Roundtrip: seal/open of a random plaintext.
    const Bytes pt = drum::fuzz::random_bytes(rng, rng.below(65));
    const Bytes box = drum::crypto::portbox_seal(ByteSpan(key), ByteSpan(pt),
                                                 rng);
    const auto opened = drum::crypto::portbox_open(ByteSpan(key),
                                                   ByteSpan(box));
    if (!opened || *opened != pt) {
      drum::fuzz::die("fuzz_portbox", i, args.seed,
                      "roundtrip failed: sealed box did not open to the "
                      "original plaintext");
    }

    // u16 port convenience wrapper agrees.
    const auto port = static_cast<std::uint16_t>(rng.below(65536));
    const Bytes pbox = drum::crypto::portbox_seal_port(ByteSpan(key), port,
                                                       rng);
    const auto opened_port = drum::crypto::portbox_open_port(ByteSpan(key),
                                                             ByteSpan(pbox));
    if (!opened_port || *opened_port != port) {
      drum::fuzz::die("fuzz_portbox", i, args.seed,
                      "port roundtrip failed");
    }

    // Integrity: any mutation must fail to open (the MAC covers the whole
    // box). mutate() always changes the bytes, so nullopt is the only
    // acceptable answer.
    const Bytes forged = drum::fuzz::mutate(box, rng);
    if (forged != box &&
        drum::crypto::portbox_open(ByteSpan(key), ByteSpan(forged))) {
      drum::fuzz::die("fuzz_portbox", i, args.seed,
                      "forged box opened: MAC failed to reject a mutation");
    }

    // Wrong key never opens.
    Bytes other_key = key;
    other_key[rng.below(other_key.size())] ^= 0x01;
    if (drum::crypto::portbox_open(ByteSpan(other_key), ByteSpan(box))) {
      drum::fuzz::die("fuzz_portbox", i, args.seed,
                      "box opened under the wrong key");
    }

    // Arbitrary garbage through the byte-level entry (never crashes).
    const Bytes noise = drum::fuzz::random_bytes(rng, rng.below(128));
    fuzz_one(ByteSpan(noise));
  }
  std::printf("fuzz_portbox: %llu iterations (seed %llu), no crashes\n",
              static_cast<unsigned long long>(args.iterations),
              static_cast<unsigned long long>(args.seed));
  return 0;
}

#endif  // DRUM_LIBFUZZER
