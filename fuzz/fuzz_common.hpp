// Shared machinery for the drum fuzz harnesses (fuzz_decode, fuzz_portbox).
//
// Each harness is one translation unit with two entry points:
//   * LLVMFuzzerTestOneInput — the libFuzzer hook, always compiled, used
//     when the build sets DRUM_LIBFUZZER (clang, -fsanitize=fuzzer);
//   * a standalone main()   — compiled otherwise; runs a deterministic,
//     seed-driven structure-aware loop (generate a VALID artifact, then
//     mutate it) and is registered as a ctest target, so every sanitizer
//     build in scripts/check.sh also fuzzes.
//
// Determinism matters: a ctest failure must reproduce with the same
// `<iterations> <seed>` argv. All randomness flows from util::Rng.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"

namespace drum::fuzz {

/// Structure-aware mutations over an encoded wire artifact. Valid inputs
/// exercise deep decode paths; these mutations keep most of the structure
/// intact so the corruption lands *inside* the parser rather than at the
/// type byte.
inline util::Bytes mutate(const util::Bytes& in, util::Rng& rng) {
  util::Bytes out = in;
  const std::size_t ops = 1 + rng.below(3);
  for (std::size_t op = 0; op < ops; ++op) {
    switch (rng.below(7)) {
      case 0:  // flip 1..8 bits
        if (!out.empty()) {
          const std::size_t flips = 1 + rng.below(8);
          for (std::size_t i = 0; i < flips; ++i) {
            out[rng.below(out.size())] ^=
                static_cast<std::uint8_t>(1u << rng.below(8));
          }
        }
        break;
      case 1:  // truncate at a random offset
        if (!out.empty()) out.resize(rng.below(out.size() + 1));
        break;
      case 2: {  // append random junk (over-length input)
        const std::size_t extra = 1 + rng.below(16);
        for (std::size_t i = 0; i < extra; ++i) {
          out.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
        break;
      }
      case 3:  // stomp a 4-byte window with a huge value (length-field attack)
        if (out.size() >= 4) {
          const std::size_t at = rng.below(out.size() - 3);
          const std::uint32_t v =
              rng.chance(0.5) ? 0xFFFFFFFFu
                              : static_cast<std::uint32_t>(rng.next());
          for (std::size_t i = 0; i < 4; ++i) {
            out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
          }
        }
        break;
      case 4:  // overwrite one byte
        if (!out.empty()) {
          out[rng.below(out.size())] =
              static_cast<std::uint8_t>(rng.below(256));
        }
        break;
      case 5:  // duplicate a random region onto the tail (splice-ish)
        if (!out.empty()) {
          const std::size_t at = rng.below(out.size());
          const std::size_t len =
              1 + rng.below(std::min<std::size_t>(out.size() - at, 32));
          // Copy first: inserting a self-range can reallocate mid-insert.
          const util::Bytes region(
              out.begin() + static_cast<std::ptrdiff_t>(at),
              out.begin() + static_cast<std::ptrdiff_t>(at + len));
          out.insert(out.end(), region.begin(), region.end());
        }
        break;
      case 6:  // delete a random interior region
        if (out.size() >= 2) {
          const std::size_t at = rng.below(out.size() - 1);
          const std::size_t len =
              1 + rng.below(std::min<std::size_t>(out.size() - at, 16));
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                    out.begin() + static_cast<std::ptrdiff_t>(at + len));
        }
        break;
    }
  }
  return out;
}

/// Fills `n` bytes drawn from `rng`.
inline util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

/// Parses `<iterations> <seed>` (both optional) for the standalone driver.
struct DriverArgs {
  std::uint64_t iterations = 10000;
  std::uint64_t seed = 1;
};

inline DriverArgs parse_driver_args(int argc, char** argv) {
  DriverArgs a;
  if (argc > 1) a.iterations = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) a.seed = std::strtoull(argv[2], nullptr, 10);
  return a;
}

/// Uniform failure reporting: print and abort so both ctest and a human see
/// the iteration/seed needed to reproduce.
[[noreturn]] inline void die(const char* harness, std::uint64_t iter,
                             std::uint64_t seed, const std::string& what) {
  std::fprintf(stderr, "%s: FAILED at iteration %llu (seed %llu): %s\n",
               harness, static_cast<unsigned long long>(iter),
               static_cast<unsigned long long>(seed), what.c_str());
  std::abort();
}

}  // namespace drum::fuzz
