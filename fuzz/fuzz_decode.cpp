// Structure-aware fuzzer for the five wire decoders in core/message.hpp.
//
// Contract under test (the node's DoS surface, paper §4): for ANY input —
// fabricated, truncated, bit-flipped, length-stomped — every decode_* either
// returns a fully-formed message or throws util::DecodeError. It must never
// crash, over-read (ASan/UBSan builds catch that), or allocate past the
// max_digest / max_messages / max_payload anti-amplification caps.
//
// Standalone mode (default): deterministic seed-driven loop; each iteration
// builds a random VALID message of a random type, asserts it decodes, then
// mutates it and feeds every decoder — plus one adversarial boundary shape
// (frames at / one past the amplification caps; see adversarial_one below).
// Registered as a ctest target ("fuzz_decode_10k"), so scripts/check.sh runs
// it under ASan+UBSan and TSan. With DRUM_LIBFUZZER the same fuzz_one()
// becomes a libFuzzer target; seed its mutator with fuzz_decode.dict.
#include <exception>
#include <string>

#include "drum/core/message.hpp"
#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"
#include "fuzz_common.hpp"

namespace {

using drum::core::DataMessage;
using drum::core::Digest;
using drum::core::MessageId;
using drum::util::Bytes;
using drum::util::ByteSpan;

// The paper-default anti-amplification caps (core/config.hpp).
constexpr std::size_t kMaxDigest = 4096;
constexpr std::size_t kMaxMessages = 80;
constexpr std::size_t kMaxPayload = 1024;

// Every decoder must either succeed or throw DecodeError; anything else
// (other exceptions, crashes, sanitizer reports) is a bug.
void fuzz_one(ByteSpan wire) {
  try {
    drum::core::peek_type(wire);
  } catch (const drum::util::DecodeError&) {
  }
  try {
    drum::core::decode_pull_request(wire, kMaxDigest);
  } catch (const drum::util::DecodeError&) {
  }
  try {
    drum::core::decode_pull_reply(wire, kMaxMessages, kMaxPayload);
  } catch (const drum::util::DecodeError&) {
  }
  try {
    drum::core::decode_push_offer(wire);
  } catch (const drum::util::DecodeError&) {
  }
  try {
    drum::core::decode_push_reply(wire, kMaxDigest);
  } catch (const drum::util::DecodeError&) {
  }
  try {
    drum::core::decode_push_data(wire, kMaxMessages, kMaxPayload);
  } catch (const drum::util::DecodeError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(ByteSpan(data, size));
  return 0;
}

#ifndef DRUM_LIBFUZZER

namespace {

Digest random_digest(drum::util::Rng& rng, std::size_t max_entries) {
  Digest d;
  const std::size_t n = rng.below(max_entries + 1);
  d.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.push_back(MessageId{static_cast<std::uint32_t>(rng.next()),
                          rng.next()});
  }
  return d;
}

// Signature bytes are random: decoders do not verify, and Ed25519 signing
// would dominate the iteration budget for no extra coverage.
DataMessage random_message(drum::util::Rng& rng) {
  DataMessage m;
  m.id = MessageId{static_cast<std::uint32_t>(rng.next()), rng.next()};
  m.round_counter = static_cast<std::uint32_t>(rng.below(64));
  m.payload = drum::fuzz::random_bytes(rng, rng.below(65));
  if (rng.chance(0.3)) m.cert = drum::fuzz::random_bytes(rng, rng.below(128));
  for (auto& b : m.signature) b = static_cast<std::uint8_t>(rng.below(256));
  return m;
}

// A random valid wire message of a random type; the caller asserts it
// decodes cleanly before mutation.
Bytes random_valid_wire(drum::util::Rng& rng) {
  switch (rng.below(5)) {
    case 0: {
      drum::core::PullRequest m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.digest = random_digest(rng, 8);
      m.boxed_reply_port = drum::fuzz::random_bytes(rng, 30);
      if (rng.chance(0.3)) {
        m.cert = drum::fuzz::random_bytes(rng, rng.below(128));
      }
      return encode(m);
    }
    case 1: {
      drum::core::PullReply m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        m.messages.push_back(random_message(rng));
      }
      return encode(m);
    }
    case 2: {
      drum::core::PushOffer m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.boxed_reply_port = drum::fuzz::random_bytes(rng, 30);
      if (rng.chance(0.3)) {
        m.cert = drum::fuzz::random_bytes(rng, rng.below(128));
      }
      return encode(m);
    }
    case 3: {
      drum::core::PushReply m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.digest = random_digest(rng, 8);
      m.boxed_data_port = drum::fuzz::random_bytes(rng, 30);
      return encode(m);
    }
    default: {
      drum::core::PushData m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        m.messages.push_back(random_message(rng));
      }
      return encode(m);
    }
  }
}

// Positive (structure-aware) check: an unmutated valid encoding must decode
// without throwing. Type dispatch via the wire's own type byte.
void assert_valid_decodes(const Bytes& wire, std::uint64_t iter,
                          std::uint64_t seed) {
  try {
    switch (drum::core::peek_type(ByteSpan(wire))) {
      case drum::core::MsgType::kPullRequest:
        drum::core::decode_pull_request(ByteSpan(wire), kMaxDigest);
        break;
      case drum::core::MsgType::kPullReply:
        drum::core::decode_pull_reply(ByteSpan(wire), kMaxMessages,
                                      kMaxPayload);
        break;
      case drum::core::MsgType::kPushOffer:
        drum::core::decode_push_offer(ByteSpan(wire));
        break;
      case drum::core::MsgType::kPushReply:
        drum::core::decode_push_reply(ByteSpan(wire), kMaxDigest);
        break;
      case drum::core::MsgType::kPushData:
        drum::core::decode_push_data(ByteSpan(wire), kMaxMessages,
                                     kMaxPayload);
        break;
    }
  } catch (const std::exception& e) {
    drum::fuzz::die("fuzz_decode", iter, seed,
                    std::string("valid encoding failed to decode: ") +
                        e.what());
  }
}

Digest digest_of(std::size_t n, drum::util::Rng& rng) {
  Digest d;
  d.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.push_back(MessageId{static_cast<std::uint32_t>(rng.next()),
                          rng.next()});
  }
  return d;
}

template <typename Fn>
void assert_cap_rejects(Fn&& decode, const char* what, std::uint64_t iter,
                        std::uint64_t seed) {
  try {
    decode();
  } catch (const drum::util::DecodeError&) {
    return;  // the cap held
  }
  drum::fuzz::die("fuzz_decode", iter, seed,
                  std::string("anti-amplification cap accepted: ") + what);
}

// Adversarial frame shapes (the zoo's wire-level ammunition): frames sized
// exactly AT the anti-amplification caps must decode — an attacker may
// legally send them and the node must survive — while frames one entry,
// one message, or one byte PAST a cap must throw. Boundary sizes are drawn
// near the cap so the off-by-one region gets dense coverage.
void adversarial_one(drum::util::Rng& rng, std::uint64_t iter,
                     std::uint64_t seed) {
  switch (rng.below(6)) {
    case 0: {  // amplified pull request at the digest cap: valid
      drum::core::PullRequest m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.digest = digest_of(kMaxDigest - rng.below(4), rng);
      m.boxed_reply_port = drum::fuzz::random_bytes(rng, 30);
      const Bytes w = encode(m);
      assert_valid_decodes(w, iter, seed);
      break;
    }
    case 1: {  // pull request past the digest cap: must throw
      drum::core::PullRequest m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.digest = digest_of(kMaxDigest + 1 + rng.below(4), rng);
      m.boxed_reply_port = drum::fuzz::random_bytes(rng, 30);
      const Bytes w = encode(m);
      assert_cap_rejects(
          [&] { drum::core::decode_pull_request(ByteSpan(w), kMaxDigest); },
          "pull request digest", iter, seed);
      break;
    }
    case 2: {  // pull reply at the message-count cap, full payloads: valid
      drum::core::PullReply m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      for (std::size_t i = 0; i < kMaxMessages; ++i) {
        auto msg = random_message(rng);
        msg.payload = drum::fuzz::random_bytes(rng, kMaxPayload);
        m.messages.push_back(std::move(msg));
      }
      const Bytes w = encode(m);
      assert_valid_decodes(w, iter, seed);
      break;
    }
    case 3: {  // one message past the count cap: must throw
      drum::core::PullReply m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      for (std::size_t i = 0; i < kMaxMessages + 1; ++i) {
        m.messages.push_back(random_message(rng));
      }
      const Bytes w = encode(m);
      assert_cap_rejects(
          [&] {
            drum::core::decode_pull_reply(ByteSpan(w), kMaxMessages,
                                          kMaxPayload);
          },
          "pull reply message count", iter, seed);
      break;
    }
    case 4: {  // one payload byte past the cap: must throw
      drum::core::PushData m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      auto msg = random_message(rng);
      msg.payload = drum::fuzz::random_bytes(rng, kMaxPayload + 1);
      m.messages.push_back(std::move(msg));
      const Bytes w = encode(m);
      assert_cap_rejects(
          [&] {
            drum::core::decode_push_data(ByteSpan(w), kMaxMessages,
                                         kMaxPayload);
          },
          "push data payload size", iter, seed);
      break;
    }
    default: {  // cap-sized frame truncated at a random byte: never crashes
      drum::core::PushReply m;
      m.sender = static_cast<std::uint32_t>(rng.next());
      m.digest = digest_of(kMaxDigest, rng);
      m.boxed_data_port = drum::fuzz::random_bytes(rng, 30);
      Bytes w = encode(m);
      w.resize(rng.below(w.size() + 1));
      fuzz_one(ByteSpan(w));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = drum::fuzz::parse_driver_args(argc, argv);
  drum::util::Rng rng(args.seed);
  for (std::uint64_t i = 0; i < args.iterations; ++i) {
    try {
      const Bytes valid = random_valid_wire(rng);
      assert_valid_decodes(valid, i, args.seed);
      fuzz_one(ByteSpan(valid));
      const Bytes mutated = drum::fuzz::mutate(valid, rng);
      fuzz_one(ByteSpan(mutated));
      // Purely random buffers keep the shallow paths honest too.
      const Bytes noise = drum::fuzz::random_bytes(rng, rng.below(96));
      fuzz_one(ByteSpan(noise));
      adversarial_one(rng, i, args.seed);
    } catch (const std::exception& e) {
      drum::fuzz::die("fuzz_decode", i, args.seed,
                      std::string("unexpected exception escaped: ") +
                          e.what());
    }
  }
  std::printf("fuzz_decode: %llu iterations (seed %llu), no crashes\n",
              static_cast<unsigned long long>(args.iterations),
              static_cast<unsigned long long>(args.seed));
  return 0;
}

#endif  // DRUM_LIBFUZZER
