// drum::check — the contract layer itself (DESIGN.md §7): macro semantics,
// handler swapping, failure bookkeeping, the portbox nonce-uniqueness
// tracker, and one end-to-end precondition wired through a real module.
//
// Two build modes, both tested:
//   * DRUM_CHECKED (sanitizer/Debug builds, scripts/check.sh): macros fire
//     through the installed handler;
//   * unchecked (Release tier-1): macros compile out entirely — the
//     condition is not even evaluated. The runtime pieces (fail(), the
//     nonce tracker) are always linked, so those tests run in both modes.
#include <gtest/gtest.h>

#include <string>

#include "drum/check/check.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/util/bytes.hpp"

namespace drum::check {
namespace {

/// What the handler observed. Thrown so the macro's control flow is
/// interrupted like the real abort would — and so tests can catch it.
struct Violation {
  Kind kind;
  std::string expr;
  std::string file;
  int line;
  std::string detail;
};

[[noreturn]] void throwing_handler(Kind kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& detail) {
  throw Violation{kind, expr, file, line, detail};
}

/// Installs the throwing handler for one test, restores on exit.
struct HandlerGuard {
  HandlerGuard() : prev_(set_failure_handler(&throwing_handler)) {}
  ~HandlerGuard() { set_failure_handler(prev_); }
  FailureHandler prev_;
};

TEST(Check, KindNames) {
  EXPECT_STREQ(kind_name(Kind::kRequire), "REQUIRE");
  EXPECT_STREQ(kind_name(Kind::kAssert), "ASSERT");
  EXPECT_STREQ(kind_name(Kind::kInvariant), "INVARIANT");
}

TEST(Check, SetFailureHandlerReturnsPrevious) {
  FailureHandler prev = set_failure_handler(&throwing_handler);
  FailureHandler ours = set_failure_handler(prev);
  EXPECT_EQ(ours, &throwing_handler);
}

// fail() is the macros' runtime half and is always linked; drive it
// directly so this works in unchecked builds too.
TEST(Check, FailReportsThroughInstalledHandler) {
  HandlerGuard guard;
  const auto before = failure_count();
  try {
    fail(Kind::kInvariant, "a == b", "some_file.cpp", 42, "a=1 b=2");
    FAIL() << "handler did not throw";
  } catch (const Violation& v) {
    EXPECT_EQ(v.kind, Kind::kInvariant);
    EXPECT_EQ(v.expr, "a == b");
    EXPECT_EQ(v.file, "some_file.cpp");
    EXPECT_EQ(v.line, 42);
    EXPECT_EQ(v.detail, "a=1 b=2");
  }
  EXPECT_EQ(failure_count(), before + 1);
}

TEST(Check, FailureCountAccumulates) {
  HandlerGuard guard;
  const auto before = failure_count();
  for (int i = 0; i < 3; ++i) {
    try {
      fail(Kind::kAssert, "false", __FILE__, __LINE__, "");
    } catch (const Violation&) {
    }
  }
  EXPECT_EQ(failure_count(), before + 3);
}

TEST(Check, DetailFormatterStreamsAllArguments) {
  EXPECT_EQ(detail::format_detail(), "");
  EXPECT_EQ(detail::format_detail("x was ", -3, " (want positive)"),
            "x was -3 (want positive)");
  EXPECT_EQ(detail::format_detail(1, '/', 2.5), "1/2.5");
}

TEST(Check, NonceTrackerFlagsKeystreamReusePerKey) {
  reset_nonce_tracker();
  const util::Bytes key_a(32, 0xAA);
  const util::Bytes key_b(32, 0xBB);
  const util::Bytes n1 = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  util::Bytes n2 = n1;
  n2[0] ^= 0xFF;
  const util::Bytes pt1 = {0x10, 0x20};
  const util::Bytes pt2 = {0x10, 0x21};

  EXPECT_TRUE(note_nonce(util::ByteSpan(key_a), util::ByteSpan(n1),
                         util::ByteSpan(pt1)));
  // A byte-identical replay (same key, nonce, plaintext) is tolerated:
  // deterministic simulations replay seeded worlds on purpose.
  EXPECT_TRUE(note_nonce(util::ByteSpan(key_a), util::ByteSpan(n1),
                         util::ByteSpan(pt1)));
  // Same (key, nonce) over a DIFFERENT plaintext is keystream reuse — the
  // break the stream cipher cannot survive.
  EXPECT_FALSE(note_nonce(util::ByteSpan(key_a), util::ByteSpan(n1),
                          util::ByteSpan(pt2)));
  // Fresh nonce under the same key, and the same nonce under another key,
  // are both fine even with the conflicting plaintext.
  EXPECT_TRUE(note_nonce(util::ByteSpan(key_a), util::ByteSpan(n2),
                         util::ByteSpan(pt2)));
  EXPECT_TRUE(note_nonce(util::ByteSpan(key_b), util::ByteSpan(n1),
                         util::ByteSpan(pt2)));
  // Reset opens a new window: the conflicting plaintext is accepted.
  reset_nonce_tracker();
  EXPECT_TRUE(note_nonce(util::ByteSpan(key_a), util::ByteSpan(n1),
                         util::ByteSpan(pt2)));
  reset_nonce_tracker();
}

#if DRUM_CHECKED

TEST(Check, EnabledInThisBuild) { EXPECT_TRUE(enabled()); }

TEST(Check, PassingConditionsReportNothing) {
  HandlerGuard guard;
  const auto before = failure_count();
  DRUM_REQUIRE(1 + 1 == 2);
  DRUM_ASSERT(true, "never formatted");
  DRUM_INVARIANT(42 > 0, "value ", 42);
  EXPECT_EQ(failure_count(), before);
}

TEST(Check, RequireReportsExpressionLocationAndDetail) {
  HandlerGuard guard;
  const int x = -3;
  try {
    DRUM_REQUIRE(x > 0, "x was ", x, " (want positive)");
    FAIL() << "DRUM_REQUIRE did not fire";
  } catch (const Violation& v) {
    EXPECT_EQ(v.kind, Kind::kRequire);
    EXPECT_EQ(v.expr, "x > 0");
    EXPECT_NE(v.file.find("check_test.cpp"), std::string::npos);
    EXPECT_GT(v.line, 0);
    EXPECT_EQ(v.detail, "x was -3 (want positive)");
  }
}

TEST(Check, MacroKindsAreDistinguished) {
  HandlerGuard guard;
  try {
    DRUM_ASSERT(false);
    FAIL();
  } catch (const Violation& v) {
    EXPECT_EQ(v.kind, Kind::kAssert);
    EXPECT_TRUE(v.detail.empty());
  }
  try {
    DRUM_INVARIANT(false, "broken");
    FAIL();
  } catch (const Violation& v) {
    EXPECT_EQ(v.kind, Kind::kInvariant);
    EXPECT_EQ(v.detail, "broken");
  }
}

// End-to-end: a contract wired through a real module fires through the
// installed handler. MemNetwork's options are DRUM_REQUIREd in its ctor.
TEST(Check, MemNetworkRejectsNonsenseOptions) {
  HandlerGuard guard;
  net::MemNetwork::Options opts;
  opts.loss = 1.5;  // not a probability
  EXPECT_THROW({ net::MemNetwork bad(opts); }, Violation);

  net::MemNetwork::Options zero_q;
  zero_q.queue_capacity = 0;  // every datagram would be dropped
  EXPECT_THROW({ net::MemNetwork bad(zero_q); }, Violation);
}

#else  // !DRUM_CHECKED

TEST(Check, DisabledInThisBuild) { EXPECT_FALSE(enabled()); }

// The Release contract: the macros cost nothing — the condition expression
// is not even evaluated.
TEST(Check, MacrosCompileOutAndDoNotEvaluate) {
  const auto before = failure_count();
  int evals = 0;
  DRUM_REQUIRE(++evals > 0, "detail also unevaluated: ", ++evals);
  DRUM_ASSERT(++evals > 0);
  DRUM_INVARIANT(++evals < 0);  // would fail if evaluated
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(failure_count(), before);
}

#endif  // DRUM_CHECKED

}  // namespace
}  // namespace drum::check
