// Tests for the Monte-Carlo simulator (paper §7): determinism, known gossip
// results (logarithmic propagation, graceful crash degradation), the paper's
// DoS findings (Drum bounded in x; Push/Pull degrade linearly; adversary
// strategies), and the §9 ablations.
#include <gtest/gtest.h>

#include <stdexcept>

#include "drum/sim/engine.hpp"

namespace drum::sim {
namespace {

SimParams base_params(SimProtocol proto, std::size_t n = 120) {
  SimParams p;
  p.protocol = proto;
  p.n = n;
  p.fanout = 4;
  p.loss = 0.01;
  p.malicious_fraction = 0.1;
  return p;
}

double mean_rounds(const SimParams& p, std::size_t runs, std::uint64_t seed) {
  return simulate_many(p, runs, seed).rounds_to_target.mean();
}

TEST(SimEngine, DeterministicGivenSeed) {
  SimParams p = base_params(SimProtocol::kDrum);
  p.alpha = 0.1;
  p.x = 64;
  util::Rng r1(77), r2(77);
  auto a = simulate_run(p, r1);
  auto b = simulate_run(p, r2);
  EXPECT_EQ(a.rounds_to_target, b.rounds_to_target);
  EXPECT_EQ(a.coverage_by_round, b.coverage_by_round);
}

TEST(SimEngine, ScratchOverloadMatchesPlainRun) {
  // simulate_run with a reusable SimScratch must consume the RNG and
  // produce results identically to the allocating overload — including
  // when the scratch is dirty from previous runs at other group sizes.
  SimParams p = base_params(SimProtocol::kDrum);
  p.alpha = 0.1;
  p.x = 64;
  SimScratch scratch;
  {
    SimParams warm = base_params(SimProtocol::kPull, 300);
    util::Rng wrng(5);
    (void)simulate_run(warm, wrng, scratch);  // dirty the buffers
  }
  util::Rng r1(77), r2(77);
  auto plain = simulate_run(p, r1);
  auto scratched = simulate_run(p, r2, scratch);
  EXPECT_EQ(plain.rounds_to_target, scratched.rounds_to_target);
  EXPECT_EQ(plain.rounds_to_leave_source, scratched.rounds_to_leave_source);
  EXPECT_EQ(plain.coverage_by_round, scratched.coverage_by_round);
  EXPECT_EQ(r1.next(), r2.next()) << "RNG consumption diverged";
}

TEST(SimEngine, SimulateManyBitIdenticalForEveryThreadCount) {
  // The parallel engine's hard contract (DESIGN.md §9): same seed, any
  // thread count -> byte-identical AggregateResult. Attack on so the
  // attacked/non-attacked samples populate too.
  SimParams p = base_params(SimProtocol::kDrum);
  p.alpha = 0.2;
  p.x = 64;
  SimOptions t1;
  t1.threads = 1;
  auto ref = simulate_many(p, 37, 123, t1);
  for (std::size_t threads : {2u, 8u}) {
    SimOptions o;
    o.threads = threads;
    auto got = simulate_many(p, 37, 123, o);
    EXPECT_EQ(got, ref) << "threads=" << threads;
    EXPECT_EQ(got.rounds_to_target.raw(), ref.rounds_to_target.raw());
    EXPECT_EQ(got.coverage.average(), ref.coverage.average());
  }
}

TEST(SimEngine, SimulateManyDefaultMatchesExplicitSingleThread) {
  // The 3-arg overload (threads from env/hardware) must agree with an
  // explicit single-thread run — the determinism contract covers the
  // default path too.
  SimParams p = base_params(SimProtocol::kPush);
  p.alpha = 0.1;
  p.x = 32;
  SimOptions t1;
  t1.threads = 1;
  EXPECT_EQ(simulate_many(p, 12, 9), simulate_many(p, 12, 9, t1));
}

TEST(SimEngine, SimulateManyRecordsPoolTelemetry) {
  SimParams p = base_params(SimProtocol::kDrum);
  obs::MetricsRegistry reg;
  SimOptions o;
  o.threads = 2;
  o.metrics = &reg;
  auto agg = simulate_many(p, 10, 3, o);
  EXPECT_EQ(agg.rounds_to_target.count(), 10u);
  EXPECT_EQ(reg.counter_value("sim.trials"), 10u);
  EXPECT_GE(reg.counter_value("sim.chunks"), 1u);
  EXPECT_EQ(reg.histogram_count("sim.trial_us"), 10u);
  EXPECT_EQ(reg.gauge_value("sim.threads"), 2.0);
}

TEST(SimEngine, SimulateManyPropagatesTrialErrors) {
  SimParams p = base_params(SimProtocol::kDrum, 10);
  p.malicious_fraction = 1.0;  // every trial throws
  SimOptions o;
  o.threads = 4;
  EXPECT_THROW(simulate_many(p, 8, 1, o), std::invalid_argument);
}

TEST(SimEngine, CoverageMonotoneAndStartsAtSource) {
  SimParams p = base_params(SimProtocol::kPush);
  util::Rng rng(1);
  auto r = simulate_run(p, rng);
  ASSERT_FALSE(r.coverage_by_round.empty());
  EXPECT_NEAR(r.coverage_by_round[0], 1.0 / 108.0, 1e-9);  // 120 - 12 malicious
  for (std::size_t i = 1; i < r.coverage_by_round.size(); ++i) {
    EXPECT_GE(r.coverage_by_round[i], r.coverage_by_round[i - 1] - 1e-12);
  }
  EXPECT_TRUE(r.reached);
}

TEST(SimEngine, FailureFreePropagationIsFast) {
  // Fig. 2(a): a few rounds suffice; grows ~log n.
  for (auto proto : {SimProtocol::kDrum, SimProtocol::kPush,
                     SimProtocol::kPull}) {
    SimParams p = base_params(proto);
    p.malicious_fraction = 0.0;
    double r = mean_rounds(p, 30, 42);
    EXPECT_LT(r, 10.0) << protocol_name(proto);
    EXPECT_GE(r, 2.0) << protocol_name(proto);
  }
}

TEST(SimEngine, LogarithmicGrowthInN) {
  SimParams small = base_params(SimProtocol::kPush, 120);
  small.malicious_fraction = 0;
  SimParams big = base_params(SimProtocol::kPush, 960);
  big.malicious_fraction = 0;
  double rs = mean_rounds(small, 20, 1);
  double rb = mean_rounds(big, 20, 1);
  // 8x the group size should cost ~3 extra rounds, not 8x the time.
  EXPECT_GT(rb, rs);
  EXPECT_LT(rb, rs + 5.0);
}

TEST(SimEngine, GracefulDegradationUnderCrashes) {
  // Fig. 2(b): even 40% crashed costs only a few rounds.
  SimParams p = base_params(SimProtocol::kDrum);
  p.malicious_fraction = 0;
  double r0 = mean_rounds(p, 30, 3);
  p.crashed_fraction = 0.4;
  double r40 = mean_rounds(p, 30, 3);
  EXPECT_LT(r40, r0 + 4.0);
}

TEST(SimEngine, DrumBoundedInX) {
  // Fig. 3(a) / Lemma 1: alpha = 10%, increasing x barely affects Drum.
  SimParams p = base_params(SimProtocol::kDrum);
  p.alpha = 0.1;
  p.x = 32;
  double r32 = mean_rounds(p, 30, 5);
  p.x = 256;
  double r256 = mean_rounds(p, 30, 5);
  EXPECT_LT(r256, r32 + 2.5);
}

TEST(SimEngine, PushDegradesLinearlyInX) {
  // Corollary 1.
  SimParams p = base_params(SimProtocol::kPush);
  p.alpha = 0.1;
  p.x = 32;
  double r32 = mean_rounds(p, 30, 6);
  p.x = 128;
  double r128 = mean_rounds(p, 30, 6);
  EXPECT_GT(r128, r32 * 2.0);
}

TEST(SimEngine, PullDegradesLinearlyInX) {
  // Corollary 2.
  SimParams p = base_params(SimProtocol::kPull);
  p.alpha = 0.1;
  p.max_rounds = 600;
  p.x = 32;
  double r32 = mean_rounds(p, 30, 7);
  p.x = 128;
  double r128 = mean_rounds(p, 30, 7);
  EXPECT_GT(r128, r32 * 2.0);
}

TEST(SimEngine, DrumBeatsBaselinesUnderTargetedAttack) {
  // The headline: alpha = 10%, x = 128.
  double drum, push, pull;
  {
    SimParams p = base_params(SimProtocol::kDrum);
    p.alpha = 0.1;
    p.x = 128;
    drum = mean_rounds(p, 30, 8);
  }
  {
    SimParams p = base_params(SimProtocol::kPush);
    p.alpha = 0.1;
    p.x = 128;
    p.max_rounds = 600;
    push = mean_rounds(p, 30, 8);
  }
  {
    SimParams p = base_params(SimProtocol::kPull);
    p.alpha = 0.1;
    p.x = 128;
    p.max_rounds = 600;
    pull = mean_rounds(p, 30, 8);
  }
  EXPECT_LT(drum * 2.0, push);
  EXPECT_LT(drum * 2.0, pull);
}

TEST(SimEngine, PushFastToNonAttackedSlowToAttacked) {
  // Fig. 6: Push reaches non-attacked processes quickly but attacked ones
  // slowly; Drum is fast to both.
  SimParams p = base_params(SimProtocol::kPush);
  p.alpha = 0.1;
  p.x = 128;
  p.max_rounds = 600;
  auto agg = simulate_many(p, 30, 9);
  EXPECT_LT(agg.rounds_to_target_non_attacked.mean() * 3,
            agg.rounds_to_target_attacked.mean());

  SimParams d = base_params(SimProtocol::kDrum);
  d.alpha = 0.1;
  d.x = 128;
  auto dagg = simulate_many(d, 30, 9);
  EXPECT_LT(dagg.rounds_to_target_attacked.mean(),
            agg.rounds_to_target_attacked.mean() / 2);
}

TEST(SimEngine, PullStdDominatedBySourceEscape) {
  // Fig. 4 discussion: Pull's STD is large and driven by rounds-to-leave-
  // source; Drum's STD stays small.
  SimParams pull = base_params(SimProtocol::kPull);
  pull.alpha = 0.1;
  pull.x = 128;
  pull.max_rounds = 600;
  auto pagg = simulate_many(pull, 40, 10);
  SimParams drum = base_params(SimProtocol::kDrum);
  drum.alpha = 0.1;
  drum.x = 128;
  auto dagg = simulate_many(drum, 40, 10);
  EXPECT_GT(pagg.rounds_to_target.stddev(),
            3 * dagg.rounds_to_target.stddev());
  EXPECT_GT(pagg.rounds_to_leave_source.mean(), 3.0);
}

TEST(SimEngine, AdversaryShouldSpreadAgainstDrum) {
  // Fig. 7 / Lemma 2: with fixed budget B = 36n (c = 10 at F = 4), focusing
  // on fewer processes does NOT help against Drum...
  auto drum_rounds = [&](double alpha) {
    SimParams p = base_params(SimProtocol::kDrum);
    p.alpha = alpha;
    p.x = 36.0 * static_cast<double>(p.n) / (alpha * p.n);
    return mean_rounds(p, 30, 11);
  };
  EXPECT_LT(drum_rounds(0.1), drum_rounds(0.9) + 1.0);

  // ...but concentrating is devastating for Push.
  auto push_rounds = [&](double alpha) {
    SimParams p = base_params(SimProtocol::kPush);
    p.alpha = alpha;
    p.x = 36.0 * static_cast<double>(p.n) / (alpha * p.n);
    p.max_rounds = 900;
    return mean_rounds(p, 20, 11);
  };
  EXPECT_GT(push_rounds(0.1), push_rounds(0.9) * 1.5);
}

TEST(SimEngine, WeakAttacksBarelyAffectDrum) {
  // Fig. 8: B <= 3.6n has little impact on Drum for any alpha.
  SimParams p = base_params(SimProtocol::kDrum);
  double baseline = mean_rounds(p, 30, 12);
  for (double alpha : {0.1, 0.5, 0.9}) {
    SimParams q = base_params(SimProtocol::kDrum);
    q.alpha = alpha;
    q.x = 3.6 / alpha;  // B = 3.6n
    double r = mean_rounds(q, 30, 12);
    EXPECT_LT(r, baseline + 3.0) << "alpha=" << alpha;
  }
}

TEST(SimEngine, WellKnownPortsAblationDegrades) {
  // Fig. 12(a): without random ports, Drum degrades in x.
  SimParams p = base_params(SimProtocol::kDrumWkPorts);
  p.alpha = 0.1;
  p.max_rounds = 600;
  p.x = 32;
  double r32 = mean_rounds(p, 30, 13);
  p.x = 256;
  double r256 = mean_rounds(p, 30, 13);
  EXPECT_GT(r256, r32 + 3.0);

  // Real Drum at the same attack strength stays flat and faster.
  SimParams d = base_params(SimProtocol::kDrum);
  d.alpha = 0.1;
  d.x = 256;
  EXPECT_LT(mean_rounds(d, 30, 13), r256);
}

TEST(SimEngine, SharedBoundsAblationDegrades) {
  // §9: joint control-message bound lets push-channel flood starve the pull
  // channel; separate bounds stay flat.
  SimParams p = base_params(SimProtocol::kDrumSharedBounds);
  p.alpha = 0.1;
  p.max_rounds = 600;
  p.x = 32;
  double r32 = mean_rounds(p, 30, 14);
  p.x = 256;
  double r256 = mean_rounds(p, 30, 14);
  SimParams d = base_params(SimProtocol::kDrum);
  d.alpha = 0.1;
  d.x = 256;
  double drum256 = mean_rounds(d, 30, 14);
  EXPECT_GT(r256, drum256);
  EXPECT_GT(r256, r32);
}

TEST(SimEngine, LargerFanoutPropagatesFaster) {
  double prev = 1e9;
  for (std::size_t f : {2u, 4u, 8u}) {
    SimParams p = base_params(SimProtocol::kDrum);
    p.fanout = f;
    p.malicious_fraction = 0;
    double r = mean_rounds(p, 30, 21);
    EXPECT_LT(r, prev + 0.5) << "F=" << f;
    prev = r;
  }
}

TEST(SimEngine, FanoutSplitAblationStaysBalanced) {
  // Any split with both halves nonzero keeps Drum's bounded-in-x property;
  // the even split is (weakly) best under the symmetric x/2+x/2 attack.
  for (std::size_t split : {1u, 2u, 3u}) {
    SimParams p = base_params(SimProtocol::kDrum);
    p.alpha = 0.1;
    p.drum_push_view = split;
    p.x = 32;
    double r32 = mean_rounds(p, 30, 22);
    p.x = 256;
    double r256 = mean_rounds(p, 30, 22);
    EXPECT_LT(r256, r32 + 3.0) << "split=" << split;
  }
}

TEST(SimEngine, UnreachedRunsReported) {
  SimParams p = base_params(SimProtocol::kPull);
  p.alpha = 0.1;
  p.x = 512;
  p.max_rounds = 3;  // far too short
  auto agg = simulate_many(p, 5, 15);
  EXPECT_EQ(agg.unreached_runs, 5u);
}

TEST(SimEngine, RejectsDegenerateConfigs) {
  SimParams p = base_params(SimProtocol::kDrum, 3);
  util::Rng rng(1);
  EXPECT_THROW(simulate_run(p, rng), std::invalid_argument);
  SimParams q = base_params(SimProtocol::kDrum, 10);
  q.malicious_fraction = 1.0;
  EXPECT_THROW(simulate_run(q, rng), std::invalid_argument);
}

// Property sweep: for every protocol and a grid of attacks, coverage curves
// are monotone, bounded by [0,1], and attacked runs never beat the
// attack-free baseline by more than noise.
struct SweepCase {
  SimProtocol proto;
  double alpha;
  double x;
};

class SimSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimSweep, CoverageCurvesWellFormed) {
  auto c = GetParam();
  SimParams p = base_params(c.proto);
  p.alpha = c.alpha;
  p.x = c.x;
  p.max_rounds = 400;
  util::Rng rng(99);
  auto r = simulate_run(p, rng);
  for (std::size_t i = 0; i < r.coverage_by_round.size(); ++i) {
    ASSERT_GE(r.coverage_by_round[i], 0.0);
    ASSERT_LE(r.coverage_by_round[i], 1.0);
    if (i) {
      ASSERT_GE(r.coverage_by_round[i], r.coverage_by_round[i - 1] - 1e-12);
    }
  }
  EXPECT_GE(r.rounds_to_leave_source, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweep,
    ::testing::Values(
        SweepCase{SimProtocol::kDrum, 0.0, 0.0},
        SweepCase{SimProtocol::kDrum, 0.1, 64},
        SweepCase{SimProtocol::kDrum, 0.5, 64},
        SweepCase{SimProtocol::kDrum, 0.9, 8},
        SweepCase{SimProtocol::kPush, 0.1, 64},
        SweepCase{SimProtocol::kPush, 0.5, 16},
        SweepCase{SimProtocol::kPull, 0.1, 64},
        SweepCase{SimProtocol::kPull, 0.9, 8},
        SweepCase{SimProtocol::kDrumWkPorts, 0.1, 64},
        SweepCase{SimProtocol::kDrumSharedBounds, 0.1, 64}));

}  // namespace
}  // namespace drum::sim

namespace drum::sim {
namespace {

TEST(SimEngine, AttackerCannotWinByRebalancingItsSplit) {
  // Against Drum, shifting the attack budget between the push and pull
  // channels never helps much: the protocol's un-attacked half carries M.
  double worst = 0, best = 1e9;
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    SimParams p = base_params(SimProtocol::kDrum);
    p.alpha = 0.1;
    p.x = 256;
    p.attack_push_fraction = frac;
    double r = mean_rounds(p, 30, 23);
    worst = std::max(worst, r);
    best = std::min(best, r);
  }
  // The spread across attacker strategies stays small (a couple of rounds),
  // nothing like Push/Pull's linear-in-x collapse.
  EXPECT_LT(worst, best + 3.0);
  EXPECT_LT(worst, 12.0);
}

}  // namespace
}  // namespace drum::sim
