// Tests for the network substrate: in-memory transport semantics (binding,
// ephemeral ports, loss, queue bounds, spoofing) and real UDP loopback
// sockets.
#include <gtest/gtest.h>

#include "drum/net/mem_transport.hpp"
#include "drum/net/udp_transport.hpp"

namespace drum::net {
namespace {

util::Bytes bytes_of(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

TEST(MemTransport, SendReceiveRoundTrip) {
  MemNetwork net;
  auto ta = net.transport(1);
  auto tb = net.transport(2);
  auto sa = ta->bind(100);
  auto sb = tb->bind(200);
  ASSERT_TRUE(sa && sb);

  auto msg = bytes_of("hello");
  sa->send(Address{2, 200}, util::ByteSpan(msg));
  auto got = sb->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
  EXPECT_EQ(got->from, (Address{1, 100}));
  EXPECT_EQ(sb->recv(), std::nullopt);  // queue drained
}

TEST(MemTransport, PortCollisionRejected) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s1 = t->bind(500);
  ASSERT_TRUE(s1);
  EXPECT_EQ(t->bind(500), nullptr);
  // Same port on a different host is fine (per-host port spaces).
  auto t2 = net.transport(2);
  EXPECT_NE(t2->bind(500), nullptr);
}

TEST(MemTransport, PortFreedOnSocketDestruction) {
  MemNetwork net;
  auto t = net.transport(1);
  { auto s = t->bind(600); ASSERT_TRUE(s); }
  EXPECT_NE(t->bind(600), nullptr);
}

TEST(MemTransport, EphemeralPortsAreHighAndDistinct) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s1 = t->bind(0);
  auto s2 = t->bind(0);
  ASSERT_TRUE(s1 && s2);
  EXPECT_GE(s1->local().port, 49152);
  EXPECT_GE(s2->local().port, 49152);
  EXPECT_NE(s1->local().port, s2->local().port);
}

TEST(MemTransport, SendToUnboundPortIsDropped) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("x");
  auto before = net.dropped();
  s->send(Address{9, 9}, util::ByteSpan(msg));
  EXPECT_EQ(net.dropped(), before + 1);
}

TEST(MemTransport, QueueCapacityBoundsFlood) {
  MemNetwork::Options opts;
  opts.queue_capacity = 10;
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("flood");
  for (int i = 0; i < 100; ++i) {
    net.send_raw(Address{666, 1}, Address{1, 100}, util::ByteSpan(msg));
  }
  int received = 0;
  while (s->recv()) ++received;
  EXPECT_EQ(received, 10);
  EXPECT_GE(net.dropped(), 90u);
}

TEST(MemTransport, LossDropsApproximatelyTheConfiguredFraction) {
  MemNetwork::Options opts;
  opts.loss = 0.25;
  opts.queue_capacity = 100000;
  opts.seed = 7;
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("y");
  const int kSent = 10000;
  for (int i = 0; i < kSent; ++i) {
    net.send_raw(Address{2, 2}, Address{1, 100}, util::ByteSpan(msg));
  }
  int received = 0;
  while (s->recv()) ++received;
  EXPECT_NEAR(received, kSent * 0.75, kSent * 0.05);
}

TEST(MemTransport, SpoofedSourcePreserved) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("spoof");
  net.send_raw(Address{0xDEADBEEF, 31337}, Address{1, 100},
               util::ByteSpan(msg));
  auto got = s->recv();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->from.host, 0xDEADBEEFu);
  EXPECT_EQ(got->from.port, 31337);
}

TEST(AddressFormat, ToString) {
  EXPECT_EQ(to_string(Address{parse_ipv4("127.0.0.1"), 8080}),
            "127.0.0.1:8080");
  EXPECT_EQ(parse_ipv4("not an ip"), 0u);
}

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport tr;
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->local().port, 0);

  auto msg = bytes_of("over real udp");
  a->send(b->local(), util::ByteSpan(msg));
  // Loopback delivery is fast but asynchronous; poll briefly.
  std::optional<Datagram> got;
  for (int i = 0; i < 1000 && !got; ++i) got = b->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
  EXPECT_EQ(got->from, a->local());
}

TEST(UdpTransport, NonBlockingRecvOnEmpty) {
  UdpTransport tr;
  auto s = tr.bind(0);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->recv(), std::nullopt);
}

TEST(UdpTransport, BindCollisionRejected) {
  UdpTransport tr;
  auto a = tr.bind(0);
  ASSERT_TRUE(a);
  EXPECT_EQ(tr.bind(a->local().port), nullptr);
}

}  // namespace
}  // namespace drum::net
