// Tests for the network substrate: in-memory transport semantics (binding,
// ephemeral ports, loss, queue bounds, spoofing) and real UDP loopback
// sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "drum/net/mem_transport.hpp"
#include "drum/net/udp_transport.hpp"

namespace drum::net {
namespace {

util::Bytes bytes_of(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

TEST(MemTransport, SendReceiveRoundTrip) {
  MemNetwork net;
  auto ta = net.transport(1);
  auto tb = net.transport(2);
  auto sa = ta->bind(100);
  auto sb = tb->bind(200);
  ASSERT_TRUE(sa && sb);

  auto msg = bytes_of("hello");
  sa->send(Address{2, 200}, util::ByteSpan(msg));
  auto got = sb->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
  EXPECT_EQ(got->from, (Address{1, 100}));
  EXPECT_EQ(sb->recv(), std::nullopt);  // queue drained
}

TEST(MemTransport, PortCollisionRejectedWithTypedError) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s1 = t->bind(500);
  ASSERT_TRUE(s1);
  auto dup = t->bind(500);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error(), BindError::kPortTaken);
  EXPECT_EQ(dup.take(), nullptr);
  // Same port on a different host is fine (per-host port spaces).
  auto t2 = net.transport(2);
  EXPECT_TRUE(t2->bind(500).ok());
}

TEST(MemTransport, PortFreedOnSocketDestruction) {
  MemNetwork net;
  auto t = net.transport(1);
  { auto s = t->bind(600); ASSERT_TRUE(s); }
  EXPECT_TRUE(t->bind(600).ok());
}

TEST(BindResult, SuccessReportsNoError) {
  MemNetwork net;
  auto t = net.transport(1);
  auto r = t->bind(700);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.error(), BindError::kNone);
  EXPECT_NE(r.get(), nullptr);
  auto owned = r.take();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(owned->local().port, 700);
  EXPECT_FALSE(r.ok());  // moved out
}

TEST(BindResult, ErrorNamesAreStable) {
  EXPECT_STREQ(to_string(BindError::kNone), "ok");
  EXPECT_STREQ(to_string(BindError::kPortTaken), "port taken");
  EXPECT_STREQ(to_string(BindError::kPortsExhausted),
               "ephemeral ports exhausted");
  EXPECT_STREQ(to_string(BindError::kSystem), "system error");
}

TEST(MemTransport, EphemeralPortsAreHighAndDistinct) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s1 = t->bind(0);
  auto s2 = t->bind(0);
  ASSERT_TRUE(s1 && s2);
  EXPECT_GE(s1->local().port, 49152);
  EXPECT_GE(s2->local().port, 49152);
  EXPECT_NE(s1->local().port, s2->local().port);
}

TEST(MemTransport, SendToUnboundPortIsDropped) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("x");
  auto before = net.dropped();
  s->send(Address{9, 9}, util::ByteSpan(msg));
  EXPECT_EQ(net.dropped(), before + 1);
}

TEST(MemTransport, QueueCapacityBoundsFlood) {
  MemNetwork::Options opts;
  opts.queue_capacity = 10;
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("flood");
  for (int i = 0; i < 100; ++i) {
    net.send_raw(Address{666, 1}, Address{1, 100}, util::ByteSpan(msg));
  }
  int received = 0;
  while (s->recv()) ++received;
  EXPECT_EQ(received, 10);
  EXPECT_GE(net.dropped(), 90u);
}

TEST(MemTransport, RecvBatchMatchesSequentialRecv) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s = t->bind(100);
  ASSERT_TRUE(s);
  for (int i = 0; i < 10; ++i) {
    auto msg = bytes_of("m" + std::to_string(i));
    net.send_raw(Address{2, 7}, Address{1, 100}, util::ByteSpan(msg));
  }
  // A window smaller than the backlog fills exactly; payloads and senders
  // come out in the same order recv() would have produced.
  Datagram out[6];
  ASSERT_EQ(s->recv_batch(out, 6), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i].payload, bytes_of("m" + std::to_string(i)));
    EXPECT_EQ(out[i].from, (Address{2, 7}));
  }
  // The remainder drains in one short batch; the queue is then empty.
  EXPECT_EQ(s->recv_batch(out, 6), 4u);
  EXPECT_EQ(out[0].payload, bytes_of("m6"));
  EXPECT_EQ(s->recv_batch(out, 6), 0u);
  EXPECT_EQ(s->recv(), std::nullopt);
}

TEST(MemTransport, RecvBatchHonorsInFlightLatency) {
  MemNetwork::Options opts;
  opts.latency_us = 1000;
  opts.latency_jitter = 0.0;  // deterministic delivery times
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  ASSERT_TRUE(s);
  auto early = bytes_of("early");
  net.send_raw(Address{2, 7}, Address{1, 100}, util::ByteSpan(early));
  net.advance_to(1000);
  auto late = bytes_of("late");
  net.send_raw(Address{2, 7}, Address{1, 100}, util::ByteSpan(late));

  // Only the first datagram has reached its delivery time; the batch must
  // stop at the in-flight one rather than popping the whole queue.
  Datagram out[4];
  ASSERT_EQ(s->recv_batch(out, 4), 1u);
  EXPECT_EQ(out[0].payload, early);
  EXPECT_EQ(s->recv_batch(out, 4), 0u);
  net.advance_to(2000);
  ASSERT_EQ(s->recv_batch(out, 4), 1u);
  EXPECT_EQ(out[0].payload, late);
}

TEST(MemTransport, SendManyScattersToDistinctDestinations) {
  MemNetwork net;
  auto t = net.transport(1);
  auto a = t->bind(100);
  auto b = t->bind(200);
  auto sender = net.transport(2)->bind(300);
  ASSERT_TRUE(a && b && sender);

  auto m1 = bytes_of("to-a");
  auto m2 = bytes_of("to-b");
  auto m3 = bytes_of("to-a-again");
  OutboundDatagram msgs[3] = {
      {Address{1, 100}, util::ByteSpan(m1)},
      {Address{1, 200}, util::ByteSpan(m2)},
      {Address{1, 100}, util::ByteSpan(m3)},
  };
  sender->send_many(msgs, 3);

  // Each destination received exactly its datagrams, in send order, with
  // the shared source address — byte-identical to three send() calls.
  Datagram out[4];
  ASSERT_EQ(a->recv_batch(out, 4), 2u);
  EXPECT_EQ(out[0].payload, m1);
  EXPECT_EQ(out[1].payload, m3);
  EXPECT_EQ(out[0].from, (Address{2, 300}));
  ASSERT_EQ(b->recv_batch(out, 4), 1u);
  EXPECT_EQ(out[0].payload, m2);
  EXPECT_EQ(b->recv(), std::nullopt);
}

TEST(MemTransport, SendManyHonorsAdmissionControl) {
  MemNetwork::Options opts;
  opts.queue_capacity = 2;
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto sender = net.transport(2)->bind(300);
  ASSERT_TRUE(s && sender);

  // One scatter call mixing a bound destination (bounded queue) and an
  // unbound one: per-datagram admission must match send() exactly — the
  // queue fills to capacity, overflow and no-listener datagrams drop.
  auto msg = bytes_of("m");
  std::vector<OutboundDatagram> msgs;
  for (int i = 0; i < 5; ++i) {
    msgs.push_back({Address{1, 100}, util::ByteSpan(msg)});
  }
  msgs.push_back({Address{9, 9}, util::ByteSpan(msg)});
  auto dropped_before = net.dropped();
  sender->send_many(msgs.data(), msgs.size());

  Datagram out[8];
  EXPECT_EQ(s->recv_batch(out, 8), 2u);  // capacity bound held
  EXPECT_EQ(net.dropped(), dropped_before + 4);  // 3 overflow + 1 unbound
}

TEST(MemTransport, LossDropsApproximatelyTheConfiguredFraction) {
  MemNetwork::Options opts;
  opts.loss = 0.25;
  opts.queue_capacity = 100000;
  opts.seed = 7;
  MemNetwork net(opts);
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("y");
  const int kSent = 10000;
  for (int i = 0; i < kSent; ++i) {
    net.send_raw(Address{2, 2}, Address{1, 100}, util::ByteSpan(msg));
  }
  int received = 0;
  while (s->recv()) ++received;
  EXPECT_NEAR(received, kSent * 0.75, kSent * 0.05);
}

TEST(MemTransport, SpoofedSourcePreserved) {
  MemNetwork net;
  auto t = net.transport(1);
  auto s = t->bind(100);
  auto msg = bytes_of("spoof");
  net.send_raw(Address{0xDEADBEEF, 31337}, Address{1, 100},
               util::ByteSpan(msg));
  auto got = s->recv();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->from.host, 0xDEADBEEFu);
  EXPECT_EQ(got->from.port, 31337);
}

TEST(AddressFormat, ToString) {
  EXPECT_EQ(to_string(Address{parse_ipv4("127.0.0.1"), 8080}),
            "127.0.0.1:8080");
  EXPECT_EQ(parse_ipv4("not an ip"), 0u);
}

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport tr;
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->local().port, 0);

  auto msg = bytes_of("over real udp");
  a->send(b->local(), util::ByteSpan(msg));
  // Loopback delivery is fast but asynchronous; poll briefly.
  std::optional<Datagram> got;
  for (int i = 0; i < 1000 && !got; ++i) got = b->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
  EXPECT_EQ(got->from, a->local());
}

TEST(UdpTransport, NonBlockingRecvOnEmpty) {
  UdpTransport tr;
  auto s = tr.bind(0);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->recv(), std::nullopt);
}

TEST(UdpTransport, BindCollisionRejectedWithTypedError) {
  UdpTransport tr;
  auto a = tr.bind(0);
  ASSERT_TRUE(a);
  auto dup = tr.bind(a->local().port);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error(), BindError::kPortTaken);
}

TEST(UdpTransport, EphemeralBindsAreDistinctPorts) {
  UdpTransport tr;
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->local().port, 0);
  EXPECT_NE(b->local().port, 0);
  EXPECT_NE(a->local().port, b->local().port);
}

// Per-shard ingress sockets (DESIGN.md §13): with set_reuse_port every
// shard binds the SAME well-known port and the kernel flow-hashes incoming
// datagrams across them. Sockets that did not opt in must still collide.
TEST(UdpTransport, ReusePortAllowsPerShardSharedBinding) {
  UdpTransport tr;
  tr.set_reuse_port(true);
  EXPECT_TRUE(tr.reuse_port());
  auto shard0 = tr.bind(0);  // kernel picks a free port, REUSEPORT set
  ASSERT_TRUE(shard0);
  const std::uint16_t port = shard0->local().port;
  auto shard1 = tr.bind(port);
  ASSERT_TRUE(shard1.ok()) << to_string(shard1.error());
  EXPECT_EQ(shard1->local().port, port);

  // A third binder WITHOUT the option cannot squat on the shared port.
  UdpTransport plain;
  auto squatter = plain.bind(port);
  EXPECT_FALSE(squatter.ok());
  EXPECT_EQ(squatter.error(), BindError::kPortTaken);

  // Datagrams to the shared port land on exactly one of the shard sockets.
  auto sender = plain.bind(0);
  ASSERT_TRUE(sender);
  auto msg = bytes_of("sharded ingress");
  sender->send(shard0->local(), util::ByteSpan(msg));
  std::optional<Datagram> got;
  for (int i = 0; i < 1000 && !got; ++i) {
    got = shard0->recv();
    if (!got) got = shard1->recv();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
}

TEST(UdpTransport, RebindAfterCloseSucceeds) {
  UdpTransport tr;
  std::uint16_t port = 0;
  {
    auto s = tr.bind(0);
    ASSERT_TRUE(s);
    port = s->local().port;
  }
  // Closing the fd releases the port immediately (no TIME_WAIT for UDP).
  auto again = tr.bind(port);
  ASSERT_TRUE(again.ok()) << to_string(again.error());
  EXPECT_EQ(again->local().port, port);
}

TEST(UdpTransport, MaxSizeDatagramPreservesBoundary) {
  UdpTransport tr;
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(a && b);
  // 65507 = 65535 - 20 (IP header) - 8 (UDP header): the largest payload a
  // single UDP datagram can carry. It must arrive whole, in one recv.
  constexpr std::size_t kMax = 65507;
  util::Bytes big(kMax);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  a->send(b->local(), util::ByteSpan(big));
  std::optional<Datagram> got;
  for (int i = 0; i < 2000 && !got; ++i) got = b->recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), kMax);
  EXPECT_EQ(got->payload, big);
  EXPECT_EQ(b->recv(), std::nullopt);  // exactly one datagram, not a stream
}

TEST(UdpTransport, BatchedSendAndReceiveRoundTrip) {
  UdpTransport tr;
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(a && b);
  constexpr std::size_t kCount = 40;  // > one recvmmsg scratch (16 slots)
  std::vector<util::Bytes> payloads;
  std::vector<util::ByteSpan> spans;
  for (std::size_t i = 0; i < kCount; ++i) {
    payloads.push_back(bytes_of("batch-" + std::to_string(i)));
  }
  for (const auto& p : payloads) spans.emplace_back(p);
  a->send_batch(b->local(), spans.data(), spans.size());

  std::vector<Datagram> got(kCount + 8);
  std::size_t n = 0;
  for (int i = 0; i < 2000 && n < kCount; ++i) {
    n += b->recv_batch(got.data() + n, got.size() - n);
  }
  ASSERT_EQ(n, kCount);
  // Loopback preserves order in practice; compare as sorted multisets to
  // stay robust. (Via strings: GCC 12's -Werror=stringop-overread false-
  // positives on vector<vector<uint8_t>> lexicographic compare, PR105651.)
  std::vector<std::string> seen;
  std::vector<std::string> sent;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].from, a->local());
    seen.emplace_back(got[i].payload.begin(), got[i].payload.end());
  }
  for (const auto& p : payloads) sent.emplace_back(p.begin(), p.end());
  std::sort(seen.begin(), seen.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(seen, sent);
}

TEST(UdpTransport, SendManyScattersAcrossSockets) {
  UdpTransport tr;
  auto sender = tr.bind(0);
  auto a = tr.bind(0);
  auto b = tr.bind(0);
  ASSERT_TRUE(sender && a && b);
  // Alternate destinations across more datagrams than one sendmmsg chunk
  // (64 slots) so the chunking loop and the per-message name binding are
  // both exercised.
  constexpr std::size_t kCount = 150;
  std::vector<util::Bytes> payloads;
  for (std::size_t i = 0; i < kCount; ++i) {
    payloads.push_back(bytes_of("scatter-" + std::to_string(i)));
  }
  std::vector<OutboundDatagram> msgs;
  for (std::size_t i = 0; i < kCount; ++i) {
    msgs.push_back({(i % 2 ? b : a)->local(), util::ByteSpan(payloads[i])});
  }
  sender->send_many(msgs.data(), msgs.size());

  auto drain = [](Socket& s, std::size_t want) {
    std::vector<Datagram> got(want + 8);
    std::size_t n = 0;
    for (int i = 0; i < 2000 && n < want; ++i) {
      n += s.recv_batch(got.data() + n, got.size() - n);
    }
    got.resize(n);
    return got;
  };
  auto got_a = drain(*a, kCount / 2 + 1);
  auto got_b = drain(*b, kCount / 2);
  ASSERT_EQ(got_a.size(), kCount / 2 + kCount % 2);
  ASSERT_EQ(got_b.size(), kCount / 2);
  // Every datagram landed on the socket its entry named (compare as sorted
  // string multisets; loopback may reorder).
  std::vector<std::string> seen_a, want_a;
  for (const auto& d : got_a) {
    EXPECT_EQ(d.from, sender->local());
    seen_a.emplace_back(d.payload.begin(), d.payload.end());
  }
  for (std::size_t i = 0; i < kCount; i += 2) {
    want_a.emplace_back(payloads[i].begin(), payloads[i].end());
  }
  std::sort(seen_a.begin(), seen_a.end());
  std::sort(want_a.begin(), want_a.end());
  EXPECT_EQ(seen_a, want_a);
}

}  // namespace
}  // namespace drum::net
