// Backend-dispatch tests for drum::crypto: the published known-answer
// vectors (FIPS 180-4, RFC 8439, RFC 8032) replayed against every compiled
// backend, randomized scalar-vs-native equivalence over odd lengths and
// block boundaries, batch Ed25519 negative tests (a corrupted signature at
// any batch position is detected and attributed to exactly that index), and
// property tests for the word-based BigInt division the mod-L hot path
// relies on.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "drum/crypto/api.hpp"
#include "drum/crypto/backend.hpp"
#include "drum/crypto/bigint.hpp"
#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/sha256.hpp"
#include "drum/util/rng.hpp"

namespace drum::crypto {
namespace {

using util::ByteSpan;
using util::Bytes;
using util::from_hex;
using util::to_hex;

ByteSpan span_of(const std::string& s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

template <std::size_t N>
std::array<std::uint8_t, N> arr_from_hex(const std::string& hex) {
  auto b = from_hex(hex);
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), N);
  std::array<std::uint8_t, N> out{};
  std::copy(b->begin(), b->end(), out.begin());
  return out;
}

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// Restores whatever backend was active when the test started.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_backend().name) {}
  ~BackendGuard() { set_active_backend(saved_); }

 private:
  std::string saved_;
};

// --------------------------------------------------------------- dispatch

TEST(BackendDispatch, TableIsSaneAndSelectable) {
  BackendGuard guard;
  auto backends = all_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_STREQ(backends.front()->name, "scalar");
  for (const Backend* be : backends) {
    ASSERT_NE(be, nullptr);
    EXPECT_NE(be->sha256_compress, nullptr);
    EXPECT_NE(be->sha256_compress_x8, nullptr);
    EXPECT_NE(be->chacha20_xor_blocks, nullptr);
    EXPECT_TRUE(set_active_backend(be->name));
    EXPECT_STREQ(active_backend().name, be->name);
  }
  EXPECT_FALSE(set_active_backend("sse9000"));
  EXPECT_FALSE(set_active_backend(""));
}

TEST(BackendDispatch, NativeAccelerationMatchesCpuFeatures) {
  const CpuFeatures& f = cpu_features();
  // The native table accelerates something iff the build compiled an ISA
  // path the CPU can run. On plain-scalar builds both sides are false.
  bool cpu_could = f.sha_ni || f.avx2 || f.sse2;
  if (!cpu_could) {
    EXPECT_FALSE(native_backend_accelerated());
  }
  if (native_backend_accelerated()) {
    EXPECT_TRUE(cpu_could);
  }
}

// ------------------------------------------- KATs against every backend

TEST(BackendKat, Sha256Fips180EveryBackend) {
  BackendGuard guard;
  for (const Backend* be : all_backends()) {
    ASSERT_TRUE(set_active_backend(be->name));
    SCOPED_TRACE(be->name);
    EXPECT_EQ(
        to_hex(ByteSpan(sha256(span_of("abc")))),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(
        to_hex(ByteSpan(sha256(span_of("")))),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(
        to_hex(ByteSpan(sha256(span_of(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    // One long input so multi-block compress loops actually run.
    Sha256 h;
    std::string a(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(span_of(a));
    EXPECT_EQ(
        to_hex(ByteSpan(h.final())),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
  }
}

TEST(BackendKat, ChaCha20Rfc8439EveryBackend) {
  BackendGuard guard;
  auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = from_hex("000000000000004a00000000");
  ASSERT_TRUE(key && nonce);
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const std::string want_hex =
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d";
  for (const Backend* be : all_backends()) {
    ASSERT_TRUE(set_active_backend(be->name));
    SCOPED_TRACE(be->name);
    Bytes ct = chacha20_xor_copy(ByteSpan(*key), ByteSpan(*nonce), 1,
                                 span_of(plaintext));
    EXPECT_EQ(to_hex(ByteSpan(ct)), want_hex);
    // Round-trip back to the plaintext.
    Bytes pt = chacha20_xor_copy(ByteSpan(*key), ByteSpan(*nonce), 1,
                                 ByteSpan(ct));
    EXPECT_EQ(to_hex(ByteSpan(pt)), to_hex(span_of(plaintext)));
  }
}

TEST(BackendKat, Ed25519Rfc8032EveryBackend) {
  BackendGuard guard;
  struct Vector {
    const char* seed;
    const char* pub;
    const char* msg;
    const char* sig;
  };
  // RFC 8032 §7.1 TEST 1–3.
  const Vector vectors[] = {
      {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
       "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
       "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
       "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
      {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
       "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
       "72",
       "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
       "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
      {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
       "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
       "af82",
       "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
       "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}};
  for (const Backend* be : all_backends()) {
    ASSERT_TRUE(set_active_backend(be->name));
    SCOPED_TRACE(be->name);
    std::vector<VerifyJob> jobs;
    std::vector<Bytes> messages;
    messages.reserve(std::size(vectors));
    for (const auto& v : vectors) {
      auto seed = arr_from_hex<kEd25519SeedSize>(v.seed);
      auto pub = arr_from_hex<kEd25519PublicKeySize>(v.pub);
      auto sig = arr_from_hex<kEd25519SignatureSize>(v.sig);
      auto msg = from_hex(v.msg);
      ASSERT_TRUE(msg.has_value());
      messages.push_back(*msg);
      EXPECT_EQ(ed25519_public_key(seed), pub);
      EXPECT_EQ(ed25519_sign(seed, pub, ByteSpan(messages.back())), sig);
      EXPECT_TRUE(ed25519_verify(pub, ByteSpan(messages.back()), sig));
      jobs.push_back({pub, ByteSpan(messages.back()), sig});
    }
    auto verdicts = ed25519_verify_batch(jobs);
    ASSERT_EQ(verdicts.size(), jobs.size());
    for (bool ok : verdicts) EXPECT_TRUE(ok);
  }
}

// --------------------------------- randomized scalar-vs-native equivalence

TEST(BackendEquivalence, Sha256OddLengthsAndBlockBoundaries) {
  BackendGuard guard;
  util::Rng rng(101);
  const std::size_t lengths[] = {0,   1,   31,  55,   56,   57,  63,
                                 64,  65,  119, 127,  128,  129, 191,
                                 256, 511, 512, 1000, 4099, 65536 + 7};
  for (std::size_t len : lengths) {
    Bytes data = random_bytes(rng, len);
    ASSERT_TRUE(set_active_backend("scalar"));
    auto want = sha256(ByteSpan(data));
    for (const Backend* be : all_backends()) {
      ASSERT_TRUE(set_active_backend(be->name));
      EXPECT_EQ(sha256(ByteSpan(data)), want)
          << be->name << " diverges at len=" << len;
      // Streaming with awkward chunk sizes straddling block boundaries.
      Sha256 h;
      std::size_t pos = 0;
      while (pos < data.size()) {
        std::size_t chunk = std::min<std::size_t>(1 + rng.below(130),
                                                  data.size() - pos);
        h.update(ByteSpan(data.data() + pos, chunk));
        pos += chunk;
      }
      EXPECT_EQ(h.final(), want)
          << be->name << " streaming diverges at len=" << len;
    }
  }
}

TEST(BackendEquivalence, Sha256BatchMatchesOneShot) {
  BackendGuard guard;
  util::Rng rng(102);
  // 13 messages: not a multiple of the 8-lane width, heterogeneous lengths
  // so lanes finish their lockstep prefix at different blocks.
  std::vector<Bytes> messages;
  std::vector<ByteSpan> spans;
  for (std::size_t i = 0; i < 13; ++i) {
    messages.push_back(random_bytes(rng, rng.below(400)));
  }
  for (const auto& m : messages) spans.push_back(ByteSpan(m));

  ASSERT_TRUE(set_active_backend("scalar"));
  std::vector<Sha256::Digest> want;
  for (const auto& m : messages) want.push_back(sha256(ByteSpan(m)));

  for (const Backend* be : all_backends()) {
    ASSERT_TRUE(set_active_backend(be->name));
    auto got = sha256_batch(spans);
    ASSERT_EQ(got.size(), want.size()) << be->name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << be->name << " lane " << i;
    }
  }
  // Equal-length batch: the all-lanes-in-lockstep fast path.
  std::vector<Bytes> same;
  std::vector<ByteSpan> same_spans;
  for (std::size_t i = 0; i < 8; ++i) same.push_back(random_bytes(rng, 256));
  for (const auto& m : same) same_spans.push_back(ByteSpan(m));
  ASSERT_TRUE(set_active_backend("scalar"));
  auto want8 = sha256_batch(same_spans);
  for (const Backend* be : all_backends()) {
    ASSERT_TRUE(set_active_backend(be->name));
    EXPECT_EQ(sha256_batch(same_spans), want8) << be->name;
  }
}

TEST(BackendEquivalence, ChaCha20OddLengthsAndCounterContinuation) {
  BackendGuard guard;
  util::Rng rng(103);
  Bytes key = random_bytes(rng, ChaCha20::kKeySize);
  Bytes nonce = random_bytes(rng, ChaCha20::kNonceSize);
  const std::size_t lengths[] = {1, 17, 63, 64, 65, 129, 256, 257, 1000, 4097};
  for (std::size_t len : lengths) {
    Bytes data = random_bytes(rng, len);
    ASSERT_TRUE(set_active_backend("scalar"));
    Bytes want = chacha20_xor_copy(ByteSpan(key), ByteSpan(nonce), 7,
                                   ByteSpan(data));
    for (const Backend* be : all_backends()) {
      ASSERT_TRUE(set_active_backend(be->name));
      // One-shot.
      EXPECT_EQ(chacha20_xor_copy(ByteSpan(key), ByteSpan(nonce), 7,
                                  ByteSpan(data)),
                want)
          << be->name << " diverges at len=" << len;
      // Incremental in odd chunks: the stream (and its counter) must
      // continue seamlessly across crypt() calls.
      Bytes inc = data;
      ChaCha20 c(ByteSpan(key), ByteSpan(nonce), 7);
      std::size_t pos = 0;
      while (pos < inc.size()) {
        std::size_t chunk =
            std::min<std::size_t>(1 + rng.below(150), inc.size() - pos);
        c.crypt(inc.data() + pos, chunk);
        pos += chunk;
      }
      EXPECT_EQ(inc, want)
          << be->name << " incremental diverges at len=" << len;
    }
  }
}

// -------------------------------------------- batch Ed25519 negative tests

struct SignedMessage {
  Ed25519Seed seed;
  Ed25519PublicKey pub;
  Bytes msg;
  Ed25519Signature sig;
};

std::vector<SignedMessage> make_signed(util::Rng& rng, std::size_t n) {
  std::vector<SignedMessage> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& b : out[i].seed) b = static_cast<std::uint8_t>(rng.below(256));
    out[i].pub = ed25519_public_key(out[i].seed);
    out[i].msg = random_bytes(rng, 10 + rng.below(90));
    out[i].sig = ed25519_sign(out[i].seed, out[i].pub, ByteSpan(out[i].msg));
  }
  return out;
}

std::vector<VerifyJob> jobs_of(const std::vector<SignedMessage>& sm) {
  std::vector<VerifyJob> jobs;
  jobs.reserve(sm.size());
  for (const auto& s : sm) jobs.push_back({s.pub, ByteSpan(s.msg), s.sig});
  return jobs;
}

TEST(BatchVerify, AllValidBatchesPass) {
  util::Rng rng(201);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{8}, std::size_t{64}}) {
    auto sm = make_signed(rng, n);
    auto verdicts = ed25519_verify_batch(jobs_of(sm));
    ASSERT_EQ(verdicts.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(verdicts[i]) << i;
  }
}

TEST(BatchVerify, CorruptSignatureAtEachPositionIsAttributed) {
  util::Rng rng(202);
  constexpr std::size_t kBatch = 8;
  auto sm = make_signed(rng, kBatch);
  for (std::size_t bad = 0; bad < kBatch; ++bad) {
    auto jobs = jobs_of(sm);
    // Flip one bit in R (first half) or S (second half) alternately.
    jobs[bad].sig[bad % 2 ? 40 : 3] ^= 0x04;
    auto verdicts = ed25519_verify_batch(jobs);
    ASSERT_EQ(verdicts.size(), kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      EXPECT_EQ(verdicts[i], i != bad) << "bad=" << bad << " i=" << i;
      // The batch path must agree with single verification exactly.
      EXPECT_EQ(verdicts[i],
                ed25519_verify(jobs[i].pub, jobs[i].message, jobs[i].sig))
          << "bad=" << bad << " i=" << i;
    }
  }
}

TEST(BatchVerify, CorruptMessageAndWrongKeyAreAttributed) {
  util::Rng rng(203);
  auto sm = make_signed(rng, 6);
  auto jobs = jobs_of(sm);
  Bytes tampered = sm[2].msg;
  tampered[0] ^= 0x80;
  jobs[2].message = ByteSpan(tampered);  // signed bytes != presented bytes
  jobs[4].pub = sm[5].pub;               // right signature, wrong signer
  auto verdicts = ed25519_verify_batch(jobs);
  ASSERT_EQ(verdicts.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 2 && i != 4) << i;
  }
}

TEST(BatchVerify, MalformedEncodingsRejectedDeterministically) {
  util::Rng rng(204);
  auto sm = make_signed(rng, 5);
  auto jobs = jobs_of(sm);
  // Non-canonical scalar: S = L (RFC 8032 requires S < L).
  auto order_le = arr_from_hex<32>(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000" "10");
  std::copy(order_le.begin(), order_le.end(), jobs[1].sig.begin() + 32);
  // Non-canonical field element for R: 2^255 - 1 has y >= p.
  for (std::size_t i = 0; i < 32; ++i) jobs[3].sig[i] = 0xff;
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto verdicts = ed25519_verify_batch(jobs);
    ASSERT_EQ(verdicts.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(verdicts[i], i != 1 && i != 3) << i;
      EXPECT_EQ(verdicts[i],
                ed25519_verify(jobs[i].pub, jobs[i].message, jobs[i].sig))
          << i;
    }
  }
}

// --------------------------------------------- BigInt division properties

BigInt random_bigint(util::Rng& rng, std::size_t nbytes) {
  Bytes b = random_bytes(rng, nbytes);
  return BigInt::from_bytes_le(ByteSpan(b));
}

TEST(BigIntDivision, RemainderMatchesConstruction) {
  // Build x = q*m + r with r < m by construction (r gets strictly fewer
  // bits than m), then demand x % m == r. Random widths cover the
  // single-limb fast path, two-limb divisors, and every normalize shift.
  util::Rng rng(301);
  for (int iter = 0; iter < 2000; ++iter) {
    BigInt m = random_bigint(rng, 1 + rng.below(40));
    if (m.is_zero()) continue;
    BigInt q = random_bigint(rng, rng.below(48));
    std::size_t rbits = m.bit_length() - 1;
    BigInt r = rbits == 0 ? BigInt() : random_bigint(rng, (rbits + 7) / 8);
    while (!(r < m)) r = r - m;  // at most a few iterations; keeps r random
    BigInt x = q * m + r;
    EXPECT_EQ(x % m, r) << "iter=" << iter << " x=" << x.to_hex()
                        << " m=" << m.to_hex();
  }
}

TEST(BigIntDivision, EdgeCases) {
  const BigInt& L = ed25519_order();
  EXPECT_TRUE((L % L).is_zero());
  EXPECT_EQ(BigInt(0) % L, BigInt(0));
  EXPECT_EQ(BigInt(12345) % L, BigInt(12345));
  EXPECT_EQ((L + BigInt(7)) % L, BigInt(7));
  EXPECT_TRUE(((L * BigInt(0xdeadbeefULL)) % L).is_zero());
  // Divisor with its top bit already set (normalize shift of zero).
  BigInt m = BigInt::from_hex("ffffffffffffffff0000000000000001");
  BigInt q = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  BigInt r = BigInt::from_hex("42");
  EXPECT_EQ((q * m + r) % m, r);
  // Dividend exactly one limb longer than the divisor.
  BigInt m2 = BigInt::from_hex("80000000" "00000001");
  EXPECT_EQ((m2 * BigInt(0xffffffffULL) + BigInt(5)) % m2, BigInt(5));
  EXPECT_THROW(L % BigInt(0), std::domain_error);
}

}  // namespace
}  // namespace drum::crypto
