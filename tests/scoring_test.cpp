// PeerScoreTable edge cases: decay over idle rounds, the per-peer
// allowance, greylist entry/release, re-offend hysteresis (duration
// doubling inside the strike window), and the futility streak. The
// false-positive gate (all-correct runs never greylist) lives in
// adversary_test.cpp where the full simulator drives the table.
#include <gtest/gtest.h>

#include <cmath>

#include "drum/core/scoring.hpp"
#include "drum/util/rng.hpp"

namespace drum::core {
namespace {

ScoringConfig cfg() {
  ScoringConfig c;
  c.enabled = true;
  return c;
}

TEST(ScoringTest, StartsCleanAndIgnoresSelf) {
  PeerScoreTable t;
  t.reset(8, cfg(), 3);
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_FALSE(t.greylisted(p));
    EXPECT_EQ(t.score(p), 0.0);
  }
  // Events naming self are dropped.
  for (int i = 0; i < 100; ++i) t.on_decode_error(3);
  EXPECT_EQ(t.score(3), 0.0);
  EXPECT_FALSE(t.greylisted(3));
  // Out-of-range peers are dropped, not UB.
  t.on_decode_error(12345);
  t.on_control_arrival(12345);
  EXPECT_FALSE(t.greylisted(12345));
}

TEST(ScoringTest, DecayOverIdleRounds) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  t.begin_round(1);
  t.on_decode_error(1);
  const double s0 = t.score(1);
  EXPECT_DOUBLE_EQ(s0, -c.decode_error_penalty);

  // 100 idle rounds: score decays by decay^100, applied lazily on read.
  t.begin_round(101);
  const double expected =
      -c.decode_error_penalty * std::pow(c.decay, 100.0);
  EXPECT_NEAR(t.score(1), expected, 1e-4);

  // Past the tabulated horizon the residue rounds to exactly zero.
  t.begin_round(100000);
  EXPECT_EQ(t.score(1), 0.0);
}

TEST(ScoringTest, AllowanceThenOveruse) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  t.begin_round(1);
  // Within the per-round allowance: no penalty.
  for (std::uint32_t i = 0; i < c.per_peer_allowance; ++i) {
    t.on_control_arrival(1);
  }
  EXPECT_EQ(t.score(1), 0.0);
  EXPECT_EQ(t.penalties_overuse(), 0U);
  // Each arrival beyond it is penalized.
  t.on_control_arrival(1);
  t.on_control_arrival(1);
  EXPECT_EQ(t.penalties_overuse(), 2U);
  EXPECT_NEAR(t.score(1), -2.0 * c.overuse_penalty, 1e-5);
  // The counter is per round: next round starts a fresh allowance.
  t.begin_round(2);
  t.on_control_arrival(1);
  EXPECT_EQ(t.penalties_overuse(), 2U);
}

TEST(ScoringTest, FutilityStreak) {
  PeerScoreTable t;
  auto c = cfg();
  ASSERT_EQ(c.futility_streak, 3U);  // the default this test encodes
  t.reset(4, c, 0);
  t.begin_round(1);
  // Below the streak: no penalty.
  t.on_pull_outcome(1, false);
  t.on_pull_outcome(1, false);
  EXPECT_EQ(t.penalties_futility(), 0U);
  // An answer resets the streak.
  t.on_pull_outcome(1, true);
  t.on_pull_outcome(1, false);
  t.on_pull_outcome(1, false);
  EXPECT_EQ(t.penalties_futility(), 0U);
  // The third consecutive unanswered pull charges one penalty and resets.
  t.on_pull_outcome(1, false);
  EXPECT_EQ(t.penalties_futility(), 1U);
  EXPECT_NEAR(t.score(1), -c.futility_penalty, 1e-5);
  // Resets after firing: two more misses alone do not fire again.
  t.on_pull_outcome(1, false);
  t.on_pull_outcome(1, false);
  EXPECT_EQ(t.penalties_futility(), 1U);
}

TEST(ScoringTest, GreylistEntryAndRelease) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  t.begin_round(1);
  while (!t.greylisted(1)) t.on_control_arrival(1);
  EXPECT_EQ(t.greylist_entries(), 1U);
  EXPECT_LE(t.score(1), c.greylist_threshold);

  // Still greylisted one round before expiry...
  t.begin_round(c.greylist_rounds);
  EXPECT_TRUE(t.greylisted(1));
  // ...released at expiry, with the residual score clamped up so fresh
  // evidence is needed to re-enter.
  t.begin_round(1 + c.greylist_rounds);
  EXPECT_FALSE(t.greylisted(1));
  EXPECT_GE(t.score(1), c.greylist_threshold / 2);
}

TEST(ScoringTest, ReoffendInsideStrikeWindowDoublesDuration) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);

  auto drive_into_greylist = [&] {
    while (!t.greylisted(1)) t.on_control_arrival(1);
  };

  t.begin_round(1);
  drive_into_greylist();
  const std::uint64_t release1 = 1 + c.greylist_rounds;
  t.begin_round(release1);
  ASSERT_FALSE(t.greylisted(1));

  // Re-offend immediately: the second sentence is twice the base duration.
  drive_into_greylist();
  EXPECT_EQ(t.greylist_entries(), 2U);
  t.begin_round(release1 + 2 * c.greylist_rounds - 1);
  EXPECT_TRUE(t.greylisted(1));
  const std::uint64_t release2 = release1 + 2 * c.greylist_rounds;
  t.begin_round(release2);
  EXPECT_FALSE(t.greylisted(1));

  // Third offense still inside the window: 4x base.
  drive_into_greylist();
  t.begin_round(release2 + 4 * c.greylist_rounds - 1);
  EXPECT_TRUE(t.greylisted(1));
  t.begin_round(release2 + 4 * c.greylist_rounds);
  EXPECT_FALSE(t.greylisted(1));
}

TEST(ScoringTest, ReoffendAfterStrikeWindowStartsOver) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  t.begin_round(1);
  while (!t.greylisted(1)) t.on_control_arrival(1);
  const std::uint64_t release1 = 1 + c.greylist_rounds;
  // Come back long after the strike window: the ladder resets to base.
  const std::uint64_t later = release1 + c.strike_window + 10;
  t.begin_round(later);
  ASSERT_FALSE(t.greylisted(1));
  while (!t.greylisted(1)) t.on_control_arrival(1);
  t.begin_round(later + c.greylist_rounds - 1);
  EXPECT_TRUE(t.greylisted(1));
  t.begin_round(later + c.greylist_rounds);
  EXPECT_FALSE(t.greylisted(1));
}

TEST(ScoringTest, ResizeKeepsState) {
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  t.begin_round(5);
  t.on_decode_error(1);
  const double s = t.score(1);
  t.resize(16);
  EXPECT_EQ(t.size(), 16U);
  EXPECT_DOUBLE_EQ(t.score(1), s);
  EXPECT_EQ(t.score(15), 0.0);
  // New entries settle from the current round, not round 0.
  t.begin_round(6);
  t.on_decode_error(15);
  EXPECT_DOUBLE_EQ(t.score(15), -c.decode_error_penalty);
}

TEST(ScoringTest, HonestInteractionRateNeverGreylists) {
  // A peer that sends exactly the honest ceiling (allowance) every round and
  // occasionally loses a pull answer must stay far from the threshold.
  PeerScoreTable t;
  auto c = cfg();
  t.reset(4, c, 0);
  util::Rng rng(42);
  std::uint64_t unanswered = 0;
  for (std::uint64_t r = 1; r <= 20000; ++r) {
    t.begin_round(r);
    t.on_control_arrival(1);
    t.on_control_arrival(1);
    // An honest node pulls a GIVEN peer at the pair interaction rate
    // (view_pull/n, here 2/50); each pull goes unanswered with 20% loss —
    // the worst honest case. Some consecutive losses DO charge futility
    // penalties, but slow decay at that interaction rate keeps the
    // equilibrium far above the greylist threshold.
    if (rng.chance(2.0 / 50.0)) {
      const bool answered = !rng.chance(0.2);
      t.on_pull_outcome(1, answered);
      if (!answered) ++unanswered;
    }
    ASSERT_FALSE(t.greylisted(1)) << "round " << r;
  }
  EXPECT_GT(unanswered, 0U);
  EXPECT_GT(t.penalties_futility(), 0U);
  EXPECT_EQ(t.greylist_entries(), 0U);
  t.check_invariants();
}

}  // namespace
}  // namespace drum::core
