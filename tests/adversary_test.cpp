// drum::adversary: the strategy registry, plan determinism, sim-engine
// integration (including thread-count bit-identity for zoo runs), the
// defense ablation (scoring must beat vanilla Drum on the insider attacks),
// the false-positive gate, and a live-swarm smoke of the same registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "drum/adversary/adversary.hpp"
#include "drum/harness/swarm.hpp"
#include "drum/sim/engine.hpp"
#include "drum/util/rng.hpp"

namespace drum {
namespace {

adversary::RoundView test_view(const std::vector<std::uint32_t>& attacked,
                               const std::vector<std::uint32_t>& colluders,
                               const std::vector<float>& usefulness) {
  adversary::RoundView v;
  v.round = 3;
  v.n = 64;
  v.attacked = attacked;
  v.colluders = colluders;
  v.usefulness = usefulness;
  return v;
}

TEST(AdversaryTest, RegistryListsBuiltins) {
  const auto names = adversary::registered();
  EXPECT_GE(names.size(), 6U);
  for (const char* expected : {"flood", "slow-drip", "pull-amplify",
                               "adaptive", "eclipse", "collude"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(AdversaryTest, MakeThrowsOnUnknownName) {
  EXPECT_THROW(adversary::make("no-such-strategy", {}),
               std::invalid_argument);
}

TEST(AdversaryTest, PlansAreDeterministic) {
  const std::vector<std::uint32_t> attacked{1, 2, 3, 4};
  const std::vector<std::uint32_t> colluders{60, 61, 62, 63};
  std::vector<float> usefulness(64, 0.0F);
  usefulness[10] = 5.0F;
  usefulness[20] = 9.0F;
  for (const auto& name : adversary::registered()) {
    adversary::Params params;
    params.x = 48;
    auto a = adversary::make(name, params);
    auto b = adversary::make(name, params);
    EXPECT_STREQ(a->name(), name.c_str());
    adversary::Plan pa;
    adversary::Plan pb;
    for (std::uint64_t round = 0; round < 5; ++round) {
      auto view = test_view(attacked, colluders, usefulness);
      view.round = round;
      util::Rng ra(7);
      util::Rng rb(7);
      pa.clear();
      pb.clear();
      a->plan_round(view, ra, pa);
      b->plan_round(view, rb, pb);
      EXPECT_EQ(pa.view_capture, pb.view_capture) << name;
      ASSERT_EQ(pa.floods.size(), pb.floods.size()) << name;
      for (std::size_t i = 0; i < pa.floods.size(); ++i) {
        EXPECT_EQ(pa.floods[i].target, pb.floods[i].target) << name;
        EXPECT_EQ(pa.floods[i].channel, pb.floods[i].channel) << name;
        EXPECT_EQ(pa.floods[i].count, pb.floods[i].count) << name;
        EXPECT_EQ(pa.floods[i].claimed_sender, pb.floods[i].claimed_sender)
            << name;
      }
    }
  }
}

TEST(AdversaryTest, InsiderStrategiesEmitAttributableFloods) {
  const std::vector<std::uint32_t> attacked{0, 1};
  const std::vector<std::uint32_t> colluders{60, 61, 62, 63};
  adversary::Params params;
  params.x = 64;
  for (const char* name : {"pull-amplify", "eclipse", "collude"}) {
    auto a = adversary::make(name, params);
    adversary::Plan plan;
    util::Rng rng(1);
    auto view = test_view(attacked, colluders, {});
    a->plan_round(view, rng, plan);
    bool any_insider = false;
    for (const auto& f : plan.floods) {
      if (f.claimed_sender != adversary::kSpoofed) {
        any_insider = true;
        EXPECT_GE(f.claimed_sender, 60U) << name;
        EXPECT_LE(f.claimed_sender, 63U) << name;
      }
    }
    EXPECT_TRUE(any_insider || std::string(name) == "eclipse") << name;
    if (std::string(name) == "eclipse") {
      EXPECT_GT(plan.view_capture, 0.0);
    }
  }
  // Without colluders the insider strategies degrade to spoofed traffic
  // (or, for eclipse, to nothing) instead of inventing identities.
  for (const char* name : {"pull-amplify", "collude", "eclipse"}) {
    auto a = adversary::make(name, params);
    adversary::Plan plan;
    util::Rng rng(1);
    auto view = test_view(attacked, {}, {});
    a->plan_round(view, rng, plan);
    EXPECT_EQ(plan.view_capture, 0.0) << name;
    for (const auto& f : plan.floods) {
      EXPECT_EQ(f.claimed_sender, adversary::kSpoofed) << name;
    }
  }
}

TEST(AdversaryTest, AdaptiveRetargetsMostUsefulNodes) {
  const std::vector<std::uint32_t> attacked{1, 2};
  const std::vector<std::uint32_t> colluders{63};
  std::vector<float> usefulness(64, 0.0F);
  usefulness[40] = 9.0F;
  usefulness[41] = 8.0F;
  usefulness[63] = 100.0F;  // colluder: must never be targeted
  adversary::Params params;
  params.x = 32;
  params.focus = 2;
  auto a = adversary::make("adaptive", params);
  adversary::Plan plan;
  util::Rng rng(1);
  a->plan_round(test_view(attacked, colluders, usefulness), rng, plan);
  ASSERT_FALSE(plan.floods.empty());
  for (const auto& f : plan.floods) {
    EXPECT_TRUE(f.target == 40 || f.target == 41) << f.target;
  }
}

TEST(AdversaryTest, SimRunsEveryStrategy) {
  for (const auto& name : adversary::registered()) {
    sim::SimParams p;
    p.n = 60;
    p.alpha = 0.1;
    p.malicious_fraction = 0.1;
    p.max_rounds = 200;
    p.attack.strategy = name;
    p.attack.params.x = 32;
    auto agg = sim::simulate_many(p, 3, 11);
    EXPECT_EQ(agg.rounds_to_target.count(), 3U) << name;
    EXPECT_EQ(agg.unreached_runs, 0U) << name;
  }
}

TEST(AdversaryTest, ZooRunsAreThreadCountInvariant) {
  sim::SimParams p;
  p.n = 60;
  p.alpha = 0.1;
  p.malicious_fraction = 0.1;
  p.max_rounds = 200;
  p.attack.strategy = "pull-amplify";
  p.attack.params.x = 64;
  p.scoring.enabled = true;
  sim::SimOptions one;
  one.threads = 1;
  sim::SimOptions four;
  four.threads = 4;
  const auto a = sim::simulate_many(p, 8, 5, one);
  const auto b = sim::simulate_many(p, 8, 5, four);
  EXPECT_TRUE(a == b);
}

TEST(AdversaryTest, ScoringBeatsVanillaOnInsiderAttacks) {
  for (const char* name : {"pull-amplify", "eclipse"}) {
    sim::SimParams p;
    p.n = 100;
    p.alpha = 0.1;
    p.malicious_fraction = 0.1;
    p.max_rounds = 300;
    p.attack.strategy = name;
    p.attack.params.x = 128;
    const auto vanilla = sim::simulate_many(p, 10, 3);
    p.scoring.enabled = true;
    const auto scored = sim::simulate_many(p, 10, 3);
    EXPECT_LT(scored.rounds_to_target_attacked.mean(),
              vanilla.rounds_to_target_attacked.mean())
        << name;
    EXPECT_GT(scored.greylist_entries.mean(), 0.0) << name;
  }
}

// The false-positive gate (ISSUE 6): an all-correct group running the
// scoring layer must never greylist anyone. coverage_target > 1 can never
// be reached, which forces every run through the full horizon: 5 runs x
// 2000 rounds = 10k simulated rounds of honest-only traffic.
TEST(AdversaryTest, FalsePositiveGateAllCorrectNeverGreylists) {
  sim::SimParams p;
  p.n = 80;
  p.alpha = 0.0;
  p.x = 0.0;
  p.malicious_fraction = 0.0;
  p.crashed_fraction = 0.0;
  p.max_rounds = 2000;
  p.coverage_target = 1.01;
  p.scoring.enabled = true;
  const auto agg = sim::simulate_many(p, 5, 17);
  EXPECT_EQ(agg.greylist_entries.mean(), 0.0);
  EXPECT_EQ(agg.greylist_entries.count(), 5U);
}

// Same registry, live backend: a short swarm window under an insider
// attack with scoring on. Wall-clock dependent, so assertions stay loose:
// the attacker must have sent strategy traffic and nothing may crash.
TEST(AdversaryTest, LiveSwarmRunsStrategyFromRegistry) {
  harness::SwarmConfig cfg;
  cfg.n = 16;
  cfg.alpha = 0.25;
  cfg.x = 64;
  cfg.malicious = 0.25;
  cfg.adversary = "pull-amplify";
  cfg.scoring.enabled = true;
  cfg.round = std::chrono::milliseconds(20);
  cfg.workers = 1;
  cfg.seed = 3;
  harness::Swarm swarm(cfg);
  swarm.start();
  swarm.run_for(std::chrono::milliseconds(300));
  swarm.stop();
  const auto r = swarm.report();
  EXPECT_EQ(r.colluders, 4U);
  EXPECT_EQ(r.nodes, 12U);
  EXPECT_GT(r.attack_datagrams, 0U);
  EXPECT_GT(r.delivered, 0U);
}

TEST(AdversaryTest, LiveSwarmRejectsUnknownStrategy) {
  harness::SwarmConfig cfg;
  cfg.n = 8;
  cfg.alpha = 0.5;
  cfg.x = 16;
  cfg.adversary = "definitely-not-registered";
  EXPECT_THROW(harness::Swarm swarm(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace drum
