// Tests for the dynamic membership layer (paper §10): certificates, the CA,
// the validated membership table (anti-forgery, anti-replay, expiry), the
// local failure detector, and the service wired to real Drum nodes over the
// in-memory network.
#include <gtest/gtest.h>

#include "drum/membership/ca.hpp"
#include "drum/membership/failure_detector.hpp"
#include "drum/membership/service.hpp"
#include "drum/membership/table.hpp"
#include "drum/net/mem_transport.hpp"

namespace drum::membership {
namespace {

// One full ingress cycle (drain → verify → ingest) on a private batch — the
// standalone-driver shape of the DESIGN.md §12 pipeline.
void poll_node(core::Node& n) {
  core::ingress::IngressBatch batch;
  n.drain_ingress(batch);
  batch.dispatch();
}

struct CaFixture {
  util::Rng rng{7};
  CertificationAuthority ca{rng, /*default_ttl=*/100};
  std::vector<crypto::Identity> ids;

  MembershipEvent join(std::uint32_t id) {
    while (ids.size() <= id) ids.push_back(crypto::Identity::generate(rng));
    auto ev = ca.authorize_join(id, /*host=*/id,
                                static_cast<std::uint16_t>(1000 + 2 * id),
                                static_cast<std::uint16_t>(1001 + 2 * id),
                                ids[id].sign_public(), ids[id].dh_public());
    EXPECT_TRUE(ev.has_value());
    return *ev;
  }
};

// -------------------------------------------------------- certificates

TEST(Certificate, EncodeDecodeRoundTrip) {
  CaFixture f;
  auto ev = f.join(3);
  auto wire = ev.certificate->encode();
  auto back = Certificate::decode(util::ByteSpan(wire));
  EXPECT_EQ(back.member_id, 3u);
  EXPECT_EQ(back.serial, ev.certificate->serial);
  EXPECT_TRUE(back.verify(f.ca.public_key()));
}

TEST(Certificate, TamperBreaksSignature) {
  CaFixture f;
  auto cert = *f.join(1).certificate;
  EXPECT_TRUE(cert.verify(f.ca.public_key()));
  cert.wk_pull_port ^= 1;  // attacker redirects a port
  EXPECT_FALSE(cert.verify(f.ca.public_key()));
}

TEST(Certificate, ExpiryIsChecked) {
  CaFixture f;
  auto cert = *f.join(1).certificate;
  EXPECT_FALSE(cert.expired(50));
  EXPECT_TRUE(cert.expired(100));
}

TEST(MembershipEventWire, RoundTripAllTypes) {
  CaFixture f;
  auto join_ev = f.join(2);
  auto wire = join_ev.encode();
  auto back = MembershipEvent::decode(util::ByteSpan(wire));
  EXPECT_EQ(back.type, EventType::kJoin);
  ASSERT_TRUE(back.certificate.has_value());
  EXPECT_TRUE(back.verify(f.ca.public_key()));

  auto expel_ev = *f.ca.expel(2);
  auto wire2 = expel_ev.encode();
  auto back2 = MembershipEvent::decode(util::ByteSpan(wire2));
  EXPECT_EQ(back2.type, EventType::kExpel);
  EXPECT_FALSE(back2.certificate.has_value());
  EXPECT_TRUE(back2.verify(f.ca.public_key()));
}

TEST(MembershipEventWire, RejectsGarbage) {
  util::Bytes junk = {9, 9, 9};
  EXPECT_THROW(MembershipEvent::decode(util::ByteSpan(junk)),
               util::DecodeError);
}

// ------------------------------------------------------------------ CA

TEST(Ca, RejectsDoubleJoinUntilExpiry) {
  CaFixture f;
  f.join(1);
  auto dup = f.ca.authorize_join(1, 1, 1, 2, f.ids[1].sign_public(),
                                 f.ids[1].dh_public());
  EXPECT_FALSE(dup.has_value());
  f.ca.set_now(200);  // certificate expired
  auto rejoin = f.ca.authorize_join(1, 1, 1, 2, f.ids[1].sign_public(),
                                    f.ids[1].dh_public());
  EXPECT_TRUE(rejoin.has_value());
}

TEST(Ca, LeaveRequiresMembersSignature) {
  CaFixture f;
  f.join(1);
  f.join(2);
  // Member 2 tries to log member 1 out: signature does not verify.
  auto forged_sig = f.ids[2].sign(
      util::ByteSpan(CertificationAuthority::leave_request_bytes(1)));
  EXPECT_FALSE(f.ca.process_leave(1, forged_sig).has_value());
  // Member 1's own signature works.
  auto good_sig = f.ids[1].sign(
      util::ByteSpan(CertificationAuthority::leave_request_bytes(1)));
  auto ev = f.ca.process_leave(1, good_sig);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->type, EventType::kLeave);
  EXPECT_EQ(f.ca.roster().size(), 1u);
}

TEST(Ca, RenewIssuesFreshSerialAndExpiry) {
  CaFixture f;
  auto first = f.join(1);
  f.ca.set_now(80);
  auto renewed = f.ca.renew(1);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_GT(renewed->certificate->serial, first.certificate->serial);
  EXPECT_EQ(renewed->certificate->expires_at, 180);
  EXPECT_FALSE(f.ca.renew(99).has_value());
}

TEST(Ca, RosterListsLiveMembers) {
  CaFixture f;
  f.join(1);
  f.join(2);
  f.join(3);
  f.ca.expel(2);
  auto roster = f.ca.roster();
  EXPECT_EQ(roster.size(), 2u);
}

// --------------------------------------------------------------- table

TEST(Table, AppliesValidJoinRejectsForged) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  auto ev = f.join(1);
  EXPECT_TRUE(table.apply(ev, 0));
  EXPECT_TRUE(table.is_member(1, 0));

  // Forged event: attacker self-signs a join for id 9.
  auto forged = ev;
  forged.member_id = 9;
  EXPECT_FALSE(table.apply(forged, 0));
  EXPECT_FALSE(table.is_member(9, 0));
}

TEST(Table, LeaveRemovesAndBlocksReplayedJoin) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  auto join_ev = f.join(1);
  table.apply(join_ev, 0);
  auto sig = f.ids[1].sign(
      util::ByteSpan(CertificationAuthority::leave_request_bytes(1)));
  auto leave_ev = *f.ca.process_leave(1, sig);
  EXPECT_TRUE(table.apply(leave_ev, 0));
  EXPECT_FALSE(table.is_member(1, 0));
  // Replaying the original join must not resurrect the member.
  EXPECT_FALSE(table.apply(join_ev, 0));
  EXPECT_FALSE(table.is_member(1, 0));
}

TEST(Table, OutOfOrderLeaveBeatsJoin) {
  // Leave event arrives before the join it revokes (gossip reorders).
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  auto join_ev = f.join(1);
  auto expel_ev = *f.ca.expel(1);
  EXPECT_TRUE(table.apply(expel_ev, 0));
  EXPECT_FALSE(table.apply(join_ev, 0));
  EXPECT_FALSE(table.is_member(1, 0));
}

TEST(Table, ExpiryPrunes) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  table.apply(f.join(1), 0);
  EXPECT_TRUE(table.is_member(1, 50));
  EXPECT_FALSE(table.is_member(1, 150));  // expired even before prune
  table.prune_expired(150);
  EXPECT_EQ(table.size(), 0u);
}

TEST(Table, RenewalSupersedesOldCertificate) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  auto first = f.join(1);
  f.ca.set_now(80);
  auto renewed = *f.ca.renew(1);
  EXPECT_TRUE(table.apply(first, 0));
  EXPECT_TRUE(table.apply(renewed, 80));
  // Old certificate (lower serial) can no longer displace the new one.
  EXPECT_FALSE(table.apply(first, 80));
  EXPECT_TRUE(table.is_member(1, 150));  // renewed expiry 180
}

TEST(Table, DirectoryIndexedById) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  table.apply(f.join(2), 0);
  table.apply(f.join(5), 0);
  auto dir = table.directory(0, /*max_id_hint=*/7);
  ASSERT_EQ(dir.size(), 8u);
  EXPECT_FALSE(dir[0].present);
  EXPECT_TRUE(dir[2].present);
  EXPECT_FALSE(dir[3].present);
  EXPECT_TRUE(dir[5].present);
  EXPECT_EQ(dir[5].id, 5u);
  EXPECT_EQ(dir[5].wk_pull_port, 1010);
}

TEST(Table, SeedRosterSkipsInvalid) {
  CaFixture f;
  MembershipTable table(f.ca.public_key());
  auto good = *f.join(1).certificate;
  auto bad = good;
  bad.member_id = 2;  // breaks signature
  EXPECT_EQ(table.seed_roster({good, bad}, 0), 1u);
  EXPECT_TRUE(table.is_member(1, 0));
  EXPECT_FALSE(table.is_member(2, 0));
}

// ---------------------------------------------------- failure detector

TEST(FailureDetector, SuspectsAfterSilence) {
  FailureDetector fd(/*suspicion_rounds=*/5, /*probe_interval=*/2);
  fd.track(1, 0);
  fd.track(2, 0);
  fd.heard_from(1, 4);
  EXPECT_FALSE(fd.is_suspected(1, 6));
  EXPECT_TRUE(fd.is_suspected(2, 6));
  EXPECT_EQ(fd.suspected(6), std::vector<std::uint32_t>{2});
  // Hearing from a suspect clears the suspicion.
  fd.heard_from(2, 7);
  EXPECT_FALSE(fd.is_suspected(2, 8));
}

TEST(FailureDetector, UntrackedNeverSuspected) {
  FailureDetector fd(5, 2);
  EXPECT_FALSE(fd.is_suspected(42, 100));
  fd.track(1, 0);
  fd.forget(1);
  EXPECT_FALSE(fd.is_suspected(1, 100));
}

TEST(FailureDetector, ProbesAreRateLimited) {
  FailureDetector fd(10, 3);
  fd.track(1, 0);
  EXPECT_TRUE(fd.due_probes(3) == std::vector<std::uint32_t>{1});
  EXPECT_TRUE(fd.due_probes(4).empty());  // just probed
  EXPECT_TRUE(fd.due_probes(6) == std::vector<std::uint32_t>{1});
}

// -------------------------------------------------- service + real nodes

struct TwoNodeFixture {
  util::Rng rng{11};
  net::MemNetwork net;
  CertificationAuthority ca{rng, 1000};
  std::vector<crypto::Identity> ids;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::vector<std::unique_ptr<MembershipService>> services;
  std::vector<std::vector<core::Node::Delivery>> app_deliveries;

  void add_node(std::uint32_t id, bool seed_roster_now = true) {
    while (ids.size() <= id) ids.push_back(crypto::Identity::generate(rng));
    auto ev = ca.authorize_join(id, id, static_cast<std::uint16_t>(4000 + 2 * id),
                                static_cast<std::uint16_t>(4001 + 2 * id),
                                ids[id].sign_public(), ids[id].dh_public());
    ASSERT_TRUE(ev.has_value());
    transports.push_back(net.transport(id));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = static_cast<std::uint16_t>(4000 + 2 * id);
    cfg.wk_offer_port = static_cast<std::uint16_t>(4001 + 2 * id);
    // Bootstrap directory: just self (the service will fill the rest).
    std::vector<core::Peer> self_dir(id + 1);
    for (std::uint32_t i = 0; i <= id; ++i) {
      self_dir[i].id = i;
      self_dir[i].present = (i == id);
    }
    self_dir[id] = ev->certificate->to_peer();
    std::size_t slot = nodes.size();
    app_deliveries.emplace_back();
    nodes.push_back(std::make_unique<core::Node>(
        cfg, ids[id], self_dir, *transports.back(), rng.next(),
        [this, slot](const core::Node::Delivery& d) {
          if (!services[slot]->handle_delivery(d)) {
            app_deliveries[slot].push_back(d);
          }
        }));
    services.push_back(std::make_unique<MembershipService>(
        ca.public_key(), *nodes.back(), ca.now()));
    if (seed_roster_now) services.back()->bootstrap(ca.roster());
  }

  /// Re-seeds every service with the CA's current roster — models the
  /// CA-provided initial membership list each node gets (nodes added first
  /// only knew the roster as of their own join).
  void sync_roster() {
    for (auto& s : services) s->bootstrap(ca.roster());
  }

  void run_rounds(std::size_t rounds) {
    for (std::size_t r = 0; r < rounds; ++r) {
      for (auto& n : nodes) n->on_round();
      for (std::size_t i = 0; i < services.size(); ++i) {
        services[i]->on_round(ca.now());
      }
      for (int sweep = 0; sweep < 4; ++sweep) {
        for (auto& n : nodes) poll_node(*n);
      }
    }
  }
};

TEST(Service, JoinEventPropagatesThroughGossip) {
  TwoNodeFixture f;
  for (std::uint32_t id = 0; id < 4; ++id) f.add_node(id);
  f.sync_roster();
  f.run_rounds(3);
  // A fifth member joins; an existing member publishes the CA's event.
  auto id5 = crypto::Identity::generate(f.rng);
  auto ev = f.ca.authorize_join(4, 4, 4008, 4009, id5.sign_public(),
                                id5.dh_public());
  ASSERT_TRUE(ev.has_value());
  f.services[0]->publish(*ev);
  f.run_rounds(6);
  for (std::size_t i = 0; i < f.services.size(); ++i) {
    EXPECT_TRUE(f.services[i]->table().is_member(4, f.ca.now()))
        << "node " << i;
  }
}

TEST(Service, ExpelRemovesEverywhereAndAppDataStillFlows) {
  TwoNodeFixture f;
  for (std::uint32_t id = 0; id < 4; ++id) f.add_node(id);
  f.sync_roster();
  f.run_rounds(3);
  auto ev = *f.ca.expel(3);
  f.services[0]->publish(ev);
  f.run_rounds(6);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(f.services[i]->table().is_member(3, f.ca.now()));
  }
  // Application multicast still reaches the remaining members.
  util::Bytes data = {'h', 'i'};
  f.nodes[1]->multicast(util::ByteSpan(data));
  f.run_rounds(6);
  EXPECT_FALSE(f.app_deliveries[0].empty());
  EXPECT_FALSE(f.app_deliveries[2].empty());
  EXPECT_EQ(f.app_deliveries[0].back().msg.payload, data);
}

TEST(Service, ForgedEventsCountedAsRejected) {
  TwoNodeFixture f;
  for (std::uint32_t id = 0; id < 3; ++id) f.add_node(id);
  f.sync_roster();
  f.run_rounds(2);
  // Node 1 multicasts a self-signed (invalid) expel for node 2.
  auto forged = *f.ca.expel(2);  // valid content...
  forged.member_id = 0;          // ...tampered target
  f.services[1]->publish(forged);
  f.run_rounds(5);
  EXPECT_TRUE(f.services[0]->table().is_member(0, f.ca.now()));
  EXPECT_GT(f.services[0]->events_rejected(), 0u);
  // Re-admit 2 for cleanliness of the CA state (not strictly needed).
}

}  // namespace
}  // namespace drum::membership

namespace drum::membership {
namespace {

TEST(Service, CertRepublishLetsLateJoinerConverge) {
  // §10 piggybacking: a member that joins with an EMPTY roster (it got no
  // initial list) still converges, because existing members re-publish
  // their certificates through the multicast.
  TwoNodeFixture f;
  for (std::uint32_t id = 0; id < 3; ++id) f.add_node(id);
  f.sync_roster();
  // Existing members enable periodic republish of their own certificates.
  for (std::uint32_t id = 0; id < 3; ++id) {
    auto cert = f.ca.roster()[id];
    MembershipEvent ev;
    ev.type = EventType::kJoin;
    ev.member_id = cert.member_id;
    ev.cert_serial = cert.serial;
    ev.timestamp = 0;
    ev.certificate = cert;
    // Re-sign via the CA path: the original join event is equivalent; use
    // renew to get a freshly signed event.
    auto renewed = f.ca.renew(id);
    ASSERT_TRUE(renewed.has_value());
    f.services[id]->enable_cert_republish(*renewed, /*interval_rounds=*/2);
  }
  f.run_rounds(2);

  // Node 3 joins but gets NO initial roster: it knows nobody but itself.
  f.add_node(3, /*seed_roster_now=*/false);
  ASSERT_EQ(f.services[3]->table().size(), 0u);
  // Announce node 3 to the group so they gossip towards it.
  auto ev3 = f.ca.renew(3);
  ASSERT_TRUE(ev3.has_value());
  f.services[0]->publish(*ev3);
  f.services[3]->enable_cert_republish(*ev3, 2);

  f.run_rounds(10);
  // The late joiner has learned every member purely from gossip.
  EXPECT_EQ(f.services[3]->table().size(), 4u);
  for (std::uint32_t id = 0; id < 4; ++id) {
    EXPECT_TRUE(f.services[3]->table().is_member(id, f.ca.now())) << id;
  }
}

}  // namespace
}  // namespace drum::membership

#include "drum/membership/ca_server.hpp"
#include "drum/net/mem_transport.hpp"

namespace drum::membership {
namespace {

struct CaNetFixture {
  util::Rng rng{31};
  net::MemNetwork net;
  CertificationAuthority ca{rng, 500};
  std::unique_ptr<net::Transport> ca_tr;
  std::unique_ptr<CaServer> server;

  CaNetFixture() {
    ca_tr = net.transport(100);
    server = std::make_unique<CaServer>(ca, *ca_tr, 443);
  }
};

TEST(CaServer, JoinOverTheNetwork) {
  CaNetFixture f;
  auto client_tr = f.net.transport(1);
  auto id = crypto::Identity::generate(f.rng);
  CaClient client(*client_tr, net::Address{100, 443});
  client.send_join(1, 1, 4000, 4001, id);
  f.server->poll();
  auto result = client.poll();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->event.type, EventType::kJoin);
  EXPECT_TRUE(result->event.verify(f.ca.public_key()));
  EXPECT_EQ(result->event.member_id, 1u);
  ASSERT_EQ(result->roster.size(), 1u);
  EXPECT_EQ(result->roster[0].member_id, 1u);
  EXPECT_EQ(f.server->served(), 1u);

  // A second joiner receives a 2-member roster.
  auto client_tr2 = f.net.transport(2);
  auto id2 = crypto::Identity::generate(f.rng);
  CaClient client2(*client_tr2, net::Address{100, 443});
  client2.send_join(2, 2, 4002, 4003, id2);
  f.server->poll();
  auto result2 = client2.poll();
  ASSERT_TRUE(result2.has_value());
  EXPECT_EQ(result2->roster.size(), 2u);
}

TEST(CaServer, RejectsForgedProofOfPossession) {
  CaNetFixture f;
  auto client_tr = f.net.transport(1);
  auto honest = crypto::Identity::generate(f.rng);
  auto thief = crypto::Identity::generate(f.rng);
  // The thief tries to register the honest member's keys: it cannot produce
  // the proof signature. Build a request manually with mismatched proof.
  CaClient client(*client_tr, net::Address{100, 443});
  client.send_join(1, 1, 4000, 4001, honest);  // legitimate
  f.server->poll();
  ASSERT_TRUE(client.poll().has_value());

  // Now the thief re-registers id 2 with the honest keys but its own proof
  // signature: the request-level signature check must fail. (We emulate by
  // signing with the wrong identity via a raw datagram.)
  auto proof_bytes = join_request_proof_bytes(2, 2, 5000, 5001,
                                              honest.sign_public(),
                                              honest.dh_public());
  auto bad_proof = thief.sign(util::ByteSpan(proof_bytes));
  util::ByteWriter w;
  w.u8(1);  // kJoinRequest
  w.u32(2);
  w.u32(2);
  w.u16(5000);
  w.u16(5001);
  w.raw(util::ByteSpan(honest.sign_public().data(), 32));
  w.raw(util::ByteSpan(honest.dh_public().data(), 32));
  w.raw(util::ByteSpan(bad_proof.data(), bad_proof.size()));
  auto payload = w.take();
  f.net.send_raw(net::Address{9, 9}, net::Address{100, 443},
                 util::ByteSpan(payload));
  auto before = f.server->rejected();
  f.server->poll();
  EXPECT_EQ(f.server->rejected(), before + 1);
  EXPECT_FALSE(f.ca.roster().size() > 1);
}

TEST(CaServer, LeaveOverTheNetworkAndGarbageTolerance) {
  CaNetFixture f;
  auto client_tr = f.net.transport(1);
  auto id = crypto::Identity::generate(f.rng);
  CaClient client(*client_tr, net::Address{100, 443});
  client.send_join(1, 1, 4000, 4001, id);
  f.server->poll();
  ASSERT_TRUE(client.poll().has_value());

  // Garbage at the CA port must not crash or corrupt it.
  util::Bytes junk = {1, 2, 3};
  f.net.send_raw(net::Address{9, 9}, net::Address{100, 443},
                 util::ByteSpan(junk));
  f.server->poll();

  client.send_leave(1, id);
  f.server->poll();
  client.poll();
  ASSERT_TRUE(client.leave_event().has_value());
  EXPECT_EQ(client.leave_event()->type, EventType::kLeave);
  EXPECT_TRUE(client.leave_event()->verify(f.ca.public_key()));
  EXPECT_EQ(f.ca.roster().size(), 0u);

  // A leave for a non-member is refused with an error.
  client.send_leave(42, id);
  f.server->poll();
  client.poll();
  EXPECT_FALSE(client.last_error().empty());
}

}  // namespace
}  // namespace drum::membership

namespace drum::membership {
namespace {

// §10: "The membership protocol might suffer a DoS attack ... This is
// resolved by the mere fact that the dynamic membership protocol operates
// using Drum's multicast protocol as its transport layer."
// We stage the attack with the fixture nodes and check a join event still
// reaches everyone within a handful of rounds.
TEST(Service, MembershipEventsPropagateUnderDoS) {
  TwoNodeFixture f;
  for (std::uint32_t id = 0; id < 6; ++id) f.add_node(id);
  f.sync_roster();
  f.run_rounds(2);

  // Attack: flood the well-known ports of half the members (including the
  // publisher, node 0) with fabricated control messages every round.
  auto flood = [&](std::uint32_t victim, int per_round) {
    util::Bytes junk_pull = {static_cast<std::uint8_t>(
        core::MsgType::kPullRequest), 0, 0, 0};
    util::Bytes junk_offer = {static_cast<std::uint8_t>(
        core::MsgType::kPushOffer), 0, 0, 0};
    for (int i = 0; i < per_round / 2; ++i) {
      f.net.send_raw(net::Address{666, 1},
                     net::Address{victim,
                                  static_cast<std::uint16_t>(4000 + 2 * victim)},
                     util::ByteSpan(junk_pull));
      f.net.send_raw(net::Address{666, 1},
                     net::Address{victim,
                                  static_cast<std::uint16_t>(4001 + 2 * victim)},
                     util::ByteSpan(junk_offer));
    }
  };

  // Admit a 7th member; node 0 (attacked) publishes the event.
  auto id7 = crypto::Identity::generate(f.rng);
  auto ev = f.ca.authorize_join(6, 6, 4012, 4013, id7.sign_public(),
                                id7.dh_public());
  ASSERT_TRUE(ev.has_value());

  // Run rounds with the flood injected before every round.
  f.services[0]->publish(*ev);
  std::size_t converged_at = 1000;
  for (std::size_t r = 0; r < 25; ++r) {
    for (std::uint32_t v = 0; v < 3; ++v) flood(v, 128);
    f.run_rounds(1);
    bool all = true;
    for (auto& s : f.services) {
      all = all && s->table().is_member(6, f.ca.now());
    }
    if (all) {
      converged_at = r;
      break;
    }
  }
  // Drum-borne membership converges despite the attack on the publisher.
  EXPECT_LT(converged_at, 20u);
}

}  // namespace
}  // namespace drum::membership
