// The event-driven runtime seam: EventLoop readiness/timer semantics and
// ReactorRuntime multiplexing many nodes over one loop (DESIGN.md §8).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "drum/net/event_loop.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/net/udp_transport.hpp"
#include "drum/check/annotations.hpp"
#include "drum/runtime/reactor.hpp"

namespace drum::runtime {
namespace {

using namespace std::chrono_literals;
using Clock = net::EventLoop::Clock;

bool eventually(const std::function<bool()>& cond,
                std::chrono::milliseconds deadline) {
  auto end = Clock::now() + deadline;
  while (Clock::now() < end) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

/// Runs an EventLoop on its own thread for the test's lifetime.
struct LoopFixture {
  net::EventLoop loop;
  std::thread thread;

  LoopFixture() : thread([this] { loop.run(); }) {}
  ~LoopFixture() {
    loop.stop();
    thread.join();
  }
};

TEST(EventLoop, TimerFiresAtDeadline) {
  LoopFixture f;
  std::atomic<int> fired{0};
  f.loop.add_timer_in(20ms, [&] { fired.fetch_add(1); });
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }, 2000ms));
  // One-shot: it must not fire again.
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(fired.load(), 1);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  LoopFixture f;
  check::Mutex mu;
  std::vector<int> order;
  auto at = Clock::now() + 30ms;
  f.loop.add_timer(at + 20ms, [&] {
    check::MutexLock l(mu);
    order.push_back(3);
  });
  f.loop.add_timer(at, [&] {
    check::MutexLock l(mu);
    order.push_back(1);
  });
  f.loop.add_timer(at + 10ms, [&] {
    check::MutexLock l(mu);
    order.push_back(2);
  });
  EXPECT_TRUE(eventually(
      [&] {
        check::MutexLock l(mu);
        return order.size() == 3;
      },
      2000ms));
  check::MutexLock l(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  LoopFixture f;
  std::atomic<int> fired{0};
  auto id = f.loop.add_timer_in(50ms, [&] { fired.fetch_add(1); });
  f.loop.cancel_timer(id);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(fired.load(), 0);
}

TEST(EventLoop, PostRunsOnLoopThread) {
  LoopFixture f;
  std::atomic<bool> ran{false};
  std::thread::id loop_tid;
  f.loop.post([&] {
    loop_tid = std::this_thread::get_id();
    ran.store(true);
  });
  EXPECT_TRUE(eventually([&] { return ran.load(); }, 2000ms));
  EXPECT_EQ(loop_tid, f.thread.get_id());
}

TEST(EventLoop, MemSocketReadinessWakesLoop) {
  net::MemNetwork mem;
  auto tr = mem.transport(1);
  auto sock = tr->bind(100).take();
  ASSERT_NE(sock, nullptr);

  LoopFixture f;
  std::atomic<int> drained{0};
  f.loop.add_socket(*sock, [&] {
    while (sock->recv()) drained.fetch_add(1);
  });

  util::Bytes msg{1, 2, 3};
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));
  EXPECT_TRUE(eventually([&] { return drained.load() == 1; }, 2000ms));
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));
  EXPECT_TRUE(eventually([&] { return drained.load() == 3; }, 2000ms));
}

TEST(EventLoop, CatchesUpDatagramsDeliveredBeforeRegistration) {
  net::MemNetwork mem;
  auto tr = mem.transport(1);
  auto sock = tr->bind(100).take();
  util::Bytes msg{42};
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));  // before add_socket

  LoopFixture f;
  std::atomic<int> drained{0};
  f.loop.add_socket(*sock, [&] {
    while (sock->recv()) drained.fetch_add(1);
  });
  EXPECT_TRUE(eventually([&] { return drained.load() == 1; }, 2000ms));
}

TEST(EventLoop, UdpSocketReadinessViaEpoll) {
  net::UdpTransport tr;
  auto rx = tr.bind(0).take();
  auto tx = tr.bind(0).take();
  ASSERT_TRUE(rx && tx);

  LoopFixture f;
  std::atomic<int> drained{0};
  f.loop.add_socket(*rx, [&] {
    net::Datagram batch[16];
    for (;;) {
      std::size_t n = rx->recv_batch(batch, 16);
      drained.fetch_add(static_cast<int>(n));
      if (n == 0) break;
    }
  });

  util::Bytes msg{7, 7};
  tx->send(rx->local(), util::ByteSpan(msg));
  EXPECT_TRUE(eventually([&] { return drained.load() == 1; }, 2000ms));
  // Edge-triggered: each new datagram must produce a fresh wakeup.
  tx->send(rx->local(), util::ByteSpan(msg));
  EXPECT_TRUE(eventually([&] { return drained.load() == 2; }, 2000ms));
}

TEST(EventLoop, RemovedSocketStopsDispatching) {
  net::MemNetwork mem;
  auto tr = mem.transport(1);
  auto sock = tr->bind(100).take();

  LoopFixture f;
  std::atomic<int> wakes{0};
  auto id = f.loop.add_socket(*sock, [&] { wakes.fetch_add(1); });
  util::Bytes msg{1};
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));
  EXPECT_TRUE(eventually([&] { return wakes.load() >= 1; }, 2000ms));

  f.loop.remove_socket(id);
  int settled = wakes.load();
  mem.send_raw({9, 9}, {1, 100}, util::ByteSpan(msg));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(wakes.load(), settled);
}

// The tick-drift regression (satellite of DESIGN.md §8): re-arming a
// periodic timer from the *previous deadline* keeps the period exact even
// when every callback burns real time; re-arming from "now" (the old
// NodeRunner behavior) stretches the period by the per-tick slop. Ten
// 30 ms periods with ~10 ms of work per tick: drift-free finishes in
// ~300 ms, the drifting variant needed >= 400 ms.
constexpr int kDriftTicks = 10;
constexpr auto kDriftPeriod = 30ms;

TEST(EventLoop, AbsoluteReArmDoesNotAccumulateDrift) {
  LoopFixture f;
  std::atomic<int> fired{0};
  std::atomic<std::int64_t> done_us{0};
  const auto start = Clock::now();

  struct Chain {
    net::EventLoop* loop;
    Clock::time_point deadline;
    std::atomic<int>* fired;
    std::atomic<std::int64_t>* done_us;
    Clock::time_point start;

    void fire() {
      std::this_thread::sleep_for(10ms);  // simulated round work
      int n = fired->fetch_add(1) + 1;
      if (n < kDriftTicks) {
        deadline += kDriftPeriod;  // from the previous deadline, not now
        loop->add_timer(deadline, [this] { fire(); });
      } else {
        done_us->store(std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count());
      }
    }
  };
  Chain chain{&f.loop, start + kDriftPeriod, &fired, &done_us, start};
  f.loop.add_timer(chain.deadline, [&chain] { chain.fire(); });

  EXPECT_TRUE(
      eventually([&] { return fired.load() == kDriftTicks; }, 5000ms));
  const double elapsed_ms = static_cast<double>(done_us.load()) / 1000.0;
  EXPECT_GE(elapsed_ms, 295.0);  // can't finish before the last deadline
  EXPECT_LT(elapsed_ms, 395.0);  // drifting re-arm needed >= 400 ms
}

/// A reactor-hosted fleet of real nodes (mirrors runtime_test's Fleet).
struct ReactorFleet {
  util::Rng rng{31};
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::unique_ptr<ReactorRuntime> reactor;
  std::atomic<int> delivered{0};

  ReactorFleet(std::size_t n, bool udp, std::uint16_t base_port,
               ReactorConfig rc) {
    const std::uint32_t udp_host = net::parse_ipv4("127.0.0.1");
    dir.resize(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      ids.push_back(crypto::Identity::generate(rng));
      dir[id] = {id,
                 udp ? udp_host : id,
                 static_cast<std::uint16_t>(base_port + 2 * id),
                 static_cast<std::uint16_t>(base_port + 2 * id + 1),
                 0,
                 ids[id].sign_public(),
                 ids[id].dh_public(),
                 true};
    }
    reactor = std::make_unique<ReactorRuntime>(rc);
    for (std::uint32_t id = 0; id < n; ++id) {
      transports.push_back(
          udp ? std::unique_ptr<net::Transport>(
                    std::make_unique<net::UdpTransport>(udp_host))
              : net.transport(id));
      core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
      cfg.wk_pull_port = dir[id].wk_pull_port;
      cfg.wk_offer_port = dir[id].wk_offer_port;
      nodes.push_back(std::make_unique<core::Node>(
          cfg, ids[id], dir, *transports.back(), rng.next(),
          [this](const core::Node::Delivery&) { delivered.fetch_add(1); }));
      reactor->add_node(*nodes.back(), rng.next());
    }
  }
};

ReactorConfig fast_config(std::size_t workers) {
  ReactorConfig rc;
  rc.round = 60ms;
  rc.workers = workers;
  return rc;
}

TEST(Reactor, DisseminationOverMemNetworkWithWorkerPool) {
  ReactorFleet f(6, false, 9300, fast_config(2));
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("live"), 4));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 5; }, 5000ms));
  f.reactor->stop();
  EXPECT_EQ(f.delivered.load(), 5);
}

TEST(Reactor, DisseminationOverMemNetworkInlineDispatch) {
  ReactorFleet f(5, false, 9400, fast_config(0));
  f.reactor->start();
  f.reactor->multicast(2, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("inl"), 3));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 4; }, 5000ms));
  f.reactor->stop();
}

TEST(Reactor, DisseminationOverUdp) {
  ReactorFleet f(5, true, 28000, fast_config(1));
  f.reactor->start();
  f.reactor->multicast(1, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("udp"), 3));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 4; }, 5000ms));
  f.reactor->stop();
}

TEST(Reactor, StopDetachesAndRestartWorks) {
  ReactorFleet f(4, false, 9500, fast_config(1));
  f.reactor->start();
  f.reactor->stop();
  f.reactor->stop();  // idempotent
  EXPECT_FALSE(f.reactor->running());
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("x"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.reactor->stop();
}

TEST(Reactor, RoundTicksTrackConfiguredRoundWithoutDrift) {
  ReactorConfig rc;
  rc.round = 50ms;
  rc.jitter = 0.0;  // deterministic period: interval spread is pure slop
  rc.workers = 0;
  ReactorFleet f(4, false, 9600, rc);
  f.reactor->start();
  std::this_thread::sleep_for(1050ms);
  f.reactor->stop();

  const auto& reg = f.nodes[0]->registry();
  const auto ticks = reg.counter_value("runner.ticks");
  // Drift-free absolute deadlines: ~20 ticks of 50 ms in 1.05 s. The old
  // sleep-polling runner re-armed from now(), losing its poll interval each
  // tick; heavy load can still delay the loop, so the lower bound is loose.
  EXPECT_GE(ticks, 15u);
  EXPECT_LE(ticks, 22u);
  const double mean_us = reg.histogram_mean("runner.tick_interval_us");
  EXPECT_GE(mean_us, 47'000.0);
  EXPECT_LT(mean_us, 60'000.0);
  // Dispatch latency was recorded for every tick.
  EXPECT_EQ(reg.histogram_count("reactor.dispatch_us"), ticks);
}

TEST(Reactor, RegistryCountersReflectProgress) {
  ReactorFleet f(4, false, 9700, fast_config(1));
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("s"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.reactor->stop();

  // Deliveries are readiness-driven, so they can all land before any round
  // ticks — only the delivered totals are guaranteed here.
  std::uint64_t delivered = 0;
  for (const auto& node : f.nodes) {
    delivered += node->registry().counter_value("node.delivered");
  }
  EXPECT_GE(delivered, 3u);
}

TEST(Reactor, LoopTelemetryIsRecorded) {
  ReactorFleet f(4, false, 9800, fast_config(0));
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("t"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.reactor->stop();

  const auto& reg = f.reactor->loop_registry();
  EXPECT_GT(reg.counter_value("loop.wakeups"), 0u);
  EXPECT_GT(reg.counter_value("loop.timers_fired"), 0u);
  EXPECT_GT(reg.histogram_count("loop.timer_slop_us"), 0u);
}

// ---- sharded mode (DESIGN.md §13) --------------------------------------

ReactorConfig sharded_config(std::size_t shards) {
  ReactorConfig rc;
  rc.round = 60ms;
  rc.shards = shards;
  return rc;
}

TEST(Reactor, ShardCountResolution) {
  // shards == 1 is the legacy single-loop shape.
  ReactorFleet one(2, false, 8300, fast_config(1));
  one.reactor->start();
  EXPECT_EQ(one.reactor->shard_count(), 1u);
  one.reactor->stop();

  // shards == 0 auto-resolves to the core count (>= 1 on any host).
  ReactorFleet an(2, false, 8400, sharded_config(0));
  an.reactor->start();
  EXPECT_GE(an.reactor->shard_count(), 1u);
  an.reactor->stop();

  // An explicit count is honored even above the core count (this host may
  // have a single CPU; the sharded path must still be exercisable).
  ReactorFleet two(4, false, 8500, sharded_config(2));
  two.reactor->start();
  EXPECT_EQ(two.reactor->shard_count(), 2u);
  two.reactor->stop();
}

TEST(Reactor, ShardedDisseminationOverMemNetwork) {
  // 5 nodes over 2 shards: node ids alternate shards (id % 2), so the
  // source's gossip partners mostly live on the other shard and every
  // delivery exercises the SPSC handoff path.
  ReactorFleet f(5, false, 8600, sharded_config(2));
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("shrd"), 4));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 4; }, 5000ms));
  f.reactor->stop();
  EXPECT_EQ(f.delivered.load(), 4);
}

TEST(Reactor, ShardedDisseminationOverUdp) {
  ReactorFleet f(4, true, 28200, sharded_config(2));
  f.reactor->start();
  f.reactor->multicast(1, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("su"), 2));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.reactor->stop();
}

TEST(Reactor, ShardedStopAndRestart) {
  ReactorFleet f(4, false, 8700, sharded_config(2));
  f.reactor->start();
  f.reactor->stop();
  f.reactor->stop();  // idempotent
  EXPECT_FALSE(f.reactor->running());
  f.reactor->start();  // rebuilds the shard set + handoff mesh
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("r"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.reactor->stop();
}

TEST(Reactor, ShardedTelemetryMergedIntoLoopRegistry) {
  ReactorFleet f(6, false, 8800, sharded_config(2));
  f.reactor->start();
  f.reactor->multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("m"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 5; }, 5000ms));
  f.reactor->stop();

  // stop() folds each shard's registry into loop_registry(), so the merged
  // view carries both the per-shard loop counters and the handoff
  // telemetry. Dissemination from node 0 to the odd-id shard cannot happen
  // without at least one cross-shard ring handoff, and every handoff is
  // executed as part of a batch.
  const auto& reg = f.reactor->loop_registry();
  EXPECT_EQ(reg.gauge_value("reactor.shards"), 2.0);
  EXPECT_GT(reg.counter_value("reactor.shard.ring_handoffs"), 0u);
  EXPECT_GT(reg.counter_value("reactor.shard.batches"), 0u);
  EXPECT_GT(reg.counter_value("loop.wakeups"), 0u);
}

}  // namespace
}  // namespace drum::runtime
