// Tests for the numerical analysis engine (paper §6 and Appendices A-C):
// checks the published closed-form properties (Lemma 8's p_u > 0.6, the
// p_a < F/x bound, the paper's quoted Pull stuck-probabilities, monotonicity
// in x and alpha) and internal consistency of the Markov recursions.
#include <gtest/gtest.h>

#include <cmath>

#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"
#include "drum/analysis/appendix_c.hpp"
#include "drum/analysis/asymptotics.hpp"
#include "drum/analysis/binomial.hpp"

namespace drum::analysis {
namespace {

// -------------------------------------------------------------- binomial

TEST(Binomial, ChooseMatchesSmallCases) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(Binomial, PmfSumsToOne) {
  for (double p : {0.0, 0.01, 0.3, 0.5, 0.99, 1.0}) {
    auto pmf = binom_pmf_vector(200, p);
    double sum = 0;
    for (double v : pmf) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(Binomial, PmfMatchesDirectComputation) {
  // Bin(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
  auto pmf = binom_pmf_vector(4, 0.5);
  EXPECT_NEAR(pmf[0], 1.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[1], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[2], 6.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[3], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[4], 1.0 / 16, 1e-12);
  EXPECT_EQ(binom_pmf(10, 11, 0.5), 0.0);
}

// -------------------------------------------------------- Appendix A

TEST(AppendixA, PuExceeds06ForAllF) {
  // Paper Lemma 8 + Fig. 1(a): p_u > 0.6 for every F >= 1.
  for (std::size_t f = 1; f <= 16; ++f) {
    double pu = p_u(1000, f);
    EXPECT_GT(pu, 0.6) << "F=" << f;
    EXPECT_LE(pu, 1.0);
  }
}

TEST(AppendixA, PuGrowsWithF) {
  // More acceptance slots, easier acceptance (Fig. 1(a) trend).
  double prev = 0;
  for (std::size_t f : {1u, 2u, 4u, 8u, 16u}) {
    double pu = p_u(1000, f);
    EXPECT_GT(pu, prev);
    prev = pu;
  }
}

TEST(AppendixA, PaBelowFOverX) {
  // Paper's coarse bound p_a < F/x (§6).
  for (double x : {8.0, 32.0, 128.0, 360.0}) {
    double pa = p_a(1000, 4, x);
    EXPECT_LT(pa, 4.0 / x) << "x=" << x;
    EXPECT_GT(pa, 0.0);
  }
}

TEST(AppendixA, PaDecreasesInX) {
  double prev = 1.0;
  for (double x : {0.0, 8.0, 16.0, 64.0, 256.0}) {
    double pa = p_a(120, 4, x);
    EXPECT_LT(pa, prev + 1e-12);
    prev = pa;
  }
}

TEST(AppendixA, PaAtZeroEqualsPu) {
  EXPECT_NEAR(p_a(500, 4, 0.0), p_u(500, 4), 1e-12);
}

// -------------------------------------------------------- Appendix B

TEST(AppendixB, PaperQuotedStuckProbabilities) {
  // §7.2: with F = 4 and x = 128, P[M stays at source for 5, 10, 15 rounds]
  // is 0.54, 0.3, 0.16 respectively (n = 1000).
  EXPECT_NEAR(pull_stuck_probability(1000, 4, 128, 5), 0.54, 0.02);
  EXPECT_NEAR(pull_stuck_probability(1000, 4, 128, 10), 0.30, 0.02);
  EXPECT_NEAR(pull_stuck_probability(1000, 4, 128, 15), 0.16, 0.02);
}

TEST(AppendixB, PaperQuotedStd) {
  // §7.2: numerical calculation of p̃ with F = 4, x = 128 yields an STD of
  // 8.17 rounds for the rounds-to-leave-source.
  EXPECT_NEAR(pull_std_rounds_to_leave_source(1000, 4, 128), 8.17, 0.15);
}

TEST(AppendixB, NoAttackEscapesQuickly) {
  // Without an attack every read is valid, so M leaves the source in the
  // first round a request arrives.
  double p = p_tilde(1000, 4, 0.0);
  double p_any_request = 1.0 - std::pow(1.0 - 4.0 / 999.0, 999.0);
  EXPECT_NEAR(p, p_any_request, 1e-9);
}

TEST(AppendixB, EscapeRoundsGrowLinearlyInX) {
  // Lemma 6 / Corollary 2: expected escape time is Ω(x).
  double r32 = pull_expected_rounds_to_leave_source(1000, 4, 32);
  double r64 = pull_expected_rounds_to_leave_source(1000, 4, 64);
  double r128 = pull_expected_rounds_to_leave_source(1000, 4, 128);
  EXPECT_NEAR(r64 / r32, 2.0, 0.3);
  EXPECT_NEAR(r128 / r64, 2.0, 0.3);
}

// -------------------------------------------------------- Appendix C

TEST(AppendixC, ChannelProbabilitiesSane) {
  DetailedParams p;
  p.protocol = Protocol::kDrum;
  p.n = 120;
  p.b = 12;
  p.alpha = 0.1;
  p.x = 128;
  auto probs = channel_probabilities(p);
  // Discard probabilities are probabilities.
  for (double d : {probs.d_push_u, probs.d_push_a, probs.d_pull_u,
                   probs.d_pull_a}) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // Attack makes discarding (much) more likely.
  EXPECT_GT(probs.d_push_a, probs.d_push_u + 0.5);
  EXPECT_GT(probs.d_pull_a, probs.d_pull_u + 0.5);
  // Delivery probabilities shrink accordingly.
  EXPECT_LT(probs.p_push_a, probs.p_push_u);
  EXPECT_LT(probs.p_pull_a, probs.p_pull_u);
}

TEST(AppendixC, CoverageMonotoneAndReachesOne) {
  DetailedParams p;
  p.protocol = Protocol::kPush;
  p.n = 120;
  p.b = 0;
  p.loss = 0.01;
  auto curve = expected_coverage(p, 30);
  ASSERT_EQ(curve.size(), 31u);
  EXPECT_NEAR(curve[0], 1.0 / 120.0, 1e-12);
  for (std::size_t r = 1; r < curve.size(); ++r) {
    EXPECT_GE(curve[r], curve[r - 1] - 1e-12);
  }
  EXPECT_GT(curve.back(), 0.999);
}

TEST(AppendixC, AllProtocolsSimilarWithoutAttack) {
  // §7.2: "the three protocols perform virtually the same without DoS
  // attacks" (Drum is slightly slower due to its strict per-channel bounds).
  std::size_t horizon = 40;
  DetailedParams p;
  p.n = 120;
  p.b = 12;
  std::size_t drum_r, push_r, pull_r;
  p.protocol = Protocol::kDrum;
  drum_r = rounds_to_coverage(p, 0.99, horizon);
  p.protocol = Protocol::kPush;
  push_r = rounds_to_coverage(p, 0.99, horizon);
  p.protocol = Protocol::kPull;
  pull_r = rounds_to_coverage(p, 0.99, horizon);
  EXPECT_LE(drum_r, push_r + 4);
  EXPECT_LE(drum_r, pull_r + 4);
  EXPECT_LT(drum_r, 15u);
}

TEST(AppendixC, DrumBoundedInXWhilePushPullDegrade) {
  // The paper's headline claim (Fig. 3(a), Lemma 1 vs Corollaries 1-2) as
  // reproduced by the detailed analysis: alpha = 10%, increasing x.
  DetailedParams p;
  p.n = 120;
  p.b = 12;
  p.alpha = 0.1;
  std::size_t horizon = 150;

  auto rounds = [&](Protocol proto, double x) {
    p.protocol = proto;
    p.x = x;
    return rounds_to_coverage(p, 0.99, horizon);
  };

  std::size_t drum32 = rounds(Protocol::kDrum, 32);
  std::size_t drum128 = rounds(Protocol::kDrum, 128);
  EXPECT_LE(drum128, drum32 + 2);  // bounded in x

  std::size_t push32 = rounds(Protocol::kPush, 32);
  std::size_t push128 = rounds(Protocol::kPush, 128);
  EXPECT_GT(push128, push32 + 5);  // grows roughly linearly

  std::size_t pull32 = rounds(Protocol::kPull, 32);
  std::size_t pull128 = rounds(Protocol::kPull, 128);
  EXPECT_GT(pull128, pull32 + 5);

  // And Drum beats both baselines under the strong attack.
  EXPECT_LT(drum128 + 5, push128);
  EXPECT_LT(drum128 + 5, pull128);
}

TEST(AppendixC, CrashesDegradeGracefully) {
  // Fig. 2(b): crash failures have mild impact.
  DetailedParams p;
  p.protocol = Protocol::kDrum;
  p.n = 120;
  std::size_t horizon = 60;
  p.b = 0;
  auto r0 = rounds_to_coverage(p, 0.99, horizon);
  p.b = 36;  // 30% crashed
  auto r30 = rounds_to_coverage(p, 0.99, horizon);
  EXPECT_LE(r30, r0 + 3);
}

TEST(AppendixC, RejectsBadParams) {
  DetailedParams p;
  p.n = 2;
  EXPECT_THROW(channel_probabilities(p), std::invalid_argument);
  p.n = 100;
  p.b = 100;
  EXPECT_THROW(channel_probabilities(p), std::invalid_argument);
  p.b = 10;
  p.alpha = 1.0;  // 100 attacked > 90 correct
  p.x = 10;
  EXPECT_THROW(expected_coverage(p, 5), std::invalid_argument);
}

// ------------------------------------------------------ §6 asymptotics

TEST(Asymptotics, DrumFansBoundedBelowInX) {
  // Lemma 1: for fixed alpha < 1, Drum's effective fans are bounded below by
  // a constant independent of x.
  const double floor_non_attacked =
      4.0 * (2 - 0.1) / 2 * 0.6;  // F * (2-alpha)/2 * 0.6 < O^u
  for (double x : {32.0, 128.0, 512.0, 4096.0}) {
    auto fans = drum_effective_fans(1000, 4, 0.1, x);
    EXPECT_GT(fans.non_attacked, floor_non_attacked * 0.9) << "x=" << x;
    EXPECT_GT(fans.attacked, 4.0 * (1 - 0.1) / 2 * 0.6 * 0.9) << "x=" << x;
  }
}

TEST(Asymptotics, DrumFansDecreaseWithAlphaUnderStrongAttack) {
  // Lemma 2: for c > 5 the fans decrease monotonically in alpha, so the
  // attacker gains nothing by concentrating.
  const std::size_t n = 1000, f = 4;
  const double c = 10;  // B = c * F * n
  double prev_att = 1e9, prev_non = 1e9;
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    double x = c * static_cast<double>(f) / alpha;
    auto fans = drum_effective_fans(n, f, alpha, x);
    EXPECT_LT(fans.attacked, prev_att);
    EXPECT_LT(fans.non_attacked, prev_non);
    prev_att = fans.attacked;
    prev_non = fans.non_attacked;
  }
}

TEST(Asymptotics, PushLowerBoundLinearInX) {
  // Corollary 1.
  double b32 = push_propagation_lower_bound(1000, 4, 0.1, 32);
  double b128 = push_propagation_lower_bound(1000, 4, 0.1, 128);
  double b512 = push_propagation_lower_bound(1000, 4, 0.1, 512);
  EXPECT_GT(b128, 2.5 * b32);
  EXPECT_GT(b512, 2.5 * b128);
}

TEST(Asymptotics, PullEscapeLinearInX) {
  double e64 = pull_source_escape_rounds(1000, 4, 64);
  double e256 = pull_source_escape_rounds(1000, 4, 256);
  EXPECT_NEAR(e256 / e64, 4.0, 0.8);
}

}  // namespace
}  // namespace drum::analysis

namespace drum::analysis {
namespace {

TEST(AppendixC, SplitCoverageMatchesFig6Shape) {
  // Fig. 6: Push reaches non-attacked processes fast but attacked ones
  // slowly; Drum reaches both fast. The two-population analysis reproduces
  // this directly.
  DetailedParams p;
  p.n = 120;
  p.b = 12;
  p.alpha = 0.1;
  p.x = 128;

  p.protocol = Protocol::kPush;
  auto push = expected_coverage_split(p, 60);
  p.protocol = Protocol::kDrum;
  auto drum = expected_coverage_split(p, 60);

  auto rounds_to = [](const std::vector<double>& v, double thr) {
    for (std::size_t r = 0; r < v.size(); ++r) {
      if (v[r] >= thr) return r;
    }
    return v.size();
  };
  // Push: big gap between populations.
  auto push_non = rounds_to(push.non_attacked, 0.95);
  auto push_att = rounds_to(push.attacked, 0.95);
  EXPECT_GT(push_att, push_non * 3);
  // Drum: small gap, and attacked coverage far faster than Push's.
  auto drum_att = rounds_to(drum.attacked, 0.95);
  auto drum_non = rounds_to(drum.non_attacked, 0.95);
  EXPECT_LE(drum_att, drum_non + 4);
  EXPECT_LT(drum_att * 2, push_att);
  // Sanity: curves are monotone and within [0,1].
  for (const auto* curve : {&push.non_attacked, &push.attacked,
                            &drum.non_attacked, &drum.attacked}) {
    for (std::size_t r = 0; r < curve->size(); ++r) {
      ASSERT_GE((*curve)[r], 0.0);
      ASSERT_LE((*curve)[r], 1.0 + 1e-9);
      if (r) {
        ASSERT_GE((*curve)[r], (*curve)[r - 1] - 1e-9);
      }
    }
  }
  // Consistency with the combined curve: weighted average reconstructs it.
  p.protocol = Protocol::kDrum;
  auto combined = expected_coverage(p, 60);
  double na = 12, nu = 96;  // alpha*n attacked, rest of 108 correct
  for (std::size_t r = 0; r < combined.size(); ++r) {
    double reconstructed =
        (drum.non_attacked[r] * nu + drum.attacked[r] * na) / (nu + na);
    ASSERT_NEAR(combined[r], reconstructed, 1e-9) << "round " << r;
  }
}

TEST(AppendixC, SplitCoverageRequiresAttack) {
  DetailedParams p;
  p.n = 120;
  EXPECT_THROW(expected_coverage_split(p, 10), std::invalid_argument);
}

}  // namespace
}  // namespace drum::analysis
