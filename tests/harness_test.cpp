// Integration tests: real protocol nodes gossiping over the in-memory (and
// real UDP) transports via the measurement harness — dissemination,
// deduplication, resource bounds under flood, the §9 ablations, and the
// headline Drum-vs-Push/Pull DoS behaviour, all with the full wire protocol,
// port boxes, and signatures.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "drum/harness/cluster.hpp"
#include "drum/harness/swarm.hpp"

namespace drum::harness {
namespace {

ClusterConfig small_config(core::Variant v) {
  ClusterConfig cfg;
  cfg.variant = v;
  cfg.n = 20;
  cfg.malicious_fraction = 0.1;
  cfg.round_us = 10'000;  // virtual time: speed is CPU-bound, not wall-bound
  cfg.rate = 4;
  cfg.seed = 42;
  return cfg;
}

// Runs warmup + a measured window; returns the cluster for inspection.
std::unique_ptr<Cluster> run_scenario(const ClusterConfig& cfg,
                                      double warmup_rounds = 5,
                                      double measured_rounds = 25) {
  auto cluster = std::make_unique<Cluster>(cfg);
  cluster->run_rounds(warmup_rounds, /*workload=*/true);
  cluster->begin_measurement();
  cluster->run_rounds(measured_rounds, /*workload=*/true);
  cluster->end_measurement();
  // Drain in-flight messages so per-message completion is observed.
  cluster->run_rounds(15, /*workload=*/false);
  return cluster;
}

TEST(Cluster, DrumDisseminatesToEveryone) {
  auto cluster = run_scenario(small_config(core::Variant::kDrum));
  const auto& m = cluster->metrics();
  EXPECT_GT(m.messages_sent, 50u);
  // Nearly every message reached >= 99% of correct receivers.
  EXPECT_GT(m.messages_completed, m.messages_sent * 8 / 10);
  // Propagation takes a handful of rounds, as in the paper (~5).
  EXPECT_LT(m.propagation_rounds.mean(), 10.0);
  EXPECT_GE(m.propagation_rounds.mean(), 2.0);
}

TEST(Cluster, PushAndPullAlsoWorkWithoutAttack) {
  for (auto v : {core::Variant::kPush, core::Variant::kPull}) {
    auto cluster = run_scenario(small_config(v));
    const auto& m = cluster->metrics();
    EXPECT_GT(m.messages_completed, m.messages_sent * 7 / 10)
        << core::variant_name(v);
  }
}

TEST(Cluster, SignaturesVerifiedEndToEnd) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.verify_signatures = true;
  auto cluster = run_scenario(cfg, 3, 10);
  auto all = cluster->merged_registry();
  EXPECT_GT(all.counter_value("node.delivered"), 100u);
  // Honest traffic always verifies.
  EXPECT_EQ(all.counter_value("node.sig_failures"), 0u);
  // Every node delivered each message at most once.
  EXPECT_GT(all.counter_value("node.duplicates"), 0u);
}

TEST(Cluster, FloodIsReadBoundedAndDiscarded) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.alpha = 0.2;
  cfg.x = 100;
  auto cluster = run_scenario(cfg, 3, 15);
  auto all = cluster->merged_registry();
  // The flood shows up as box failures (type-correct garbage) and as
  // unread datagrams flushed at round ends — not as deliveries.
  EXPECT_GT(all.counter_value("node.box_failures"), 100u);
  EXPECT_GT(all.counter_value("node.flushed_unread"), 500u);
  EXPECT_EQ(all.counter_value("node.sig_failures"), 0u);
  // And the protocol still works.
  EXPECT_GT(cluster->metrics().messages_completed, 0u);
}

TEST(Cluster, DrumThroughputSurvivesTargetedAttack) {
  // Paper Fig. 10(a): Drum's throughput is roughly unaffected by x.
  auto base_cfg = small_config(core::Variant::kDrum);
  base_cfg.verify_signatures = false;  // CPU: see EXPERIMENTS.md
  auto baseline = run_scenario(base_cfg);
  double base_tp = baseline->metrics().mean_throughput_msgs_per_sec();

  auto attack_cfg = base_cfg;
  attack_cfg.alpha = 0.1;
  attack_cfg.x = 128;
  auto attacked = run_scenario(attack_cfg);
  double att_tp = attacked->metrics().mean_throughput_msgs_per_sec();

  ASSERT_GT(base_tp, 0.0);
  EXPECT_GT(att_tp, base_tp * 0.7);
}

TEST(Cluster, PullThroughputCollapsesUnderTargetedAttack) {
  // Paper Fig. 10(a): Pull's throughput decreases dramatically with x —
  // the attacked source serves almost no pull-requests, so messages purge
  // before they can be pulled. Needs a generation rate near the drain
  // limit, as in the paper's 40 msg/round workload.
  auto base_cfg = small_config(core::Variant::kPull);
  base_cfg.verify_signatures = false;
  base_cfg.rate = 30;
  auto baseline = run_scenario(base_cfg);
  double base_tp = baseline->metrics().mean_throughput_msgs_per_sec();

  auto attack_cfg = base_cfg;
  attack_cfg.alpha = 0.1;
  attack_cfg.x = 256;
  auto attacked = run_scenario(attack_cfg);
  double att_tp = attacked->metrics().mean_throughput_msgs_per_sec();

  ASSERT_GT(base_tp, 0.0);
  EXPECT_LT(att_tp, base_tp * 0.5);

  // Drum at the same rate and attack keeps nearly full throughput.
  auto drum_cfg = attack_cfg;
  drum_cfg.variant = core::Variant::kDrum;
  auto drum = run_scenario(drum_cfg);
  EXPECT_GT(drum->metrics().mean_throughput_msgs_per_sec(), base_tp * 0.8);
}

TEST(Cluster, PushLatencyToAttackedNodesSuffersDrumDoesNot) {
  // Paper Fig. 11(a): attacked processes measure ~4x longer latency under
  // Push; Drum keeps the gap small.
  auto push_cfg = small_config(core::Variant::kPush);
  push_cfg.verify_signatures = false;
  push_cfg.alpha = 0.2;
  push_cfg.x = 32;  // moderate: attacked nodes still receive, just slower
  auto push = run_scenario(push_cfg, 5, 30);

  double push_att = 0, push_non = 0;
  int att_n = 0, non_n = 0;
  for (const auto& pn : push->metrics().nodes) {
    if (pn.latency_us.count() == 0) continue;
    if (pn.attacked) {
      push_att += pn.hops.mean();
      ++att_n;
    } else {
      push_non += pn.hops.mean();
      ++non_n;
    }
  }
  ASSERT_GT(att_n, 0);
  ASSERT_GT(non_n, 0);
  push_att /= att_n;
  push_non /= non_n;
  EXPECT_GT(push_att, push_non * 1.5);

  auto drum_cfg = push_cfg;
  drum_cfg.variant = core::Variant::kDrum;
  auto drum = run_scenario(drum_cfg, 5, 30);
  double drum_att = 0, drum_non = 0;
  att_n = non_n = 0;
  for (const auto& pn : drum->metrics().nodes) {
    if (pn.latency_us.count() == 0) continue;
    (pn.attacked ? drum_att : drum_non) += pn.hops.mean();
    ++(pn.attacked ? att_n : non_n);
  }
  ASSERT_GT(att_n, 0);
  ASSERT_GT(non_n, 0);
  drum_att /= att_n;
  drum_non /= non_n;
  EXPECT_LT(drum_att, drum_non * 1.6);
  EXPECT_LT(drum_att, push_att);
}

TEST(Cluster, SharedBoundsDegradeUnderAttack) {
  // Paper Fig. 12(b): a joint control-message bound lets the flood starve
  // the (otherwise unattackable) push-reply channel, so the attacked source
  // can no longer disseminate; separate bounds keep Drum unaffected.
  auto shared_cfg = small_config(core::Variant::kDrumSharedBounds);
  shared_cfg.verify_signatures = false;
  shared_cfg.rate = 30;
  shared_cfg.alpha = 0.2;
  shared_cfg.x = 256;
  auto shared = run_scenario(shared_cfg, 5, 25);

  auto drum_cfg = shared_cfg;
  drum_cfg.variant = core::Variant::kDrum;
  auto drum = run_scenario(drum_cfg, 5, 25);

  double shared_tp = shared->metrics().mean_throughput_msgs_per_sec();
  double drum_tp = drum->metrics().mean_throughput_msgs_per_sec();
  EXPECT_LT(shared_tp, drum_tp * 0.5);
  // And the source's push path is specifically what dies: it acts on
  // (nearly) no push-replies, while plain Drum keeps pushing.
  EXPECT_LT(
      shared->node(0).registry().counter_value("node.push_replies_acted") + 10,
      drum->node(0).registry().counter_value("node.push_replies_acted"));
}

TEST(Cluster, WellKnownPortsDegradeUnderAttack) {
  // Paper Fig. 12(a): with pull-replies on a well-known (attackable) port,
  // attacked processes lose their receive path; random ports keep it open.
  auto wk_cfg = small_config(core::Variant::kDrumWkPorts);
  wk_cfg.verify_signatures = false;
  wk_cfg.rate = 30;
  wk_cfg.alpha = 0.2;
  wk_cfg.x = 256;
  auto wk = run_scenario(wk_cfg, 5, 25);

  auto drum_cfg = wk_cfg;
  drum_cfg.variant = core::Variant::kDrum;
  auto drum = run_scenario(drum_cfg, 5, 25);

  auto attacked_deliveries = [](const Cluster& c) {
    double sum = 0;
    int count = 0;
    for (const auto& pn : c.metrics().nodes) {
      if (pn.attacked) {
        sum += static_cast<double>(pn.delivered);
        ++count;
      }
    }
    return count ? sum / count : 0.0;
  };
  double wk_att = attacked_deliveries(*wk);
  double drum_att = attacked_deliveries(*drum);
  EXPECT_LT(wk_att, drum_att * 0.5);
  EXPECT_LT(wk->metrics().messages_completed,
            drum->metrics().messages_completed);
}

TEST(Cluster, WorksOverRealUdpLoopback) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.n = 12;
  cfg.use_udp = true;
  cfg.udp_base_port = 23000;
  cfg.rate = 3;
  auto cluster = run_scenario(cfg, 3, 12);
  EXPECT_GT(cluster->metrics().messages_completed, 0u);
  EXPECT_GT(cluster->merged_registry().counter_value("node.delivered"), 50u);
}

TEST(Cluster, RejectsDegenerateConfig) {
  ClusterConfig cfg;
  cfg.n = 2;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
  ClusterConfig cfg2;
  cfg2.n = 10;
  cfg2.malicious_fraction = 1.0;
  EXPECT_THROW(Cluster{cfg2}, std::invalid_argument);
}

TEST(Cluster, DeterministicGivenSeed) {
  auto cfg = small_config(core::Variant::kDrum);
  auto a = run_scenario(cfg, 3, 10);
  auto b = run_scenario(cfg, 3, 10);
  EXPECT_EQ(a->metrics().messages_sent, b->metrics().messages_sent);
  EXPECT_EQ(a->metrics().messages_completed, b->metrics().messages_completed);
  EXPECT_DOUBLE_EQ(a->metrics().propagation_rounds.mean(),
                   b->metrics().propagation_rounds.mean());
}

}  // namespace
}  // namespace drum::harness

namespace drum::harness {
namespace {

TEST(Cluster, RobustToElevatedLinkLoss) {
  // The paper assumes 1% loss; the implementation should also survive a
  // much lossier network (gossip redundancy pays for itself).
  auto cfg = small_config(core::Variant::kDrum);
  cfg.loss = 0.05;
  cfg.verify_signatures = false;
  auto cluster = std::make_unique<Cluster>(cfg);
  cluster->run_rounds(5, true);
  cluster->begin_measurement();
  cluster->run_rounds(25, true);
  cluster->end_measurement();
  cluster->run_rounds(15, false);
  const auto& m = cluster->metrics();
  EXPECT_GT(m.messages_completed, m.messages_sent * 7 / 10);
}

TEST(Cluster, UmbrellaHeaderCompiles) {
  // drum.hpp is exercised by this TU's includes indirectly; the real check
  // is the dedicated example binaries. Here: the public API surface used by
  // a downstream adopter is callable end-to-end.
  ClusterConfig cfg;
  cfg.n = 10;
  cfg.round_us = 5000;
  cfg.rate = 2;
  Cluster cluster(cfg);
  cluster.run_rounds(8, true);
  EXPECT_GT(cluster.merged_registry().counter_value("node.delivered"), 0u);
}

}  // namespace
}  // namespace drum::harness

namespace drum::harness {
namespace {

TEST(Cluster, UdpClusterUnderAttackStillDelivers) {
  // Exercises the real-socket attacker path: fabricated datagrams are sent
  // from a genuine UDP socket at the victims' well-known ports.
  auto cfg = small_config(core::Variant::kDrum);
  cfg.n = 12;
  cfg.use_udp = true;
  cfg.udp_base_port = 24200;
  cfg.rate = 3;
  cfg.alpha = 0.2;
  cfg.x = 64;
  cfg.verify_signatures = false;
  auto cluster = run_scenario(cfg, 3, 12);
  // The flood arrived (box failures at victims) and gossip still works.
  EXPECT_GT(cluster->merged_registry().counter_value("node.box_failures"),
            20u);
  EXPECT_GT(cluster->metrics().messages_completed, 0u);
}

TEST(Cluster, LargerFanoutConfig) {
  // F = 6: Drum splits 3+3; everything still works end to end.
  auto cfg = small_config(core::Variant::kDrum);
  cfg.fanout = 6;
  auto cluster = run_scenario(cfg, 3, 12);
  EXPECT_GT(cluster->metrics().messages_completed,
            cluster->metrics().messages_sent * 8 / 10);
}

TEST(Cluster, PerNodeRegistriesDistinguishAttackedFromNot) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.alpha = 0.25;
  cfg.x = 64;
  auto cluster = run_scenario(cfg);

  std::uint64_t att_flushed = 0, non_flushed = 0;
  std::uint64_t sum_flushed = 0, sum_delivered = 0;
  std::size_t n_att = 0;
  for (std::size_t i = 0; i < cluster->correct_count(); ++i) {
    const auto& reg = cluster->node(i).registry();
    bool attacked = cluster->is_attacked(cluster->node(i).config().id);
    std::uint64_t flushed = reg.counter_value("node.flushed_unread");
    (attacked ? att_flushed : non_flushed) += flushed;
    n_att += attacked ? 1 : 0;
    sum_flushed += flushed;
    sum_delivered += reg.counter_value("node.delivered");
  }
  EXPECT_GT(n_att, 0u);
  EXPECT_LT(n_att, cluster->correct_count());
  // Only the victims receive the flood, so only they discard unread input.
  EXPECT_GT(att_flushed, 0u);
  EXPECT_GT(att_flushed, non_flushed);
  // The merged-registry splits partition the totals.
  auto total = cluster->merged_registry(Cluster::NodeSet::kAll);
  auto att = cluster->merged_registry(Cluster::NodeSet::kAttacked);
  auto non = cluster->merged_registry(Cluster::NodeSet::kNonAttacked);
  EXPECT_EQ(att.counter_value("node.flushed_unread") +
                non.counter_value("node.flushed_unread"),
            total.counter_value("node.flushed_unread"));
  EXPECT_EQ(att.counter_value("node.delivered") +
                non.counter_value("node.delivered"),
            total.counter_value("node.delivered"));
  EXPECT_EQ(sum_flushed, total.counter_value("node.flushed_unread"));
  EXPECT_EQ(sum_delivered, total.counter_value("node.delivered"));
}

TEST(Cluster, MergedRegistryAndJsonCoverChannels) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.alpha = 0.25;
  cfg.x = 64;
  auto cluster = run_scenario(cfg);

  auto all = cluster->merged_registry(Cluster::NodeSet::kAll);
  auto att = cluster->merged_registry(Cluster::NodeSet::kAttacked);
  auto non = cluster->merged_registry(Cluster::NodeSet::kNonAttacked);
  EXPECT_EQ(all.counter_value("node.rounds"),
            att.counter_value("node.rounds") +
                non.counter_value("node.rounds"));
  // Attacked nodes flushed the flood from their control channels.
  EXPECT_GT(att.counter_value("chan.offer.flushed_unread") +
                att.counter_value("chan.pull_req.flushed_unread"),
            0u);
  // Per-channel budget-consumption histograms exist and have samples.
  const auto* h = all.find_histogram("chan.offer.budget_used");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);

  std::string json = cluster->metrics_json();
  for (const char* key :
       {"\"config\"", "\"nodes\"", "\"attacked\"", "\"non_attacked\"",
        "\"net\"", "\"per_node\"", "\"chan.offer.flushed_unread\"",
        "\"chan.offer.budget_used\"", "\"chan.offer.budget_exhausted\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Cluster, TimeSeriesSamplesMeasurementWindow) {
  auto cfg = small_config(core::Variant::kDrum);
  auto cluster = run_scenario(cfg, 3, 12);
  const auto& ts = cluster->timeseries();
  ASSERT_EQ(ts.columns().size(), 5u);
  EXPECT_EQ(ts.columns()[0], "round");
  // ~one sample per round of the 12-round window.
  EXPECT_GE(ts.rows(), 10u);
  EXPECT_LE(ts.rows(), 14u);
  // Cumulative columns are monotone.
  const auto& data = ts.data();
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_GE(data[i][1], data[i - 1][1]);  // t_us
    EXPECT_GE(data[i][2], data[i - 1][2]);  // delivered
  }
  EXPECT_GT(data.back()[2], 0);  // workload delivered during the window
}

TEST(Cluster, TraceRingCapturesRoundTicksWhenEnabled) {
  auto cfg = small_config(core::Variant::kDrum);
  cfg.trace_capacity = 1 << 14;
  auto cluster = run_scenario(cfg, 2, 6);
  // Index 0 is the source (it never delivers its own messages); inspect a
  // plain receiver.
  ASSERT_NE(cluster->trace(1), nullptr);
  auto events = cluster->trace(1)->snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_tick = false, saw_deliver = false;
  for (const auto& e : events) {
    saw_tick |= e.kind == obs::EventKind::kRoundTick;
    saw_deliver |= e.kind == obs::EventKind::kDeliver;
  }
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_deliver);
  // Tracing off by default.
  ClusterConfig plain = small_config(core::Variant::kDrum);
  Cluster off(plain);
  EXPECT_EQ(off.trace(0), nullptr);
}

// Regression: start()/stop() used to check-and-set a naked `started_` bool
// and join the attacker thread without any lock, so two concurrent stop()
// calls could both see started_ == true and both join attacker_ — undefined
// behavior (the same shape as the PR-2 NodeRunner lifecycle race). The
// lifecycle mutex makes every interleaving safe; this hammers it.
TEST(Swarm, ConcurrentStopAndRestartAreSafe) {
  SwarmConfig cfg;
  cfg.n = 8;
  cfg.alpha = 0.5;  // arm the attacker thread: the race needs its join
  cfg.x = 4;
  cfg.round = std::chrono::milliseconds(20);
  cfg.workers = 1;
  cfg.seed = 7;
  Swarm swarm(cfg);
  for (int cycle = 0; cycle < 2; ++cycle) {
    swarm.start();
    swarm.run_for(std::chrono::milliseconds(30));
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&swarm] { swarm.stop(); });
    }
    for (auto& t : stoppers) t.join();
  }
  EXPECT_GE(swarm.report().rounds, 1u);
}

}  // namespace
}  // namespace drum::harness
