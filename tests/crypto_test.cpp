// Crypto substrate tests: every primitive is checked against its published
// specification test vectors (FIPS 180-4, RFC 4231, RFC 5869, RFC 8439,
// RFC 7748, RFC 8032), plus property tests for round-trips and tampering.
#include <gtest/gtest.h>

#include "drum/crypto/api.hpp"
#include "drum/crypto/bigint.hpp"
#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/hmac.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/crypto/sha256.hpp"
#include "drum/crypto/sha512.hpp"
#include "drum/crypto/x25519.hpp"
#include "drum/util/rng.hpp"

namespace drum::crypto {
namespace {

using util::ByteSpan;
using util::Bytes;
using util::from_hex;
using util::to_hex;

ByteSpan span_of(const std::string& s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

template <std::size_t N>
std::array<std::uint8_t, N> arr_from_hex(const std::string& hex) {
  auto b = from_hex(hex);
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), N);
  std::array<std::uint8_t, N> out{};
  std::copy(b->begin(), b->end(), out.begin());
  return out;
}

// ------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(ByteSpan(sha256(span_of("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(ByteSpan(sha256(span_of("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(ByteSpan(sha256(span_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string a(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(span_of(a));
  EXPECT_EQ(to_hex(ByteSpan(h.final())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  util::Rng rng(1);
  Bytes data(1337);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  auto one_shot = sha256(ByteSpan(data));
  Sha256 h;
  // Update in awkward chunk sizes straddling block boundaries.
  std::size_t pos = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 100u, 500u, 544u}) {
    h.update(ByteSpan(data.data() + pos, chunk));
    pos += chunk;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(h.final(), one_shot);
}

// ------------------------------------------------------------- SHA-512

TEST(Sha512, Fips180Vectors) {
  EXPECT_EQ(to_hex(ByteSpan(sha512(span_of("abc")))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(to_hex(ByteSpan(sha512(span_of("")))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(to_hex(ByteSpan(sha512(span_of(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")))),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

// ---------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(ByteSpan(hmac_sha256(ByteSpan(key), span_of("Hi There")))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(to_hex(ByteSpan(hmac_sha512(ByteSpan(key), span_of("Hi There")))),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(ByteSpan(hmac_sha256(
                span_of("Jefe"), span_of("what do ya want for nothing?")))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(ByteSpan(hmac_sha256(ByteSpan(key), ByteSpan(data)))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  Bytes key(131, 0xaa);  // key longer than block size
  EXPECT_EQ(
      to_hex(ByteSpan(hmac_sha256(
          ByteSpan(key),
          span_of("Test Using Larger Than Block-Size Key - Hash Key First")))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  auto salt = *from_hex("000102030405060708090a0b0c");
  auto info = *from_hex("f0f1f2f3f4f5f6f7f8f9");
  std::string info_str(info.begin(), info.end());
  auto okm = hkdf_sha256(ByteSpan(ikm), ByteSpan(salt), info_str, 42);
  EXPECT_EQ(to_hex(ByteSpan(okm)),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, 0x0b);
  auto okm = hkdf_sha256(ByteSpan(ikm), ByteSpan(), "", 42);
  EXPECT_EQ(to_hex(ByteSpan(okm)),
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// ------------------------------------------------------------ ChaCha20

TEST(ChaCha20, Rfc8439BlockFunction) {
  auto key = *from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = *from_hex("000000090000004a00000000");
  auto block = ChaCha20::block(ByteSpan(key), ByteSpan(nonce), 1);
  EXPECT_EQ(to_hex(ByteSpan(block)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  auto key = *from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = *from_hex("000000000000004a00000000");
  std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  ChaCha20 c(ByteSpan(key), ByteSpan(nonce), 1);
  auto ct = c.crypt_copy(span_of(pt));
  EXPECT_EQ(to_hex(ByteSpan(ct)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, DecryptInverts) {
  util::Rng rng(2);
  Bytes key(32), nonce(12), msg(777);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  ChaCha20 enc(ByteSpan(key), ByteSpan(nonce), 7);
  auto ct = enc.crypt_copy(ByteSpan(msg));
  EXPECT_NE(ct, msg);
  ChaCha20 dec(ByteSpan(key), ByteSpan(nonce), 7);
  EXPECT_EQ(dec.crypt_copy(ByteSpan(ct)), msg);
}

TEST(ChaCha20, RejectsBadKeyOrNonceSize) {
  Bytes key(31), nonce(12);
  EXPECT_THROW(ChaCha20(ByteSpan(key), ByteSpan(nonce)), std::invalid_argument);
  Bytes key2(32), nonce2(11);
  EXPECT_THROW(ChaCha20(ByteSpan(key2), ByteSpan(nonce2)),
               std::invalid_argument);
}

// -------------------------------------------------------------- X25519

TEST(X25519, Rfc7748Vector1) {
  auto scalar = arr_from_hex<32>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = arr_from_hex<32>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  auto out = x25519(scalar, point);
  EXPECT_EQ(to_hex(ByteSpan(out)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  auto scalar = arr_from_hex<32>(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = arr_from_hex<32>(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  auto out = x25519(scalar, point);
  EXPECT_EQ(to_hex(ByteSpan(out)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  auto alice_priv = arr_from_hex<32>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto bob_priv = arr_from_hex<32>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  auto alice_pub = x25519_base(alice_priv);
  auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(to_hex(ByteSpan(alice_pub)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(ByteSpan(bob_pub)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  auto k1 = x25519(alice_priv, bob_pub);
  auto k2 = x25519(bob_priv, alice_pub);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(to_hex(ByteSpan(k1)),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

// ------------------------------------------------------------- Ed25519

struct Rfc8032Case {
  std::string seed, pub, msg, sig;
};

class Ed25519Rfc : public ::testing::TestWithParam<Rfc8032Case> {};

TEST_P(Ed25519Rfc, SignAndVerify) {
  const auto& c = GetParam();
  auto seed = arr_from_hex<32>(c.seed);
  auto expect_pub = arr_from_hex<32>(c.pub);
  auto msg = *from_hex(c.msg);
  auto expect_sig = arr_from_hex<64>(c.sig);

  auto pub = ed25519_public_key(seed);
  EXPECT_EQ(pub, expect_pub);
  auto sig = ed25519_sign(seed, pub, ByteSpan(msg));
  EXPECT_EQ(sig, expect_sig);
  EXPECT_TRUE(ed25519_verify(pub, ByteSpan(msg), sig));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc8032Section7, Ed25519Rfc,
    ::testing::Values(
        Rfc8032Case{
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        Rfc8032Case{
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        Rfc8032Case{
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}));

TEST(Ed25519, RejectsTamperedMessage) {
  util::Rng rng(3);
  Ed25519Seed seed;
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.below(256));
  auto pub = ed25519_public_key(seed);
  std::string msg = "multicast message payload";
  auto sig = ed25519_sign(seed, pub, span_of(msg));
  EXPECT_TRUE(ed25519_verify(pub, span_of(msg), sig));
  std::string tampered = "multicast message payloae";
  EXPECT_FALSE(ed25519_verify(pub, span_of(tampered), sig));
}

TEST(Ed25519, RejectsTamperedSignatureAndWrongKey) {
  util::Rng rng(4);
  Ed25519Seed seed, seed2;
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto& b : seed2) b = static_cast<std::uint8_t>(rng.below(256));
  auto pub = ed25519_public_key(seed);
  auto pub2 = ed25519_public_key(seed2);
  std::string msg = "hello";
  auto sig = ed25519_sign(seed, pub, span_of(msg));
  auto bad = sig;
  bad[10] ^= 1;
  EXPECT_FALSE(ed25519_verify(pub, span_of(msg), bad));
  EXPECT_FALSE(ed25519_verify(pub2, span_of(msg), sig));
}

TEST(Ed25519, RejectsNonCanonicalS) {
  util::Rng rng(5);
  Ed25519Seed seed;
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.below(256));
  auto pub = ed25519_public_key(seed);
  std::string msg = "x";
  auto sig = ed25519_sign(seed, pub, span_of(msg));
  // Add L to S: same value mod L but non-canonical encoding — must reject.
  BigInt s = BigInt::from_bytes_le(ByteSpan(sig.data() + 32, 32));
  BigInt s_plus_l = s + ed25519_order();
  if (s_plus_l.bit_length() <= 256) {
    auto le = s_plus_l.to_bytes_le(32);
    std::copy(le.begin(), le.end(), sig.begin() + 32);
    EXPECT_FALSE(ed25519_verify(pub, span_of(msg), sig));
  }
}

// -------------------------------------------------------------- BigInt

TEST(BigInt, HexRoundTripAndCompare) {
  auto a = BigInt::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(a.to_hex(), "deadbeefcafebabe0123456789");
  EXPECT_EQ(BigInt().to_hex(), "0");
  EXPECT_TRUE(BigInt(5) < BigInt(6));
  EXPECT_TRUE(BigInt::from_hex("100000000") > BigInt::from_hex("ffffffff"));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, Arithmetic) {
  auto a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  auto one = BigInt(1);
  EXPECT_EQ((a + one).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + one - one).to_hex(), a.to_hex());
  EXPECT_EQ((BigInt(0xffffffffULL) * BigInt(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  EXPECT_EQ((BigInt(1) << 255).bit_length(), 256u);
  EXPECT_THROW(BigInt(3) - BigInt(5), std::underflow_error);
  EXPECT_THROW(BigInt(3) % BigInt(0), std::domain_error);
}

TEST(BigInt, ModMatchesUint64) {
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = rng.next() >> 1;
    std::uint64_t m = (rng.next() >> 40) + 1;
    EXPECT_EQ(BigInt(a) % BigInt(m), BigInt(a % m));
  }
}

TEST(BigInt, ModularMultiplyProperty) {
  util::Rng rng(7);
  const BigInt& l = ed25519_order();
  for (int i = 0; i < 20; ++i) {
    Bytes ab(64), bb(64);
    for (auto& b : ab) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : bb) b = static_cast<std::uint8_t>(rng.below(256));
    BigInt a = BigInt::from_bytes_le(ByteSpan(ab));
    BigInt b = BigInt::from_bytes_le(ByteSpan(bb));
    EXPECT_EQ((a * b) % l, ((a % l) * (b % l)) % l);
  }
}

TEST(BigInt, ByteRoundTrip) {
  Bytes le = {0x01, 0x02, 0x03, 0x00};
  auto v = BigInt::from_bytes_le(ByteSpan(le));
  EXPECT_EQ(v.to_hex(), "30201");
  auto back = v.to_bytes_le(4);
  EXPECT_EQ(back, le);
  EXPECT_THROW(v.to_bytes_le(2), std::overflow_error);
}

// ------------------------------------------------------------- portbox

TEST(PortBox, SealOpenRoundTrip) {
  util::Rng rng(8);
  Bytes key(32, 0x42);
  std::string msg = "port 40123";
  auto box = portbox_seal(ByteSpan(key), span_of(msg), rng);
  EXPECT_EQ(box.size(), msg.size() + kPortBoxOverhead);
  auto opened = portbox_open(ByteSpan(key), ByteSpan(box));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(std::string(opened->begin(), opened->end()), msg);
}

TEST(PortBox, TamperDetected) {
  util::Rng rng(9);
  Bytes key(32, 0x01);
  std::string msg = "secret";
  auto box = portbox_seal(ByteSpan(key), span_of(msg), rng);
  for (std::size_t i = 0; i < box.size(); ++i) {
    auto bad = box;
    bad[i] ^= 0x80;
    EXPECT_EQ(portbox_open(ByteSpan(key), ByteSpan(bad)), std::nullopt)
        << "tamper at byte " << i << " not detected";
  }
}

TEST(PortBox, WrongKeyRejectedAndShortBoxRejected) {
  util::Rng rng(10);
  Bytes key(32, 0x01), key2(32, 0x02);
  auto box = portbox_seal(ByteSpan(key), span_of("data"), rng);
  EXPECT_EQ(portbox_open(ByteSpan(key2), ByteSpan(box)), std::nullopt);
  Bytes tiny(kPortBoxOverhead - 1, 0);
  EXPECT_EQ(portbox_open(ByteSpan(key), ByteSpan(tiny)), std::nullopt);
}

TEST(PortBox, PortConvenience) {
  util::Rng rng(11);
  Bytes key(32, 0x07);
  auto box = portbox_seal_port(ByteSpan(key), 54321, rng);
  auto port = portbox_open_port(ByteSpan(key), ByteSpan(box));
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 54321);
  // A non-port box (wrong size plaintext) is rejected by the port opener.
  auto box2 = portbox_seal(ByteSpan(key), span_of("xyz"), rng);
  EXPECT_EQ(portbox_open_port(ByteSpan(key), ByteSpan(box2)), std::nullopt);
}

TEST(PortBox, NoncesDiffer) {
  util::Rng rng(12);
  Bytes key(32, 0x03);
  auto b1 = portbox_seal_port(ByteSpan(key), 1234, rng);
  auto b2 = portbox_seal_port(ByteSpan(key), 1234, rng);
  EXPECT_NE(b1, b2);  // fresh nonce each seal
}

TEST(Hmac, BatchMatchesScalar) {
  // Mixed key lengths (including > block size, which must be pre-hashed) and
  // mixed data lengths, incl. empty data. Every lane must equal the scalar
  // one-shot HMAC.
  std::vector<Bytes> keys = {
      Bytes(20, 0x0b), Bytes(0), Bytes(64, 0xaa), Bytes(131, 0xaa),
      Bytes(32, 0x42), Bytes(1, 0x7f), Bytes(200, 0x55), Bytes(63, 0x01),
      Bytes(65, 0x02),  // nine lanes: exercises a ragged final SIMD group
  };
  std::vector<Bytes> datas;
  util::Rng rng(77);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    Bytes d(i * 37 % 150, 0);
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
    datas.push_back(std::move(d));
  }
  std::vector<ByteSpan> key_spans, data_spans;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    key_spans.emplace_back(keys[i].data(), keys[i].size());
    data_spans.emplace_back(datas[i].data(), datas[i].size());
  }
  auto batch = hmac_sha256_batch(key_spans, data_spans);
  ASSERT_EQ(batch.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto scalar = hmac_sha256(key_spans[i], data_spans[i]);
    EXPECT_EQ(to_hex(ByteSpan(batch[i])), to_hex(ByteSpan(scalar)))
        << "lane " << i;
  }
  EXPECT_TRUE(hmac_sha256_batch({}, {}).empty());
  EXPECT_THROW(hmac_sha256_batch(key_spans,
                                 std::span<const ByteSpan>(
                                     data_spans.data(), data_spans.size() - 1)),
               std::invalid_argument);
}

TEST(PortBox, OpenPortBatchMatchesSingle) {
  util::Rng rng(21);
  std::vector<Bytes> keys;
  std::vector<Bytes> boxes;
  for (int i = 0; i < 10; ++i) {
    keys.push_back(Bytes(32, static_cast<std::uint8_t>(i + 1)));
    boxes.push_back(portbox_seal_port(ByteSpan(keys.back()),
                                      static_cast<std::uint16_t>(40000 + i),
                                      rng));
  }
  // Corrupt lanes at several batch positions, one truncated lane, and one
  // non-port plaintext lane.
  boxes[0][kPortBoxNonceSize] ^= 0x80;               // ciphertext flip, first
  boxes[4].back() ^= 0x01;                           // tag flip, middle
  boxes[9][2] ^= 0xff;                               // nonce flip, last
  boxes[5].resize(kPortBoxOverhead - 1);             // malformed (short)
  boxes[7] = portbox_seal(ByteSpan(keys[7]), span_of("xyz"), rng);

  std::vector<PortBoxOpenJob> jobs;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    jobs.push_back({ByteSpan(keys[i]), ByteSpan(boxes[i])});
  }
  auto batch = portbox_open_port_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batch[i], portbox_open_port(jobs[i].key, jobs[i].box))
        << "lane " << i;
  }
  // Sanity: the untouched lanes did open to their sealed ports.
  EXPECT_EQ(batch[1], std::uint16_t{40001});
  EXPECT_EQ(batch[8], std::uint16_t{40008});
  EXPECT_EQ(batch[5], std::nullopt);
  EXPECT_TRUE(portbox_open_port_batch({}).empty());
}

// ---------------------------------------------------------------- keys

TEST(Identity, PairKeySymmetry) {
  util::Rng rng(13);
  auto a = Identity::generate(rng);
  auto b = Identity::generate(rng);
  auto kab = a.derive_pair_key(b.dh_public());
  auto kba = b.derive_pair_key(a.dh_public());
  EXPECT_EQ(kab, kba);
  EXPECT_EQ(kab.size(), 32u);

  auto c = Identity::generate(rng);
  EXPECT_NE(a.derive_pair_key(c.dh_public()), kab);
}

TEST(Identity, SignVerify) {
  util::Rng rng(14);
  auto id = Identity::generate(rng);
  std::string msg = "signed multicast payload";
  auto sig = id.sign(span_of(msg));
  EXPECT_TRUE(ed25519_verify(id.sign_public(), span_of(msg), sig));
  auto other = Identity::generate(rng);
  EXPECT_FALSE(ed25519_verify(other.sign_public(), span_of(msg), sig));
  EXPECT_EQ(id.short_id().size(), 16u);
}

TEST(Identity, PortBoxBetweenIdentities) {
  // End-to-end: the exact flow Drum uses to hide its random ports.
  util::Rng rng(15);
  auto alice = Identity::generate(rng);
  auto bob = Identity::generate(rng);
  auto key = alice.derive_pair_key(bob.dh_public());
  auto box = portbox_seal_port(ByteSpan(key), 49152, rng);
  auto bob_key = bob.derive_pair_key(alice.dh_public());
  auto port = portbox_open_port(ByteSpan(bob_key), ByteSpan(box));
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 49152);
  // Eve (without the pair key) cannot open it.
  auto eve = Identity::generate(rng);
  auto eve_key = eve.derive_pair_key(bob.dh_public());
  EXPECT_EQ(portbox_open_port(ByteSpan(eve_key), ByteSpan(box)), std::nullopt);
}

}  // namespace
}  // namespace drum::crypto

namespace drum::crypto {
namespace {

TEST(X25519, Rfc7748IteratedVector1000) {
  // RFC 7748 §5.2: start with k = u = base point scalar; iterate
  // k' = X25519(k, u), u' = old k. After 1000 iterations the result is the
  // published constant.
  auto k = arr_from_hex<32>(
      "0900000000000000000000000000000000000000000000000000000000000000");
  auto u = k;
  for (int i = 0; i < 1000; ++i) {
    auto next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(util::to_hex(util::ByteSpan(k)),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

// Parameterized round-trip sweep: the port box must be inverse-correct for
// plaintexts straddling cipher-block and MAC boundaries.
class PortBoxSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PortBoxSizes, SealOpenRoundTrip) {
  util::Rng rng(GetParam() + 1000);
  util::Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
  util::Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  auto box = portbox_seal(util::ByteSpan(key), util::ByteSpan(msg), rng);
  auto opened = portbox_open(util::ByteSpan(key), util::ByteSpan(box));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PortBoxSizes,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 63, 64, 65,
                                           127, 128, 1024));

// Parameterized SHA-256 length sweep against a self-consistency property:
// streaming in two chunks at every split point equals one-shot.
class ShaSplit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShaSplit, StreamingSplitConsistency) {
  util::Rng rng(7);
  util::Bytes data(130);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  auto expected = sha256(util::ByteSpan(data));
  std::size_t split = GetParam();
  Sha256 h;
  h.update(util::ByteSpan(data.data(), split));
  h.update(util::ByteSpan(data.data() + split, data.size() - split));
  EXPECT_EQ(h.final(), expected);
}

INSTANTIATE_TEST_SUITE_P(Splits, ShaSplit,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 119,
                                           128, 130));

}  // namespace
}  // namespace drum::crypto
