// Tests for drum::obs — histogram bucket math and quantile accuracy
// (cross-checked against util::Samples' exact percentiles), registry merge
// semantics, trace-ring wraparound, and a node-level test asserting that a
// full push offer→reply→data handshake appears in the trace in order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "drum/core/node.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/obs/export.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/obs/trace.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/stats.hpp"

namespace drum::obs {
namespace {

// One full ingress cycle (drain → verify → ingest) on a private batch — the
// standalone-driver shape of the DESIGN.md §12 pipeline.
void poll_node(core::Node& n) {
  core::ingress::IngressBatch batch;
  n.drain_ingress(batch);
  batch.dispatch();
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 63ull, 64ull, 65ull, 100ull, 127ull, 128ull, 1000ull,
        4096ull, 65535ull, 1000000ull, (1ull << 40) + 12345ull}) {
    std::size_t idx = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lo(idx), v) << v;
    EXPECT_GT(Histogram::bucket_hi(idx), v) << v;
  }
  // Values below 64 are exact: one bucket per value.
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lo(v), v);
    EXPECT_EQ(Histogram::bucket_hi(v), v + 1);
  }
  // Indices are monotone in the value.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 200000; v += 7) {
    std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  util::Samples exact;
  util::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.below(64);
    h.record(v);
    exact.add(static_cast<double>(v));
  }
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_NEAR(h.quantile(p), exact.percentile(p), 1.0) << "p=" << p;
  }
  EXPECT_NEAR(h.mean(), exact.mean(), 1e-9);
}

TEST(Histogram, QuantilesTrackExactPercentiles) {
  // Wide-range samples: bucket width is <= 1/32 of the value, so quantiles
  // must land within ~3% of the exact order statistics (5% tolerance).
  Histogram h;
  util::Samples exact;
  util::Rng rng(12);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = rng.below(1u << (1 + rng.below(20)));
    h.record(v);
    exact.add(static_cast<double>(v));
  }
  EXPECT_EQ(h.count(), 20000u);
  for (double p : {0.5, 0.9, 0.99}) {
    double want = exact.percentile(p);
    double got = h.quantile(p);
    EXPECT_NEAR(got, want, 0.05 * want + 1.0) << "p=" << p;
  }
  EXPECT_EQ(static_cast<double>(h.min()), exact.percentile(0.0));
  EXPECT_EQ(static_cast<double>(h.max()), exact.percentile(1.0));
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  util::Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t v = rng.below(100000);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.quantile(p), combined.quantile(p));
  }
}

MetricsRegistry make_registry(std::uint64_t seed) {
  MetricsRegistry r;
  util::Rng rng(seed);
  r.counter("shared.count").inc(rng.below(100));
  r.counter("only." + std::to_string(seed)).inc(seed);
  r.gauge("shared.gauge").set(static_cast<double>(rng.below(50)));
  auto& h = r.histogram("shared.hist");
  for (int i = 0; i < 500; ++i) h.record(rng.below(10000));
  return r;
}

TEST(Registry, MergeIsAssociativeAndCommutative) {
  auto json_of = [](const MetricsRegistry& r) { return r.to_json(); };

  MetricsRegistry left = make_registry(1);   // (A + B) + C
  left.merge(make_registry(2));
  left.merge(make_registry(3));

  MetricsRegistry bc = make_registry(2);     // A + (B + C)
  bc.merge(make_registry(3));
  MetricsRegistry right = make_registry(1);
  right.merge(bc);

  MetricsRegistry rev = make_registry(3);    // C + B + A
  rev.merge(make_registry(2));
  rev.merge(make_registry(1));

  EXPECT_EQ(json_of(left), json_of(right));
  EXPECT_EQ(json_of(left), json_of(rev));
  EXPECT_EQ(left.counter_value("shared.count"),
            make_registry(1).counter_value("shared.count") +
                make_registry(2).counter_value("shared.count") +
                make_registry(3).counter_value("shared.count"));
}

TEST(Registry, JsonIsWellFormedAndComplete) {
  MetricsRegistry r = make_registry(7);
  std::string j = r.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"shared.hist\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  for (char c : j) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  TraceRing ring(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record(1, i, EventKind::kRoundTick, i);
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.total_recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);  // oldest surviving first
    EXPECT_EQ(events[i].a, 12 + i);
  }
}

TEST(TraceRing, CsvHasHeaderAndOneLinePerEvent) {
  TraceRing ring(16);
  ring.record(3, 1, EventKind::kOfferSend, 4);
  ring.record(3, 1, EventKind::kFlushUnread, 0, 9);
  std::string csv = ring.to_csv();
  EXPECT_EQ(csv.rfind("seq,node,round,kind,a,b\n", 0), 0u);
  EXPECT_NE(csv.find("offer_send"), std::string::npos);
  EXPECT_NE(csv.find("flush_unread"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(TraceRing, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing(0), std::invalid_argument);
}

// Two real nodes on the in-memory network (push variant): after a
// multicast, the shared trace must contain the full push handshake as an
// ordered subsequence — offer received, reply sent, reply received, data
// sent, data received, message delivered.
TEST(NodeTrace, PushHandshakeAppearsInOrder) {
  util::Rng rng(5);
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir(2);
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::size_t delivered = 0;
  for (std::uint32_t id = 0; id < 2; ++id) {
    ids.push_back(crypto::Identity::generate(rng));
    dir[id] = {id,
               id,
               static_cast<std::uint16_t>(3000 + 3 * id),
               static_cast<std::uint16_t>(3001 + 3 * id),
               static_cast<std::uint16_t>(3002 + 3 * id),
               ids[id].sign_public(),
               ids[id].dh_public(),
               true};
  }
  for (std::uint32_t id = 0; id < 2; ++id) {
    core::NodeConfig cfg = core::make_node_config(core::Variant::kPush, id);
    cfg.wk_pull_port = dir[id].wk_pull_port;
    cfg.wk_offer_port = dir[id].wk_offer_port;
    cfg.wk_pull_reply_port = dir[id].wk_pull_reply_port;
    transports.push_back(net.transport(id));
    nodes.push_back(std::make_unique<core::Node>(
        cfg, ids[id], dir, *transports.back(), rng.next(),
        [&](const core::Node::Delivery&) { ++delivered; }));
  }
  // One shared ring: with a single-threaded pump, record order is temporal
  // order, so both nodes' events interleave correctly.
  TraceRing ring(4096);
  for (auto& n : nodes) n->set_trace(&ring);

  util::Bytes data = {'h', 'i'};
  nodes[0]->multicast(util::ByteSpan(data));
  for (int round = 0; round < 4 && delivered == 0; ++round) {
    for (auto& n : nodes) n->on_round();
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (auto& n : nodes) poll_node(*n);
    }
  }
  ASSERT_EQ(delivered, 1u);

  const EventKind want[] = {EventKind::kOfferRecv,
                            EventKind::kPushReplySend,
                            EventKind::kPushReplyRecv,
                            EventKind::kPushDataSend,
                            EventKind::kPushDataRecv,
                            EventKind::kDeliver};
  auto events = ring.snapshot();
  std::size_t next = 0;
  for (const auto& e : events) {
    if (next < std::size(want) && e.kind == want[next]) ++next;
  }
  EXPECT_EQ(next, std::size(want))
      << "handshake stopped after step " << next << ":\n"
      << ring.to_csv();

  // The registry sees the handshake's outcome too.
  const auto& reg = nodes[1]->registry();
  EXPECT_EQ(reg.counter_value("node.delivered"), 1u);
  EXPECT_GE(reg.counter_value("chan.offer.read"), 1u);
}

TEST(Export, TimeSeriesCsvRoundTrips) {
  TimeSeries ts({"t", "a", "b"});
  ts.add_row({0, 1, 2});
  ts.add_row({1, 3.5, 4});
  std::string csv = ts.to_csv();
  EXPECT_EQ(csv.rfind("t,a,b\n", 0), 0u);
  EXPECT_NE(csv.find("1,3.5,4"), std::string::npos);
  EXPECT_EQ(ts.rows(), 2u);
  EXPECT_THROW(ts.add_row({1, 2}), std::invalid_argument);
}

TEST(Export, JsonEscapeHandlesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

}  // namespace
}  // namespace drum::obs
