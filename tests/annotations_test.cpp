// Tests for drum/check/annotations.hpp — the capability-annotation layer
// that DESIGN.md §11 builds on. Two contracts matter:
//
//  1. On compilers without the thread-safety analysis (GCC is tier-1), every
//     DRUM_* macro expands to *exactly nothing* — the annotations must be
//     free. Asserted by stringifying the expansions below.
//  2. The annotated wrappers (Mutex, SharedMutex, MutexLock, SharedLock)
//     behave exactly like the std types they replace, including the
//     BasicLockable face MutexLock exposes for condition_variable_any.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "drum/check/annotations.hpp"

namespace drum::check {
namespace {

// -- 1. macro expansion ------------------------------------------------------

#define DRUM_TEST_STR2(x) #x
#define DRUM_TEST_STR(x) DRUM_TEST_STR2(x)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DRUM_TEST_HAVE_ANALYSIS 1
#endif
#endif

#ifndef DRUM_TEST_HAVE_ANALYSIS
// GCC / MSVC / old clang: the whole annotation vocabulary must vanish. A
// non-empty expansion would mean the "annotations are free on tier-1" claim
// in the header is a lie — and that GCC would be parsing attribute syntax it
// does not implement.
static_assert(sizeof(DRUM_TEST_STR(DRUM_GUARDED_BY(mu_))) == 1,
              "DRUM_GUARDED_BY must expand to nothing without the analysis");
static_assert(sizeof(DRUM_TEST_STR(DRUM_PT_GUARDED_BY(mu_))) == 1,
              "DRUM_PT_GUARDED_BY must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_REQUIRES(mu_))) == 1,
              "DRUM_REQUIRES must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_REQUIRES_SHARED(mu_))) == 1,
              "DRUM_REQUIRES_SHARED must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_ACQUIRE(mu_))) == 1,
              "DRUM_ACQUIRE must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_RELEASE(mu_))) == 1,
              "DRUM_RELEASE must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_TRY_ACQUIRE(true, mu_))) == 1,
              "DRUM_TRY_ACQUIRE must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_EXCLUDES(mu_))) == 1,
              "DRUM_EXCLUDES must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_CAPABILITY("mutex"))) == 1,
              "DRUM_CAPABILITY must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_SCOPED_CAPABILITY)) == 1,
              "DRUM_SCOPED_CAPABILITY must expand to nothing");
static_assert(sizeof(DRUM_TEST_STR(DRUM_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "DRUM_NO_THREAD_SAFETY_ANALYSIS must expand to nothing");
#else
// Clang with the analysis: the macros must expand to real attributes.
static_assert(sizeof(DRUM_TEST_STR(DRUM_GUARDED_BY(mu_))) > 1,
              "DRUM_GUARDED_BY must expand to an attribute under clang");
#endif

// The wrappers must be drop-in: same size as the std types they forward to,
// so swapping std::mutex -> check::Mutex never changes an ABI or a cache
// layout.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "check::Mutex must add nothing to std::mutex");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "check::SharedMutex must add nothing to std::shared_mutex");

// -- 2. wrapper behavior -----------------------------------------------------

TEST(Annotations, MutexExcludesAndReleases) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.try_lock());  // held: a second acquire must fail
  }
  EXPECT_TRUE(mu.try_lock());  // destructor released it
  mu.unlock();
}

TEST(Annotations, MutexLockBasicLockableRoundTrip) {
  // condition_variable_any drives MutexLock through unlock()/lock() cycles;
  // the owned_ flag must keep the destructor from double-unlocking.
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
    EXPECT_TRUE(mu.try_lock());  // really released
    mu.unlock();
    lock.lock();  // reacquire so the destructor has something to release
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Annotations, MutexLockWorksWithConditionVariableAny) {
  Mutex mu;
  std::condition_variable_any cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    cv.wait(lock, [&]() DRUM_REQUIRES(mu) { return ready; });
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(Annotations, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  SharedLock r1(mu);
  SharedLock r2(mu);           // second reader enters alongside the first
  EXPECT_FALSE(mu.try_lock()); // but a writer cannot
}

TEST(Annotations, SharedMutexWriterExcludesEveryone) {
  SharedMutex mu;
  {
    SharedMutexLock w(mu);
    EXPECT_FALSE(mu.try_lock_shared());
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock_shared());  // released on scope exit
  mu.unlock_shared();
}

TEST(Annotations, MutexSerializesAcrossThreads) {
  Mutex mu;
  int counter = 0;  // guarded by mu at runtime; racy without it
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

}  // namespace
}  // namespace drum::check
