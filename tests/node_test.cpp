// Focused Node-level tests: construction contracts, manual round driving
// over the in-memory network, per-channel budget enforcement, port rotation,
// directory updates, and rejection of invalid input — below the harness
// layer, so failures localize precisely.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "drum/check/check.hpp"
#include "drum/core/node.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/net/mem_transport.hpp"

namespace drum::core {
namespace {

// One full ingress cycle, the way a standalone driver runs the DESIGN.md §12
// pipeline: drain this node's sockets into a private batch, verify, ingest.
void poll_node(Node& n) {
  ingress::IngressBatch batch;
  n.drain_ingress(batch);
  batch.dispatch();
}

struct Pair {
  util::Rng rng{5};
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<Peer> dir;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::vector<Node::Delivery>> got;
  /// Optional per-delivery hook — runs on the delivering thread, inside the
  /// node's ingest(). Lets tests observe or act while a node is "entered".
  std::function<void(std::uint32_t, const Node::Delivery&)> on_delivery;

  explicit Pair(std::size_t n, Variant v = Variant::kDrum) {
    // Fresh world, deliberately re-seeded: open a new nonce-tracker window
    // (same seed => same keys and nonce streams as the previous fixture).
    check::reset_nonce_tracker();
    dir.resize(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      ids.push_back(crypto::Identity::generate(rng));
      dir[id] = {id,
                 id,
                 static_cast<std::uint16_t>(3000 + 3 * id),
                 static_cast<std::uint16_t>(3001 + 3 * id),
                 static_cast<std::uint16_t>(3002 + 3 * id),
                 ids[id].sign_public(),
                 ids[id].dh_public(),
                 true};
    }
    got.resize(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      transports.push_back(net.transport(id));
      NodeConfig cfg = make_node_config(v, id);
      cfg.wk_pull_port = dir[id].wk_pull_port;
      cfg.wk_offer_port = dir[id].wk_offer_port;
      cfg.wk_pull_reply_port = dir[id].wk_pull_reply_port;
      nodes.push_back(std::make_unique<Node>(
          cfg, ids[id], dir, *transports.back(), rng.next(),
          [this, id](const Node::Delivery& d) {
            got[id].push_back(d);
            if (on_delivery) on_delivery(id, d);
          }));
    }
  }

  void run(std::size_t rounds, int sweeps = 4) {
    for (std::size_t r = 0; r < rounds; ++r) {
      for (auto& n : nodes) n->on_round();
      for (int s = 0; s < sweeps; ++s) {
        for (auto& n : nodes) poll_node(*n);
      }
    }
  }
};

TEST(Node, RequiresIdIndexedDirectory) {
  util::Rng rng(1);
  net::MemNetwork net;
  auto tr = net.transport(0);
  auto id = crypto::Identity::generate(rng);
  std::vector<Peer> bad_dir(2);
  bad_dir[0].id = 1;  // mis-indexed
  bad_dir[1].id = 0;
  NodeConfig cfg = make_node_config(Variant::kDrum, 0);
  cfg.wk_pull_port = 100;
  cfg.wk_offer_port = 101;
  EXPECT_THROW(Node(cfg, id, bad_dir, *tr, 1, nullptr),
               std::invalid_argument);
}

TEST(Node, FailsOnTakenWellKnownPort) {
  util::Rng rng(2);
  net::MemNetwork net;
  auto tr = net.transport(0);
  auto blocker = tr->bind(100);
  ASSERT_TRUE(blocker);
  auto id = crypto::Identity::generate(rng);
  std::vector<Peer> dir(1);
  dir[0] = {0, 0, 100, 101, 0, id.sign_public(), id.dh_public(), true};
  NodeConfig cfg = make_node_config(Variant::kDrum, 0);
  cfg.wk_pull_port = 100;
  cfg.wk_offer_port = 101;
  EXPECT_THROW(Node(cfg, id, dir, *tr, 1, nullptr), std::runtime_error);
}

TEST(Node, MulticastAssignsSequentialIds) {
  Pair p(4);
  util::Bytes data = {1};
  auto a = p.nodes[0]->multicast(util::ByteSpan(data));
  auto b = p.nodes[0]->multicast(util::ByteSpan(data));
  EXPECT_EQ(a.source, 0u);
  EXPECT_EQ(b.seqno, a.seqno + 1);
  EXPECT_TRUE(p.nodes[0]->has_message(a));
  EXPECT_EQ(p.nodes[0]->buffered(), 2u);
}

TEST(Node, DeliversToAllAndExactlyOnce) {
  Pair p(6);
  util::Bytes data = {'m', 's', 'g'};
  p.nodes[2]->multicast(util::ByteSpan(data));
  p.run(6);
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    if (i == 2) continue;
    ASSERT_EQ(p.got[i].size(), 1u) << "node " << i;
    EXPECT_EQ(p.got[i][0].msg.payload, data);
    EXPECT_EQ(p.got[i][0].msg.id.source, 2u);
    EXPECT_GE(p.got[i][0].hops, 1u);
  }
}

#ifdef DRUM_CHECKED
struct EntryFailure {};
[[noreturn]] void entry_failure_handler(check::Kind, const char*, const char*,
                                        int, const std::string&) {
  throw EntryFailure{};
}

// Regression for the entry guard (node.cpp EntryGuard): a second thread
// entering a node while another thread is inside the ingress cycle must trip
// DRUM_ASSERT instead of silently racing. The hook fires while the main
// thread is mid-ingest (delivery callbacks run inside ingest()), which is
// exactly the window the runtime's per-node mutex is supposed to close.
TEST(Node, CrossThreadEntryTripsTheGuard) {
  Pair p(4);
  std::atomic<bool> tripped{false};
  std::atomic<bool> probed{false};
  p.on_delivery = [&](std::uint32_t id, const Node::Delivery&) {
    if (probed.exchange(true)) return;
    std::thread intruder([&, id] {
      check::FailureHandler prev =
          check::set_failure_handler(&entry_failure_handler);
      util::Bytes data = {7};
      try {
        p.nodes[id]->multicast(util::ByteSpan(data));
      } catch (const EntryFailure&) {
        tripped.store(true);
      }
      check::set_failure_handler(prev);
    });
    intruder.join();  // main thread parks inside ingest() until probe ends
  };
  util::Bytes data = {1};
  p.nodes[0]->multicast(util::ByteSpan(data));
  p.run(4);
  EXPECT_TRUE(probed.load()) << "delivery hook never fired";
  EXPECT_TRUE(tripped.load())
      << "concurrent cross-thread node entry was not detected";
}

// The legal counterpart: the SAME thread may nest — an application
// multicasting from its delivery callback re-enters the node it is already
// inside, and the guard must recognize the owner and wave it through.
TEST(Node, SameThreadNestedMulticastIsLegal) {
  Pair p(4);
  std::atomic<bool> nested{false};
  p.on_delivery = [&](std::uint32_t id, const Node::Delivery&) {
    if (nested.exchange(true)) return;
    util::Bytes reply = {'r'};
    p.nodes[id]->multicast(util::ByteSpan(reply));  // nested entry
  };
  util::Bytes data = {1};
  p.nodes[0]->multicast(util::ByteSpan(data));
  p.run(6);
  EXPECT_TRUE(nested.load());
  // The nested multicast is a real message: it disseminates too.
  std::size_t reply_copies = 0;
  for (auto& deliveries : p.got) {
    for (auto& d : deliveries) {
      if (d.msg.payload == util::Bytes{'r'}) ++reply_copies;
    }
  }
  EXPECT_GE(reply_copies, 1u);
}
#endif  // DRUM_CHECKED

TEST(Node, PullOnlyAndPushOnlyAlsoDeliver) {
  for (auto v : {Variant::kPush, Variant::kPull}) {
    Pair p(6, v);
    util::Bytes data = {'x'};
    p.nodes[0]->multicast(util::ByteSpan(data));
    p.run(8);
    std::size_t received = 0;
    for (std::size_t i = 1; i < p.nodes.size(); ++i) {
      received += p.got[i].size();
    }
    EXPECT_EQ(received, 5u) << variant_name(v);
  }
}

TEST(Node, RoundCounterGrowsWithDistance) {
  // A message delivered after k rounds carries round counter ~k (paper §8.1).
  Pair p(8);
  util::Bytes data = {'h'};
  p.nodes[0]->multicast(util::ByteSpan(data));
  p.run(1);
  std::vector<std::uint32_t> first_wave;
  for (std::size_t i = 1; i < 8; ++i) {
    for (auto& d : p.got[i]) first_wave.push_back(d.hops);
  }
  ASSERT_FALSE(first_wave.empty());
  for (auto h : first_wave) EXPECT_LE(h, 2u);
  p.run(5);
  for (std::size_t i = 1; i < 8; ++i) {
    ASSERT_EQ(p.got[i].size(), 1u);
    EXPECT_LE(p.got[i][0].hops, 7u);
  }
}

// Directory with 3 peers but only node 0 live: a quiet network where the
// test controls every datagram (the Pair fixture's nodes gossip on their
// own, which perturbs exact budget counts).
struct Solo {
  util::Rng rng{5};
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<Peer> dir;
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<Node> node;
  std::vector<Node::Delivery> got;

  explicit Solo(Variant v = Variant::kDrum) {
    check::reset_nonce_tracker();  // fresh deliberately re-seeded world
    dir.resize(3);
    for (std::uint32_t id = 0; id < 3; ++id) {
      ids.push_back(crypto::Identity::generate(rng));
      dir[id] = {id,
                 id,
                 static_cast<std::uint16_t>(3000 + 3 * id),
                 static_cast<std::uint16_t>(3001 + 3 * id),
                 static_cast<std::uint16_t>(3002 + 3 * id),
                 ids[id].sign_public(),
                 ids[id].dh_public(),
                 true};
    }
    transport = net.transport(0);
    NodeConfig cfg = make_node_config(v, 0);
    cfg.wk_pull_port = 3000;
    cfg.wk_offer_port = 3001;
    cfg.wk_pull_reply_port = 3002;
    node = std::make_unique<Node>(
        cfg, ids[0], dir, *transport, rng.next(),
        [this](const Node::Delivery& d) { got.push_back(d); });
  }
};

TEST(Node, FloodedChannelIsBudgetBoundedPerRound) {
  Solo p;
  // Flood node 0's pull-request port with garbage before its round.
  util::Bytes junk = {static_cast<std::uint8_t>(MsgType::kPullRequest), 9, 9};
  for (int i = 0; i < 500; ++i) {
    p.net.send_raw(net::Address{77, 1}, net::Address{0, 3000},
                   util::ByteSpan(junk));
  }
  poll_node(*p.node);
  // Budget for pull-requests in Drum with F=4 is 2.
  EXPECT_EQ(p.node->registry().counter_value("node.datagrams_read"), 2u);
  EXPECT_EQ(p.node->registry().counter_value("node.decode_errors"), 2u);
  // The round tick flushes the rest unread.
  p.node->on_round();
  EXPECT_GE(p.node->registry().counter_value("node.flushed_unread"), 498u);
  // Fresh round, fresh budget.
  for (int i = 0; i < 10; ++i) {
    p.net.send_raw(net::Address{77, 1}, net::Address{0, 3000},
                   util::ByteSpan(junk));
  }
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.datagrams_read"), 4u);
}

TEST(Node, FloodOnPullPortDoesNotConsumeOfferBudget) {
  // The separate-bounds property at unit level: exhaust the pull-request
  // budget, then a push-offer must still be processed.
  Solo p;
  util::Bytes junk = {static_cast<std::uint8_t>(MsgType::kPullRequest), 1};
  for (int i = 0; i < 50; ++i) {
    p.net.send_raw(net::Address{77, 1}, net::Address{0, 3000},
                   util::ByteSpan(junk));
  }
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.push_offers_answered"),
            0u);
  // A genuine push-offer from node 1 (who targets node 0 via its own round
  // sometimes; force it by crafting a valid offer ourselves).
  auto key = p.ids[1].derive_pair_key(p.ids[0].dh_public());
  PushOffer offer;
  offer.sender = 1;
  offer.boxed_reply_port =
      crypto::portbox_seal_port(util::ByteSpan(key), 49999, p.rng);
  p.net.send_raw(net::Address{1, 60000}, net::Address{0, 3001},
                 util::ByteSpan(encode(offer)));
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.push_offers_answered"), 1u);
}

TEST(Node, FabricatedControlCountsAsBoxFailure) {
  Solo p;
  PushOffer offer;
  offer.sender = 1;  // real member id, but the box is garbage
  offer.boxed_reply_port = util::Bytes(crypto::kPortBoxOverhead + 2, 0xAB);
  p.net.send_raw(net::Address{9, 9}, net::Address{0, 3001},
                 util::ByteSpan(encode(offer)));
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.box_failures"), 1u);
  EXPECT_EQ(p.node->registry().counter_value("node.push_offers_answered"), 0u);
}

TEST(Node, UnknownOrSelfSenderRejected) {
  Solo p;
  PushOffer offer;
  offer.sender = 99;  // not in the directory
  offer.boxed_reply_port = util::Bytes(crypto::kPortBoxOverhead + 2, 1);
  p.net.send_raw(net::Address{9, 9}, net::Address{0, 3001},
                 util::ByteSpan(encode(offer)));
  offer.sender = 0;  // claims to be the receiver itself
  p.net.send_raw(net::Address{9, 9}, net::Address{0, 3001},
                 util::ByteSpan(encode(offer)));
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.unknown_sender"), 2u);
}

TEST(Node, ForgedDataSignatureRejected) {
  Pair p(3);
  // Deliver a PushData with a bogus signature straight to node 0's current
  // push-data port. We don't know the port (it's random!), so use the pull
  // path instead: craft a PullReply to the port node 0 boxed in its own
  // pull-request. Simplest robust approach: tamper a real message mid-run.
  DataMessage msg;
  msg.id = {1, 0};
  msg.payload = {1, 2, 3};
  msg.round_counter = 1;
  // signature left zeroed: invalid.
  PullReply reply{1, {msg}};
  // Spray it at the whole ephemeral range? No — bind order is deterministic
  // per seed, but the clean way is via the node's own stats after a flood
  // on the data channel in the wk-ports variant:
  Solo q(Variant::kDrumWkPorts);
  q.net.send_raw(net::Address{9, 9}, net::Address{0, 3002},
                 util::ByteSpan(encode(reply)));
  poll_node(*q.node);
  EXPECT_EQ(q.node->registry().counter_value("node.sig_failures"), 1u);
  EXPECT_EQ(q.node->registry().counter_value("node.delivered"), 0u);
}

// Two identical single-node worlds fed the same forged/valid data frames:
// one drains a whole round's backlog in one ingress batch (a single poll),
// the other polls after every datagram so each batch holds one frame. Blame
// attribution — who gets the sig-failure penalty, what the counters say —
// must not depend on the batching window (DESIGN.md §12).
TEST(Node, BatchVerifyBlameAttributionMatchesSingleFrameVerify) {
  struct World {
    util::Rng rng{5};
    net::MemNetwork net;
    std::vector<crypto::Identity> ids;
    std::vector<Peer> dir;
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<Node> node;
    std::vector<Node::Delivery> got;

    World() {
      check::reset_nonce_tracker();  // fresh deliberately re-seeded world
      dir.resize(3);
      for (std::uint32_t id = 0; id < 3; ++id) {
        ids.push_back(crypto::Identity::generate(rng));
        dir[id] = {id,
                   id,
                   static_cast<std::uint16_t>(3000 + 3 * id),
                   static_cast<std::uint16_t>(3001 + 3 * id),
                   static_cast<std::uint16_t>(3002 + 3 * id),
                   ids[id].sign_public(),
                   ids[id].dh_public(),
                   true};
      }
      transport = net.transport(0);
      // wk-ports variant: the data port is pinned, so forged frames can be
      // aimed without knowing the rotating random port. Scoring on: the
      // test's whole point is that penalties land identically.
      NodeConfig cfg = make_node_config(Variant::kDrumWkPorts, 0);
      cfg.wk_pull_port = 3000;
      cfg.wk_offer_port = 3001;
      cfg.wk_pull_reply_port = 3002;
      cfg.scoring.enabled = true;
      node = std::make_unique<Node>(
          cfg, ids[0], dir, *transport, rng.next(),
          [this](const Node::Delivery& d) { got.push_back(d); });
    }
  };

  // Drives one world through `kRounds` rounds of 4 frames x 3 messages.
  // Frame f's corruption mask = f % 8, so every combination of corrupt
  // positions within a frame (none, first, middle, last, pairs, all) occurs
  // at every batch position across the run. Round 2 additionally repeats
  // one message id across two frames of the same batch — the copy in the
  // later frame carries a BAD signature, and must still count as a
  // duplicate (never a forgery): the single-frame path deduped it at parse
  // time without ever checking the signature.
  constexpr int kRounds = 6;
  constexpr int kFramesPerRound = 4;  // = the pull_data reception budget
  constexpr int kMsgsPerFrame = 3;
  auto drive = [&](World& w, bool batched) {
    std::uint64_t seqno = 0;
    for (int r = 0; r < kRounds; ++r) {
      w.node->on_round();
      for (int j = 0; j < kFramesPerRound; ++j) {
        const int f = r * kFramesPerRound + j;
        const std::uint32_t frame_sender = 1 + (f % 2);
        PullReply reply;
        reply.sender = frame_sender;
        for (int m = 0; m < kMsgsPerFrame; ++m) {
          DataMessage msg;
          const std::uint32_t source = 1 + ((f + m) % 2);
          const bool dup_in_batch = r == 2 && j == 1 && m == 0;
          // The duplicate reuses round-2 frame-0 message-0's id (seqno
          // arithmetic: frames are filled in order, 3 msgs each).
          msg.id = {dup_in_batch ? 1u + ((f - 1) % 2) : source,
                    dup_in_batch ? seqno - kMsgsPerFrame : seqno};
          ++seqno;
          msg.round_counter = 1;
          msg.payload = {static_cast<std::uint8_t>(f),
                         static_cast<std::uint8_t>(m)};
          const bool corrupt = dup_in_batch || ((f % 8) >> m) & 1;
          if (!corrupt) {
            msg.signature =
                w.ids[msg.id.source].sign(util::ByteSpan(msg.signed_bytes()));
          }  // else: zeroed signature, invalid
          reply.messages.push_back(std::move(msg));
        }
        w.net.send_raw(net::Address{frame_sender, 9}, net::Address{0, 3002},
                       util::ByteSpan(encode(reply)));
        if (!batched) poll_node(*w.node);  // one-frame batches
      }
      // The whole round's backlog in one batch.
      if (batched) poll_node(*w.node);
    }
  };

  World batched;
  World single;
  drive(batched, true);
  drive(single, false);

  // Deliveries byte-identical, in the same order.
  ASSERT_EQ(batched.got.size(), single.got.size());
  for (std::size_t i = 0; i < batched.got.size(); ++i) {
    EXPECT_EQ(batched.got[i].msg.id, single.got[i].msg.id);
    EXPECT_EQ(batched.got[i].msg.payload, single.got[i].msg.payload);
  }

  // Counters byte-identical.
  for (const char* name :
       {"node.delivered", "node.duplicates", "node.sig_failures",
        "node.decode_errors", "node.box_failures", "node.datagrams_read",
        "node.flushed_unread", "node.unknown_sender"}) {
    EXPECT_EQ(batched.node->registry().counter_value(name),
              single.node->registry().counter_value(name))
        << name;
  }
  // Sanity: the run actually exercised forgeries, dupes and deliveries.
  EXPECT_GT(batched.node->registry().counter_value("node.sig_failures"), 0u);
  EXPECT_GT(batched.node->registry().counter_value("node.duplicates"), 0u);
  EXPECT_GT(batched.node->registry().counter_value("node.delivered"), 0u);

  // Blame attribution identical: per-peer scores and penalty tallies.
  auto& bs = batched.node->score_table();
  auto& ss = single.node->score_table();
  for (std::uint32_t p = 1; p <= 2; ++p) {
    EXPECT_EQ(bs.score(p), ss.score(p)) << "peer " << p;
    EXPECT_EQ(bs.greylisted(p), ss.greylisted(p)) << "peer " << p;
  }
  EXPECT_EQ(bs.penalties_decode(), ss.penalties_decode());
  EXPECT_EQ(bs.penalties_overuse(), ss.penalties_overuse());
  EXPECT_EQ(bs.penalties_futility(), ss.penalties_futility());
  EXPECT_EQ(bs.greylist_entries(), ss.greylist_entries());
  EXPECT_GT(bs.penalties_decode(), 0u);  // forgeries actually drew blame
}

TEST(Node, CarryOverKeepsBacklogAcrossRounds) {
  // discard_unread=false ablation: the flood survives the round boundary
  // and keeps eating future budgets (why §4's discard matters).
  util::Rng rng(9);
  net::MemNetwork net;
  auto id = crypto::Identity::generate(rng);
  std::vector<Peer> dir(2);
  dir[0] = {0, 0, 3000, 3001, 0, id.sign_public(), id.dh_public(), true};
  auto id1 = crypto::Identity::generate(rng);
  dir[1] = {1, 1, 3100, 3101, 0, id1.sign_public(), id1.dh_public(), true};
  auto tr = net.transport(0);
  NodeConfig cfg = make_node_config(Variant::kDrum, 0);
  cfg.wk_pull_port = 3000;
  cfg.wk_offer_port = 3001;
  cfg.discard_unread = false;
  Node node(cfg, id, dir, *tr, 3, nullptr);

  util::Bytes junk = {static_cast<std::uint8_t>(MsgType::kPullRequest), 5};
  for (int i = 0; i < 20; ++i) {
    net.send_raw(net::Address{66, 6}, net::Address{0, 3000},
                 util::ByteSpan(junk));
  }
  poll_node(node);
  auto read_r1 = node.registry().counter_value("node.datagrams_read");
  EXPECT_EQ(read_r1, 2u);  // budget
  node.on_round();
  EXPECT_EQ(node.registry().counter_value("node.flushed_unread"),
            0u);  // nothing discarded
  poll_node(node);
  // The stale backlog is read (and burns budget) in the new round too.
  EXPECT_EQ(node.registry().counter_value("node.datagrams_read"),
            read_r1 + 2);
}

TEST(Node, UpdatePeersValidation) {
  Pair p(3);
  std::vector<Peer> missing_self = p.dir;
  missing_self[0].present = false;
  EXPECT_THROW(p.nodes[0]->update_peers(missing_self), std::invalid_argument);

  std::vector<Peer> misindexed = p.dir;
  misindexed[1].id = 2;
  EXPECT_THROW(p.nodes[0]->update_peers(misindexed), std::invalid_argument);

  std::vector<Peer> drop_two = p.dir;
  drop_two[2].present = false;
  EXPECT_NO_THROW(p.nodes[0]->update_peers(drop_two));
}

TEST(Node, RemovedPeerNoLongerAccepted) {
  Solo p;
  auto dir = p.dir;
  dir[1].present = false;
  p.node->update_peers(dir);
  // Node 1 sends a (genuine) offer; node 0 must treat it as unknown.
  auto key = p.ids[1].derive_pair_key(p.ids[0].dh_public());
  PushOffer offer;
  offer.sender = 1;
  offer.boxed_reply_port =
      crypto::portbox_seal_port(util::ByteSpan(key), 50000, p.rng);
  p.net.send_raw(net::Address{1, 60000}, net::Address{0, 3001},
                 util::ByteSpan(encode(offer)));
  poll_node(*p.node);
  EXPECT_EQ(p.node->registry().counter_value("node.unknown_sender"), 1u);
}

TEST(Node, RandomReplyPortsRotateAcrossRoundsAndAreEncrypted) {
  // Observe the pull-reply ports node 0 advertises: stand in for peer 1 by
  // binding its well-known pull port ourselves and opening the boxes with
  // the pair key (paper §4: ports are random, fresh, and encrypted).
  util::Rng rng(6);
  net::MemNetwork net;
  auto id0 = crypto::Identity::generate(rng);
  auto id1 = crypto::Identity::generate(rng);
  std::vector<Peer> dir(2);
  dir[0] = {0, 0, 3000, 3001, 0, id0.sign_public(), id0.dh_public(), true};
  dir[1] = {1, 1, 3100, 3101, 0, id1.sign_public(), id1.dh_public(), true};

  auto peer_tr = net.transport(1);
  auto peer_pull_sock = peer_tr->bind(3100);  // we play peer 1
  ASSERT_TRUE(peer_pull_sock);

  auto node_tr = net.transport(0);
  NodeConfig cfg = make_node_config(Variant::kDrum, 0);
  // Pull-only view towards the single peer: with one candidate, every
  // round's pull-request goes to "peer 1".
  cfg.wk_pull_port = 3000;
  cfg.wk_offer_port = 3001;
  Node node(cfg, id0, dir, *node_tr, 77, nullptr);

  auto key = id1.derive_pair_key(id0.dh_public());
  std::set<std::uint16_t> ports;
  int requests = 0;
  for (int r = 0; r < 8; ++r) {
    node.on_round();
    while (auto d = peer_pull_sock->recv()) {
      auto req = decode_pull_request(util::ByteSpan(d->payload), 4096);
      EXPECT_EQ(req.sender, 0u);
      auto port = crypto::portbox_open_port(
          util::ByteSpan(key), util::ByteSpan(req.boxed_reply_port));
      ASSERT_TRUE(port.has_value());  // encrypted, but we hold the pair key
      EXPECT_GE(*port, 49152);        // ephemeral range
      ports.insert(*port);
      ++requests;
    }
  }
  EXPECT_GE(requests, 8);
  // Fresh random port (almost) every round.
  EXPECT_GE(ports.size(), 6u);
}

}  // namespace
}  // namespace drum::core

namespace drum::core {
namespace {

TEST(Node, SurvivesRandomGarbageOnEveryChannel) {
  // Fuzz: spray structured and unstructured garbage at the node's
  // well-known ports (and guess at its ephemeral range) for many rounds.
  // The node must never crash, never deliver, and account for everything.
  Solo p(Variant::kDrumWkPorts);  // wk pull-reply port = one more target
  util::Rng fuzz(0xF022);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 60; ++i) {
      util::Bytes junk(fuzz.below(96));
      for (auto& b : junk) b = static_cast<std::uint8_t>(fuzz.below(256));
      if (!junk.empty() && fuzz.chance(0.7)) {
        junk[0] = static_cast<std::uint8_t>(1 + fuzz.below(5));
      }
      std::uint16_t port;
      switch (fuzz.below(4)) {
        case 0: port = 3000; break;          // wk pull
        case 1: port = 3001; break;          // wk offer
        case 2: port = 3002; break;          // wk pull-reply (ablation)
        default:                              // ephemeral guesses
          port = static_cast<std::uint16_t>(49152 + fuzz.below(16384));
      }
      p.net.send_raw(net::Address{0xBAD, 1}, net::Address{0, port},
                     util::ByteSpan(junk));
    }
    poll_node(*p.node);
    p.node->on_round();
  }
  const auto& reg = p.node->registry();
  EXPECT_EQ(reg.counter_value("node.delivered"), 0u);
  // Everything read was either rejected or flushed; totals reconcile.
  EXPECT_GT(reg.counter_value("node.datagrams_read"), 0u);
  EXPECT_GT(reg.counter_value("node.decode_errors") +
                reg.counter_value("node.box_failures") +
                reg.counter_value("node.unknown_sender"),
            0u);
}

}  // namespace
}  // namespace drum::core
