// Malformed-wire tests for the five decoders in core/message.hpp — the
// node's untrusted input surface (paper §4: fabricated messages are the
// attack). Table-driven over every message type: truncation at EVERY prefix
// length, over-length trailing bytes, bad type bytes, and the max_digest /
// max_messages / max_payload anti-amplification caps. The contract
// everywhere: decode fully or throw util::DecodeError — nothing else.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "drum/core/message.hpp"
#include "drum/util/bytes.hpp"

namespace drum::core {
namespace {

constexpr std::size_t kMaxDigest = 4096;
constexpr std::size_t kMaxMessages = 80;
constexpr std::size_t kMaxPayload = 1024;

DataMessage make_message(std::uint32_t source, std::uint64_t seqno,
                         std::size_t payload_len) {
  DataMessage m;
  m.id = MessageId{source, seqno};
  m.round_counter = 3;
  m.payload = util::Bytes(payload_len, 0x5A);
  for (std::size_t i = 0; i < m.signature.size(); ++i) {
    m.signature[i] = static_cast<std::uint8_t>(i);
  }
  return m;
}

Digest make_digest(std::size_t n) {
  Digest d;
  for (std::size_t i = 0; i < n; ++i) {
    d.push_back(MessageId{static_cast<std::uint32_t>(i), 100 + i});
  }
  return d;
}

/// One row per wire message type: a valid encoding plus its decoder bound to
/// the default caps.
struct WireCase {
  std::string name;
  util::Bytes wire;
  std::function<void(util::ByteSpan)> decode;
};

std::vector<WireCase> all_cases() {
  std::vector<WireCase> cases;

  PullRequest pull_req;
  pull_req.sender = 7;
  pull_req.digest = make_digest(3);
  pull_req.boxed_reply_port = util::Bytes(30, 0xAB);
  pull_req.cert = util::Bytes(16, 0xCD);
  cases.push_back({"PullRequest", encode(pull_req), [](util::ByteSpan w) {
                     decode_pull_request(w, kMaxDigest);
                   }});

  PullReply pull_rep;
  pull_rep.sender = 8;
  pull_rep.messages = {make_message(1, 10, 5), make_message(2, 20, 0)};
  cases.push_back({"PullReply", encode(pull_rep), [](util::ByteSpan w) {
                     decode_pull_reply(w, kMaxMessages, kMaxPayload);
                   }});

  PushOffer offer;
  offer.sender = 9;
  offer.boxed_reply_port = util::Bytes(30, 0xEF);
  cases.push_back({"PushOffer", encode(offer), [](util::ByteSpan w) {
                     decode_push_offer(w);
                   }});

  PushReply push_rep;
  push_rep.sender = 10;
  push_rep.digest = make_digest(2);
  push_rep.boxed_data_port = util::Bytes(30, 0x12);
  cases.push_back({"PushReply", encode(push_rep), [](util::ByteSpan w) {
                     decode_push_reply(w, kMaxDigest);
                   }});

  PushData push_data;
  push_data.sender = 11;
  push_data.messages = {make_message(3, 30, 17)};
  cases.push_back({"PushData", encode(push_data), [](util::ByteSpan w) {
                     decode_push_data(w, kMaxMessages, kMaxPayload);
                   }});

  return cases;
}

TEST(Wire, ValidEncodingsDecode) {
  for (const auto& c : all_cases()) {
    SCOPED_TRACE(c.name);
    EXPECT_NO_THROW(c.decode(util::ByteSpan(c.wire)));
  }
}

TEST(Wire, EveryTruncationThrowsDecodeError) {
  for (const auto& c : all_cases()) {
    SCOPED_TRACE(c.name);
    for (std::size_t len = 0; len < c.wire.size(); ++len) {
      SCOPED_TRACE("prefix length " + std::to_string(len));
      EXPECT_THROW(c.decode(util::ByteSpan(c.wire.data(), len)),
                   util::DecodeError);
    }
  }
}

TEST(Wire, TrailingBytesThrowDecodeError) {
  for (const auto& c : all_cases()) {
    SCOPED_TRACE(c.name);
    for (std::size_t extra : {std::size_t{1}, std::size_t{7}}) {
      util::Bytes longer = c.wire;
      longer.insert(longer.end(), extra, 0x00);
      EXPECT_THROW(c.decode(util::ByteSpan(longer)), util::DecodeError);
    }
  }
}

TEST(Wire, WrongOrGarbageTypeByteThrowsDecodeError) {
  for (const auto& c : all_cases()) {
    SCOPED_TRACE(c.name);
    for (std::uint8_t type : {std::uint8_t{0}, std::uint8_t{6},
                              std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
      util::Bytes bad = c.wire;
      bad[0] = type;
      EXPECT_THROW(c.decode(util::ByteSpan(bad)), util::DecodeError);
    }
    // Every *other* valid type byte must also be rejected — a decoder must
    // not parse a different message's body.
    for (std::uint8_t type = 1; type <= 5; ++type) {
      if (type == c.wire[0]) continue;
      util::Bytes bad = c.wire;
      bad[0] = type;
      EXPECT_THROW(c.decode(util::ByteSpan(bad)), util::DecodeError);
    }
  }
}

TEST(Wire, PeekTypeMatchesAndRejectsEmpty) {
  const auto cases = all_cases();
  EXPECT_EQ(peek_type(util::ByteSpan(cases[0].wire)), MsgType::kPullRequest);
  EXPECT_EQ(peek_type(util::ByteSpan(cases[1].wire)), MsgType::kPullReply);
  EXPECT_EQ(peek_type(util::ByteSpan(cases[2].wire)), MsgType::kPushOffer);
  EXPECT_EQ(peek_type(util::ByteSpan(cases[3].wire)), MsgType::kPushReply);
  EXPECT_EQ(peek_type(util::ByteSpan(cases[4].wire)), MsgType::kPushData);
  EXPECT_THROW(peek_type(util::ByteSpan()), util::DecodeError);
}

// ---- anti-amplification caps --------------------------------------------
// A fabricated packet claiming a huge digest/message count must be rejected
// by the cap, not allocated for.

TEST(Wire, DigestCapIsExactForPullRequest) {
  PullRequest m;
  m.sender = 1;
  m.digest = make_digest(5);
  m.boxed_reply_port = util::Bytes(30, 0x01);
  const util::Bytes wire = encode(m);
  EXPECT_NO_THROW(decode_pull_request(util::ByteSpan(wire), 5));
  EXPECT_THROW(decode_pull_request(util::ByteSpan(wire), 4),
               util::DecodeError);
}

TEST(Wire, DigestCapIsExactForPushReply) {
  PushReply m;
  m.sender = 2;
  m.digest = make_digest(4);
  m.boxed_data_port = util::Bytes(30, 0x02);
  const util::Bytes wire = encode(m);
  EXPECT_NO_THROW(decode_push_reply(util::ByteSpan(wire), 4));
  EXPECT_THROW(decode_push_reply(util::ByteSpan(wire), 3),
               util::DecodeError);
}

TEST(Wire, MessageCountCapIsExact) {
  PullReply pull;
  pull.sender = 3;
  PushData push;
  push.sender = 4;
  for (std::uint64_t i = 0; i < 3; ++i) {
    pull.messages.push_back(make_message(1, i, 4));
    push.messages.push_back(make_message(2, i, 4));
  }
  const util::Bytes pull_wire = encode(pull);
  const util::Bytes push_wire = encode(push);
  EXPECT_NO_THROW(decode_pull_reply(util::ByteSpan(pull_wire), 3,
                                    kMaxPayload));
  EXPECT_THROW(decode_pull_reply(util::ByteSpan(pull_wire), 2, kMaxPayload),
               util::DecodeError);
  EXPECT_NO_THROW(decode_push_data(util::ByteSpan(push_wire), 3,
                                   kMaxPayload));
  EXPECT_THROW(decode_push_data(util::ByteSpan(push_wire), 2, kMaxPayload),
               util::DecodeError);
}

TEST(Wire, PayloadCapIsExact) {
  PullReply m;
  m.sender = 5;
  m.messages.push_back(make_message(1, 1, 64));
  const util::Bytes wire = encode(m);
  EXPECT_NO_THROW(decode_pull_reply(util::ByteSpan(wire), kMaxMessages, 64));
  EXPECT_THROW(decode_pull_reply(util::ByteSpan(wire), kMaxMessages, 63),
               util::DecodeError);
}

}  // namespace
}  // namespace drum::core
