// Unit tests for drum::util — serialization, RNG, statistics, tables, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/spsc_ring.hpp"
#include "drum/util/stats.hpp"
#include "drum/util/table.hpp"

namespace drum::util {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  Bytes buf = w.take();

  ByteReader r{ByteSpan(buf)};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, RoundTripVariableLength) {
  ByteWriter w;
  w.str("hello gossip");
  Bytes payload = {1, 2, 3, 4, 5};
  w.bytes(ByteSpan(payload));
  w.str("");
  Bytes buf = w.take();

  ByteReader r{ByteSpan(buf)};
  EXPECT_EQ(r.str(), "hello gossip");
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ShortReadThrows) {
  Bytes buf = {1, 2, 3};
  ByteReader r{ByteSpan(buf)};
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Bytes, BadLengthPrefixThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(7);
  Bytes buf = w.take();
  ByteReader r{ByteSpan(buf)};
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Bytes, TrailingBytesDetected) {
  Bytes buf = {1, 2};
  ByteReader r{ByteSpan(buf)};
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0xff};
  EXPECT_EQ(to_hex(ByteSpan(b)), "deadbeef00ff");
  auto back = from_hex("deadbeef00ff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
  EXPECT_EQ(from_hex("abc"), std::nullopt);   // odd length
  EXPECT_EQ(from_hex("zz"), std::nullopt);    // non-hex
  EXPECT_EQ(from_hex("ABCD"), (Bytes{0xAB, 0xCD}));  // uppercase ok
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(ByteSpan(a), ByteSpan(b)));
  EXPECT_FALSE(ct_equal(ByteSpan(a), ByteSpan(c)));
  EXPECT_FALSE(ct_equal(ByteSpan(a), ByteSpan(d)));
}

// ------------------------------------------------------------------ rng

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, SampleDistinctAndExcludes) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    auto s = rng.sample(20, 5, 7);
    EXPECT_EQ(s.size(), 5u);
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 5u);
    EXPECT_EQ(uniq.count(7), 0u);
    for (auto v : s) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleDenseAndClamped) {
  Rng rng(5);
  // Ask for more than available: clamped to population size.
  auto s = rng.sample(5, 10, 2);
  EXPECT_EQ(s.size(), 4u);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq, (std::set<std::uint32_t>{0, 1, 3, 4}));
  // exclude >= n excludes nothing.
  auto all = rng.sample(4, 4, 100);
  EXPECT_EQ(all.size(), 4u);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(123);
  std::map<std::uint32_t, int> counts;
  const int kIters = 30000;
  for (int i = 0; i < kIters; ++i) {
    for (auto v : rng.sample(10, 2, 10)) counts[v]++;
  }
  // Each of 10 ids should appear ~ kIters*2/10 times.
  for (auto& [id, c] : counts) {
    EXPECT_NEAR(c, kIters * 2 / 10, kIters * 2 / 10 * 0.1) << "id " << id;
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkDiverges) {
  Rng a(1);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SampleIntoMatchesSampleAndConsumesIdentically) {
  // The scratch-based sampler must replay the exact same stream as
  // sample(): same picks AND same generator state afterwards (the sim
  // engine's determinism depends on it). Cover both the dense
  // (Fisher-Yates) and sparse (rejection) branches.
  struct Case {
    std::uint32_t n, k, exclude;
  } cases[] = {{120, 2, 7},   // sparse, with exclusion
               {120, 60, 120},  // dense, no exclusion
               {10, 9, 3},      // dense, nearly the whole population
               {1000, 4, 999},  // sparse, large population
               {5, 0, 0}};      // k = 0
  for (auto c : cases) {
    Rng r1(99), r2(99);
    auto expected = r1.sample(c.n, c.k, c.exclude);
    std::vector<std::uint32_t> out, scratch;
    r2.sample_into(c.n, c.k, c.exclude, out, scratch);
    EXPECT_EQ(out, expected) << c.n << "/" << c.k;
    EXPECT_EQ(r1.next(), r2.next()) << "generator state diverged";
  }
}

// ---------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsMergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.cdf_at(50), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1000), 1.0);
}

TEST(Stats, ConfidenceInterval) {
  Samples s;
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  s.add(1.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  for (int i = 0; i < 99; ++i) s.add(i % 2 ? 1.0 : 3.0);
  // 100 samples, stddev ~1 -> halfwidth ~0.196.
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.stddev() / 10.0, 1e-12);
  EXPECT_GT(s.ci95_halfwidth(), 0.1);
}

TEST(Stats, CoverageCurveAveragesAndExtends) {
  CoverageCurve c;
  c.add_run({0.1, 0.5, 1.0});
  c.add_run({0.3, 0.7});  // shorter: extends with 0.7
  auto avg = c.average();
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_NEAR(avg[0], 0.2, 1e-12);
  EXPECT_NEAR(avg[1], 0.6, 1e-12);
  EXPECT_NEAR(avg[2], (1.0 + 0.7) / 2, 1e-12);
  // A longer run arriving later back-fills earlier runs with their finals.
  c.add_run({0.0, 0.0, 0.0, 0.9});
  avg = c.average();
  ASSERT_EQ(avg.size(), 4u);
  EXPECT_NEAR(avg[3], (1.0 + 0.7 + 0.9) / 3, 1e-12);
}

TEST(Stats, SamplesMergeInOrderMatchesSerialExactly) {
  // The parallel sim engine's contract: per-worker partials merged back in
  // trial order reproduce the serial accumulation bit-for-bit.
  Samples serial, a, b, c;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    double x = rng.uniform() * 100;
    serial.add(x);
    (i < 100 ? a : i < 200 ? b : c).add(x);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a, serial);  // raw vectors identical -> every stat identical
  EXPECT_EQ(a.mean(), serial.mean());
  EXPECT_EQ(a.stddev(), serial.stddev());
  EXPECT_EQ(a.percentile(0.9), serial.percentile(0.9));
}

TEST(Stats, SamplesMergeOrderIndependentStats) {
  // Out-of-order merges permute the stored samples; counts, CDFs, and
  // quantiles (which sort) are exactly permutation-invariant, mean/stddev
  // up to floating-point reassociation.
  Samples ab, ba, a, b;
  Rng rng(6);
  for (int i = 0; i < 250; ++i) (i % 3 ? a : b).add(rng.uniform() * 10 - 5);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.sorted(), ba.sorted());
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(ab.percentile(p), ba.percentile(p)) << p;
  }
  EXPECT_EQ(ab.cdf_at(0.5), ba.cdf_at(0.5));
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.stddev(), ba.stddev(), 1e-12);
}

TEST(Stats, SamplesMergeEmptyPartials) {
  Samples s, empty;
  s.add(1.0);
  s.add(2.0);
  Samples before = s;
  s.merge(empty);  // no-op
  EXPECT_EQ(s, before);
  empty.merge(s);  // adopt
  EXPECT_EQ(empty, s);
  Samples e1, e2;
  e1.merge(e2);
  EXPECT_EQ(e1.count(), 0u);
  EXPECT_EQ(e1.percentile(0.5), 0.0);
}

TEST(Stats, SamplesQuantileStabilityVsSinglePassReference) {
  // Quantiles of partials merged in any grouping match a single-pass
  // reference collection exactly.
  Samples single;
  std::vector<Samples> parts(7);
  Rng rng(7);
  for (int i = 0; i < 700; ++i) {
    double x = rng.uniform();
    single.add(x);
    parts[static_cast<std::size_t>(i) % 7].add(x);
  }
  // Tree-shaped merge: (((6<-5)<-(4<-3))-ish arbitrary grouping.
  parts[5].merge(parts[6]);
  parts[3].merge(parts[4]);
  parts[3].merge(parts[5]);
  parts[0].merge(parts[1]);
  parts[0].merge(parts[2]);
  parts[0].merge(parts[3]);
  EXPECT_EQ(parts[0].count(), single.count());
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_EQ(parts[0].percentile(p), single.percentile(p)) << p;
  }
}

TEST(Stats, CoverageCurveMergeInOrderMatchesSerialExactly) {
  CoverageCurve serial, a, b;
  a.add_run({0.1, 0.5, 1.0});
  a.add_run({0.3, 0.7});
  b.add_run({0.0, 0.0, 0.0, 0.9});
  b.add_run({});
  for (auto run : {std::vector<double>{0.1, 0.5, 1.0},
                   std::vector<double>{0.3, 0.7},
                   std::vector<double>{0.0, 0.0, 0.0, 0.9},
                   std::vector<double>{}}) {
    serial.add_run(run);
  }
  a.merge(b);
  EXPECT_EQ(a, serial);
  EXPECT_EQ(a.runs(), 4u);
  EXPECT_EQ(a.average(), serial.average());
}

TEST(Stats, CoverageCurveMergeOrderIndependentAverage) {
  CoverageCurve ab, ba, a, b;
  a.add_run({0.2, 0.8, 1.0});
  a.add_run({0.5});
  b.add_run({0.1, 0.4, 0.6, 0.9});
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  auto va = ab.average(), vb = ba.average();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i], vb[i], 1e-12) << i;
  }
}

TEST(Stats, CoverageCurveMergeEmptyPartials) {
  CoverageCurve c, empty;
  c.add_run({0.5, 1.0});
  CoverageCurve before = c;
  c.merge(empty);
  EXPECT_EQ(c, before);
  empty.merge(c);
  EXPECT_EQ(empty, c);
  CoverageCurve e;
  EXPECT_TRUE(e.average().empty());
  EXPECT_EQ(e.runs(), 0u);
}

// ---------------------------------------------------------------- table

TEST(Table, PrettyAndCsv) {
  Table t({"x", "drum", "push"});
  t.add_row({1.0, 5.25, 7.5}, 2);
  t.add_row(std::vector<std::string>{"128", "5.3", "40"});
  auto csv = t.csv();
  EXPECT_EQ(csv, "x,drum,push\n1,5.25,7.5\n128,5.3,40\n");
  auto pretty = t.pretty();
  EXPECT_NE(pretty.find("drum"), std::string::npos);
  EXPECT_NE(pretty.find("5.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtTrimsZeros) {
  EXPECT_EQ(fmt(1.5000, 4), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
}

// ---------------------------------------------------------------- spsc ring

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, PushPopFifoSingleThread) {
  SpscRing<int> ring(8);
  ring.assume_producer();
  ring.assume_consumer();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.empty());
  EXPECT_EQ(ring.size(), 5u);

  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, FullRejectsUntilPopFrees) {
  SpscRing<int> ring(4);  // capacity exactly 4
  ring.assume_producer();
  ring.assume_consumer();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: every slot used, none reserved
  EXPECT_EQ(ring.size(), 4u);

  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.try_push(99));  // one slot freed, push succeeds again
  EXPECT_FALSE(ring.try_push(100));
}

TEST(SpscRing, FifoSurvivesIndexWraparound) {
  // Push/pop far more items than the capacity so the monotonic indices wrap
  // the mask many times over; order and content must be untouched.
  SpscRing<std::uint64_t> ring(8);
  ring.assume_producer();
  ring.assume_consumer();
  std::uint64_t next_out = 0;
  std::uint64_t next_in = 0;
  Rng rng(42);
  while (next_in < 10000) {
    // Random interleave: a burst of pushes, then a burst of pops.
    for (std::uint64_t burst = 1 + rng.below(8); burst > 0; --burst) {
      if (!ring.try_push(next_out)) break;
      ++next_out;
    }
    for (std::uint64_t burst = 1 + rng.below(8); burst > 0; --burst) {
      std::uint64_t v = 0;
      if (!ring.try_pop(v)) break;
      ASSERT_EQ(v, next_in);
      ++next_in;
    }
  }
  EXPECT_EQ(ring.size(), next_out - next_in);
}

TEST(SpscRing, InterleavedMatchesReferenceModel) {
  // Drive the ring and a std::deque with the same random operation stream;
  // every observable (pop results, size, emptiness, rejection) must agree.
  SpscRing<int> ring(16);
  ring.assume_producer();
  ring.assume_consumer();
  std::deque<int> model;
  Rng rng(7);
  int counter = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.below(2) == 0) {
      const bool pushed = ring.try_push(counter);
      EXPECT_EQ(pushed, model.size() < ring.capacity());
      if (pushed) model.push_back(counter);
      ++counter;
    } else {
      int v = -1;
      const bool popped = ring.try_pop(v);
      EXPECT_EQ(popped, !model.empty());
      if (popped) {
        EXPECT_EQ(v, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(ring.size(), model.size());
    ASSERT_EQ(ring.empty(), model.empty());
  }
}

}  // namespace
}  // namespace drum::util
