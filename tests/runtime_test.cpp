// Real-time threaded execution: NodeRunner drives nodes concurrently over
// the (thread-safe) in-memory network and real UDP loopback — the
// multithreaded unsynchronized-rounds deployment of paper §8, in miniature.
#include <gtest/gtest.h>

#include <chrono>

#include "drum/net/mem_transport.hpp"
#include "drum/net/udp_transport.hpp"
#include "drum/runtime/runner.hpp"

namespace drum::runtime {
namespace {

using namespace std::chrono_literals;

struct Fleet {
  util::Rng rng{21};
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::vector<std::unique_ptr<NodeRunner>> runners;
  std::atomic<int> delivered{0};

  Fleet(std::size_t n, bool udp, std::uint16_t base_port) {
    const std::uint32_t udp_host = net::parse_ipv4("127.0.0.1");
    dir.resize(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      ids.push_back(crypto::Identity::generate(rng));
      dir[id] = {id,
                 udp ? udp_host : id,
                 static_cast<std::uint16_t>(base_port + 2 * id),
                 static_cast<std::uint16_t>(base_port + 2 * id + 1),
                 0,
                 ids[id].sign_public(),
                 ids[id].dh_public(),
                 true};
    }
    for (std::uint32_t id = 0; id < n; ++id) {
      transports.push_back(
          udp ? std::unique_ptr<net::Transport>(
                    std::make_unique<net::UdpTransport>(udp_host))
              : net.transport(id));
      core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
      cfg.wk_pull_port = dir[id].wk_pull_port;
      cfg.wk_offer_port = dir[id].wk_offer_port;
      nodes.push_back(std::make_unique<core::Node>(
          cfg, ids[id], dir, *transports.back(), rng.next(),
          [this](const core::Node::Delivery&) { delivered.fetch_add(1); }));
      RunnerConfig rc;
      rc.round = 60ms;
      runners.push_back(
          std::make_unique<NodeRunner>(*nodes.back(), rc, rng.next()));
    }
  }

  void start() {
    for (auto& r : runners) r->start();
  }
  void stop() {
    for (auto& r : runners) r->stop();
  }
};

// Polls a condition with a deadline (threaded tests must not sleep blindly).
bool eventually(const std::function<bool()>& cond,
                std::chrono::milliseconds deadline) {
  auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

TEST(Runtime, ConcurrentDisseminationOverMemNetwork) {
  Fleet f(6, false, 9000);
  f.start();
  f.runners[0]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("live"), 4));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 5; }, 5000ms));
  f.stop();
  EXPECT_EQ(f.delivered.load(), 5);
}

TEST(Runtime, ConcurrentDisseminationOverUdp) {
  Fleet f(5, true, 27000);
  f.start();
  f.runners[1]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("udp"), 3));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 4; }, 5000ms));
  f.stop();
}

TEST(Runtime, StopIsIdempotentAndRestartable) {
  Fleet f(4, false, 9100);
  f.start();
  f.stop();
  f.stop();  // no crash, no deadlock
  for (auto& r : f.runners) EXPECT_FALSE(r->running());
  f.start();
  f.runners[0]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("x"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  f.stop();
}

TEST(Runtime, WithNodeGivesExclusiveAccess) {
  Fleet f(4, false, 9200);
  f.start();
  f.runners[0]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("y"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 5000ms));
  std::uint64_t rounds = 0;
  f.runners[2]->with_node(
      [&](core::Node& n) { rounds = n.registry().counter_value("node.rounds"); });
  EXPECT_GE(rounds, 1u);
  f.stop();
}

}  // namespace
}  // namespace drum::runtime
