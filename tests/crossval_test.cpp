// Cross-validation: the three evaluation vehicles must agree with each
// other, as the paper demonstrates (Figs. 9, 13, 14):
//  * Appendix C analysis vs the Monte-Carlo simulator (coverage CDFs);
//  * Appendix A/B closed forms vs the simulator's escape statistics;
//  * the simulator vs the real implementation (propagation in rounds).
// These are the strongest property tests in the repository: three
// independently-written models of the same protocol matching numerically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"
#include "drum/analysis/appendix_c.hpp"
#include "drum/harness/cluster.hpp"
#include "drum/sim/engine.hpp"

namespace drum {
namespace {

// Max |analysis - simulation| over the first `rounds` rounds of the
// coverage CDF.
double coverage_gap(analysis::Protocol ap, sim::SimProtocol sp, double alpha,
                    double x, std::size_t rounds, std::size_t runs) {
  const std::size_t n = 120;
  analysis::DetailedParams dp;
  dp.protocol = ap;
  dp.n = n;
  dp.b = 12;
  dp.alpha = alpha;
  dp.x = x;
  auto ana = analysis::expected_coverage(dp, rounds);

  sim::SimParams s;
  s.protocol = sp;
  s.n = n;
  s.alpha = alpha;
  s.x = x;
  s.max_rounds = 600;
  auto agg = sim::simulate_many(s, runs, 77);
  auto simc = agg.coverage.average();

  double gap = 0;
  for (std::size_t r = 0; r <= rounds; ++r) {
    double a = r < ana.size() ? ana[r] : ana.back();
    double b = r < simc.size() ? simc[r] : simc.back();
    gap = std::max(gap, std::abs(a - b));
  }
  return gap;
}

struct CrossCase {
  analysis::Protocol ap;
  sim::SimProtocol sp;
  double alpha, x;
  double tolerance;
};

class AnalysisVsSim : public ::testing::TestWithParam<CrossCase> {};

TEST_P(AnalysisVsSim, CoverageCurvesAgree) {
  const auto& c = GetParam();
  double gap = coverage_gap(c.ap, c.sp, c.alpha, c.x, 25, 200);
  EXPECT_LT(gap, c.tolerance)
      << analysis::protocol_name(c.ap) << " alpha=" << c.alpha
      << " x=" << c.x;
}

// Tolerances: MC noise at 200 runs is ~3%; the paper's own curves show the
// analysis under-estimating slightly (the p_ij independence approximation),
// so allow a bit more for the fast-growth protocols.
INSTANTIATE_TEST_SUITE_P(
    Fig13And14, AnalysisVsSim,
    ::testing::Values(
        CrossCase{analysis::Protocol::kDrum, sim::SimProtocol::kDrum, 0, 0,
                  0.10},
        CrossCase{analysis::Protocol::kPush, sim::SimProtocol::kPush, 0, 0,
                  0.10},
        CrossCase{analysis::Protocol::kPull, sim::SimProtocol::kPull, 0, 0,
                  0.10},
        CrossCase{analysis::Protocol::kDrum, sim::SimProtocol::kDrum, 0.1, 64,
                  0.10},
        CrossCase{analysis::Protocol::kPush, sim::SimProtocol::kPush, 0.1, 64,
                  0.10},
        CrossCase{analysis::Protocol::kPull, sim::SimProtocol::kPull, 0.1, 64,
                  0.08},
        CrossCase{analysis::Protocol::kDrum, sim::SimProtocol::kDrum, 0.4, 128,
                  0.10},
        CrossCase{analysis::Protocol::kPull, sim::SimProtocol::kPull, 0.4, 128,
                  0.08}));

TEST(CrossValidation, PullEscapeMatchesAppendixB) {
  // The simulator's rounds-to-leave-source under attack vs 1/p̃ from the
  // closed form. (Appendix B has no loss term and the sim has 1% loss, so
  // expect agreement within ~15%.)
  const std::size_t n = 120;
  sim::SimParams s;
  s.protocol = sim::SimProtocol::kPull;
  s.n = n;
  s.alpha = 0.1;
  s.x = 128;
  s.max_rounds = 900;
  auto agg = sim::simulate_many(s, 400, 3);
  double sim_escape = agg.rounds_to_leave_source.mean();

  // p̃ inputs: requests reaching the source come from the n-b-1 correct
  // processes; fabricated messages experience loss in the sim.
  double expected = analysis::pull_expected_rounds_to_leave_source(
      n - 12, 4, 128 * 0.99);
  EXPECT_NEAR(sim_escape, expected, expected * 0.25);
}

TEST(CrossValidation, SimMatchesMeasurementForDrum) {
  // Fig. 9's claim at one representative point: the real implementation's
  // per-message propagation (round counters) matches the round-based
  // simulation for Drum under attack.
  const std::size_t n = 50;
  auto agg = sim::simulate_many(
      [] {
        sim::SimParams s;
        s.protocol = sim::SimProtocol::kDrum;
        s.n = 50;
        s.alpha = 0.1;
        s.x = 128;
        return s;
      }(),
      150, 9);
  double sim_rounds = agg.rounds_to_target.mean();

  harness::ClusterConfig cfg;
  cfg.variant = core::Variant::kDrum;
  cfg.n = n;
  cfg.alpha = 0.1;
  cfg.x = 128;
  cfg.rate = 8;
  cfg.verify_signatures = false;
  cfg.seed = 12;
  harness::Cluster cluster(cfg);
  cluster.run_rounds(5, true);
  cluster.begin_measurement();
  cluster.run_rounds(25, true);
  cluster.end_measurement();
  cluster.run_rounds(25, false);
  double measured = cluster.metrics().propagation_rounds.mean();

  EXPECT_GT(cluster.metrics().messages_completed, 50u);
  EXPECT_NEAR(measured, sim_rounds, 3.0);
}

TEST(CrossValidation, PaPuBoundsHoldInSimulation) {
  // p_a < F/x (§6): the sim's per-round acceptance at an attacked process
  // stays below the closed-form bound. Indirect check via Drum's bounded
  // propagation: rounds at x and at 4x differ by less than 50%.
  sim::SimParams s;
  s.protocol = sim::SimProtocol::kDrum;
  s.n = 120;
  s.alpha = 0.1;
  s.x = 64;
  auto a = sim::simulate_many(s, 100, 4);
  s.x = 256;
  auto b = sim::simulate_many(s, 100, 4);
  EXPECT_LT(b.rounds_to_target.mean(), a.rounds_to_target.mean() * 1.5);
}

}  // namespace
}  // namespace drum
