// Unit tests for the core protocol pieces: wire formats (round-trips,
// malformed-input rejection), the message buffer (dedup, purge, digest,
// missing-selection), and node configuration invariants.
#include <gtest/gtest.h>

#include "drum/core/buffer.hpp"
#include "drum/core/config.hpp"
#include "drum/core/message.hpp"
#include "drum/util/rng.hpp"

namespace drum::core {
namespace {

DataMessage make_msg(std::uint32_t source, std::uint64_t seq,
                     const std::string& payload = "payload") {
  DataMessage m;
  m.id = {source, seq};
  m.payload.assign(payload.begin(), payload.end());
  m.round_counter = 1;
  for (std::size_t i = 0; i < m.signature.size(); ++i) {
    m.signature[i] = static_cast<std::uint8_t>(i);
  }
  return m;
}

// ------------------------------------------------------------ messages

TEST(Wire, PullRequestRoundTrip) {
  PullRequest req;
  req.sender = 7;
  req.digest = {{1, 10}, {2, 20}, {1, 11}};
  req.boxed_reply_port = {9, 9, 9, 9};
  auto wire = encode(req);
  EXPECT_EQ(peek_type(util::ByteSpan(wire)), MsgType::kPullRequest);
  auto back = decode_pull_request(util::ByteSpan(wire), 100);
  EXPECT_EQ(back.sender, 7u);
  EXPECT_EQ(back.digest, req.digest);
  EXPECT_EQ(back.boxed_reply_port, req.boxed_reply_port);
}

TEST(Wire, PushOfferPushReplyRoundTrip) {
  PushOffer offer{3, {1, 2, 3}, {}};
  auto wire = encode(offer);
  auto back = decode_push_offer(util::ByteSpan(wire));
  EXPECT_EQ(back.sender, 3u);
  EXPECT_EQ(back.boxed_reply_port, offer.boxed_reply_port);

  PushReply reply;
  reply.sender = 4;
  reply.digest = {{5, 50}};
  reply.boxed_data_port = {7};
  auto wire2 = encode(reply);
  auto back2 = decode_push_reply(util::ByteSpan(wire2), 100);
  EXPECT_EQ(back2.sender, 4u);
  EXPECT_EQ(back2.digest, reply.digest);
}

TEST(Wire, ZeroCopyEncodersMatchOwningEncoders) {
  // encode_pull_reply/encode_push_data (the select_missing hot path) must
  // produce the exact bytes of the owning-struct encoders.
  std::vector<DataMessage> owned = {make_msg(1, 1, "a"), make_msg(2, 5, "bb")};
  std::vector<const DataMessage*> ptrs = {&owned[0], &owned[1]};
  EXPECT_EQ(encode_pull_reply(9, ptrs), encode(PullReply{9, owned}));
  EXPECT_EQ(encode_push_data(9, ptrs), encode(PushData{9, owned}));
  EXPECT_EQ(encode_pull_reply(9, {}), encode(PullReply{9, {}}));
}

TEST(Wire, DataMessagesRoundTrip) {
  PullReply pr;
  pr.sender = 9;
  pr.messages = {make_msg(1, 1, "a"), make_msg(2, 5, "bb")};
  auto wire = encode(pr);
  auto back = decode_pull_reply(util::ByteSpan(wire), 10, 100);
  ASSERT_EQ(back.messages.size(), 2u);
  EXPECT_EQ(back.messages[0].id, (MessageId{1, 1}));
  EXPECT_EQ(back.messages[1].payload, (util::Bytes{'b', 'b'}));
  EXPECT_EQ(back.messages[0].signature, pr.messages[0].signature);

  PushData pd{2, {make_msg(3, 7)}};
  auto wire2 = encode(pd);
  auto back2 = decode_push_data(util::ByteSpan(wire2), 10, 100);
  EXPECT_EQ(back2.messages[0].id, (MessageId{3, 7}));
  EXPECT_EQ(back2.messages[0].round_counter, 1u);
}

TEST(Wire, RejectsWrongType) {
  PushOffer offer{3, {1}, {}};
  auto wire = encode(offer);
  EXPECT_THROW(decode_pull_request(util::ByteSpan(wire), 10),
               util::DecodeError);
}

TEST(Wire, RejectsOversizedDigest) {
  PullRequest req;
  req.sender = 1;
  for (std::uint64_t i = 0; i < 50; ++i) req.digest.push_back({1, i});
  auto wire = encode(req);
  EXPECT_THROW(decode_pull_request(util::ByteSpan(wire), 49),
               util::DecodeError);
  EXPECT_NO_THROW(decode_pull_request(util::ByteSpan(wire), 50));
}

TEST(Wire, RejectsOversizedPayloadAndCount) {
  PullReply pr;
  pr.sender = 1;
  pr.messages = {make_msg(1, 1, std::string(200, 'x'))};
  auto wire = encode(pr);
  EXPECT_THROW(decode_pull_reply(util::ByteSpan(wire), 10, 100),
               util::DecodeError);
  EXPECT_NO_THROW(decode_pull_reply(util::ByteSpan(wire), 10, 200));
  EXPECT_THROW(decode_pull_reply(util::ByteSpan(wire), 0, 200),
               util::DecodeError);
}

TEST(Wire, RejectsTruncatedAndTrailing) {
  PushOffer offer{3, {1, 2, 3, 4}, {}};
  auto wire = encode(offer);
  util::Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_THROW(decode_push_offer(util::ByteSpan(truncated)),
               util::DecodeError);
  util::Bytes extended = wire;
  extended.push_back(0);
  EXPECT_THROW(decode_push_offer(util::ByteSpan(extended)), util::DecodeError);
  util::Bytes empty;
  EXPECT_THROW(peek_type(util::ByteSpan(empty)), util::DecodeError);
}

TEST(Wire, FuzzedGarbageNeverCrashes) {
  util::Rng rng(1234);
  for (int iter = 0; iter < 3000; ++iter) {
    util::Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    if (!junk.empty()) {
      junk[0] = static_cast<std::uint8_t>(1 + rng.below(5));  // valid types
    }
    try {
      switch (junk.empty() ? MsgType::kPullRequest
                           : peek_type(util::ByteSpan(junk))) {
        case MsgType::kPullRequest:
          decode_pull_request(util::ByteSpan(junk), 100);
          break;
        case MsgType::kPullReply:
          decode_pull_reply(util::ByteSpan(junk), 10, 100);
          break;
        case MsgType::kPushOffer:
          decode_push_offer(util::ByteSpan(junk));
          break;
        case MsgType::kPushReply:
          decode_push_reply(util::ByteSpan(junk), 100);
          break;
        case MsgType::kPushData:
          decode_push_data(util::ByteSpan(junk), 10, 100);
          break;
      }
    } catch (const util::DecodeError&) {
      // expected for almost all inputs
    }
  }
  SUCCEED();
}

TEST(Wire, SignedBytesExcludeRoundCounter) {
  auto m1 = make_msg(1, 1);
  auto m2 = m1;
  m2.round_counter = 99;
  EXPECT_EQ(m1.signed_bytes(), m2.signed_bytes());
  m2.payload.push_back('!');
  EXPECT_NE(m1.signed_bytes(), m2.signed_bytes());
}

// ------------------------------------------------------------- buffer

TEST(Buffer, InsertDedupsAndReportsSeen) {
  MessageBuffer buf(10, 20);
  EXPECT_TRUE(buf.insert(make_msg(1, 1), 0));
  EXPECT_FALSE(buf.insert(make_msg(1, 1), 0));
  EXPECT_TRUE(buf.seen({1, 1}));
  EXPECT_FALSE(buf.seen({1, 2}));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Buffer, PurgesAfterBufferRoundsButRemembersSeen) {
  MessageBuffer buf(3, 10);
  buf.insert(make_msg(1, 1), 0);
  for (std::uint64_t r = 1; r <= 3; ++r) buf.on_round(r);
  EXPECT_EQ(buf.size(), 0u);         // purged from gossip buffer
  EXPECT_TRUE(buf.seen({1, 1}));     // still deduped
  EXPECT_FALSE(buf.insert(make_msg(1, 1), 3));
  for (std::uint64_t r = 4; r <= 10; ++r) buf.on_round(r);
  EXPECT_FALSE(buf.seen({1, 1}));    // dedup memory finally expires
  EXPECT_TRUE(buf.insert(make_msg(1, 1), 10));
}

TEST(Buffer, RoundCounterIncrementsWhileBuffered) {
  MessageBuffer buf(10, 20);
  buf.insert(make_msg(1, 1), 0);  // round_counter starts at 1
  buf.on_round(1);
  buf.on_round(2);
  util::Rng rng(1);
  auto msgs = buf.select_missing({}, 10, rng);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0]->round_counter, 3u);
}

TEST(Buffer, DigestListsBufferedIds) {
  MessageBuffer buf(10, 20);
  buf.insert(make_msg(1, 1), 0);
  buf.insert(make_msg(2, 7), 0);
  auto d = buf.digest();
  EXPECT_EQ(d.size(), 2u);
  std::sort(d.begin(), d.end());
  EXPECT_EQ(d[0], (MessageId{1, 1}));
  EXPECT_EQ(d[1], (MessageId{2, 7}));
}

TEST(Buffer, SelectMissingExcludesPeerHoldings) {
  MessageBuffer buf(10, 20);
  for (std::uint64_t i = 0; i < 10; ++i) buf.insert(make_msg(1, i), 0);
  util::Rng rng(2);
  Digest peer_has = {{1, 0}, {1, 1}, {1, 2}};
  auto missing = buf.select_missing(peer_has, 100, rng);
  EXPECT_EQ(missing.size(), 7u);
  for (const auto* m : missing) EXPECT_GE(m->id.seqno, 3u);
}

TEST(Buffer, SelectMissingRespectsCapAndIsRandom) {
  MessageBuffer buf(10, 20);
  for (std::uint64_t i = 0; i < 50; ++i) buf.insert(make_msg(1, i), 0);
  util::Rng rng(3);
  auto a = buf.select_missing({}, 5, rng);
  auto b = buf.select_missing({}, 5, rng);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(b.size(), 5u);
  auto key = [](const std::vector<const DataMessage*>& v) {
    std::vector<std::uint64_t> k;
    for (const auto* m : v) k.push_back(m->id.seqno);
    std::sort(k.begin(), k.end());
    return k;
  };
  // With 50-choose-5 possibilities, two identical picks mean broken RNG.
  EXPECT_NE(key(a), key(b));
}

// ------------------------------------------------------------- config

TEST(Config, DrumSplitsFanout) {
  auto cfg = make_node_config(Variant::kDrum, 1, 4);
  EXPECT_EQ(cfg.view_push(), 2u);
  EXPECT_EQ(cfg.view_pull(), 2u);
  EXPECT_EQ(cfg.offer_budget(), 2u);
  EXPECT_EQ(cfg.pull_request_budget(), 2u);
  EXPECT_EQ(cfg.push_reply_budget(), 2u);
  EXPECT_EQ(cfg.pull_data_budget(), 4u);
  EXPECT_EQ(cfg.push_data_budget(), 4u);
}

TEST(Config, PushOnlyAndPullOnly) {
  auto push = make_node_config(Variant::kPush, 1, 4);
  EXPECT_EQ(push.view_push(), 4u);
  EXPECT_EQ(push.view_pull(), 0u);
  EXPECT_EQ(push.pull_request_budget(), 0u);
  EXPECT_EQ(push.push_reply_budget(), 4u);
  EXPECT_EQ(push.push_data_budget(), 8u);

  auto pull = make_node_config(Variant::kPull, 1, 4);
  EXPECT_EQ(pull.view_push(), 0u);
  EXPECT_EQ(pull.view_pull(), 4u);
  EXPECT_EQ(pull.pull_request_budget(), 4u);
  EXPECT_EQ(pull.pull_data_budget(), 8u);
  EXPECT_FALSE(pull.push_enabled());
}

TEST(Config, SharedBudgetSumsControlBudgets) {
  auto cfg = make_node_config(Variant::kDrumSharedBounds, 1, 4);
  EXPECT_EQ(cfg.shared_control_budget(),
            cfg.max_offers_per_round + cfg.send_capacity);
}

TEST(Config, VariantNames) {
  EXPECT_STREQ(variant_name(Variant::kDrum), "drum");
  EXPECT_STREQ(variant_name(Variant::kDrumWkPorts), "drum-wk-ports");
}

}  // namespace
}  // namespace drum::core

#include "drum/core/groupfile.hpp"
#include "drum/crypto/keys.hpp"

namespace drum::core {
namespace {

TEST(GroupFile, FormatParseRoundTrip) {
  util::Rng rng(44);
  std::vector<Peer> dir(3);
  for (std::uint32_t id = 0; id < 3; ++id) {
    auto identity = crypto::Identity::generate(rng);
    dir[id].id = id;
    dir[id].host = 0x7F000001;  // 127.0.0.1
    dir[id].wk_pull_port = static_cast<std::uint16_t>(28000 + 2 * id);
    dir[id].wk_offer_port = static_cast<std::uint16_t>(28001 + 2 * id);
    dir[id].sign_pub = identity.sign_public();
    dir[id].dh_pub = identity.dh_public();
  }
  auto text = format_group_file(dir);
  auto back = parse_group_file(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 3u);
  for (std::uint32_t id = 0; id < 3; ++id) {
    EXPECT_TRUE((*back)[id].present);
    EXPECT_EQ((*back)[id].host, 0x7F000001u);
    EXPECT_EQ((*back)[id].wk_pull_port, dir[id].wk_pull_port);
    EXPECT_EQ((*back)[id].sign_pub, dir[id].sign_pub);
    EXPECT_EQ((*back)[id].dh_pub, dir[id].dh_pub);
  }
}

TEST(GroupFile, SparseIdsLeaveHoles) {
  util::Rng rng(45);
  auto identity = crypto::Identity::generate(rng);
  std::vector<Peer> dir(1);
  dir[0].id = 4;  // only member 4
  dir[0].host = 0x7F000001;
  dir[0].wk_pull_port = 100;
  dir[0].wk_offer_port = 101;
  dir[0].sign_pub = identity.sign_public();
  dir[0].dh_pub = identity.dh_public();
  auto back = parse_group_file(format_group_file(dir));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 5u);
  EXPECT_FALSE((*back)[0].present);
  EXPECT_TRUE((*back)[4].present);
}

TEST(GroupFile, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse_group_file("", &err).has_value());
  EXPECT_FALSE(parse_group_file("0 127.0.0.1 1 2 deadbeef dead\n", &err)
                   .has_value());
  EXPECT_NE(err.find("bad key"), std::string::npos);
  EXPECT_FALSE(parse_group_file("0 not-an-ip 1 2 aa bb\n", &err).has_value());
  EXPECT_FALSE(parse_group_file("0 127.0.0.1 99999 2 aa bb\n", &err)
                   .has_value());
  // Duplicate ids rejected.
  util::Rng rng(46);
  auto identity = crypto::Identity::generate(rng);
  std::vector<Peer> dir(2);
  for (auto& p : dir) {
    p.id = 1;
    p.host = 0x7F000001;
    p.wk_pull_port = 1;
    p.wk_offer_port = 2;
    p.sign_pub = identity.sign_public();
    p.dh_pub = identity.dh_public();
  }
  EXPECT_FALSE(parse_group_file(format_group_file(dir), &err).has_value());
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(GroupFile, CommentsAndBlankLinesIgnored) {
  util::Rng rng(47);
  auto identity = crypto::Identity::generate(rng);
  std::vector<Peer> dir(1);
  dir[0].id = 0;
  dir[0].host = 0x7F000001;
  dir[0].wk_pull_port = 10;
  dir[0].wk_offer_port = 11;
  dir[0].sign_pub = identity.sign_public();
  dir[0].dh_pub = identity.dh_public();
  auto text = "\n# leading comment\n\n" + format_group_file(dir) +
              "\n  # trailing\n";
  EXPECT_TRUE(parse_group_file(text).has_value());
}

TEST(IdentitySecrets, SerializeDeserializeRoundTrip) {
  util::Rng rng(48);
  auto original = crypto::Identity::generate(rng);
  auto secret = original.serialize_secret();
  EXPECT_EQ(secret.size(), 64u);
  auto restored = crypto::Identity::deserialize_secret(util::ByteSpan(secret));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sign_public(), original.sign_public());
  EXPECT_EQ(restored->dh_public(), original.dh_public());
  // Signatures from the restored identity verify against the original key.
  util::Bytes msg = {1, 2, 3};
  auto sig = restored->sign(util::ByteSpan(msg));
  EXPECT_TRUE(
      crypto::ed25519_verify(original.sign_public(), util::ByteSpan(msg), sig));
  // Wrong length rejected.
  util::Bytes tiny(10);
  EXPECT_FALSE(
      crypto::Identity::deserialize_secret(util::ByteSpan(tiny)).has_value());
}

}  // namespace
}  // namespace drum::core

#include "drum/core/ordered.hpp"

namespace drum::core {
namespace {

struct OrdererFixture {
  std::vector<std::uint64_t> delivered;  // seqnos, in delivery order
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
  FifoOrderer orderer{
      [this](const DataMessage& m) { delivered.push_back(m.id.seqno); },
      [this](std::uint32_t, std::uint64_t first, std::uint64_t count) {
        gaps.emplace_back(first, count);
      },
      /*gap_timeout_rounds=*/5};

  void feed(std::uint64_t seq, std::uint64_t round = 0) {
    orderer.on_delivery(make_msg(1, seq), round);
  }
};

TEST(FifoOrderer, InOrderPassesThrough) {
  OrdererFixture f;
  for (std::uint64_t s : {0u, 1u, 2u, 3u}) f.feed(s);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(f.orderer.held(), 0u);
}

TEST(FifoOrderer, ReordersOutOfOrderArrivals) {
  OrdererFixture f;
  f.feed(2);
  f.feed(0);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(f.orderer.held(), 1u);
  f.feed(1);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(f.orderer.held(), 0u);
}

TEST(FifoOrderer, SkipsExpiredGapAndReports) {
  OrdererFixture f;
  f.feed(0, 0);
  f.feed(3, 1);  // 1 and 2 missing
  f.feed(4, 1);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0}));
  f.orderer.on_round(3);  // not yet expired
  EXPECT_EQ(f.delivered.size(), 1u);
  f.orderer.on_round(7);  // blocked since round 1, timeout 5 -> skip
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 3, 4}));
  ASSERT_EQ(f.gaps.size(), 1u);
  EXPECT_EQ(f.gaps[0], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
}

TEST(FifoOrderer, StaleArrivalAfterSkipIsDropped) {
  OrdererFixture f;
  f.feed(0, 0);
  f.feed(2, 1);
  f.orderer.on_round(10);  // skip seq 1
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 2}));
  f.feed(1, 11);  // arrives too late
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 2}));
}

TEST(FifoOrderer, IndependentPerSource) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  FifoOrderer orderer(
      [&](const DataMessage& m) { out.emplace_back(m.id.source, m.id.seqno); });
  orderer.on_delivery(make_msg(1, 0), 0);
  orderer.on_delivery(make_msg(2, 1), 0);  // source 2 blocked on seq 0
  orderer.on_delivery(make_msg(1, 1), 0);
  orderer.on_delivery(make_msg(2, 0), 0);
  EXPECT_EQ(out, (std::vector<std::pair<std::uint32_t, std::uint64_t>>{
                     {1, 0}, {1, 1}, {2, 0}, {2, 1}}));
}

TEST(FifoOrderer, ConsecutiveGapsEachGetTheirTimeout) {
  OrdererFixture f;
  f.feed(1, 0);  // gap at 0
  f.feed(3, 0);  // gap at 2 behind it
  f.orderer.on_round(5);  // skips gap 0 -> delivers 1; now blocked on 2
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1}));
  f.orderer.on_round(7);  // second gap only blocked since round 5
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1}));
  f.orderer.on_round(10);
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(f.gaps.size(), 2u);
}

}  // namespace
}  // namespace drum::core
