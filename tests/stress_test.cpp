// Multi-threaded stress for the runtime layer — the test scripts/check.sh
// runs under ThreadSanitizer (DRUM_SANITIZE=thread). Application threads
// hammer NodeRunner's thread-safe surface (multicast / with_node / stop)
// while the runner threads drive the protocol over the thread-safe
// MemNetwork; TSan verifies mu_ / lifecycle_mu_ / the atomics actually cover
// every shared access. Notably: concurrent stop() calls used to race on
// thread_.join().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "drum/net/mem_transport.hpp"
#include "drum/runtime/reactor.hpp"
#include "drum/runtime/runner.hpp"
#include "drum/util/spsc_ring.hpp"

// Sanitizer instrumentation slows the hot path ~10x; throughput-sensitive
// tests scale their flood pacing and deadlines by this factor so the TSan
// leg keeps the race coverage without the wall-clock expectation.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DRUM_TEST_SANITIZED 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DRUM_TEST_SANITIZED 1
#endif

namespace drum::runtime {
namespace {

using namespace std::chrono_literals;

#if defined(DRUM_TEST_SANITIZED)
constexpr int kSanSlowdown = 8;
#else
constexpr int kSanSlowdown = 1;
#endif

struct Fleet {
  util::Rng rng{77};
  net::MemNetwork net;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::vector<std::unique_ptr<NodeRunner>> runners;
  std::atomic<int> delivered{0};

  explicit Fleet(std::size_t n, std::uint16_t base_port = 9300) {
    dir.resize(n);
    for (std::uint32_t id = 0; id < n; ++id) {
      ids.push_back(crypto::Identity::generate(rng));
      dir[id] = {id,
                 id,
                 static_cast<std::uint16_t>(base_port + 2 * id),
                 static_cast<std::uint16_t>(base_port + 2 * id + 1),
                 0,
                 ids[id].sign_public(),
                 ids[id].dh_public(),
                 true};
    }
    for (std::uint32_t id = 0; id < n; ++id) {
      transports.push_back(net.transport(id));
      core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
      cfg.wk_pull_port = dir[id].wk_pull_port;
      cfg.wk_offer_port = dir[id].wk_offer_port;
      nodes.push_back(std::make_unique<core::Node>(
          cfg, ids[id], dir, *transports.back(), rng.next(),
          [this](const core::Node::Delivery&) { delivered.fetch_add(1); }));
      RunnerConfig rc;
      rc.round = 30ms;
      runners.push_back(
          std::make_unique<NodeRunner>(*nodes.back(), rc, rng.next()));
    }
  }

  void start() {
    for (auto& r : runners) r->start();
  }
  void stop() {
    for (auto& r : runners) r->stop();
  }
};

bool eventually(const std::function<bool()>& cond,
                std::chrono::milliseconds deadline) {
  auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

// Several application threads multicast and read stats through the same
// runners while the protocol runs. Everything here must be TSan-clean.
TEST(Stress, ConcurrentMulticastAndWithNode) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  Fleet f(4);
  f.start();

  std::vector<std::thread> apps;
  std::atomic<std::uint64_t> rounds_seen{0};
  for (int t = 0; t < kThreads; ++t) {
    apps.emplace_back([&f, &rounds_seen, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto which =
            static_cast<std::size_t>(t + i) % f.runners.size();
        const std::uint8_t payload[2] = {static_cast<std::uint8_t>(t),
                                         static_cast<std::uint8_t>(i)};
        f.runners[which]->multicast(util::ByteSpan(payload, sizeof payload));
        f.runners[(which + 1) % f.runners.size()]->with_node(
            [&rounds_seen](core::Node& n) {
              rounds_seen.fetch_add(n.registry().counter_value("node.rounds"));
            });
      }
    });
  }
  for (auto& t : apps) t.join();

  // Each of the 32 distinct messages reaches the other 3 nodes.
  EXPECT_TRUE(eventually(
      [&] { return f.delivered.load() >= kThreads * kPerThread * 3; },
      10000ms));
  f.stop();
  EXPECT_EQ(f.delivered.load(), kThreads * kPerThread * 3);
}

// Many threads stop the same runners at once, while others are still
// multicasting: stop() must be idempotent and join exactly once.
TEST(Stress, ConcurrentStopFromManyThreads) {
  Fleet f(4, 9400);
  f.start();
  f.runners[0]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("s"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 3; }, 10000ms));

  std::vector<std::thread> stoppers;
  for (int t = 0; t < 6; ++t) {
    stoppers.emplace_back([&f] {
      for (auto& r : f.runners) r->stop();
    });
  }
  for (auto& t : stoppers) t.join();
  for (auto& r : f.runners) EXPECT_FALSE(r->running());

  // The fleet is restartable after the pile-up.
  f.start();
  f.runners[1]->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("t"), 1));
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 6; }, 10000ms));
  f.stop();
}

// Start/stop churn concurrent with with_node readers: lifecycle transitions
// must never tear the node state or deadlock against the node mutex.
TEST(Stress, StartStopChurnWithReaders) {
  Fleet f(3, 9500);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      for (auto& r : f.runners) {
        r->with_node([](core::Node& n) {
          (void)n.registry().counter_value("node.rounds");
        });
      }
      std::this_thread::sleep_for(1ms);
    }
  });
  for (int cycle = 0; cycle < 5; ++cycle) {
    f.start();
    f.runners[static_cast<std::size_t>(cycle) % f.runners.size()]->multicast(
        util::ByteSpan(reinterpret_cast<const std::uint8_t*>("c"), 1));
    std::this_thread::sleep_for(20ms);
    f.stop();
  }
  done.store(true);
  reader.join();
  // 5 messages, each delivered to the other 2 nodes — eventually, because
  // dissemination may complete on a later cycle's rounds.
  f.start();
  EXPECT_TRUE(eventually([&] { return f.delivered.load() >= 10; }, 10000ms));
  f.stop();
}

// ReactorRuntime under TSan: one event loop + a worker pool drive 8 nodes
// while application threads multicast / read through with_node and an
// attacker thread floods spoofed datagrams. Exercises every cross-thread
// edge of the reactor: the MemSocket readiness bridge (sender thread ->
// eventfd), worker/loop dispatch handoff (scheduled/ready/round_due), the
// per-round socket rotation hooks (worker thread -> epoll registration),
// and lifecycle stop/start races.
TEST(Stress, ReactorConcurrentMulticastFloodAndChurn) {
  constexpr std::size_t kNodes = 8;
  util::Rng rng{99};
  net::MemNetwork mem;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir(kNodes);
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::atomic<int> delivered{0};
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    ids.push_back(crypto::Identity::generate(rng));
    dir[id] = {id,
               id,
               static_cast<std::uint16_t>(9600 + 2 * id),
               static_cast<std::uint16_t>(9600 + 2 * id + 1),
               0,
               ids[id].sign_public(),
               ids[id].dh_public(),
               true};
  }
  ReactorConfig rc;
  rc.round = 30ms;
  rc.workers = 2;
  ReactorRuntime reactor(rc);
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    transports.push_back(mem.transport(id));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = dir[id].wk_pull_port;
    cfg.wk_offer_port = dir[id].wk_offer_port;
    nodes.push_back(std::make_unique<core::Node>(
        cfg, ids[id], dir, *transports.back(), rng.next(),
        [&delivered](const core::Node::Delivery&) {
          delivered.fetch_add(1);
        }));
    reactor.add_node(*nodes.back(), rng.next());
  }
  reactor.start();

  std::atomic<bool> flood_stop{false};
  std::thread attacker([&] {
    util::Rng arng{123};
    util::Bytes junk(40);
    while (!flood_stop.load()) {
      for (auto& b : junk) b = static_cast<std::uint8_t>(arng.below(256));
      const auto victim = static_cast<std::uint32_t>(arng.below(kNodes));
      mem.send_raw(
          {0xBAD00000u | static_cast<std::uint32_t>(arng.below(4096)),
           static_cast<std::uint16_t>(1024 + arng.below(60000))},
          {victim, dir[victim].wk_offer_port}, util::ByteSpan(junk));
      std::this_thread::sleep_for(1ms);
    }
  });

  constexpr int kThreads = 3;
  constexpr int kPerThread = 6;
  std::vector<std::thread> apps;
  std::atomic<std::uint64_t> rounds_seen{0};
  for (int t = 0; t < kThreads; ++t) {
    apps.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto which = static_cast<std::size_t>(t + i) % kNodes;
        const std::uint8_t payload[2] = {static_cast<std::uint8_t>(t),
                                         static_cast<std::uint8_t>(i)};
        reactor.multicast(which, util::ByteSpan(payload, sizeof payload));
        reactor.with_node((which + 1) % kNodes,
                          [&rounds_seen](core::Node& n) {
                            rounds_seen.fetch_add(
                                n.registry().counter_value("node.rounds"));
                          });
      }
    });
  }
  for (auto& t : apps) t.join();

  const int expect = kThreads * kPerThread * (kNodes - 1);
  EXPECT_TRUE(
      eventually([&] { return delivered.load() >= expect; }, 15000ms));
  flood_stop.store(true);
  attacker.join();

  // Concurrent stop pile-up, then restart.
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&reactor] { reactor.stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(reactor.running());
  reactor.start();
  reactor.multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("z"), 1));
  EXPECT_TRUE(eventually(
      [&] { return delivered.load() >= expect + int(kNodes) - 1; },
      10000ms));
  reactor.stop();
  EXPECT_EQ(delivered.load(), expect + int(kNodes) - 1);
}

// Cross-node ingress batching under TSan: with more runnable nodes than
// workers, each worker pops a batch of nodes and runs the DESIGN.md §12
// pipeline across them — drain A under A.mu, drain B under B.mu, one
// lock-free crypto pass over both nodes' frames, then re-lock each to
// ingest. A hard flood with NO inter-send sleep keeps every node's ready
// flag hot so batches overlap: worker 1 can be verifying frames it drained
// from node A while worker 2 re-drains A's next backlog. TSan checks that
// the drained IngressBatch really is private to its worker and that every
// node entry stays under st.mu.
TEST(Stress, ReactorCrossNodeBatchAccumulation) {
  constexpr std::size_t kNodes = 12;
  util::Rng rng{101};
  net::MemNetwork mem;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir(kNodes);
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::atomic<int> delivered{0};
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    ids.push_back(crypto::Identity::generate(rng));
    dir[id] = {id,
               id,
               static_cast<std::uint16_t>(9700 + 2 * id),
               static_cast<std::uint16_t>(9700 + 2 * id + 1),
               0,
               ids[id].sign_public(),
               ids[id].dh_public(),
               true};
  }
  ReactorConfig rc;
  rc.round = 20ms;
  rc.workers = 3;
  ReactorRuntime reactor(rc);
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    transports.push_back(mem.transport(id));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = dir[id].wk_pull_port;
    cfg.wk_offer_port = dir[id].wk_offer_port;
    nodes.push_back(std::make_unique<core::Node>(
        cfg, ids[id], dir, *transports.back(), rng.next(),
        [&delivered](const core::Node::Delivery&) {
          delivered.fetch_add(1);
        }));
    reactor.add_node(*nodes.back(), rng.next());
  }
  reactor.start();

  // Two attacker threads sweep ALL nodes back-to-back so the run queue
  // holds many ready nodes at once — the precondition for a worker popping
  // a multi-node batch.
  std::atomic<bool> flood_stop{false};
  std::vector<std::thread> attackers;
  for (int a = 0; a < 2; ++a) {
    attackers.emplace_back([&, a] {
      util::Rng arng{500u + static_cast<unsigned>(a)};
      util::Bytes junk(48);
      while (!flood_stop.load()) {
        for (auto& b : junk) b = static_cast<std::uint8_t>(arng.below(256));
        for (std::uint32_t victim = 0; victim < kNodes; ++victim) {
          mem.send_raw({0xBAD00000u | victim,
                        static_cast<std::uint16_t>(1024 + arng.below(60000))},
                       {victim, a == 0 ? dir[victim].wk_offer_port
                                       : dir[victim].wk_pull_port},
                       util::ByteSpan(junk));
        }
        // Burst-then-pause: the all-nodes burst is what piles the run
        // queue up (multi-node worker batches); the pause leaves honest
        // control traffic enough budget to finish in test time.
        std::this_thread::sleep_for(3ms * kSanSlowdown);
      }
    });
  }

  // Multicast churn from two app threads: real signed data flows through
  // the same batched verify as the flood's garbage.
  constexpr int kThreads = 2;
  constexpr int kPerThread = 8;
  std::vector<std::thread> apps;
  for (int t = 0; t < kThreads; ++t) {
    apps.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto which = static_cast<std::size_t>(t + 2 * i) % kNodes;
        const std::uint8_t payload[2] = {static_cast<std::uint8_t>(t),
                                         static_cast<std::uint8_t>(i)};
        reactor.multicast(which, util::ByteSpan(payload, sizeof payload));
        std::this_thread::sleep_for(2ms);
      }
    });
  }
  for (auto& t : apps) t.join();

  const int expect = kThreads * kPerThread * (int(kNodes) - 1);
  EXPECT_TRUE(
      eventually([&] { return delivered.load() >= expect; },
                 20000ms * kSanSlowdown));
  flood_stop.store(true);
  for (auto& t : attackers) t.join();
  reactor.stop();
  EXPECT_EQ(delivered.load(), expect);
}

// Two-thread SpscRing hammer: one producer pushing a strictly increasing
// sequence, one consumer asserting it pops exactly that sequence — no loss,
// no duplication, no reordering. A small capacity forces constant
// full/empty transitions, which is where the cached-index fast path hands
// over to the acquire reload; TSan checks the release/acquire pairing is
// the whole story.
TEST(Stress, SpscRingTwoThreadFifoHammer) {
  constexpr std::uint64_t kItems = 200000 / kSanSlowdown;
  util::SpscRing<std::uint64_t> ring(16);
  std::thread producer([&ring] {
    ring.assume_producer();
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  ring.assume_consumer();
  while (expected < kItems) {
    std::uint64_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// The sharded reactor's handoff mesh in miniature: S "shards", one ring per
// ordered pair, each shard thread both produces into its S-1 outbound rings
// and consumes from its S-1 inbound rings. The property under test is the
// guarantee cross-shard dispatch relies on for per-sender FIFO delivery:
// every (producer, consumer) stream arrives in push order, regardless of
// how the mesh interleaves globally.
TEST(Stress, SpscHandoffMeshPreservesPerProducerFifo) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kPerStream = 20000 / kSanSlowdown;

  struct Item {
    std::uint32_t producer = 0;
    std::uint64_t seq = 0;
  };
  // rings[p][c] carries p -> c traffic (diagonal unused, same-shard work
  // never touches a ring).
  std::vector<std::vector<std::unique_ptr<util::SpscRing<Item>>>> rings(
      kShards);
  for (std::size_t p = 0; p < kShards; ++p) {
    for (std::size_t c = 0; c < kShards; ++c) {
      rings[p].push_back(p == c ? nullptr
                                : std::make_unique<util::SpscRing<Item>>(64));
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> shards;
  for (std::size_t me = 0; me < kShards; ++me) {
    shards.emplace_back([&, me] {
      for (std::size_t other = 0; other < kShards; ++other) {
        if (other == me) continue;
        rings[me][other]->assume_producer();
        rings[other][me]->assume_consumer();
      }
      std::uint64_t sent[kShards];       // per-outbound-stream seq pushed
      std::uint64_t last_seen[kShards];  // per-inbound-stream high water
      std::uint64_t received[kShards];   // per-inbound-stream count
      for (std::size_t i = 0; i < kShards; ++i) {
        sent[i] = 0;
        last_seen[i] = 0;
        received[i] = 0;
      }
      const std::uint64_t want_in = kPerStream * (kShards - 1);
      std::uint64_t total_in = 0;
      bool done_out = false;
      while (!done_out || total_in < want_in) {
        // Advance every outbound stream by one where there is room (a full
        // ring just retries later — the reactor's real fallback is
        // loop.post). Streams progress independently, exercising full-ring
        // back-pressure without coupling consumers to each other.
        done_out = true;
        for (std::size_t other = 0; other < kShards; ++other) {
          if (other == me || sent[other] >= kPerStream) continue;
          Item it{static_cast<std::uint32_t>(me), sent[other] + 1};
          if (rings[me][other]->try_push(it)) ++sent[other];
          if (sent[other] < kPerStream) done_out = false;
        }
        // Drain every inbound ring, asserting per-producer monotonicity.
        for (std::size_t other = 0; other < kShards; ++other) {
          if (other == me) continue;
          Item it;
          while (rings[other][me]->try_pop(it)) {
            if (it.producer != other || it.seq != last_seen[other] + 1) {
              failures.fetch_add(1);
            }
            last_seen[other] = it.seq;
            ++received[other];
            ++total_in;
          }
        }
        std::this_thread::yield();
      }
      for (std::size_t other = 0; other < kShards; ++other) {
        if (other != me && received[other] != kPerStream) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : shards) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The sharded twin of ReactorConcurrentMulticastFloodAndChurn: four
// independent event-loop shards (forced even on a 1-core host), so every
// multicast fans out through the cross-shard SPSC rings while a spoofed
// flood hammers the well-known ports and app threads multicast and read
// telemetry concurrently. Ends with the same stop pile-up + restart, which
// in sharded mode tears down and rebuilds the whole handoff mesh.
TEST(Stress, ReactorShardedFloodAndChurn) {
  constexpr std::size_t kNodes = 8;
  util::Rng rng{77};
  net::MemNetwork mem;
  std::vector<crypto::Identity> ids;
  std::vector<core::Peer> dir(kNodes);
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::atomic<int> delivered{0};
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    ids.push_back(crypto::Identity::generate(rng));
    dir[id] = {id,
               id,
               static_cast<std::uint16_t>(9800 + 2 * id),
               static_cast<std::uint16_t>(9800 + 2 * id + 1),
               0,
               ids[id].sign_public(),
               ids[id].dh_public(),
               true};
  }
  ReactorConfig rc;
  rc.round = 30ms;
  rc.shards = 4;  // 2 nodes per shard: most gossip crosses a shard boundary
  ReactorRuntime reactor(rc);
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    transports.push_back(mem.transport(id));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = dir[id].wk_pull_port;
    cfg.wk_offer_port = dir[id].wk_offer_port;
    nodes.push_back(std::make_unique<core::Node>(
        cfg, ids[id], dir, *transports.back(), rng.next(),
        [&delivered](const core::Node::Delivery&) {
          delivered.fetch_add(1);
        }));
    reactor.add_node(*nodes.back(), rng.next());
  }
  reactor.start();
  EXPECT_EQ(reactor.shard_count(), 4u);

  std::atomic<bool> flood_stop{false};
  std::thread attacker([&] {
    util::Rng arng{321};
    util::Bytes junk(40);
    while (!flood_stop.load()) {
      for (auto& b : junk) b = static_cast<std::uint8_t>(arng.below(256));
      const auto victim = static_cast<std::uint32_t>(arng.below(kNodes));
      mem.send_raw(
          {0xBAD00000u | static_cast<std::uint32_t>(arng.below(4096)),
           static_cast<std::uint16_t>(1024 + arng.below(60000))},
          {victim, dir[victim].wk_offer_port}, util::ByteSpan(junk));
      std::this_thread::sleep_for(1ms);
    }
  });

  constexpr int kThreads = 3;
  constexpr int kPerThread = 6;
  std::vector<std::thread> apps;
  std::atomic<std::uint64_t> rounds_seen{0};
  for (int t = 0; t < kThreads; ++t) {
    apps.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto which = static_cast<std::size_t>(t + i) % kNodes;
        const std::uint8_t payload[2] = {static_cast<std::uint8_t>(t),
                                         static_cast<std::uint8_t>(i)};
        reactor.multicast(which, util::ByteSpan(payload, sizeof payload));
        reactor.with_node((which + 1) % kNodes,
                          [&rounds_seen](core::Node& n) {
                            rounds_seen.fetch_add(
                                n.registry().counter_value("node.rounds"));
                          });
      }
    });
  }
  for (auto& t : apps) t.join();

  const int expect = kThreads * kPerThread * (kNodes - 1);
  EXPECT_TRUE(
      eventually([&] { return delivered.load() >= expect; },
                 15000ms * kSanSlowdown));
  flood_stop.store(true);
  attacker.join();

  // Concurrent stop pile-up, then restart with the same shard plan.
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&reactor] { reactor.stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(reactor.running());
  reactor.start();
  EXPECT_EQ(reactor.shard_count(), 4u);
  reactor.multicast(0, util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>("z"), 1));
  EXPECT_TRUE(eventually(
      [&] { return delivered.load() >= expect + int(kNodes) - 1; },
      10000ms * kSanSlowdown));
  reactor.stop();
  EXPECT_EQ(delivered.load(), expect + int(kNodes) - 1);
}

}  // namespace
}  // namespace drum::runtime
