// Figure 2 of the paper (simulation, no DoS attack):
//  (a) average propagation time to 99% of processes vs group size
//      (logarithmic growth — classic gossip result [25,14]);
//  (b) propagation time vs % of crashed processes, n = 1000
//      (graceful degradation [13,17]).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto big_n = static_cast<std::size_t>(
      flags.get_int("crash-n", 1000, "group size for Fig. 2(b)"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 2",
                      "validation without DoS: log(n) growth + crash "
                      "tolerance (simulations)");

  const sim::SimProtocol protos[] = {sim::SimProtocol::kDrum,
                                     sim::SimProtocol::kPush,
                                     sim::SimProtocol::kPull};

  util::Table a({"n", "drum", "push", "pull"});
  for (std::size_t n : {40u, 80u, 120u, 250u, 500u, 1000u}) {
    std::vector<double> row{static_cast<double>(n)};
    for (auto proto : protos) {
      auto agg = bench::sim_point(proto, n, 0, 0, runs, seed, 300, 0, 0, opts);
      row.push_back(agg.rounds_to_target.mean());
    }
    a.add_row(row, 2);
  }
  a.print("Figure 2(a): propagation time vs n, failure-free (rounds)");

  util::Table b({"% crashed", "drum", "push", "pull"});
  for (double crashed : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<double> row{crashed * 100};
    for (auto proto : protos) {
      auto agg =
          bench::sim_point(proto, big_n, 0, 0, runs, seed, 300, crashed, 0,
                           opts);
      row.push_back(agg.rounds_to_target.mean());
    }
    b.add_row(row, 2);
  }
  b.print("Figure 2(b): propagation time vs % crashed, n=" +
          std::to_string(big_n) + " (rounds)");
  return 0;
}
