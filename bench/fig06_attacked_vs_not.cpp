// Figure 6 of the paper (simulation): propagation time vs x split by
// destination population — (a) to 99% of the NON-attacked processes,
// (b) to 99% of the ATTACKED processes. Push reaches non-attacked processes
// quickly but attacked ones very slowly; Drum is fast to both.
#include "bench_common.hpp"

#include "drum/analysis/appendix_c.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  auto measured_rounds = flags.get_double(
      "measured-rounds", 30, "measurement window for the real-node section");
  auto metrics_out = flags.get_string(
      "metrics-out", "fig06_metrics.json",
      "per-point instrumentation artifact (empty string disables)");
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 6",
                      "propagation time to non-attacked vs attacked "
                      "processes, alpha=10% (simulations)");

  util::Table a({"x", "drum", "push", "pull"});
  util::Table b({"x", "drum", "push", "pull"});
  for (double x : {32.0, 64.0, 96.0, 128.0}) {
    std::vector<double> row_non{x}, row_att{x};
    for (auto proto : {sim::SimProtocol::kDrum, sim::SimProtocol::kPush,
                       sim::SimProtocol::kPull}) {
      auto agg = bench::sim_point(proto, n, 0.1, x, runs, seed, 600, 0.0, 0.1, opts);
      row_non.push_back(agg.rounds_to_target_non_attacked.mean());
      row_att.push_back(agg.rounds_to_target_attacked.mean());
    }
    a.add_row(row_non, 2);
    b.add_row(row_att, 2);
  }
  a.print("Figure 6(a): propagation time to 99% of non-attacked (rounds)");
  b.print("Figure 6(b): propagation time to 99% of attacked (rounds)");

  // Cross-check against the Appendix C two-population analysis: first round
  // at which the expected per-population coverage reaches 99%.
  util::Table c({"x", "drum non-att (ana)", "drum att (ana)",
                 "push non-att (ana)", "push att (ana)"});
  for (double x : {32.0, 64.0, 96.0, 128.0}) {
    std::vector<double> row{x};
    for (auto proto : {analysis::Protocol::kDrum, analysis::Protocol::kPush}) {
      analysis::DetailedParams dp;
      dp.protocol = proto;
      dp.n = n;
      dp.b = n / 10;
      dp.alpha = 0.1;
      dp.x = x;
      auto split = analysis::expected_coverage_split(dp, 200);
      auto first_at = [](const std::vector<double>& v) {
        for (std::size_t r = 0; r < v.size(); ++r) {
          if (v[r] >= 0.99) return static_cast<double>(r);
        }
        return static_cast<double>(v.size());
      };
      row.push_back(first_at(split.non_attacked));
      row.push_back(first_at(split.attacked));
    }
    c.add_row(row, 0);
  }
  c.print("Figure 6 (analysis): rounds to 99% expected per-population "
          "coverage (Appendix C)");

  // Measured counterpart on the real implementation (n=50, like the paper's
  // testbed): per-population received throughput, plus the instrumentation
  // that explains it — flushed-unread and budget-exhaustion split between
  // attacked and non-attacked nodes goes into the metrics artifact.
  bench::MeasureOpts mo;
  mo.seed = seed;
  mo.measured_rounds = measured_rounds;
  bench::MetricsArtifact artifact("fig06");
  util::Table d({"x", "variant", "att msg/round", "non-att msg/round",
                 "att flushed", "non-att flushed"});
  struct Proto {
    const char* name;
    core::Variant v;
  } protos[] = {{"drum", core::Variant::kDrum},
                {"push", core::Variant::kPush}};
  for (double x : {32.0, 128.0}) {
    for (const auto& p : protos) {
      harness::ClusterConfig ccfg;
      ccfg.variant = p.v;
      ccfg.n = mo.n;
      ccfg.alpha = 0.1;
      ccfg.x = x;
      ccfg.rate = mo.rate;
      ccfg.round_us = mo.round_us;
      ccfg.verify_signatures = mo.verify_signatures;
      ccfg.seed = seed;
      harness::Cluster cluster(ccfg);
      cluster.run_rounds(mo.warmup_rounds, true);
      cluster.begin_measurement();
      cluster.run_rounds(measured_rounds, true);
      cluster.end_measurement();
      cluster.run_rounds(mo.drain_rounds, false);

      // Mean delivered per round, split by population.
      double att = 0, non = 0;
      std::size_t n_att = 0, n_non = 0;
      for (const auto& per : cluster.metrics().nodes) {
        (per.attacked ? att : non) += static_cast<double>(per.delivered);
        ++(per.attacked ? n_att : n_non);
      }
      const double window_rounds =
          static_cast<double>(cluster.metrics().window_us) /
          static_cast<double>(ccfg.round_us);
      auto per_round = [&](double total, std::size_t count) {
        return count ? total / static_cast<double>(count) / window_rounds
                     : 0.0;
      };
      const auto att_reg =
          cluster.merged_registry(harness::Cluster::NodeSet::kAttacked);
      const auto non_reg =
          cluster.merged_registry(harness::Cluster::NodeSet::kNonAttacked);
      d.add_row({util::fmt(x, 0), p.name, util::fmt(per_round(att, n_att), 2),
                 util::fmt(per_round(non, n_non), 2),
                 std::to_string(att_reg.counter_value("node.flushed_unread")),
                 std::to_string(non_reg.counter_value("node.flushed_unread"))});
      artifact.add_point({"\"variant\": \"" + std::string(p.name) + "\"",
                          "\"alpha\": 0.1",
                          "\"x\": " + std::to_string(static_cast<int>(x))},
                         cluster.metrics_json());
    }
  }
  d.print("Figure 6 (measured, n=50): received throughput and flushed-unread "
          "datagrams by population");
  if (!metrics_out.empty()) artifact.write(metrics_out);
  return 0;
}
