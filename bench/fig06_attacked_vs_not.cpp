// Figure 6 of the paper (simulation): propagation time vs x split by
// destination population — (a) to 99% of the NON-attacked processes,
// (b) to 99% of the ATTACKED processes. Push reaches non-attacked processes
// quickly but attacked ones very slowly; Drum is fast to both.
#include "bench_common.hpp"

#include "drum/analysis/appendix_c.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  flags.done();

  bench::print_header("Figure 6",
                      "propagation time to non-attacked vs attacked "
                      "processes, alpha=10% (simulations)");

  util::Table a({"x", "drum", "push", "pull"});
  util::Table b({"x", "drum", "push", "pull"});
  for (double x : {32.0, 64.0, 96.0, 128.0}) {
    std::vector<double> row_non{x}, row_att{x};
    for (auto proto : {sim::SimProtocol::kDrum, sim::SimProtocol::kPush,
                       sim::SimProtocol::kPull}) {
      auto agg = bench::sim_point(proto, n, 0.1, x, runs, seed);
      row_non.push_back(agg.rounds_to_target_non_attacked.mean());
      row_att.push_back(agg.rounds_to_target_attacked.mean());
    }
    a.add_row(row_non, 2);
    b.add_row(row_att, 2);
  }
  a.print("Figure 6(a): propagation time to 99% of non-attacked (rounds)");
  b.print("Figure 6(b): propagation time to 99% of attacked (rounds)");

  // Cross-check against the Appendix C two-population analysis: first round
  // at which the expected per-population coverage reaches 99%.
  util::Table c({"x", "drum non-att (ana)", "drum att (ana)",
                 "push non-att (ana)", "push att (ana)"});
  for (double x : {32.0, 64.0, 96.0, 128.0}) {
    std::vector<double> row{x};
    for (auto proto : {analysis::Protocol::kDrum, analysis::Protocol::kPush}) {
      analysis::DetailedParams dp;
      dp.protocol = proto;
      dp.n = n;
      dp.b = n / 10;
      dp.alpha = 0.1;
      dp.x = x;
      auto split = analysis::expected_coverage_split(dp, 200);
      auto first_at = [](const std::vector<double>& v) {
        for (std::size_t r = 0; r < v.size(); ++r) {
          if (v[r] >= 0.99) return static_cast<double>(r);
        }
        return static_cast<double>(v.size());
      };
      row.push_back(first_at(split.non_attacked));
      row.push_back(first_at(split.attacked));
    }
    c.add_row(row, 0);
  }
  c.print("Figure 6 (analysis): rounds to 99% expected per-population "
          "coverage (Appendix C)");
  return 0;
}
