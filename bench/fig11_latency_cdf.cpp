// Figure 11 of the paper (measurements): CDF over processes of the mean
// delivery latency of successfully received messages, n = 50.
//  (a) alpha=10%, x=128;  (b) alpha=40%, x=128.
// Push is fastest to non-attacked processes but its attacked processes see
// ~4x the latency; Pull is uniformly slow; Drum is nearly as fast as Push
// with a small attacked/non-attacked gap.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 20, "source messages per round"));
  auto rounds = flags.get_double("rounds", 40, "measured window in rounds");
  bool verify = flags.get_bool("verify", false, "verify Ed25519 signatures");
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  flags.done();

  bench::print_header("Figure 11",
                      "CDF over processes of mean delivery latency, n=50 "
                      "(measurements; latency in rounds and virtual ms)");

  bench::MeasureOpts mo;
  mo.rate = rate;
  mo.measured_rounds = rounds;
  mo.verify_signatures = verify;
  mo.seed = seed;

  struct Config {
    const char* title;
    double alpha;
  } configs[] = {{"Figure 11(a): alpha=10%, x=128", 0.1},
                 {"Figure 11(b): alpha=40%, x=128", 0.4}};

  int point = 0;
  for (const auto& c : configs) {
    // One sorted list of per-process mean latencies per protocol.
    std::vector<std::vector<double>> sorted_ms(3);
    std::vector<std::vector<char>> attacked(3);
    const core::Variant variants[] = {core::Variant::kDrum,
                                      core::Variant::kPush,
                                      core::Variant::kPull};
    for (int i = 0; i < 3; ++i) {
      mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      auto meas = bench::measured_point(variants[i], c.alpha, 128, mo);
      std::vector<std::pair<double, char>> lat;
      for (const auto& pn : meas.per_node) {
        if (pn.latency_us.count() == 0) continue;
        lat.emplace_back(pn.latency_us.mean() / 1000.0, pn.attacked ? 1 : 0);
      }
      std::sort(lat.begin(), lat.end());
      for (auto& [ms, att] : lat) {
        sorted_ms[i].push_back(ms);
        attacked[i].push_back(att);
      }
    }
    util::Table t({"% of processes", "drum ms", "push ms", "pull ms"});
    std::size_t max_len = std::max(
        {sorted_ms[0].size(), sorted_ms[1].size(), sorted_ms[2].size()});
    for (std::size_t k = 0; k < max_len; ++k) {
      std::vector<double> row{
          100.0 * static_cast<double>(k + 1) / static_cast<double>(max_len)};
      for (int i = 0; i < 3; ++i) {
        row.push_back(k < sorted_ms[i].size() ? sorted_ms[i][k]
                                              : sorted_ms[i].back());
      }
      t.add_row(row, 1);
    }
    t.print(c.title);
  }
  return 0;
}
