// Figure 5 of the paper (simulation): CDF — the average percentage of
// correct processes that have received M by each round, n = 1000, under
// (a) alpha=10%, x=128 and (b) alpha=40%, x=128. Push plateaus after
// reaching the non-attacked processes; Pull ramps slowly (source escape);
// Drum dominates both.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  auto max_round = static_cast<std::size_t>(
      flags.get_int("rounds", 30, "rounds shown in the CDF"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 5",
                      "CDF: average % of correct processes holding M per "
                      "round, n=1000 (simulations)");

  struct Config {
    const char* title;
    double alpha, x;
  } configs[] = {{"Figure 5(a): alpha=10%, x=128", 0.1, 128},
                 {"Figure 5(b): alpha=40%, x=128", 0.4, 128}};

  for (const auto& c : configs) {
    std::vector<std::vector<double>> curves;
    for (auto proto : {sim::SimProtocol::kDrum, sim::SimProtocol::kPush,
                       sim::SimProtocol::kPull}) {
      auto agg = bench::sim_point(proto, n, c.alpha, c.x, runs, seed,
                                  std::max<std::size_t>(max_round, 300), 0.0,
                                  0.1, opts);
      curves.push_back(agg.coverage.average());
    }
    util::Table t({"round", "drum %", "push %", "pull %"});
    for (std::size_t r = 0; r <= max_round; ++r) {
      std::vector<double> row{static_cast<double>(r)};
      for (const auto& curve : curves) {
        double v = r < curve.size() ? curve[r]
                                    : (curve.empty() ? 0.0 : curve.back());
        row.push_back(v * 100);
      }
      t.add_row(row, 1);
    }
    t.print(c.title);
  }
  return 0;
}
