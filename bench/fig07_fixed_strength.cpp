// Figure 7 of the paper (simulation): fixed total attack strength
// B = x * alpha * n, varying how broadly the adversary spreads it.
//  (a) B = 7.2n, n = 120;  (b) B = 36n, n = 500.
// Against Drum, concentrating on few processes does NOT pay off (Lemma 2:
// propagation time increases with alpha); against Push/Pull, concentration
// is devastating. All protocols meet at the rightmost point (everyone
// attacked).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 7",
                      "fixed-strength attacks: who should the adversary "
                      "target? (simulations)");

  struct Config {
    const char* title;
    std::size_t n;
    double b_per_n;  // B / n
  } configs[] = {{"Figure 7(a): B=7.2n, n=120", 120, 7.2},
                 {"Figure 7(b): B=36n, n=500", 500, 36.0}};

  for (const auto& c : configs) {
    util::Table t({"alpha %", "x", "drum", "push", "pull"});
    // alpha up to 0.9: 10% of members are the (malicious) attackers.
    for (double alpha : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
      double x = c.b_per_n / alpha;
      std::vector<double> row{alpha * 100, x};
      for (auto proto : {sim::SimProtocol::kDrum, sim::SimProtocol::kPush,
                         sim::SimProtocol::kPull}) {
        auto agg = bench::sim_point(proto, c.n, alpha, x, runs, seed, 900, 0.0,
                                    0.1, opts);
        row.push_back(agg.rounds_to_target.mean());
      }
      t.add_row(row, 2);
    }
    t.print(c.title);
  }
  return 0;
}
