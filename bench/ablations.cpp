// Ablations of Drum design choices beyond the paper's Figure 12
// (DESIGN.md §5):
//  (a) round-end discard of unread backlog (paper §4 calls it "important,
//      especially in the presence of DoS attacks") vs FIFO carry-over —
//      measured on the real implementation: with carry-over, stale flood
//      datagrams at the head of the queue eat every future round's budget;
//  (b) Drum's even push/pull fan-out split vs asymmetric splits
//      (simulation): the even split is what lets each half-protocol cover
//      the other's attacked direction.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 30, "measured workload msgs/round"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Ablations",
                      "round-end discard policy (measured) and fan-out "
                      "split (simulation)");

  // (a) discard vs carry-over, measured, alpha=10%.
  //
  // The discard matters exactly where valid traffic must survive on a
  // flooded well-known port: Pull's source serves pull-requests there, so
  // with carry-over the stale flood at the head of the queue starves it
  // forever. Drum is nearly indifferent — its critical paths (pull-replies,
  // push-replies, push data) ride on unflooded random ports, which is the
  // deeper reason random ports + discard compose.
  {
    util::Table t({"x", "pull discard", "pull carry-over", "drum discard",
                   "drum carry-over"});
    int point = 0;
    auto run_one = [&](core::Variant v, double x, bool discard) {
      harness::ClusterConfig cfg;
      cfg.variant = v;
      cfg.n = 50;
      cfg.alpha = 0.1;
      cfg.x = x;
      cfg.rate = rate;
      cfg.verify_signatures = false;
      cfg.discard_unread = discard;
      cfg.seed = seed;
      cfg.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      harness::Cluster cluster(cfg);
      cluster.run_rounds(5, true);
      cluster.begin_measurement();
      cluster.run_rounds(30, true);
      cluster.end_measurement();
      cluster.run_rounds(20, false);
      return cluster.metrics().mean_throughput_msgs_per_sec() * 0.1;
    };
    for (double x : {0.0, 32.0, 128.0}) {
      t.add_row({x, run_one(core::Variant::kPull, x, true),
                 run_one(core::Variant::kPull, x, false),
                 run_one(core::Variant::kDrum, x, true),
                 run_one(core::Variant::kDrum, x, false)},
                2);
    }
    t.print("Ablation (a): round-end discard vs FIFO carry-over — received "
            "throughput (msg/round), alpha=10%, n=50 (measured)");
  }

  // (c) the ATTACKER rebalances its budget between Drum's two well-known
  // channels. No split helps: the abandoned channel carries the data.
  {
    util::Table t({"attack push fraction", "drum rounds (x=128)",
                   "drum rounds (x=512)"});
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      std::vector<double> row{frac};
      for (double x : {128.0, 512.0}) {
        sim::SimParams p;
        p.protocol = sim::SimProtocol::kDrum;
        p.n = 120;
        p.alpha = 0.1;
        p.x = x;
        p.attack_push_fraction = frac;
        p.max_rounds = 600;
        auto agg = sim::simulate_many(p, runs, seed, opts);
        row.push_back(agg.rounds_to_target.mean());
      }
      t.add_row(row, 2);
    }
    t.print("Ablation (c): attacker budget split vs Drum, alpha=10%, n=120 "
            "(simulation, rounds)");
  }

  // (b) fan-out split, simulation, alpha=10%, x=128.
  {
    util::Table t({"x", "push1+pull3", "push2+pull2 (drum)", "push3+pull1"});
    for (double x : {0.0, 32.0, 64.0, 128.0}) {
      std::vector<double> row{x};
      for (std::size_t split : {1u, 2u, 3u}) {
        sim::SimParams p;
        p.protocol = sim::SimProtocol::kDrum;
        p.n = 120;
        p.alpha = 0.1;
        p.x = x;
        p.drum_push_view = split;
        p.max_rounds = 600;
        auto agg = sim::simulate_many(p, runs, seed, opts);
        row.push_back(agg.rounds_to_target.mean());
      }
      t.add_row(row, 2);
    }
    t.print("Ablation (b): Drum fan-out split, n=120 (simulation, rounds)");
  }
  return 0;
}
