// Figure 4 of the paper (simulation): the standard deviation of the
// propagation times behind Figure 3, n = 1000. Drum's STD stays flat in x;
// Push's grows linearly; Pull's is much larger than both — dominated by the
// geometric rounds-to-leave-the-attacked-source (§7.2, Appendix B).
#include "bench_common.hpp"

#include "drum/analysis/appendix_b.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 4",
                      "STD of propagation time under targeted attacks, "
                      "n=1000 (simulations)");

  const sim::SimProtocol protos[] = {sim::SimProtocol::kDrum,
                                     sim::SimProtocol::kPush,
                                     sim::SimProtocol::kPull};

  util::Table a({"x", "drum", "push", "pull", "pull escape STD (App. B)"});
  for (double x : {0.0, 32.0, 64.0, 96.0, 128.0}) {
    std::vector<double> row{x};
    for (auto proto : protos) {
      auto agg = bench::sim_point(proto, n, 0.1, x, runs, seed, 600, 0.0, 0.1, opts);
      row.push_back(agg.rounds_to_target.stddev());
    }
    row.push_back(x > 0 ? analysis::pull_std_rounds_to_leave_source(n, 4, x)
                        : 0.0);
    a.add_row(row, 2);
  }
  a.print("Figure 4(a): STD vs x, alpha=10% (rounds)");

  util::Table b({"alpha %", "drum", "push", "pull"});
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::vector<double> row{alpha * 100};
    for (auto proto : protos) {
      auto agg = bench::sim_point(proto, n, alpha, 128, runs, seed, 600, 0.0, 0.1,
                                    opts);
      row.push_back(agg.rounds_to_target.stddev());
    }
    b.add_row(row, 2);
  }
  b.print("Figure 4(b): STD vs alpha, x=128 (rounds)");
  return 0;
}
