// Figure 10 of the paper (measurements): average received throughput at
// the correct processes while the attacked source multicasts at a fixed
// rate and old messages purge after 10 rounds. n = 50.
//  (a) vs x at alpha=10%: Drum flat, Push slightly degrading, Pull
//      collapsing;  (b) vs alpha at x=128: Drum degrades gracefully, Push
//      linearly, Pull is hit at every alpha > 0.
// Paper: 40 msgs/s with 1 s rounds; here rates are per-round and the round
// is compressed (DESIGN.md §6) — the reported msgs/round column is the
// scale-free number, msgs/s follows from the configured round duration.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 40, "source messages per round (paper: 40)"));
  auto rounds = flags.get_double("rounds", 40, "measured window in rounds");
  bool verify = flags.get_bool("verify", false,
                               "verify Ed25519 signatures (costly on 1 CPU)");
  bool udp = flags.get_bool("udp", false, "use real loopback UDP sockets");
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto metrics_out = flags.get_string(
      "metrics-out", "fig10_metrics.json",
      "per-point instrumentation artifact (empty string disables)");
  auto timeseries_out = flags.get_string(
      "timeseries-out", "fig10_timeseries.csv",
      "per-round progression CSV (empty string disables)");
  flags.done();

  bench::print_header("Figure 10",
                      "measured received throughput under DoS, n=50");

  bench::MeasureOpts mo;
  mo.rate = rate;
  mo.measured_rounds = rounds;
  mo.verify_signatures = verify;
  mo.use_udp = udp;
  mo.seed = seed;

  struct Proto {
    const char* name;
    core::Variant v;
  } protos[] = {{"drum", core::Variant::kDrum},
                {"push", core::Variant::kPush},
                {"pull", core::Variant::kPull}};

  bench::MetricsArtifact artifact("fig10");
  // Combined per-round progression over every point (long format).
  std::string series = "variant,alpha,x,round,t_us,delivered,flushed_unread,"
                       "net_dropped\n";
  auto take_point = [&](const char* name, core::Variant v, double alpha,
                        double x) {
    auto meas = bench::measured_point(v, alpha, x, mo);
    artifact.add_point(
        {"\"variant\": \"" + std::string(name) + "\"",
         "\"alpha\": " + util::fmt(alpha, 2),
         "\"x\": " + util::fmt(x, 0)},
        meas.metrics_json);
    // Re-key the point's CSV rows with the point labels (skip its header).
    std::size_t pos = meas.timeseries_csv.find('\n');
    if (pos != std::string::npos) {
      std::string prefix = std::string(name) + "," + util::fmt(alpha, 2) +
                           "," + util::fmt(x, 0) + ",";
      std::size_t start = pos + 1;
      while (start < meas.timeseries_csv.size()) {
        std::size_t nl = meas.timeseries_csv.find('\n', start);
        if (nl == std::string::npos) nl = meas.timeseries_csv.size();
        series += prefix;
        series.append(meas.timeseries_csv, start, nl - start);
        series += '\n';
        start = nl + 1;
      }
    }
    return meas;
  };

  int point = 0;
  util::Table a({"x", "drum msg/round", "push msg/round", "pull msg/round"});
  for (double x : {0.0, 32.0, 64.0, 128.0}) {
    std::vector<double> row{x};
    for (const auto& p : protos) {
      mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      auto meas = take_point(p.name, p.v, 0.1, x);
      row.push_back(meas.throughput_msgs_per_round);
    }
    a.add_row(row, 2);
  }
  a.print("Figure 10(a): throughput vs x, alpha=10% (source rate " +
          std::to_string(rate) + "/round)");

  util::Table b({"alpha %", "drum msg/round", "push msg/round",
                 "pull msg/round"});
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::vector<double> row{alpha * 100};
    for (const auto& p : protos) {
      mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      auto meas = take_point(p.name, p.v, alpha, 128);
      row.push_back(meas.throughput_msgs_per_round);
    }
    b.add_row(row, 2);
  }
  b.print("Figure 10(b): throughput vs alpha, x=128 (source rate " +
          std::to_string(rate) + "/round)");

  if (!metrics_out.empty()) artifact.write(metrics_out);
  if (!timeseries_out.empty()) {
    if (obs::write_text_file(timeseries_out, series)) {
      std::printf("# timeseries artifact: %s\n", timeseries_out.c_str());
    } else {
      std::printf("# WARNING: could not write %s\n", timeseries_out.c_str());
    }
  }
  return 0;
}
