// Figure 12 of the paper — the §9 ablations of Drum's two remaining
// DoS-mitigation techniques:
//  (a) random ports (simulation, n=1000): Drum vs a variant whose
//      pull-replies arrive on a well-known port the adversary also floods —
//      the variant's propagation time grows linearly in x, real Drum stays
//      flat;
//  (b) separate resource bounds (measurements, n=50): Drum vs a variant
//      with one joint bound on all control messages — under flood the
//      joint bound starves the push-reply channel and performance degrades
//      linearly, while unmodified Drum is indifferent.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n_sim = static_cast<std::size_t>(
      flags.get_int("sim-n", 1000, "group size for the simulation panel"));
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 40, "measured workload msgs/round"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 12",
                      "ablations: random ports (sim) and separate resource "
                      "bounds (measured), alpha=10%");

  util::Table a({"x", "drum", "drum-wk-ports"});
  for (double x : {0.0, 32.0, 64.0, 96.0, 128.0}) {
    auto drum = bench::sim_point(sim::SimProtocol::kDrum, n_sim, 0.1, x, runs,
                                 seed, 600, 0.0, 0.1, opts);
    auto wk = bench::sim_point(sim::SimProtocol::kDrumWkPorts, n_sim, 0.1, x,
                               runs, seed, 600, 0.0, 0.1, opts);
    a.add_row({x, drum.rounds_to_target.mean(), wk.rounds_to_target.mean()},
              2);
  }
  a.print("Figure 12(a): random ports ablation, n=" + std::to_string(n_sim) +
          " (simulation, rounds)");

  bench::MeasureOpts mo;
  mo.rate = rate;
  mo.measured_rounds = 30;
  mo.seed = seed;
  int point = 0;
  util::Table b({"x", "drum rounds", "shared-bounds rounds",
                 "drum msg/round", "shared msg/round"});
  for (double x : {0.0, 32.0, 64.0, 128.0, 256.0}) {
    mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
    auto drum = bench::measured_point(core::Variant::kDrum, 0.1, x, mo);
    mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
    auto shared =
        bench::measured_point(core::Variant::kDrumSharedBounds, 0.1, x, mo);
    b.add_row({x, drum.propagation_rounds_mean,
               shared.propagation_rounds_mean, drum.throughput_msgs_per_round,
               shared.throughput_msgs_per_round},
              2);
  }
  b.print("Figure 12(b): resource separation ablation, n=50 (measured)");
  return 0;
}
