// Figure 14 of the paper: the detailed numerical analysis (Appendix C,
// §C.2.2 two-population recursion) against the simulation under DoS
// attacks, n = 120, 10% malicious members:
//  (a-c) alpha=10%, x in {32, 64, 128};  (d-f) x=128, alpha in {40,60,80}%.
#include "bench_common.hpp"

#include "drum/analysis/appendix_c.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 200, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 120, "group size"));
  auto max_round = static_cast<std::size_t>(
      flags.get_int("rounds", 30, "rounds shown in the CDFs"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header(
      "Figure 14",
      "Appendix C analysis vs simulation under DoS, n=120 (CDFs)");

  struct Config {
    const char* title;
    double alpha, x;
  } configs[] = {{"Figure 14(a): alpha=10%, x=32", 0.1, 32},
                 {"Figure 14(b): alpha=10%, x=64", 0.1, 64},
                 {"Figure 14(c): alpha=10%, x=128", 0.1, 128},
                 {"Figure 14(d): alpha=40%, x=128", 0.4, 128},
                 {"Figure 14(e): alpha=60%, x=128", 0.6, 128},
                 {"Figure 14(f): alpha=80%, x=128", 0.8, 128}};

  struct Proto {
    const char* name;
    sim::SimProtocol sim;
    analysis::Protocol ana;
  } protos[] = {{"drum", sim::SimProtocol::kDrum, analysis::Protocol::kDrum},
                {"push", sim::SimProtocol::kPush, analysis::Protocol::kPush},
                {"pull", sim::SimProtocol::kPull, analysis::Protocol::kPull}};

  const auto b = static_cast<std::size_t>(0.1 * static_cast<double>(n));

  for (const auto& c : configs) {
    std::vector<std::vector<double>> sim_curves, ana_curves;
    for (const auto& p : protos) {
      auto agg = bench::sim_point(p.sim, n, c.alpha, c.x, runs, seed, 600, 0.0,
                                  0.1, opts);
      sim_curves.push_back(agg.coverage.average());

      analysis::DetailedParams dp;
      dp.protocol = p.ana;
      dp.n = n;
      dp.b = b;
      dp.alpha = c.alpha;
      dp.x = c.x;
      ana_curves.push_back(analysis::expected_coverage(dp, max_round));
    }
    util::Table t({"round", "drum ana %", "drum sim %", "push ana %",
                   "push sim %", "pull ana %", "pull sim %"});
    for (std::size_t r = 0; r <= max_round; r += (max_round > 40 ? 2 : 1)) {
      std::vector<double> row{static_cast<double>(r)};
      for (int i = 0; i < 3; ++i) {
        auto at = [&](const std::vector<double>& v) {
          return r < v.size() ? v[r] : (v.empty() ? 0.0 : v.back());
        };
        row.push_back(at(ana_curves[i]) * 100);
        row.push_back(at(sim_curves[i]) * 100);
      }
      t.add_row(row, 1);
    }
    t.print(c.title);
  }
  return 0;
}
