// google-benchmark microbenchmarks of the hot paths: the crypto primitives
// (what bounds a node's per-round CPU budget, and hence how expensive it is
// for a victim to process fabricated messages), digest/buffer operations,
// and one full simulated gossip round.
#include <benchmark/benchmark.h>

#include "drum/core/buffer.hpp"
#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/hmac.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/crypto/sha256.hpp"
#include "drum/crypto/x25519.hpp"
#include "drum/sim/engine.hpp"
#include "drum/util/rng.hpp"

namespace {

using namespace drum;

util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  auto data = random_bytes(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(util::ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256_64B(benchmark::State& state) {
  auto key = random_bytes(32, 2);
  auto data = random_bytes(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::hmac_sha256(util::ByteSpan(key), util::ByteSpan(data)));
  }
}
BENCHMARK(BM_HmacSha256_64B);

void BM_ChaCha20_1KiB(benchmark::State& state) {
  auto key = random_bytes(32, 4);
  auto nonce = random_bytes(12, 5);
  auto data = random_bytes(1024, 6);
  for (auto _ : state) {
    crypto::ChaCha20 c{util::ByteSpan(key), util::ByteSpan(nonce)};
    c.crypt(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_ChaCha20_1KiB);

void BM_X25519(benchmark::State& state) {
  util::Rng rng(7);
  crypto::X25519Key scalar{};
  for (auto& b : scalar) b = static_cast<std::uint8_t>(rng.below(256));
  auto pub = crypto::x25519_base(scalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::x25519(scalar, pub));
  }
}
BENCHMARK(BM_X25519);

void BM_Ed25519Sign_50B(benchmark::State& state) {
  util::Rng rng(8);
  auto id = crypto::Identity::generate(rng);
  auto msg = random_bytes(50, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(id.sign(util::ByteSpan(msg)));
  }
}
BENCHMARK(BM_Ed25519Sign_50B);

void BM_Ed25519Verify_50B(benchmark::State& state) {
  util::Rng rng(10);
  auto id = crypto::Identity::generate(rng);
  auto msg = random_bytes(50, 11);
  auto sig = id.sign(util::ByteSpan(msg));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::verify(id.sign_public(), util::ByteSpan(msg), sig));
  }
}
BENCHMARK(BM_Ed25519Verify_50B);

void BM_PortBoxSealOpen(benchmark::State& state) {
  util::Rng rng(12);
  auto key = random_bytes(32, 13);
  for (auto _ : state) {
    auto box = crypto::portbox_seal_port(util::ByteSpan(key), 49152, rng);
    benchmark::DoNotOptimize(
        crypto::portbox_open_port(util::ByteSpan(key), util::ByteSpan(box)));
  }
}
BENCHMARK(BM_PortBoxSealOpen);

// Cost of the box-open attempt a victim pays per fabricated control message
// — the unit of work a DoS flood forces.
void BM_PortBoxOpenGarbage(benchmark::State& state) {
  util::Rng rng(14);
  auto key = random_bytes(32, 15);
  auto garbage = random_bytes(crypto::kPortBoxOverhead + 2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::portbox_open_port(
        util::ByteSpan(key), util::ByteSpan(garbage)));
  }
}
BENCHMARK(BM_PortBoxOpenGarbage);

void BM_BufferSelectMissing(benchmark::State& state) {
  core::MessageBuffer buf(10, 20);
  util::Rng rng(17);
  for (std::uint64_t i = 0; i < 400; ++i) {
    core::DataMessage m;
    m.id = {1, i};
    m.payload = random_bytes(50, i);
    buf.insert(std::move(m), 0);
  }
  core::Digest peer = buf.digest();
  peer.resize(peer.size() / 2);  // peer has half
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.select_missing(peer, 80, rng));
  }
}
BENCHMARK(BM_BufferSelectMissing);

void BM_SimRound(benchmark::State& state) {
  // One full simulated run, n as parameter (drum, alpha=10%, x=128).
  sim::SimParams p;
  p.protocol = sim::SimProtocol::kDrum;
  p.n = static_cast<std::size_t>(state.range(0));
  p.alpha = 0.1;
  p.x = 128;
  util::Rng rng(18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_run(p, rng));
  }
}
BENCHMARK(BM_SimRound)->Arg(120)->Arg(500)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
