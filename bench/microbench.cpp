// google-benchmark microbenchmarks of the hot paths: the crypto primitives
// (what bounds a node's per-round CPU budget, and hence how expensive it is
// for a victim to process fabricated messages), digest/buffer operations,
// the obs primitives, and one full simulated gossip round. The crypto
// benchmarks run once per compiled backend (scalar reference vs the
// CPUID-selected native one) so the SIMD speedup is measured in-tree. After
// the registered benchmarks, main() runs an instrumented-vs-uninstrumented
// cluster comparison (tracing on vs off) and writes microbench_obs.json,
// then times each backend's bulk throughput and the single-vs-batch Ed25519
// verify cost and writes BENCH_crypto.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "drum/core/buffer.hpp"
#include "drum/crypto/api.hpp"
#include "drum/crypto/backend.hpp"
#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/hmac.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/crypto/x25519.hpp"
#include "drum/harness/cluster.hpp"
#include "drum/obs/export.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/obs/trace.hpp"
#include "drum/sim/engine.hpp"
#include "drum/util/rng.hpp"

namespace {

using namespace drum;

util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// Crypto benchmarks take the backend name as a capture so the scalar
// reference and the CPUID-selected native path are measured side by side
// in one run (acceptance: native ≥3× scalar on SHA-256 and ChaCha20).
void BM_Sha256_1KiB(benchmark::State& state, const char* backend) {
  crypto::set_active_backend(backend);
  auto data = random_bytes(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(util::ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
  crypto::set_active_backend("native");
}
BENCHMARK_CAPTURE(BM_Sha256_1KiB, scalar, "scalar");
BENCHMARK_CAPTURE(BM_Sha256_1KiB, native, "native");

// Eight-message batched hashing — the multi-buffer AVX2 path.
void BM_Sha256Batch8x1KiB(benchmark::State& state, const char* backend) {
  crypto::set_active_backend(backend);
  std::vector<util::Bytes> msgs;
  std::vector<util::ByteSpan> spans;
  for (std::uint64_t i = 0; i < 8; ++i) {
    msgs.push_back(random_bytes(1024, 100 + i));
  }
  for (const auto& m : msgs) spans.emplace_back(m.data(), m.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sha256_batch(std::span<const util::ByteSpan>(spans)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          1024);
  crypto::set_active_backend("native");
}
BENCHMARK_CAPTURE(BM_Sha256Batch8x1KiB, scalar, "scalar");
BENCHMARK_CAPTURE(BM_Sha256Batch8x1KiB, native, "native");

void BM_HmacSha256_64B(benchmark::State& state) {
  auto key = random_bytes(32, 2);
  auto data = random_bytes(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::hmac_sha256(util::ByteSpan(key), util::ByteSpan(data)));
  }
}
BENCHMARK(BM_HmacSha256_64B);

void BM_ChaCha20_1KiB(benchmark::State& state, const char* backend) {
  crypto::set_active_backend(backend);
  auto key = random_bytes(32, 4);
  auto nonce = random_bytes(12, 5);
  auto data = random_bytes(1024, 6);
  for (auto _ : state) {
    crypto::chacha20_xor(util::ByteSpan(key), util::ByteSpan(nonce), 1,
                         data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
  crypto::set_active_backend("native");
}
BENCHMARK_CAPTURE(BM_ChaCha20_1KiB, scalar, "scalar");
BENCHMARK_CAPTURE(BM_ChaCha20_1KiB, native, "native");

void BM_X25519(benchmark::State& state) {
  util::Rng rng(7);
  crypto::X25519Key scalar{};
  for (auto& b : scalar) b = static_cast<std::uint8_t>(rng.below(256));
  auto pub = crypto::x25519_base(scalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::x25519(scalar, pub));
  }
}
BENCHMARK(BM_X25519);

void BM_Ed25519Sign_50B(benchmark::State& state) {
  util::Rng rng(8);
  auto id = crypto::Identity::generate(rng);
  auto msg = random_bytes(50, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(id.sign(util::ByteSpan(msg)));
  }
}
BENCHMARK(BM_Ed25519Sign_50B);

void BM_Ed25519Verify_50B(benchmark::State& state) {
  util::Rng rng(10);
  auto id = crypto::Identity::generate(rng);
  auto msg = random_bytes(50, 11);
  auto sig = id.sign(util::ByteSpan(msg));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::ed25519_verify(id.sign_public(), util::ByteSpan(msg), sig));
  }
}
BENCHMARK(BM_Ed25519Verify_50B);

// Batched verification: `range(0)` signatures share one combined check.
// items processed = signatures, so google-benchmark reports per-signature
// cost directly (acceptance: batch-64 ≤0.6× the single-verify time).
void BM_Ed25519VerifyBatch_50B(benchmark::State& state) {
  util::Rng rng(20);
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto id = crypto::Identity::generate(rng);
  std::vector<util::Bytes> msgs;
  std::vector<crypto::VerifyJob> jobs;
  for (std::size_t i = 0; i < batch; ++i) {
    msgs.push_back(random_bytes(50, 300 + i));
  }
  for (const auto& m : msgs) {
    jobs.push_back({id.sign_public(), util::ByteSpan(m.data(), m.size()),
                    id.sign(util::ByteSpan(m.data(), m.size()))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::ed25519_verify_batch(std::span<const crypto::VerifyJob>(jobs)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Ed25519VerifyBatch_50B)->Arg(8)->Arg(16)->Arg(64);

void BM_PortBoxSealOpen(benchmark::State& state) {
  util::Rng rng(12);
  auto key = random_bytes(32, 13);
  for (auto _ : state) {
    auto box = crypto::portbox_seal_port(util::ByteSpan(key), 49152, rng);
    benchmark::DoNotOptimize(
        crypto::portbox_open_port(util::ByteSpan(key), util::ByteSpan(box)));
  }
}
BENCHMARK(BM_PortBoxSealOpen);

// Cost of the box-open attempt a victim pays per fabricated control message
// — the unit of work a DoS flood forces.
void BM_PortBoxOpenGarbage(benchmark::State& state) {
  util::Rng rng(14);
  auto key = random_bytes(32, 15);
  auto garbage = random_bytes(crypto::kPortBoxOverhead + 2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::portbox_open_port(
        util::ByteSpan(key), util::ByteSpan(garbage)));
  }
}
BENCHMARK(BM_PortBoxOpenGarbage);

void BM_BufferSelectMissing(benchmark::State& state) {
  core::MessageBuffer buf(10, 20);
  util::Rng rng(17);
  for (std::uint64_t i = 0; i < 400; ++i) {
    core::DataMessage m;
    m.id = {1, i};
    m.payload = random_bytes(50, i);
    buf.insert(std::move(m), 0);
  }
  core::Digest peer = buf.digest();
  peer.resize(peer.size() / 2);  // peer has half
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.select_missing(peer, 80, rng));
  }
}
BENCHMARK(BM_BufferSelectMissing);

// The obs hot-path primitives — what every counted event in the node pays.
void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c.value);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("bench.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 40;  // cheap mix
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsTraceRecord(benchmark::State& state) {
  obs::TraceRing ring(4096);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.record(1, static_cast<std::uint32_t>(i++), obs::EventKind::kDeliver,
                42, 7);
    benchmark::DoNotOptimize(ring.total_recorded());
  }
}
BENCHMARK(BM_ObsTraceRecord);

void BM_SimRound(benchmark::State& state) {
  // One full simulated run, n as parameter (drum, alpha=10%, x=128). Uses
  // the reusable-scratch overload, as simulate_many's workers do.
  sim::SimParams p;
  p.protocol = sim::SimProtocol::kDrum;
  p.n = static_cast<std::size_t>(state.range(0));
  p.alpha = 0.1;
  p.x = 128;
  util::Rng rng(18);
  sim::SimScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_run(p, rng, scratch));
  }
}
BENCHMARK(BM_SimRound)->Arg(120)->Arg(500)->Arg(1000);

// Wall-clock µs to run a small attacked cluster for `rounds` virtual rounds
// — the node poll/handshake hot path end to end. `traced` toggles the only
// optional instrumentation (the per-node trace ring); the registry counters
// are always on, replacing the old NodeStats fields at the same cost.
std::int64_t time_cluster_us(bool traced, double rounds, std::uint64_t seed) {
  harness::ClusterConfig cfg;
  cfg.n = 8;
  cfg.alpha = 0.5;
  cfg.x = 64;
  cfg.rate = 10;
  cfg.seed = seed;
  cfg.trace_capacity = traced ? 4096 : 0;
  harness::Cluster cluster(cfg);
  cluster.run_rounds(2, true);  // warm-up: buffers filled, gossip flowing
  auto t0 = std::chrono::steady_clock::now();
  cluster.run_rounds(rounds, true);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
      .count();
}

// Interleaved best-of-`reps` comparison (single-core box: interleaving and
// min-taking both defend against scheduling noise).
void run_obs_overhead_report() {
  const double rounds = 15;
  const int reps = 3;
  std::int64_t best_off = -1, best_on = -1;
  for (int r = 0; r < reps; ++r) {
    auto off = time_cluster_us(false, rounds, 100 + r);
    auto on = time_cluster_us(true, rounds, 100 + r);
    if (best_off < 0 || off < best_off) best_off = off;
    if (best_on < 0 || on < best_on) best_on = on;
  }
  const double overhead_pct =
      best_off > 0
          ? 100.0 * static_cast<double>(best_on - best_off) /
                static_cast<double>(best_off)
          : 0.0;
  std::printf("\nobs overhead (n=8 attacked cluster, %.0f rounds, best of "
              "%d):\n  trace off: %lld us\n  trace on:  %lld us\n  overhead: "
              "%.2f%%\n",
              rounds, reps, static_cast<long long>(best_off),
              static_cast<long long>(best_on), overhead_pct);
  char json[512];
  std::snprintf(json, sizeof json,
                "{\n  \"rounds\": %.0f,\n  \"reps\": %d,\n"
                "  \"uninstrumented_us\": %lld,\n  \"instrumented_us\": "
                "%lld,\n  \"overhead_pct\": %.2f\n}\n",
                rounds, reps, static_cast<long long>(best_off),
                static_cast<long long>(best_on), overhead_pct);
  if (obs::write_text_file("microbench_obs.json", json)) {
    std::printf("  artifact: microbench_obs.json\n");
  }
}

// Per-backend bulk throughput and the single-vs-batch Ed25519 verify cost,
// written to BENCH_crypto.json — the CI artifact that tracks the SIMD
// speedups release over release.
void run_crypto_report() {
  using clock = std::chrono::steady_clock;
  auto seconds_of = [](clock::time_point t0, clock::time_point t1) {
    return std::chrono::duration<double>(t1 - t0).count();
  };
  // Repeats `fn` until it has consumed ~40ms, returns seconds per call.
  auto time_per_call = [&](auto&& fn) {
    fn();  // warm-up
    std::size_t iters = 1;
    for (;;) {
      auto t0 = clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      auto secs = seconds_of(t0, clock::now());
      if (secs >= 0.04) return secs / static_cast<double>(iters);
      iters *= 4;
    }
  };

  const std::size_t kBufLen = 1 << 20;
  auto buf = random_bytes(kBufLen, 40);
  auto key = random_bytes(32, 41);
  auto nonce = random_bytes(12, 42);

  std::string out = "{\n  \"backends\": [";
  bool first = true;
  for (const auto* be : crypto::all_backends()) {
    crypto::set_active_backend(be->name);
    double sha_s = time_per_call(
        [&] { benchmark::DoNotOptimize(crypto::sha256(util::ByteSpan(buf))); });
    double cha_s = time_per_call([&] {
      crypto::chacha20_xor(util::ByteSpan(key), util::ByteSpan(nonce), 1,
                           buf.data(), buf.size());
      benchmark::DoNotOptimize(buf.data());
    });
    const double mib = static_cast<double>(kBufLen) / (1024.0 * 1024.0);
    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "%s\n    {\"name\": \"%s\", \"sha256_mb_s\": %.1f, "
                  "\"chacha20_mb_s\": %.1f}",
                  first ? "" : ",", be->name, mib / sha_s, mib / cha_s);
    out += entry;
    first = false;
  }
  crypto::set_active_backend("native");

  util::Rng rng(43);
  auto id = crypto::Identity::generate(rng);
  std::vector<util::Bytes> msgs;
  std::vector<crypto::VerifyJob> jobs;
  for (std::uint64_t i = 0; i < 64; ++i) msgs.push_back(random_bytes(50, i));
  for (const auto& m : msgs) {
    jobs.push_back({id.sign_public(), util::ByteSpan(m.data(), m.size()),
                    id.sign(util::ByteSpan(m.data(), m.size()))});
  }
  double single_s = time_per_call([&] {
    benchmark::DoNotOptimize(crypto::ed25519_verify(
        id.sign_public(), util::ByteSpan(msgs[0].data(), msgs[0].size()),
        jobs[0].sig));
  });
  double batch_s = time_per_call([&] {
    benchmark::DoNotOptimize(crypto::ed25519_verify_batch(
        std::span<const crypto::VerifyJob>(jobs)));
  });
  const double batch_per_sig_us = batch_s / 64.0 * 1e6;
  const double single_us = single_s * 1e6;
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"ed25519\": {\"verify_us\": %.1f, "
                "\"batch64_us_per_sig\": %.1f, \"batch64_speedup\": %.2f}\n}\n",
                single_us, batch_per_sig_us, single_us / batch_per_sig_us);
  out += tail;
  std::printf("\ncrypto backends (1 MiB buffers; batch of 64 signatures):\n%s",
              out.c_str());
  if (obs::write_text_file("BENCH_crypto.json", out)) {
    std::printf("  artifact: BENCH_crypto.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_obs_overhead_report();
  run_crypto_report();
  return 0;
}
