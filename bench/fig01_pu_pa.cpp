// Figure 1 of the paper (numerical analysis, Appendix A):
//  (a) p_u — the probability that a non-attacked process accepts a given
//      valid message — as a function of the fan-out F. The paper shows
//      p_u > 0.6 for every F (Lemma 8).
//  (b) p_a — the same probability for a process attacked with x = 128
//      fabricated messages per round — versus the coarse bound F/x.
#include "bench_common.hpp"

#include "drum/analysis/appendix_a.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto n = static_cast<std::size_t>(
      flags.get_int("n", 1000, "group size"));
  auto x = flags.get_double("x", 128, "fabricated messages per round");
  auto max_f = static_cast<std::size_t>(
      flags.get_int("max-f", 16, "largest fan-out to evaluate"));
  flags.done();

  bench::print_header("Figure 1",
                      "p_u and p_a vs fan-out F (Appendix A numerics)");

  util::Table a({"F", "p_u"});
  for (std::size_t f = 1; f <= max_f; ++f) {
    a.add_row({static_cast<double>(f), analysis::p_u(n, f)});
  }
  a.print("Figure 1(a): p_u vs F (n=" + std::to_string(n) + ")");

  util::Table b({"F", "p_a", "F/x (bound)"});
  for (std::size_t f = 1; f <= max_f; ++f) {
    b.add_row({static_cast<double>(f), analysis::p_a(n, f, x),
               static_cast<double>(f) / x});
  }
  b.print("Figure 1(b): p_a vs F (x=" + util::fmt(x) + ")");
  return 0;
}
