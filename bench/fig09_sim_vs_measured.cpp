// Figure 9 of the paper: the round-based simulation against measurements of
// the real multithreaded implementation (paper: Java on 50 Emulab machines;
// here: the C++ nodes over the in-process LAN with unsynchronized jittered
// rounds, the push-offer handshake, boxes and signatures — see DESIGN.md §6
// for the substitutions). n = 50, 10% malicious.
//  (a) propagation time vs x at alpha=10%;  (b) vs alpha at x=128.
// The paper's point — measurement matches simulation — should reproduce as
// agreement between the two columns per protocol.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto rate = static_cast<std::size_t>(flags.get_int(
      "rate", 10, "measured workload: messages per round (each tracked "
                  "message is one propagation sample)"));
  auto rounds = flags.get_double("rounds", 30, "measured window in rounds");
  bool verify = flags.get_bool("verify", false,
                               "verify Ed25519 signatures in measurements");
  bool udp = flags.get_bool("udp", false, "use real loopback UDP sockets");
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 9",
                      "simulation vs real-implementation measurement, n=50");

  const std::size_t n = 50;
  bench::MeasureOpts mo;
  mo.rate = rate;
  mo.measured_rounds = rounds;
  // Long drain: slow protocols (Push at high x) need tens of rounds per
  // message; a short drain would truncate their mean downwards.
  mo.drain_rounds = 60;
  mo.verify_signatures = verify;
  mo.use_udp = udp;
  mo.seed = seed;

  struct Proto {
    const char* name;
    sim::SimProtocol sim;
    core::Variant real;
  } protos[] = {{"drum", sim::SimProtocol::kDrum, core::Variant::kDrum},
                {"push", sim::SimProtocol::kPush, core::Variant::kPush},
                {"pull", sim::SimProtocol::kPull, core::Variant::kPull}};

  util::Table a({"x", "drum sim", "drum meas", "push sim", "push meas",
                 "pull sim", "pull meas"});
  int point = 0;
  for (double x : {0.0, 32.0, 64.0, 128.0}) {
    std::vector<double> row{x};
    for (const auto& p : protos) {
      auto sim_agg = bench::sim_point(p.sim, n, 0.1, x, runs, seed, 600, 0.0, 0.1, opts);
      mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      auto meas = bench::measured_point(p.real, 0.1, x, mo);
      row.push_back(sim_agg.rounds_to_target.mean());
      row.push_back(meas.propagation_rounds_mean);
    }
    a.add_row(row, 2);
  }
  a.print("Figure 9(a): propagation time vs x, alpha=10% (rounds)");

  util::Table b({"alpha %", "drum sim", "drum meas", "push sim", "push meas",
                 "pull sim", "pull meas"});
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::vector<double> row{alpha * 100};
    for (const auto& p : protos) {
      auto sim_agg = bench::sim_point(p.sim, n, alpha, 128, runs, seed, 600, 0.0, 0.1,
                                      opts);
      mo.udp_base_port = static_cast<std::uint16_t>(21000 + 200 * point++);
      auto meas = bench::measured_point(p.real, alpha, 128, mo);
      row.push_back(sim_agg.rounds_to_target.mean());
      row.push_back(meas.propagation_rounds_mean);
    }
    b.add_row(row, 2);
  }
  b.print("Figure 9(b): propagation time vs alpha, x=128 (rounds)");
  return 0;
}
