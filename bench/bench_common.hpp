// Shared helpers for the figure-reproduction binaries. Each binary prints
// the rows/series of one figure from the paper via drum::util::Table, in
// both aligned and CSV form. Flags allow scaling run counts back up to the
// paper's full 1000 runs/point.
#pragma once

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "drum/harness/cluster.hpp"
#include "drum/sim/engine.hpp"
#include "drum/util/flags.hpp"
#include "drum/util/table.hpp"

namespace drum::bench {

/// Registers the shared --threads flag of every sim-driven fig binary and
/// returns the corresponding execution options. Thread count never changes
/// a reported number — simulate_many is bit-identical for every value (see
/// DESIGN.md §9) — it only changes how fast the sweep finishes.
inline sim::SimOptions sim_options_from_flags(util::Flags& flags) {
  sim::SimOptions o;
  o.threads = static_cast<std::size_t>(flags.get_int(
      "threads", 0,
      "simulation worker threads (0 = DRUM_SIM_THREADS env or hardware "
      "concurrency); results are identical for every value"));
  return o;
}

/// One simulated data point: mean/std propagation time to 99% of correct
/// processes (and the attacked/non-attacked splits).
inline sim::AggregateResult sim_point(sim::SimProtocol proto, std::size_t n,
                                      double alpha, double x,
                                      std::size_t runs, std::uint64_t seed,
                                      std::size_t max_rounds = 600,
                                      double crashed = 0.0,
                                      double malicious = 0.1,
                                      const sim::SimOptions& opt = {}) {
  sim::SimParams p;
  p.protocol = proto;
  p.n = n;
  p.alpha = alpha;
  p.x = x;
  p.max_rounds = max_rounds;
  p.crashed_fraction = crashed;
  p.malicious_fraction = malicious;
  return sim::simulate_many(p, runs, seed, opt);
}

/// Summary of one measured (real-implementation) data point.
struct MeasuredPoint {
  double propagation_rounds_mean = 0;
  double propagation_rounds_std = 0;
  double throughput_msgs_per_sec = 0;
  double throughput_msgs_per_round = 0;
  double latency_ms_mean = 0;
  std::vector<harness::ClusterMetrics::PerNode> per_node;
  std::uint64_t completed = 0, sent = 0;
  /// Cluster::metrics_json() snapshot taken after the drain: config +
  /// merged all/attacked/non-attacked registries (per-channel counters and
  /// budget histograms) + network registry + flat per-node stats.
  std::string metrics_json;
  /// Per-round progression over the measurement window (Cluster CSV).
  std::string timeseries_csv;
};

struct MeasureOpts {
  std::size_t n = 50;
  std::size_t rate = 40;           // msgs per round
  double warmup_rounds = 5;
  double measured_rounds = 30;
  double drain_rounds = 15;
  std::int64_t round_us = 100'000; // paper: 1 s; compressed (DESIGN.md §6)
  bool verify_signatures = false;  // paper had 50 CPUs; see EXPERIMENTS.md
  bool use_udp = false;
  std::uint64_t seed = 1;
  std::uint16_t udp_base_port = 21000;
};

inline MeasuredPoint measured_point(core::Variant variant, double alpha,
                                    double x, const MeasureOpts& o) {
  harness::ClusterConfig cfg;
  cfg.variant = variant;
  cfg.n = o.n;
  cfg.alpha = alpha;
  cfg.x = x;
  cfg.rate = o.rate;
  cfg.round_us = o.round_us;
  cfg.verify_signatures = o.verify_signatures;
  cfg.use_udp = o.use_udp;
  cfg.seed = o.seed;
  cfg.udp_base_port = o.udp_base_port;
  harness::Cluster cluster(cfg);
  cluster.run_rounds(o.warmup_rounds, true);
  cluster.begin_measurement();
  cluster.run_rounds(o.measured_rounds, true);
  cluster.end_measurement();
  cluster.run_rounds(o.drain_rounds, false);

  const auto& m = cluster.metrics();
  MeasuredPoint out;
  // No message reached the 99% threshold inside the run: report NaN rather
  // than a misleading 0 (happens for Push under the harshest attacks).
  out.propagation_rounds_mean =
      m.messages_completed ? m.propagation_rounds.mean()
                           : std::numeric_limits<double>::quiet_NaN();
  out.propagation_rounds_std = m.propagation_rounds.stddev();
  out.throughput_msgs_per_sec = m.mean_throughput_msgs_per_sec();
  out.throughput_msgs_per_round =
      out.throughput_msgs_per_sec * static_cast<double>(o.round_us) / 1e6;
  out.latency_ms_mean = m.mean_latency_ms();
  out.per_node = m.nodes;
  out.completed = m.messages_completed;
  out.sent = m.messages_sent;
  out.metrics_json = cluster.metrics_json();
  out.timeseries_csv = cluster.timeseries().to_csv();
  return out;
}

/// Composes per-point snapshots into one JSON artifact:
/// {"figure":...,"points":[{<labels...>, "metrics": <cluster json>}]}.
/// Labels are pre-rendered "\"key\": value" fragments.
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string figure) : figure_(std::move(figure)) {}

  /// `labels` are complete fragments, e.g. {"\"variant\": \"drum\"",
  /// "\"x\": 32"}.
  void add_point(const std::vector<std::string>& labels,
                 const std::string& metrics_json) {
    std::string p = "    {";
    for (const auto& l : labels) p += l + ", ";
    p += "\"metrics\": " + metrics_json + "}";
    points_.push_back(std::move(p));
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n  \"figure\": \"" + figure_ + "\",\n";
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      out += points_[i];
      out += (i + 1 < points_.size()) ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the artifact; prints where it went (or a warning on failure).
  void write(const std::string& path) const {
    if (obs::write_text_file(path, to_json())) {
      std::printf("# metrics artifact: %s\n", path.c_str());
    } else {
      std::printf("# WARNING: could not write metrics artifact %s\n",
                  path.c_str());
    }
  }

 private:
  std::string figure_;
  std::vector<std::string> points_;
};

inline void print_header(const char* figure, const char* description) {
  std::printf("#\n# %s — %s\n#\n", figure, description);
}

}  // namespace drum::bench
