// Thread-scaling benchmark of the parallel Monte-Carlo engine (DESIGN.md §9)
// on the paper's Figure 3 workload: the full 3(a) x-sweep and 3(b)
// alpha-sweep for Drum/Push/Pull at one group size. For each thread count in
// --sweep it runs the whole workload, times it, and verifies that every
// point's AggregateResult is BIT-IDENTICAL to the first (reference) thread
// count — the determinism contract the engine guarantees. Emits a JSON
// artifact (results/BENCH_sim.json in the committed tree) with wall-clock,
// speedup, and the pool's obs telemetry; --check makes any aggregate
// mismatch a non-zero exit (the CI sim-bench job runs that mode).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "drum/obs/export.hpp"
#include "drum/obs/metrics.hpp"

namespace {

using namespace drum;

std::vector<std::size_t> parse_sweep(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t v = 0;
  bool have = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      v = v * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (c == ',') {
      if (have) out.push_back(v);
      v = 0;
      have = false;
    }
  }
  if (have) out.push_back(v);
  return out;
}

// The Figure 3 grids: 3(a) x in {0,32,64,96,128} at alpha=10%, 3(b) alpha in
// {10..80%} at x=128; each for drum/push/pull.
std::vector<sim::AggregateResult> run_workload(std::size_t n,
                                               std::size_t runs,
                                               std::uint64_t seed,
                                               const sim::SimOptions& opt) {
  const sim::SimProtocol protos[] = {sim::SimProtocol::kDrum,
                                     sim::SimProtocol::kPush,
                                     sim::SimProtocol::kPull};
  std::vector<sim::AggregateResult> points;
  for (double x : {0.0, 32.0, 64.0, 96.0, 128.0}) {
    for (auto proto : protos) {
      points.push_back(
          bench::sim_point(proto, n, 0.1, x, runs, seed, 600, 0.0, 0.1, opt));
    }
  }
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    for (auto proto : protos) {
      points.push_back(bench::sim_point(proto, n, alpha, 128, runs, seed, 600,
                                        0.0, 0.1, opt));
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(
      flags.get_int("n", 120, "group size for the Fig. 3 workload"));
  auto sweep_str = flags.get_string(
      "sweep", "1,2,4,8", "comma-separated thread counts to benchmark");
  auto json_path =
      flags.get_string("json", "BENCH_sim.json", "output artifact path");
  bool check = flags.get_bool(
      "check", false,
      "exit non-zero if any thread count's aggregates differ from the "
      "first's (CI determinism gate)");
  flags.done();

  auto sweep = parse_sweep(sweep_str);
  if (sweep.empty()) {
    std::fprintf(stderr, "bench_sim: empty --sweep\n");
    return 2;
  }

  bench::print_header("BENCH_sim",
                      "parallel sim engine: Fig. 3 workload thread sweep "
                      "(aggregates must be identical at every thread count)");
  std::printf("# workload: n=%zu, runs/point=%zu, seed=%llu, 30 points\n",
              n, runs, static_cast<unsigned long long>(seed));
  std::printf("# host: %u hardware thread(s)\n",
              std::thread::hardware_concurrency());

  std::vector<sim::AggregateResult> reference;
  double ref_ms = 0.0;
  bool all_match = true;
  std::string rows;

  util::Table t({"threads", "wall ms", "speedup", "identical", "trial us p50",
                 "trial us p99"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    sim::SimOptions opt;
    opt.threads = sweep[i];
    obs::MetricsRegistry reg;
    opt.metrics = &reg;

    const auto t0 = std::chrono::steady_clock::now();
    auto points = run_workload(n, runs, seed, opt);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    bool match = true;
    if (i == 0) {
      reference = points;
      ref_ms = ms;
    } else {
      match = points == reference;
      all_match = all_match && match;
    }
    const double speedup = ms > 0 ? ref_ms / ms : 0.0;
    const double p50 = reg.histogram_quantile("sim.trial_us", 0.5);
    const double p99 = reg.histogram_quantile("sim.trial_us", 0.99);
    t.add_row({static_cast<double>(sweep[i]), ms, speedup,
               match ? 1.0 : 0.0, p50, p99},
              2);

    char row[512];
    std::snprintf(
        row, sizeof row,
        "    {\"threads\": %zu, \"wall_ms\": %.1f, \"speedup_vs_first\": "
        "%.3f, \"aggregates_match_reference\": %s, \"trials\": %llu, "
        "\"chunks\": %llu, \"trial_us_mean\": %.1f, \"trial_us_p50\": %.1f, "
        "\"trial_us_p99\": %.1f}",
        sweep[i], ms, speedup, match ? "true" : "false",
        static_cast<unsigned long long>(reg.counter_value("sim.trials")),
        static_cast<unsigned long long>(reg.counter_value("sim.chunks")),
        reg.histogram_mean("sim.trial_us"), p50, p99);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }
  t.print("Fig. 3 workload, wall-clock per thread count");

  char head[512];
  std::snprintf(
      head, sizeof head,
      "{\n  \"benchmark\": \"sim_fig3_thread_sweep\",\n"
      "  \"workload\": {\"n\": %zu, \"runs_per_point\": %zu, \"seed\": %llu, "
      "\"points\": 30},\n"
      "  \"host_hardware_threads\": %u,\n"
      "  \"all_aggregates_identical\": %s,\n  \"sweep\": [\n",
      n, runs, static_cast<unsigned long long>(seed),
      std::thread::hardware_concurrency(), all_match ? "true" : "false");
  std::string json = std::string(head) + rows + "\n  ]\n}\n";
  if (obs::write_text_file(json_path, json)) {
    std::printf("# artifact: %s\n", json_path.c_str());
  } else {
    std::printf("# WARNING: could not write %s\n", json_path.c_str());
  }

  if (!all_match) {
    std::fprintf(stderr,
                 "bench_sim: DETERMINISM VIOLATION — aggregates differ "
                 "across thread counts\n");
    if (check) return 1;
  }
  return 0;
}
