// Section 6 of the paper: the closed-form asymptotic quantities behind
// Lemmas 1-6, evaluated numerically.
//  * Drum's effective fan-in/out (Eqs. 6-7): bounded below in x (Lemma 1),
//    monotone decreasing in alpha for strong attacks (Lemma 2);
//  * Push's propagation-time lower bound (Lemma 4): linear in x (Cor. 1);
//  * Pull's expected rounds-to-leave-source (Lemma 6 / App. B): linear in x
//    (Cor. 2).
// Plus an ablation of the round-end discard policy (DESIGN.md §5), compared
// in simulation against FIFO carry-over semantics via the simulator's
// bursty-acceptance model.
#include "bench_common.hpp"

#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"
#include "drum/analysis/asymptotics.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  auto f = static_cast<std::size_t>(flags.get_int("fanout", 4, "fan-out F"));
  flags.done();

  bench::print_header("Asymptotics (§6)",
                      "closed-form quantities behind Lemmas 1-6");

  util::Table l1({"x", "O^a=I^a (attacked)", "O^u=I^u (non-attacked)"});
  for (double x : {8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0}) {
    auto fans = analysis::drum_effective_fans(n, f, 0.1, x);
    l1.add_row({x, fans.attacked, fans.non_attacked});
  }
  l1.print("Lemma 1: Drum effective fans vs x (alpha=10%) — bounded below");

  util::Table l2({"alpha %", "x (B=10Fn)", "O^a=I^a", "O^u=I^u"});
  for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double x = 10.0 * static_cast<double>(f) / alpha;  // c = 10
    auto fans = analysis::drum_effective_fans(n, f, alpha, x);
    l2.add_row({alpha * 100, x, fans.attacked, fans.non_attacked});
  }
  l2.print("Lemma 2: Drum fans vs alpha at fixed budget c=10 — decreasing");

  util::Table l4({"x", "Push lower bound (rounds)", "Pull E[escape] (rounds)",
                  "Pull STD[escape]"});
  for (double x : {8.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    l4.add_row({x, analysis::push_propagation_lower_bound(n, f, 0.1, x),
                analysis::pull_source_escape_rounds(n, f, x),
                analysis::pull_std_rounds_to_leave_source(n, f, x)});
  }
  l4.print("Lemma 4 / Lemma 6: Push and Pull degrade linearly in x");

  util::Table pq({"rounds r", "P[M still stuck at source after r] (x=128)"});
  for (std::size_t r : {1u, 5u, 10u, 15u, 20u, 30u}) {
    pq.add_row({static_cast<double>(r),
                analysis::pull_stuck_probability(n, f, 128, r)});
  }
  pq.print("§7.2 quoted values: Pull source-escape tail (0.54/0.30/0.16 at "
           "5/10/15)");
  return 0;
}
