// Figure 8 of the paper (simulation): Drum under weak fixed-strength
// attacks, B in {0, 0.9n, 1.8n, 3.6n} (c = 0.25/0.5/1), n = 120. Such
// attacks barely move Drum's propagation time for any targeting choice.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 200, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 120, "group size"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 8",
                      "weak fixed-strength attacks on Drum (simulations)");

  util::Table t({"alpha %", "B=0", "B=0.9n", "B=1.8n", "B=3.6n"});
  for (double alpha : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<double> row{alpha * 100};
    for (double b_per_n : {0.0, 0.9, 1.8, 3.6}) {
      double x = b_per_n > 0 ? b_per_n / alpha : 0.0;
      auto agg = bench::sim_point(sim::SimProtocol::kDrum, n, alpha, x, runs,
                                  seed, 600, 0.0, 0.1, opts);
      row.push_back(agg.rounds_to_target.mean());
    }
    t.add_row(row, 2);
  }
  t.print("Figure 8: Drum propagation time, weak attacks, n=" +
          std::to_string(n) + " (rounds)");
  return 0;
}
