// The adversary zoo (DESIGN.md §10) — beyond the paper's flooder.
//
// Every registered drum::adversary strategy runs against {Drum, Push, Pull,
// Drum+scoring} over an x sweep, reporting propagation time split into
// attacked and non-attacked populations (the paper's Fig. 6 axes) plus the
// scoring layer's greylist activity. The artifact
// (results/BENCH_adversary.json in the committed tree) is the quantitative
// record of whether peer scoring helps, per attack: insider attacks
// (pull-amplify, eclipse) should improve measurably, pure spoofed floods
// should not (nothing to attribute).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "drum/adversary/adversary.hpp"
#include "drum/obs/export.hpp"

namespace {

struct Mode {
  const char* name;
  drum::sim::SimProtocol protocol;
  bool scoring;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 30, "simulation runs per point"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 250, "group size"));
  auto max_rounds = static_cast<std::size_t>(
      flags.get_int("max-rounds", 600, "simulation horizon"));
  auto alpha = flags.get_double("alpha", 0.1, "attacked fraction");
  auto malicious =
      flags.get_double("malicious", 0.1, "colluding-insider fraction");
  auto json_path = flags.get_string("json", "results/BENCH_adversary.json",
                                    "output artifact path");
  auto only = flags.get_string(
      "strategy", "", "run a single strategy (default: all registered)");
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Adversary zoo",
                      "every registered strategy x {drum, push, pull, "
                      "drum+scoring}, attacked vs non-attacked propagation");

  std::vector<std::string> strategies =
      only.empty() ? adversary::registered()
                   : std::vector<std::string>{only};
  const Mode modes[] = {
      {"drum", sim::SimProtocol::kDrum, false},
      {"push", sim::SimProtocol::kPush, false},
      {"pull", sim::SimProtocol::kPull, false},
      {"drum+scoring", sim::SimProtocol::kDrum, true},
  };
  const double xs[] = {32.0, 64.0, 128.0};

  std::string rows;
  for (const auto& strat : strategies) {
    for (double x : xs) {
      for (const Mode& m : modes) {
        sim::SimParams p;
        p.protocol = m.protocol;
        p.n = n;
        p.alpha = alpha;
        p.malicious_fraction = malicious;
        p.max_rounds = max_rounds;
        p.attack.strategy = strat;
        p.attack.params.x = x;
        p.scoring.enabled = m.scoring;
        const auto agg = sim::simulate_many(p, runs, seed, opts);
        const double att = agg.rounds_to_target_attacked.mean();
        const double non = agg.rounds_to_target_non_attacked.mean();
        const double grey = agg.greylist_entries.mean();
        char row[512];
        std::snprintf(
            row, sizeof row,
            "    {\"strategy\": \"%s\", \"mode\": \"%s\", \"x\": %.0f, "
            "\"attacked_rounds_mean\": %.3f, \"attacked_rounds_std\": %.3f, "
            "\"non_attacked_rounds_mean\": %.3f, "
            "\"non_attacked_rounds_std\": %.3f, \"unreached_runs\": %zu, "
            "\"greylist_entries_mean\": %.2f}",
            strat.c_str(), m.name, x, att,
            agg.rounds_to_target_attacked.stddev(), non,
            agg.rounds_to_target_non_attacked.stddev(), agg.unreached_runs,
            grey);
        if (!rows.empty()) rows += ",\n";
        rows += row;
        std::printf("%-14s x=%-4.0f %-13s attacked=%7.2f non=%7.2f "
                    "unreached=%zu grey=%.1f\n",
                    strat.c_str(), x, m.name, att, non, agg.unreached_runs,
                    grey);
      }
    }
  }

  char head[512];
  std::snprintf(head, sizeof head,
                "{\n  \"benchmark\": \"adversary_zoo\",\n"
                "  \"workload\": {\"n\": %zu, \"runs_per_point\": %zu, "
                "\"seed\": %llu, \"alpha\": %.3f, \"malicious\": %.3f, "
                "\"max_rounds\": %zu},\n  \"points\": [\n",
                n, runs, static_cast<unsigned long long>(seed), alpha,
                malicious, max_rounds);
  std::string json = std::string(head) + rows + "\n  ]\n}\n";
  if (obs::write_text_file(json_path, json)) {
    std::printf("# artifact: %s\n", json_path.c_str());
  } else {
    std::printf("# WARNING: could not write %s\n", json_path.c_str());
  }
  return 0;
}
