// Figure 13 of the paper: the detailed numerical analysis (Appendix C)
// against the simulation, without DoS attacks, n = 1000:
//  (a) failure-free;  (b) 10% of the processes crashed.
// The two curves should be nearly identical per protocol.
#include "bench_common.hpp"

#include "drum/analysis/appendix_c.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 1000, "group size"));
  auto max_round = static_cast<std::size_t>(
      flags.get_int("rounds", 15, "rounds shown in the CDFs"));
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header(
      "Figure 13",
      "Appendix C analysis vs simulation, no attack, n=1000 (CDFs)");

  struct Config {
    const char* title;
    double crashed;
  } configs[] = {{"Figure 13(a): failure-free", 0.0},
                 {"Figure 13(b): 10% crashed", 0.1}};

  struct Proto {
    const char* name;
    sim::SimProtocol sim;
    analysis::Protocol ana;
  } protos[] = {{"drum", sim::SimProtocol::kDrum, analysis::Protocol::kDrum},
                {"push", sim::SimProtocol::kPush, analysis::Protocol::kPush},
                {"pull", sim::SimProtocol::kPull, analysis::Protocol::kPull}};

  for (const auto& c : configs) {
    std::vector<std::vector<double>> sim_curves, ana_curves;
    for (const auto& p : protos) {
      auto agg = bench::sim_point(p.sim, n, 0, 0, runs, seed, 300,
                                  c.crashed, 0.0, opts);
      sim_curves.push_back(agg.coverage.average());

      analysis::DetailedParams dp;
      dp.protocol = p.ana;
      dp.n = n;
      dp.b = static_cast<std::size_t>(c.crashed * static_cast<double>(n));
      ana_curves.push_back(analysis::expected_coverage(dp, max_round));
    }
    util::Table t({"round", "drum ana %", "drum sim %", "push ana %",
                   "push sim %", "pull ana %", "pull sim %"});
    for (std::size_t r = 0; r <= max_round; ++r) {
      std::vector<double> row{static_cast<double>(r)};
      for (int i = 0; i < 3; ++i) {
        auto at = [&](const std::vector<double>& v) {
          return r < v.size() ? v[r] : (v.empty() ? 0.0 : v.back());
        };
        row.push_back(at(ana_curves[i]) * 100);
        row.push_back(at(sim_curves[i]) * 100);
      }
      t.add_row(row, 1);
    }
    t.print(c.title);
  }
  return 0;
}
