// Figure 3 of the paper (simulation) — the headline result:
//  (a) propagation time vs attack strength x, with 10% of the processes
//      attacked: Push and Pull grow linearly in x (Corollaries 1-2) while
//      Drum stays flat (Lemma 1);
//  (b) propagation time vs the attacked fraction alpha at x = 128: all
//      protocols degrade as the attack broadens, but Drum remains far
//      faster until the attack covers everyone.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto runs = static_cast<std::size_t>(
      flags.get_int("runs", 100, "simulation runs per point (paper: 1000)"));
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "RNG seed"));
  bool small_only =
      flags.get_bool("small-only", false, "skip the n=1000 sweeps");
  auto opts = bench::sim_options_from_flags(flags);
  flags.done();

  bench::print_header("Figure 3",
                      "targeted DoS attacks: propagation time vs x and vs "
                      "alpha (simulations)");

  const sim::SimProtocol protos[] = {sim::SimProtocol::kDrum,
                                     sim::SimProtocol::kPush,
                                     sim::SimProtocol::kPull};
  std::vector<std::size_t> sizes = {120};
  if (!small_only) sizes.push_back(1000);

  for (std::size_t n : sizes) {
    util::Table a({"x", "drum", "push", "pull"});
    for (double x : {0.0, 32.0, 64.0, 96.0, 128.0}) {
      std::vector<double> row{x};
      for (auto proto : protos) {
        auto agg = bench::sim_point(proto, n, 0.1, x, runs, seed, 600, 0.0, 0.1, opts);
        row.push_back(agg.rounds_to_target.mean());
      }
      a.add_row(row, 2);
    }
    a.print("Figure 3(a): propagation time vs x, alpha=10%, n=" +
            std::to_string(n) + " (rounds)");

    util::Table b({"alpha %", "drum", "push", "pull"});
    for (double alpha : {0.1, 0.2, 0.4, 0.6, 0.8}) {
      std::vector<double> row{alpha * 100};
      for (auto proto : protos) {
        auto agg = bench::sim_point(proto, n, alpha, 128, runs, seed, 600, 0.0, 0.1,
                                    opts);
        row.push_back(agg.rounds_to_target.mean());
      }
      b.add_row(row, 2);
    }
    b.print("Figure 3(b): propagation time vs alpha, x=128, n=" +
            std::to_string(n) + " (rounds)");
  }
  return 0;
}
