// Umbrella header: the whole public API of the Drum reproduction.
//
//   #include "drum/drum.hpp"
//
// Layering (each header is independently includable):
//
//   util        — bytes/serialization, RNG, stats, flags, tables, logging
//   obs         — metrics registry (counters/gauges/histograms), gossip
//                 trace ring, JSON/CSV exporters
//   crypto      — SHA-256/512, HMAC/HKDF, ChaCha20, X25519, Ed25519 (one-
//                 shot/incremental/batch, see crypto/api.hpp; SIMD backends
//                 behind crypto/backend.hpp), port boxes, identities
//   net         — Transport abstraction, in-memory LAN, UDP sockets
//   core        — the Drum protocol node, its Push/Pull/ablation variants,
//                 and the peer-scoring/greylist defense layer
//   runtime     — real-time thread-per-node execution
//   membership  — CA, certificates, membership table, failure detector,
//                 the gossip-borne membership service, networked CA
//   sim         — the paper's round-based Monte-Carlo simulator
//   analysis    — the paper's closed-form / numerical analysis
//   adversary   — the attack-strategy registry (DESIGN.md §10)
//   harness     — measurement clusters / live swarms with DoS injection
#pragma once

#include "drum/adversary/adversary.hpp"
#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"
#include "drum/analysis/appendix_c.hpp"
#include "drum/analysis/asymptotics.hpp"
#include "drum/core/buffer.hpp"
#include "drum/core/config.hpp"
#include "drum/core/message.hpp"
#include "drum/core/node.hpp"
#include "drum/core/scoring.hpp"
#include "drum/crypto/api.hpp"
#include "drum/crypto/backend.hpp"
#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/hmac.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/crypto/sha256.hpp"
#include "drum/crypto/sha512.hpp"
#include "drum/crypto/x25519.hpp"
#include "drum/harness/cluster.hpp"
#include "drum/harness/swarm.hpp"
#include "drum/membership/ca.hpp"
#include "drum/membership/ca_server.hpp"
#include "drum/membership/certificate.hpp"
#include "drum/membership/failure_detector.hpp"
#include "drum/membership/service.hpp"
#include "drum/membership/table.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/net/transport.hpp"
#include "drum/net/udp_transport.hpp"
#include "drum/obs/export.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/obs/trace.hpp"
#include "drum/runtime/runner.hpp"
#include "drum/sim/engine.hpp"
#include "drum/util/bytes.hpp"
#include "drum/util/flags.hpp"
#include "drum/util/log.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/stats.hpp"
#include "drum/util/table.hpp"
