// drum::check — the contract and invariant layer (DESIGN.md §7).
//
// The paper's resilience claims (§3–§4, §8) assume the implementation itself
// cannot be wedged: no state machine escapes, no budget over-spend, no nonce
// reuse. These macros make those assumptions executable:
//
//   DRUM_REQUIRE(cond, ...)    — API precondition (caller misuse)
//   DRUM_ASSERT(cond, ...)     — internal consistency at one point
//   DRUM_INVARIANT(cond, ...)  — data-structure invariant (whole-object)
//
// All three are compiled out entirely when DRUM_CHECKED is 0 (Release
// builds): the condition is not evaluated and costs nothing. In checked
// builds (the default for Debug/RelWithDebInfo and all sanitizer builds) a
// failure logs the expression, location, and optional streamed detail, then
// aborts — unless a test installs a throwing handler via
// set_failure_handler() to observe the failure instead.
//
// The extra arguments are streamed (operator<<) into the failure message:
//   DRUM_INVARIANT(used <= budget, "channel ", i, ": ", used, "/", budget);
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "drum/util/bytes.hpp"

#ifndef DRUM_CHECKED
#define DRUM_CHECKED 0
#endif

namespace drum::check {

/// Kind of contract that failed; reported to the failure handler.
enum class Kind { kRequire, kAssert, kInvariant };

const char* kind_name(Kind k);

/// Invoked on contract failure. Handlers may throw (tests) or return, in
/// which case fail() aborts the process — a violated contract must never be
/// executed past.
using FailureHandler = void (*)(Kind kind, const char* expr, const char* file,
                                int line, const std::string& detail);

/// Installs a handler and returns the previous one (nullptr = the default
/// log-and-abort handler). Thread-safe swap; intended for tests.
FailureHandler set_failure_handler(FailureHandler handler);

/// Reports a failure through the current handler; aborts if it returns.
void fail(Kind kind, const char* expr, const char* file, int line,
          const std::string& detail);

/// Number of contract failures reported so far in this process (including
/// ones intercepted by a test handler).
std::uint64_t failure_count();

/// True when the contract macros are compiled in.
constexpr bool enabled() { return DRUM_CHECKED != 0; }

// ---- portbox nonce-uniqueness tracker (checked builds only) --------------
// Paper §4 encrypts the random ports; the encrypt-then-MAC construction is
// only sound if a (key, nonce) pair never covers two different plaintexts
// (keystream reuse). note_nonce() records a seal and returns false on that
// dangerous reuse; portbox_seal() turns it into a DRUM_INVARIANT failure.
// A byte-identical replay — same key, nonce, AND plaintext — is allowed:
// it yields the same box, and deterministic simulations replay seeded
// worlds on purpose. Process-global and mutex-guarded (nodes seal from
// many threads under the runner). Memory is capped: after kNonceTrackerCap
// entries the tracker resets — a restarted window, not a leak.
inline constexpr std::size_t kNonceTrackerCap = 1u << 20;

bool note_nonce(util::ByteSpan key, util::ByteSpan nonce,
                util::ByteSpan plaintext);
/// Clears the tracker (tests that deliberately exercise reuse windows).
void reset_nonce_tracker();

namespace detail {

inline void stream_all(std::ostringstream&) {}

template <typename T, typename... Rest>
void stream_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  stream_all(os, rest...);
}

template <typename... Args>
std::string format_detail(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream os;
    stream_all(os, args...);
    return os.str();
  }
}

}  // namespace detail

}  // namespace drum::check

#if DRUM_CHECKED

#define DRUM_CHECK_IMPL(kind, cond, ...)                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::drum::check::fail(kind, #cond, __FILE__, __LINE__,                  \
                          ::drum::check::detail::format_detail(__VA_ARGS__)); \
    }                                                                       \
  } while (0)

#define DRUM_REQUIRE(cond, ...) \
  DRUM_CHECK_IMPL(::drum::check::Kind::kRequire, cond, ##__VA_ARGS__)
#define DRUM_ASSERT(cond, ...) \
  DRUM_CHECK_IMPL(::drum::check::Kind::kAssert, cond, ##__VA_ARGS__)
#define DRUM_INVARIANT(cond, ...) \
  DRUM_CHECK_IMPL(::drum::check::Kind::kInvariant, cond, ##__VA_ARGS__)

#else  // !DRUM_CHECKED — compiled out, condition not evaluated.

#define DRUM_REQUIRE(cond, ...) ((void)0)
#define DRUM_ASSERT(cond, ...) ((void)0)
#define DRUM_INVARIANT(cond, ...) ((void)0)

#endif  // DRUM_CHECKED
