// drum::check — Clang thread-safety capability annotations (DESIGN.md §11).
//
// Locking discipline in this codebase is compiler-enforced, not comment-
// enforced: every mutex is a *capability*, every field it protects is
// declared DRUM_GUARDED_BY(that mutex), and every function that needs a lock
// held says so with DRUM_REQUIRES. Under Clang the `-Wthread-safety` analysis
// (enabled by the DRUM_THREAD_SAFETY cmake option, promoted to -Werror in
// the CI `thread-safety` job) proves at compile time that no guarded field
// is touched without its lock and that no lock is taken twice. Under GCC —
// the tier-1 compiler — every macro here expands to *exactly nothing*
// (tests/annotations_test.cpp asserts that), so the annotations are free.
//
// Because libstdc++'s std::mutex is not itself annotated as a capability,
// this header also supplies the thin annotated wrappers the whole tree uses
// instead of the std types (scripts/drum_lint.py's `raw-mutex` check bans
// the naked std forms in src/):
//
//   std::mutex                   -> drum::check::Mutex
//   std::shared_mutex            -> drum::check::SharedMutex
//   std::lock_guard/unique_lock  -> drum::check::MutexLock
//   std::shared_lock             -> drum::check::SharedLock
//   std::condition_variable      -> std::condition_variable_any waiting on a
//                                   MutexLock (it only needs BasicLockable)
//
// How to annotate a new mutex (the full recipe is DESIGN.md §11):
//   1. declare it:           Mutex mu_;
//   2. mark what it guards:  int queue_len_ DRUM_GUARDED_BY(mu_);
//   3. lock with RAII:       MutexLock lock(mu_);
//   4. helpers called with the lock held: void drain() DRUM_REQUIRES(mu_);
// The drum_lint `mutex-annotation` check fails any Mutex with zero
// DRUM_GUARDED_BY/DRUM_REQUIRES users — an unused capability is a lock whose
// protection story exists only in the author's head.
//
// This header is dependency-free on purpose: everything else in drum::check
// (contracts, invariants) may include it, never the reverse.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DRUM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DRUM_THREAD_ANNOTATION
#define DRUM_THREAD_ANNOTATION(x)  // no-op: GCC, MSVC, old clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define DRUM_CAPABILITY(x) DRUM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define DRUM_SCOPED_CAPABILITY DRUM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define DRUM_GUARDED_BY(x) DRUM_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is protected by `x`.
#define DRUM_PT_GUARDED_BY(x) DRUM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the capability exclusively for the call.
#define DRUM_REQUIRES(...) \
  DRUM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared.
#define DRUM_REQUIRES_SHARED(...) \
  DRUM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define DRUM_ACQUIRE(...) \
  DRUM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DRUM_ACQUIRE_SHARED(...) \
  DRUM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define DRUM_RELEASE(...) \
  DRUM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DRUM_RELEASE_SHARED(...) \
  DRUM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define DRUM_TRY_ACQUIRE(...) \
  DRUM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define DRUM_EXCLUDES(...) DRUM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares that the capability is held (runtime-checked elsewhere).
#define DRUM_ASSERT_CAPABILITY(x) \
  DRUM_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define DRUM_RETURN_CAPABILITY(x) DRUM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment saying why the function is safe anyway.
#define DRUM_NO_THREAD_SAFETY_ANALYSIS \
  DRUM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace drum::check {

/// std::mutex with the capability attribute the analysis needs. Same size,
/// same cost — lock()/unlock() are inline forwards.
class DRUM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DRUM_ACQUIRE() { mu_.lock(); }
  void unlock() DRUM_RELEASE() { mu_.unlock(); }
  bool try_lock() DRUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex as a capability: exclusive writers, shared readers.
class DRUM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DRUM_ACQUIRE() { mu_.lock(); }
  void unlock() DRUM_RELEASE() { mu_.unlock(); }
  bool try_lock() DRUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() DRUM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DRUM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() DRUM_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock (the lock_guard/unique_lock replacement). The
/// lock()/unlock() members exist so std::condition_variable_any can release
/// and reacquire around a wait:
///
///   MutexLock lock(queue_mu_);
///   queue_cv_.wait(lock, [&] { return !queue_.empty(); });
///
/// The analysis treats the capability as held across the wait — exactly the
/// contract the caller sees (wait() returns with the lock reacquired).
class DRUM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DRUM_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~MutexLock() DRUM_RELEASE() {
    if (owned_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable, for condition_variable_any only: the analysis cannot see
  // through the wait's unlock/relock pair, and that is the right model.
  void lock() DRUM_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
    owned_ = true;
  }
  void unlock() DRUM_NO_THREAD_SAFETY_ANALYSIS {
    owned_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool owned_;
};

/// RAII exclusive lock on a SharedMutex (writer side).
class DRUM_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) DRUM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() DRUM_RELEASE() { mu_.unlock(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock on a SharedMutex (reader side).
class DRUM_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) DRUM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() DRUM_RELEASE_SHARED() { mu_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace drum::check
