#include "drum/check/check.hpp"

#include <atomic>
#include <cstdlib>
#include "drum/check/annotations.hpp"
#include <functional>
#include <string_view>
#include <unordered_map>

#include "drum/util/log.hpp"

namespace drum::check {

namespace {

std::atomic<FailureHandler> g_handler{nullptr};
std::atomic<std::uint64_t> g_failures{0};

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kRequire: return "REQUIRE";
    case Kind::kAssert: return "ASSERT";
    case Kind::kInvariant: return "INVARIANT";
  }
  return "CHECK";
}

FailureHandler set_failure_handler(FailureHandler handler) {
  return g_handler.exchange(handler);
}

std::uint64_t failure_count() { return g_failures.load(); }

void fail(Kind kind, const char* expr, const char* file, int line,
          const std::string& detail) {
  g_failures.fetch_add(1);
  std::string msg = std::string("DRUM_") + kind_name(kind) + " failed: " +
                    expr + " at " + file + ":" + std::to_string(line);
  if (!detail.empty()) msg += " — " + detail;
  if (FailureHandler h = g_handler.load()) {
    h(kind, expr, file, line, detail);  // may throw (tests)
    return;  // a handler that returns means "observed"; see check_test.cpp
  }
  util::log_line(util::LogLevel::kError, msg);
  std::abort();
}

// ---- nonce tracker --------------------------------------------------------

namespace {

check::Mutex g_nonce_mu;
// key||nonce blob -> hash of the plaintext sealed under it. A nonce may
// repeat across different keys (fine and expected), so the key participates
// in identity. The plaintext hash distinguishes the dangerous case
// (keystream reuse: same pair, different plaintext) from a byte-identical
// replay, which deterministic simulations produce on purpose (two worlds
// built from the same seed emit the same seals).
std::unordered_map<std::string, std::size_t> g_nonces
    DRUM_GUARDED_BY(g_nonce_mu);

}  // namespace

bool note_nonce(util::ByteSpan key, util::ByteSpan nonce,
                util::ByteSpan plaintext) {
  std::string entry;
  entry.reserve(key.size() + nonce.size());
  entry.append(reinterpret_cast<const char*>(key.data()), key.size());
  entry.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
  const std::size_t pt_hash = std::hash<std::string_view>{}(std::string_view(
      reinterpret_cast<const char*>(plaintext.data()), plaintext.size()));
  check::MutexLock lock(g_nonce_mu);
  if (g_nonces.size() >= kNonceTrackerCap) g_nonces.clear();
  auto [it, inserted] = g_nonces.emplace(std::move(entry), pt_hash);
  return inserted || it->second == pt_hash;
}

void reset_nonce_tracker() {
  check::MutexLock lock(g_nonce_mu);
  g_nonces.clear();
}

}  // namespace drum::check
