#include "drum/membership/certificate.hpp"

namespace drum::membership {

namespace {

void write_cert_body(util::ByteWriter& w, const Certificate& c) {
  w.u32(c.member_id);
  w.u32(c.host);
  w.u16(c.wk_pull_port);
  w.u16(c.wk_offer_port);
  w.raw(util::ByteSpan(c.sign_pub.data(), c.sign_pub.size()));
  w.raw(util::ByteSpan(c.dh_pub.data(), c.dh_pub.size()));
  w.i64(c.issued_at);
  w.i64(c.expires_at);
  w.u64(c.serial);
}

Certificate read_cert_body(util::ByteReader& r) {
  Certificate c;
  c.member_id = r.u32();
  c.host = r.u32();
  c.wk_pull_port = r.u16();
  c.wk_offer_port = r.u16();
  auto sp = r.raw(c.sign_pub.size());
  std::copy(sp.begin(), sp.end(), c.sign_pub.begin());
  auto dp = r.raw(c.dh_pub.size());
  std::copy(dp.begin(), dp.end(), c.dh_pub.begin());
  c.issued_at = r.i64();
  c.expires_at = r.i64();
  c.serial = r.u64();
  return c;
}

}  // namespace

util::Bytes Certificate::signed_bytes() const {
  util::ByteWriter w;
  w.str("drum-cert-v1");
  write_cert_body(w, *this);
  return w.take();
}

bool Certificate::verify(const crypto::Ed25519PublicKey& ca_pub) const {
  return crypto::ed25519_verify(ca_pub, util::ByteSpan(signed_bytes()),
                                ca_signature);
}

core::Peer Certificate::to_peer() const {
  core::Peer p;
  p.id = member_id;
  p.host = host;
  p.wk_pull_port = wk_pull_port;
  p.wk_offer_port = wk_offer_port;
  p.sign_pub = sign_pub;
  p.dh_pub = dh_pub;
  p.present = true;
  return p;
}

util::Bytes Certificate::encode() const {
  util::ByteWriter w;
  write_cert_body(w, *this);
  w.raw(util::ByteSpan(ca_signature.data(), ca_signature.size()));
  return w.take();
}

Certificate Certificate::decode(util::ByteSpan wire) {
  util::ByteReader r(wire);
  Certificate c = read_cert_body(r);
  auto sig = r.raw(c.ca_signature.size());
  std::copy(sig.begin(), sig.end(), c.ca_signature.begin());
  r.expect_done();
  return c;
}

util::Bytes MembershipEvent::signed_bytes() const {
  util::ByteWriter w;
  w.str("drum-member-event-v1");
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(member_id);
  w.u64(cert_serial);
  w.i64(timestamp);
  if (certificate) {
    w.u8(1);
    w.bytes(util::ByteSpan(certificate->encode()));
  } else {
    w.u8(0);
  }
  return w.take();
}

bool MembershipEvent::verify(const crypto::Ed25519PublicKey& ca_pub) const {
  if (type == EventType::kJoin) {
    if (!certificate || !certificate->verify(ca_pub)) return false;
    if (certificate->member_id != member_id ||
        certificate->serial != cert_serial) {
      return false;
    }
  }
  return crypto::ed25519_verify(ca_pub, util::ByteSpan(signed_bytes()),
                                ca_signature);
}

util::Bytes MembershipEvent::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(member_id);
  w.u64(cert_serial);
  w.i64(timestamp);
  if (certificate) {
    w.u8(1);
    w.bytes(util::ByteSpan(certificate->encode()));
  } else {
    w.u8(0);
  }
  w.raw(util::ByteSpan(ca_signature.data(), ca_signature.size()));
  return w.take();
}

MembershipEvent MembershipEvent::decode(util::ByteSpan wire) {
  util::ByteReader r(wire);
  MembershipEvent e;
  auto type = r.u8();
  if (type < 1 || type > 3) throw util::DecodeError("bad event type");
  e.type = static_cast<EventType>(type);
  e.member_id = r.u32();
  e.cert_serial = r.u64();
  e.timestamp = r.i64();
  if (r.u8() == 1) {
    e.certificate = Certificate::decode(util::ByteSpan(r.bytes()));
  }
  auto sig = r.raw(e.ca_signature.size());
  std::copy(sig.begin(), sig.end(), e.ca_signature.begin());
  r.expect_done();
  return e;
}

}  // namespace drum::membership
