// Timestamped membership certificates (paper §10): the CA authorizes a
// process, granting a certificate binding its id, keys and well-known ports,
// with an expiry time. Membership lists never contain processes without a
// valid certificate; certificates can be revoked.
#pragma once

#include <cstdint>
#include <optional>

#include "drum/core/node.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/util/bytes.hpp"

namespace drum::membership {

struct Certificate {
  std::uint32_t member_id = 0;
  std::uint32_t host = 0;
  std::uint16_t wk_pull_port = 0;
  std::uint16_t wk_offer_port = 0;
  crypto::Ed25519PublicKey sign_pub{};
  crypto::X25519Key dh_pub{};
  std::int64_t issued_at = 0;   ///< CA logical/wall time
  std::int64_t expires_at = 0;  ///< must be renewed before this
  std::uint64_t serial = 0;     ///< CA-unique, increases per issue
  crypto::Ed25519Signature ca_signature{};

  /// The bytes the CA signs (everything except the signature).
  [[nodiscard]] util::Bytes signed_bytes() const;

  [[nodiscard]] bool verify(const crypto::Ed25519PublicKey& ca_pub) const;
  [[nodiscard]] bool expired(std::int64_t now) const { return now >= expires_at; }

  /// Converts to a directory entry for drum::core::Node.
  [[nodiscard]] core::Peer to_peer() const;

  [[nodiscard]] util::Bytes encode() const;
  /// Throws util::DecodeError on malformed input.
  static Certificate decode(util::ByteSpan wire);
};

/// Signed membership events, multicast through Drum itself (§10: "the
/// dynamic membership protocol operates using Drum's multicast protocol as
/// its transport layer", so it inherits Drum's DoS-resistance).
enum class EventType : std::uint8_t {
  kJoin = 1,   ///< carries the new member's certificate
  kLeave = 2,  ///< voluntary log-out; CA revokes the certificate
  kExpel = 3,  ///< CA-initiated revocation (suspected malbehaviour)
};

struct MembershipEvent {
  EventType type = EventType::kJoin;
  std::uint32_t member_id = 0;
  std::uint64_t cert_serial = 0;  ///< serial being granted/revoked
  std::int64_t timestamp = 0;
  std::optional<Certificate> certificate;  ///< present for kJoin
  crypto::Ed25519Signature ca_signature{};

  [[nodiscard]] util::Bytes signed_bytes() const;
  [[nodiscard]] bool verify(const crypto::Ed25519PublicKey& ca_pub) const;
  [[nodiscard]] util::Bytes encode() const;
  static MembershipEvent decode(util::ByteSpan wire);
};

}  // namespace drum::membership
