// The CA as a network service (paper §10: newcomers must be authorized by
// the CA, which grants a certificate and provides an initial membership
// list; log-outs are sent to the CA, which revokes and forwards).
//
// Wire protocol (datagrams, same ByteWriter framing as the core protocol):
//   JoinRequest  : id, host, ports, keys, proof-of-possession signature
//   JoinReply    : the signed kJoin event + the current roster
//   LeaveRequest : id + the member's leave signature
//   LeaveReply   : the signed kLeave event
//   Error        : refusal reason
//
// Both sides are poll-driven (no threads): drive CaServer::poll() and
// CaClient::poll() from whatever loop owns them. A DoS attack on the CA does
// not hamper communication among processes that have already joined (§10) —
// the CA is only on the join/leave path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "drum/membership/ca.hpp"
#include "drum/net/transport.hpp"

namespace drum::membership {

/// Serves one CertificationAuthority on a well-known port.
class CaServer {
 public:
  /// Binds `port` on `transport`; throws std::runtime_error if taken.
  CaServer(CertificationAuthority& ca, net::Transport& transport,
           std::uint16_t port);

  /// Handles all pending requests; returns how many were processed.
  std::size_t poll();

  [[nodiscard]] net::Address address() const { return sock_->local(); }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  CertificationAuthority& ca_;
  std::unique_ptr<net::Socket> sock_;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Client side: join / leave against a remote CA.
class CaClient {
 public:
  struct JoinResult {
    MembershipEvent event;               ///< our signed kJoin event
    std::vector<Certificate> roster;     ///< initial membership list
  };

  /// Binds an ephemeral reply socket on `transport`.
  CaClient(net::Transport& transport, net::Address ca_address);

  /// Sends a join request. `identity` proves possession of the keys being
  /// certified (the request is signed with its Ed25519 key).
  void send_join(std::uint32_t id, std::uint32_t host,
                 std::uint16_t wk_pull_port, std::uint16_t wk_offer_port,
                 const crypto::Identity& identity);

  /// Sends a leave request for `id`, signed by `identity`.
  void send_leave(std::uint32_t id, const crypto::Identity& identity);

  /// Non-blocking: processes any reply. Returns the join result when one
  /// arrives; leave replies and errors are reflected in leave_event() /
  /// last_error().
  std::optional<JoinResult> poll();

  [[nodiscard]] const std::optional<MembershipEvent>& leave_event() const {
    return leave_event_;
  }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  net::Address ca_address_;
  std::unique_ptr<net::Socket> sock_;
  std::optional<MembershipEvent> leave_event_;
  std::string last_error_;
};

/// The bytes a joiner signs to prove key possession (exposed for tests).
util::Bytes join_request_proof_bytes(std::uint32_t id, std::uint32_t host,
                                     std::uint16_t wk_pull_port,
                                     std::uint16_t wk_offer_port,
                                     const crypto::Ed25519PublicKey& sign_pub,
                                     const crypto::X25519Key& dh_pub);

}  // namespace drum::membership
