#include "drum/membership/ca_server.hpp"

#include <stdexcept>

namespace drum::membership {

namespace {

enum class CaMsg : std::uint8_t {
  kJoinRequest = 1,
  kJoinReply = 2,
  kLeaveRequest = 3,
  kLeaveReply = 4,
  kError = 5,
};

struct JoinRequestWire {
  std::uint32_t id;
  std::uint32_t host;
  std::uint16_t wk_pull_port, wk_offer_port;
  crypto::Ed25519PublicKey sign_pub;
  crypto::X25519Key dh_pub;
  crypto::Ed25519Signature proof;
};

JoinRequestWire decode_join_request(util::ByteReader& r) {
  JoinRequestWire m{};
  m.id = r.u32();
  m.host = r.u32();
  m.wk_pull_port = r.u16();
  m.wk_offer_port = r.u16();
  auto sp = r.raw(m.sign_pub.size());
  std::copy(sp.begin(), sp.end(), m.sign_pub.begin());
  auto dp = r.raw(m.dh_pub.size());
  std::copy(dp.begin(), dp.end(), m.dh_pub.begin());
  auto pr = r.raw(m.proof.size());
  std::copy(pr.begin(), pr.end(), m.proof.begin());
  r.expect_done();
  return m;
}

util::Bytes encode_error(const std::string& reason) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(CaMsg::kError));
  w.str(reason);
  return w.take();
}

}  // namespace

util::Bytes join_request_proof_bytes(std::uint32_t id, std::uint32_t host,
                                     std::uint16_t wk_pull_port,
                                     std::uint16_t wk_offer_port,
                                     const crypto::Ed25519PublicKey& sign_pub,
                                     const crypto::X25519Key& dh_pub) {
  util::ByteWriter w;
  w.str("drum-join-proof-v1");
  w.u32(id);
  w.u32(host);
  w.u16(wk_pull_port);
  w.u16(wk_offer_port);
  w.raw(util::ByteSpan(sign_pub.data(), sign_pub.size()));
  w.raw(util::ByteSpan(dh_pub.data(), dh_pub.size()));
  return w.take();
}

CaServer::CaServer(CertificationAuthority& ca, net::Transport& transport,
                   std::uint16_t port)
    : ca_(ca), sock_(transport.bind(port).take()) {
  if (!sock_) throw std::runtime_error("CA port taken");
}

std::size_t CaServer::poll() {
  std::size_t handled = 0;
  while (auto dgram = sock_->recv()) {
    ++handled;
    try {
      util::ByteReader r{util::ByteSpan(dgram->payload)};
      auto type = static_cast<CaMsg>(r.u8());
      if (type == CaMsg::kJoinRequest) {
        auto req = decode_join_request(r);
        // Proof of possession: the request must be signed by the key being
        // certified, so nobody can register somebody else's key.
        auto proof_bytes = join_request_proof_bytes(
            req.id, req.host, req.wk_pull_port, req.wk_offer_port,
            req.sign_pub, req.dh_pub);
        if (!crypto::ed25519_verify(req.sign_pub,
                                    util::ByteSpan(proof_bytes), req.proof)) {
          ++rejected_;
          sock_->send(dgram->from,
                      util::ByteSpan(encode_error("bad proof of possession")));
          continue;
        }
        auto event = ca_.authorize_join(req.id, req.host, req.wk_pull_port,
                                        req.wk_offer_port, req.sign_pub,
                                        req.dh_pub);
        if (!event) {
          ++rejected_;
          sock_->send(dgram->from,
                      util::ByteSpan(encode_error("id already certified")));
          continue;
        }
        util::ByteWriter w;
        w.u8(static_cast<std::uint8_t>(CaMsg::kJoinReply));
        w.bytes(util::ByteSpan(event->encode()));
        auto roster = ca_.roster();
        w.u32(static_cast<std::uint32_t>(roster.size()));
        for (const auto& cert : roster) {
          w.bytes(util::ByteSpan(cert.encode()));
        }
        sock_->send(dgram->from, util::ByteSpan(w.take()));
        ++served_;
      } else if (type == CaMsg::kLeaveRequest) {
        std::uint32_t id = r.u32();
        crypto::Ed25519Signature sig{};
        auto sg = r.raw(sig.size());
        std::copy(sg.begin(), sg.end(), sig.begin());
        r.expect_done();
        auto event = ca_.process_leave(id, sig);
        if (!event) {
          ++rejected_;
          sock_->send(dgram->from,
                      util::ByteSpan(encode_error("leave refused")));
          continue;
        }
        util::ByteWriter w;
        w.u8(static_cast<std::uint8_t>(CaMsg::kLeaveReply));
        w.bytes(util::ByteSpan(event->encode()));
        sock_->send(dgram->from, util::ByteSpan(w.take()));
        ++served_;
      } else {
        ++rejected_;
      }
    } catch (const util::DecodeError&) {
      ++rejected_;  // fabricated / malformed request
    }
  }
  return handled;
}

CaClient::CaClient(net::Transport& transport, net::Address ca_address)
    : ca_address_(ca_address), sock_(transport.bind(0).take()) {
  if (!sock_) throw std::runtime_error("no ephemeral port for CA client");
}

void CaClient::send_join(std::uint32_t id, std::uint32_t host,
                         std::uint16_t wk_pull_port,
                         std::uint16_t wk_offer_port,
                         const crypto::Identity& identity) {
  auto proof_bytes =
      join_request_proof_bytes(id, host, wk_pull_port, wk_offer_port,
                               identity.sign_public(), identity.dh_public());
  auto proof = identity.sign(util::ByteSpan(proof_bytes));
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(CaMsg::kJoinRequest));
  w.u32(id);
  w.u32(host);
  w.u16(wk_pull_port);
  w.u16(wk_offer_port);
  w.raw(util::ByteSpan(identity.sign_public().data(),
                       identity.sign_public().size()));
  w.raw(util::ByteSpan(identity.dh_public().data(),
                       identity.dh_public().size()));
  w.raw(util::ByteSpan(proof.data(), proof.size()));
  sock_->send(ca_address_, util::ByteSpan(w.take()));
}

void CaClient::send_leave(std::uint32_t id, const crypto::Identity& identity) {
  auto sig = identity.sign(util::ByteSpan(
      CertificationAuthority::leave_request_bytes(id)));
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(CaMsg::kLeaveRequest));
  w.u32(id);
  w.raw(util::ByteSpan(sig.data(), sig.size()));
  sock_->send(ca_address_, util::ByteSpan(w.take()));
}

std::optional<CaClient::JoinResult> CaClient::poll() {
  while (auto dgram = sock_->recv()) {
    try {
      util::ByteReader r{util::ByteSpan(dgram->payload)};
      auto type = static_cast<CaMsg>(r.u8());
      if (type == CaMsg::kJoinReply) {
        JoinResult result;
        result.event = MembershipEvent::decode(util::ByteSpan(r.bytes()));
        std::uint32_t count = r.u32();
        if (count > 100000) throw util::DecodeError("absurd roster");
        for (std::uint32_t i = 0; i < count; ++i) {
          result.roster.push_back(
              Certificate::decode(util::ByteSpan(r.bytes())));
        }
        r.expect_done();
        return result;
      }
      if (type == CaMsg::kLeaveReply) {
        leave_event_ = MembershipEvent::decode(util::ByteSpan(r.bytes()));
        r.expect_done();
        continue;
      }
      if (type == CaMsg::kError) {
        last_error_ = r.str();
        continue;
      }
    } catch (const util::DecodeError&) {
      last_error_ = "malformed CA reply";
    }
  }
  return std::nullopt;
}

}  // namespace drum::membership
