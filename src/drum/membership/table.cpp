#include "drum/membership/table.hpp"

namespace drum::membership {

MembershipTable::MembershipTable(crypto::Ed25519PublicKey ca_pub)
    : ca_pub_(ca_pub) {}

bool MembershipTable::apply(const MembershipEvent& event, std::int64_t now) {
  if (!event.verify(ca_pub_)) return false;

  switch (event.type) {
    case EventType::kJoin: {
      const Certificate& cert = *event.certificate;
      if (cert.expired(now)) return false;
      if (revoked_serials_.contains(cert.serial)) return false;  // replay
      auto it = certs_.find(cert.member_id);
      if (it != certs_.end() && it->second.serial >= cert.serial) {
        return false;  // stale: we already have a newer certificate
      }
      certs_[cert.member_id] = cert;
      return true;
    }
    case EventType::kLeave:
    case EventType::kExpel: {
      revoked_serials_.insert(event.cert_serial);
      auto it = certs_.find(event.member_id);
      if (it != certs_.end() && it->second.serial <= event.cert_serial) {
        certs_.erase(it);
        return true;
      }
      return it == certs_.end();  // idempotent removal is fine
    }
  }
  return false;
}

std::size_t MembershipTable::seed_roster(const std::vector<Certificate>& roster,
                                         std::int64_t now) {
  std::size_t accepted = 0;
  for (const auto& cert : roster) {
    if (!cert.verify(ca_pub_)) continue;
    if (cert.expired(now)) continue;
    if (revoked_serials_.contains(cert.serial)) continue;
    auto it = certs_.find(cert.member_id);
    if (it != certs_.end() && it->second.serial >= cert.serial) continue;
    certs_[cert.member_id] = cert;
    ++accepted;
  }
  return accepted;
}

void MembershipTable::prune_expired(std::int64_t now) {
  for (auto it = certs_.begin(); it != certs_.end();) {
    it = it->second.expired(now) ? certs_.erase(it) : std::next(it);
  }
}

bool MembershipTable::is_member(std::uint32_t id, std::int64_t now) const {
  auto it = certs_.find(id);
  return it != certs_.end() && !it->second.expired(now);
}

std::vector<core::Peer> MembershipTable::directory(
    std::int64_t now, std::uint32_t max_id_hint) const {
  std::uint32_t max_id = max_id_hint;
  for (const auto& [id, cert] : certs_) max_id = std::max(max_id, id);
  std::vector<core::Peer> dir(max_id + 1);
  for (std::uint32_t id = 0; id <= max_id; ++id) {
    dir[id].id = id;
    dir[id].present = false;
  }
  for (const auto& [id, cert] : certs_) {
    if (!cert.expired(now)) dir[id] = cert.to_peer();
  }
  return dir;
}

}  // namespace drum::membership
