#include "drum/membership/failure_detector.hpp"

namespace drum::membership {

FailureDetector::FailureDetector(std::uint64_t suspicion_rounds,
                                 std::uint64_t probe_interval)
    : suspicion_rounds_(suspicion_rounds), probe_interval_(probe_interval) {}

void FailureDetector::track(std::uint32_t id, std::uint64_t round) {
  tracked_[id] = State{round, round};
}

void FailureDetector::forget(std::uint32_t id) { tracked_.erase(id); }

void FailureDetector::heard_from(std::uint32_t id, std::uint64_t round) {
  auto it = tracked_.find(id);
  if (it != tracked_.end()) {
    it->second.last_heard = std::max(it->second.last_heard, round);
  }
}

std::vector<std::uint32_t> FailureDetector::due_probes(std::uint64_t round) {
  std::vector<std::uint32_t> out;
  for (auto& [id, st] : tracked_) {
    if (round - st.last_heard >= probe_interval_ &&
        round - st.last_probe >= probe_interval_) {
      st.last_probe = round;
      out.push_back(id);
    }
  }
  return out;
}

bool FailureDetector::is_suspected(std::uint32_t id,
                                   std::uint64_t round) const {
  auto it = tracked_.find(id);
  if (it == tracked_.end()) return false;
  return round - it->second.last_heard >= suspicion_rounds_;
}

std::vector<std::uint32_t> FailureDetector::suspected(
    std::uint64_t round) const {
  std::vector<std::uint32_t> out;
  for (const auto& [id, st] : tracked_) {
    if (round - st.last_heard >= suspicion_rounds_) out.push_back(id);
  }
  return out;
}

}  // namespace drum::membership
