// The certification authority (paper §10). A single-process CA with an
// Ed25519 signing key: it authorizes joins (issuing timestamped, expiring
// certificates), processes voluntary log-outs, expels suspects, renews
// certificates about to expire, and emits the signed membership events that
// are multicast to the group over Drum itself.
//
// The paper notes that distributed Byzantine fault-tolerant CAs exist
// (COCA); as there, the CA's internals are outside Drum's scope — this is
// the minimal trusted issuer the protocol needs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "drum/membership/certificate.hpp"
#include "drum/util/rng.hpp"

namespace drum::membership {

class CertificationAuthority {
 public:
  explicit CertificationAuthority(util::Rng& rng,
                                  std::int64_t default_ttl = 3600);

  [[nodiscard]] const crypto::Ed25519PublicKey& public_key() const;

  /// Advances the CA's clock (logical seconds in tests, wall time in
  /// deployments).
  void set_now(std::int64_t now) { now_ = now; }
  [[nodiscard]] std::int64_t now() const { return now_; }

  /// Authorizes a join: issues a certificate and the signed kJoin event.
  /// Returns nullopt if the id already has a live certificate.
  std::optional<MembershipEvent> authorize_join(
      std::uint32_t member_id, std::uint32_t host, std::uint16_t wk_pull_port,
      std::uint16_t wk_offer_port, const crypto::Ed25519PublicKey& sign_pub,
      const crypto::X25519Key& dh_pub);

  /// Voluntary log-out: revokes and emits kLeave. Requires the request to
  /// be signed by the member's own key (so nobody can log out somebody
  /// else). `request_sig` must be over leave_request_bytes(member_id).
  std::optional<MembershipEvent> process_leave(
      std::uint32_t member_id, const crypto::Ed25519Signature& request_sig);

  /// CA-initiated revocation on suspicion of malbehaviour: emits kExpel.
  std::optional<MembershipEvent> expel(std::uint32_t member_id);

  /// Renews a live certificate (same keys, new expiry); emits kJoin with
  /// the fresh certificate. Call before expiry.
  std::optional<MembershipEvent> renew(std::uint32_t member_id);

  /// The current roster (live, unexpired certificates) — what a newcomer
  /// receives as its initial membership list.
  [[nodiscard]] std::vector<Certificate> roster() const;

  /// The bytes a member signs to request a leave.
  static util::Bytes leave_request_bytes(std::uint32_t member_id);

 private:
  MembershipEvent sign_event(MembershipEvent e);

  crypto::Ed25519Seed seed_{};
  crypto::Ed25519PublicKey pub_{};
  std::int64_t default_ttl_;
  std::int64_t now_ = 0;
  std::uint64_t next_serial_ = 1;
  std::map<std::uint32_t, Certificate> live_;
};

}  // namespace drum::membership
