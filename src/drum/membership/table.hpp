// The local membership table (paper §10): each process's validated view of
// the group, built exclusively from CA-signed events. Fabricated membership
// information is rejected ("every join/leave/expel message contains a
// certificate issued by the CA"); certificates expire; revoked serials are
// remembered so a replayed old kJoin cannot resurrect an expelled member.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "drum/membership/certificate.hpp"

namespace drum::membership {

class MembershipTable {
 public:
  explicit MembershipTable(crypto::Ed25519PublicKey ca_pub);

  /// Applies a CA-signed event; returns false (table unchanged) if the
  /// signature is invalid, the event is stale (serial <= a revoked or
  /// superseded serial), or the certificate is already expired.
  bool apply(const MembershipEvent& event, std::int64_t now);

  /// Seeds the table from an initial roster (the list a newcomer gets from
  /// the CA). Invalid certificates are skipped; returns how many were
  /// accepted.
  std::size_t seed_roster(const std::vector<Certificate>& roster,
                          std::int64_t now);

  /// Drops expired certificates; call periodically with the current time.
  void prune_expired(std::int64_t now);

  [[nodiscard]] bool is_member(std::uint32_t id, std::int64_t now) const;
  [[nodiscard]] std::size_t size() const { return certs_.size(); }

  /// Builds the id-indexed directory for drum::core::Node. `max_id_hint`
  /// grows the vector so future joins with larger ids fit (Node requires
  /// index == id).
  [[nodiscard]] std::vector<core::Peer> directory(
      std::int64_t now, std::uint32_t max_id_hint = 0) const;

 private:
  crypto::Ed25519PublicKey ca_pub_;
  std::map<std::uint32_t, Certificate> certs_;
  std::set<std::uint64_t> revoked_serials_;
};

}  // namespace drum::membership
