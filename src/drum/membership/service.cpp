#include "drum/membership/service.hpp"

namespace drum::membership {

namespace {
// Magic prefix distinguishing membership events from application payloads.
constexpr std::uint8_t kMagic[4] = {0xD2, 'M', 'B', 'R'};
}  // namespace

MembershipService::MembershipService(crypto::Ed25519PublicKey ca_pub,
                                     core::Node& node, std::int64_t now)
    : ca_pub_(ca_pub), node_(node), table_(ca_pub), now_(now) {
  // §10 piggybacking, receive side: authenticate unknown sources by their
  // attached CA-signed certificates. Runs inside the node's delivery path,
  // so it must not call back into node_ (only the table is touched; the
  // node admits the peer itself and the next directory refresh agrees).
  node_.set_cert_validator(
      [this](util::ByteSpan cert_bytes) -> std::optional<core::Peer> {
        try {
          Certificate cert = Certificate::decode(cert_bytes);
          if (table_.seed_roster({cert}, now_) == 0 &&
              !table_.is_member(cert.member_id, now_)) {
            return std::nullopt;  // forged, expired, revoked, or stale
          }
          return cert.to_peer();
        } catch (const util::DecodeError&) {
          return std::nullopt;
        }
      });
}

util::Bytes MembershipService::wrap(const MembershipEvent& event) {
  util::Bytes out(std::begin(kMagic), std::end(kMagic));
  auto enc = event.encode();
  out.insert(out.end(), enc.begin(), enc.end());
  return out;
}

void MembershipService::bootstrap(const std::vector<Certificate>& roster) {
  table_.seed_roster(roster, now_);
  for (const auto& cert : roster) {
    if (cert.member_id != node_.config().id) {
      fd_.track(cert.member_id, node_.round());
    }
  }
  refresh_directory();
}

bool MembershipService::handle_delivery(const core::Node::Delivery& delivery) {
  fd_.heard_from(delivery.msg.id.source, node_.round());
  const auto& p = delivery.msg.payload;
  if (p.size() < sizeof kMagic ||
      !std::equal(std::begin(kMagic), std::end(kMagic), p.begin())) {
    return false;  // application data
  }
  try {
    auto event = MembershipEvent::decode(
        util::ByteSpan(p.data() + sizeof kMagic, p.size() - sizeof kMagic));
    apply_event(event);
  } catch (const util::DecodeError&) {
    ++rejected_;
  }
  return true;
}

void MembershipService::apply_event(const MembershipEvent& event) {
  if (table_.apply(event, now_)) {
    ++applied_;
    if (event.type == EventType::kJoin &&
        event.member_id != node_.config().id) {
      fd_.track(event.member_id, node_.round());
    } else if (event.type != EventType::kJoin) {
      fd_.forget(event.member_id);
    }
    refresh_directory();
  } else {
    ++rejected_;  // forged, stale, or replayed event
  }
}

void MembershipService::on_round(std::int64_t now) {
  now_ = now;
  table_.prune_expired(now_);
  if (own_join_event_ && republish_interval_ > 0 &&
      node_.round() - last_republish_round_ >= republish_interval_) {
    last_republish_round_ = node_.round();
    publish(*own_join_event_);
  }
  refresh_directory();
}

void MembershipService::enable_cert_republish(
    const MembershipEvent& own_join_event, std::uint64_t interval_rounds) {
  own_join_event_ = own_join_event;
  republish_interval_ = interval_rounds;
  last_republish_round_ = 0;
  // Attach our certificate to every message we originate (§10).
  if (own_join_event.certificate) {
    node_.set_own_certificate(own_join_event.certificate->encode());
  }
  // Publish immediately: "recently joined" is exactly when re-announcement
  // matters most.
  publish(own_join_event);
}

void MembershipService::publish(const MembershipEvent& event) {
  node_.multicast(util::ByteSpan(wrap(event)));
  // Multicast does not self-deliver; apply locally as well.
  apply_event(event);
}

void MembershipService::refresh_directory() {
  auto dir = table_.directory(now_, node_.config().id);
  // Locally-suspected peers are removed from *our* gossip choices only
  // (suspicion is never propagated).
  for (auto& peer : dir) {
    if (peer.present && peer.id != node_.config().id &&
        fd_.is_suspected(peer.id, node_.round())) {
      peer.present = false;
    }
  }
  // Our own entry must stay present even before our join event arrives
  // back (or if our certificate briefly lapses between renewals).
  std::uint32_t self = node_.config().id;
  if (self < dir.size() && !dir[self].present) {
    dir[self].present = true;
    dir[self].id = self;
  }
  node_.update_peers(std::move(dir));
}

}  // namespace drum::membership
