// Local failure detector (paper §10): "From time to time, each process
// tests the responsiveness of the other processes it communicates with. If
// a failure is detected, the process stops communicating with the failed
// process, but does not propagate this information to other processes."
//
// Purely local: suspicion only removes the peer from *this* process's
// gossip candidates; the member's group status is untouched (unlike
// gossip-style failure detectors, no third-party rumors are believed —
// §10 lists that as a design goal).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace drum::membership {

class FailureDetector {
 public:
  /// `suspicion_rounds`: rounds of silence before a tracked peer is
  /// suspected. `probe_interval`: how often (in rounds) a peer should be
  /// probed when we have not heard from it organically.
  explicit FailureDetector(std::uint64_t suspicion_rounds = 10,
                           std::uint64_t probe_interval = 3);

  /// Starts tracking a peer (e.g. on join). Resets any suspicion.
  void track(std::uint32_t id, std::uint64_t round);
  /// Stops tracking (on leave/expel).
  void forget(std::uint32_t id);

  /// Feed: any valid message from the peer counts as a liveness proof.
  void heard_from(std::uint32_t id, std::uint64_t round);

  /// Peers that should be probed this round (tracked, not recently heard
  /// from, and due per probe_interval).
  [[nodiscard]] std::vector<std::uint32_t> due_probes(std::uint64_t round);

  [[nodiscard]] bool is_suspected(std::uint32_t id,
                                  std::uint64_t round) const;
  [[nodiscard]] std::vector<std::uint32_t> suspected(std::uint64_t round) const;

 private:
  struct State {
    std::uint64_t last_heard = 0;
    std::uint64_t last_probe = 0;
  };
  std::uint64_t suspicion_rounds_;
  std::uint64_t probe_interval_;
  std::map<std::uint32_t, State> tracked_;
};

}  // namespace drum::membership
