#include "drum/membership/ca.hpp"

namespace drum::membership {

CertificationAuthority::CertificationAuthority(util::Rng& rng,
                                               std::int64_t default_ttl)
    : default_ttl_(default_ttl) {
  for (auto& b : seed_) b = static_cast<std::uint8_t>(rng.below(256));
  pub_ = crypto::ed25519_public_key(seed_);
}

const crypto::Ed25519PublicKey& CertificationAuthority::public_key() const {
  return pub_;
}

MembershipEvent CertificationAuthority::sign_event(MembershipEvent e) {
  e.ca_signature =
      crypto::ed25519_sign(seed_, pub_, util::ByteSpan(e.signed_bytes()));
  return e;
}

std::optional<MembershipEvent> CertificationAuthority::authorize_join(
    std::uint32_t member_id, std::uint32_t host, std::uint16_t wk_pull_port,
    std::uint16_t wk_offer_port, const crypto::Ed25519PublicKey& sign_pub,
    const crypto::X25519Key& dh_pub) {
  auto it = live_.find(member_id);
  if (it != live_.end() && !it->second.expired(now_)) return std::nullopt;

  Certificate cert;
  cert.member_id = member_id;
  cert.host = host;
  cert.wk_pull_port = wk_pull_port;
  cert.wk_offer_port = wk_offer_port;
  cert.sign_pub = sign_pub;
  cert.dh_pub = dh_pub;
  cert.issued_at = now_;
  cert.expires_at = now_ + default_ttl_;
  cert.serial = next_serial_++;
  cert.ca_signature =
      crypto::ed25519_sign(seed_, pub_, util::ByteSpan(cert.signed_bytes()));
  live_[member_id] = cert;

  MembershipEvent e;
  e.type = EventType::kJoin;
  e.member_id = member_id;
  e.cert_serial = cert.serial;
  e.timestamp = now_;
  e.certificate = cert;
  return sign_event(std::move(e));
}

util::Bytes CertificationAuthority::leave_request_bytes(
    std::uint32_t member_id) {
  util::ByteWriter w;
  w.str("drum-leave-request-v1");
  w.u32(member_id);
  return w.take();
}

std::optional<MembershipEvent> CertificationAuthority::process_leave(
    std::uint32_t member_id, const crypto::Ed25519Signature& request_sig) {
  auto it = live_.find(member_id);
  if (it == live_.end()) return std::nullopt;
  if (!crypto::ed25519_verify(it->second.sign_pub,
                              util::ByteSpan(leave_request_bytes(member_id)),
                              request_sig)) {
    return std::nullopt;  // forged log-out attempt
  }
  MembershipEvent e;
  e.type = EventType::kLeave;
  e.member_id = member_id;
  e.cert_serial = it->second.serial;
  e.timestamp = now_;
  live_.erase(it);
  return sign_event(std::move(e));
}

std::optional<MembershipEvent> CertificationAuthority::expel(
    std::uint32_t member_id) {
  auto it = live_.find(member_id);
  if (it == live_.end()) return std::nullopt;
  MembershipEvent e;
  e.type = EventType::kExpel;
  e.member_id = member_id;
  e.cert_serial = it->second.serial;
  e.timestamp = now_;
  live_.erase(it);
  return sign_event(std::move(e));
}

std::optional<MembershipEvent> CertificationAuthority::renew(
    std::uint32_t member_id) {
  auto it = live_.find(member_id);
  if (it == live_.end()) return std::nullopt;
  Certificate cert = it->second;
  cert.issued_at = now_;
  cert.expires_at = now_ + default_ttl_;
  cert.serial = next_serial_++;
  cert.ca_signature =
      crypto::ed25519_sign(seed_, pub_, util::ByteSpan(cert.signed_bytes()));
  live_[member_id] = cert;

  MembershipEvent e;
  e.type = EventType::kJoin;
  e.member_id = member_id;
  e.cert_serial = cert.serial;
  e.timestamp = now_;
  e.certificate = cert;
  return sign_event(std::move(e));
}

std::vector<Certificate> CertificationAuthority::roster() const {
  std::vector<Certificate> out;
  out.reserve(live_.size());
  for (const auto& [id, cert] : live_) {
    if (!cert.expired(now_)) out.push_back(cert);
  }
  return out;
}

}  // namespace drum::membership
