// Glue layer: runs dynamic membership *over* a Drum node (paper §10: the
// membership protocol is layered on top of Drum's multicast, so it inherits
// Drum's DoS-resistance).
//
// Membership events (CA-signed join/leave/expel) travel as ordinary Drum
// multicast payloads with a magic prefix. The service:
//   * consumes such deliveries, applies them to the local MembershipTable;
//   * tracks peer liveness with the local FailureDetector (any delivery is
//     a liveness proof; probing hooks provided);
//   * rebuilds the node's directory whenever the view changes — removing
//     left/expelled/expired members and locally-suspected ones (the latter
//     without propagating suspicion, as §10 prescribes).
#pragma once

#include <cstdint>

#include "drum/core/node.hpp"
#include "drum/membership/failure_detector.hpp"
#include "drum/membership/table.hpp"

namespace drum::membership {

class MembershipService {
 public:
  /// `node` must outlive the service. `now` is the certificate clock.
  MembershipService(crypto::Ed25519PublicKey ca_pub, core::Node& node,
                    std::int64_t now);

  /// Seeds from the CA-provided initial roster and pushes the directory to
  /// the node.
  void bootstrap(const std::vector<Certificate>& roster);

  /// Call from the node's delivery callback. Returns true if the payload
  /// was a membership event (consumed), false if it is application data.
  bool handle_delivery(const core::Node::Delivery& delivery);

  /// Call once per local round: advances the clock, prunes expiries,
  /// updates suspicion, refreshes the node directory if anything changed.
  void on_round(std::int64_t now);

  /// Multicasts a membership event through the node (any member can relay
  /// CA events into the group).
  void publish(const MembershipEvent& event);

  /// §10 certificate piggybacking: "Each process piggybacks its certificate
  /// on top of an outgoing message if it hasn't done so for a relatively
  /// long period, or if it has recently joined." At this layering the
  /// equivalent is re-publishing our own CA-signed join event through the
  /// multicast every `interval_rounds` rounds, so members with incomplete
  /// membership databases (late joiners, partitioned nodes) converge.
  void enable_cert_republish(const MembershipEvent& own_join_event,
                             std::uint64_t interval_rounds = 20);

  /// Frames an event as a multicast payload (exposed for tests/examples).
  static util::Bytes wrap(const MembershipEvent& event);

  [[nodiscard]] const MembershipTable& table() const { return table_; }
  [[nodiscard]] FailureDetector& failure_detector() { return fd_; }
  [[nodiscard]] std::int64_t now() const { return now_; }
  [[nodiscard]] std::size_t events_applied() const { return applied_; }
  [[nodiscard]] std::size_t events_rejected() const { return rejected_; }

 private:
  void apply_event(const MembershipEvent& event);
  void refresh_directory();

  crypto::Ed25519PublicKey ca_pub_;
  core::Node& node_;
  MembershipTable table_;
  // Suspicion after 30 silent rounds, probe every 5: conservative defaults —
  // deliveries are the only organic liveness feed at this layer.
  FailureDetector fd_{30, 5};
  std::int64_t now_;
  std::size_t applied_ = 0;
  std::size_t rejected_ = 0;

  std::optional<MembershipEvent> own_join_event_;
  std::uint64_t republish_interval_ = 0;
  std::uint64_t last_republish_round_ = 0;
};

}  // namespace drum::membership
