#include "drum/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "drum/obs/export.hpp"

namespace drum::obs {

namespace {

constexpr int kSubBits = 5;                    // 32 sub-buckets per power of 2
constexpr std::uint64_t kSub = 1ull << kSubBits;
constexpr std::uint64_t kLinearLimit = 2 * kSub;  // values < 64 are exact

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kLinearLimit) return static_cast<std::size_t>(value);
  const int msb = std::bit_width(value) - 1;  // >= kSubBits + 1
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::size_t>((value >> shift) - kSub);
  return kLinearLimit +
         static_cast<std::size_t>(msb - (kSubBits + 1)) * kSub + sub;
}

std::uint64_t Histogram::bucket_lo(std::size_t index) {
  if (index < kLinearLimit) return index;
  const std::size_t rem = index - kLinearLimit;
  const int msb = kSubBits + 1 + static_cast<int>(rem / kSub);
  const std::uint64_t sub = rem % kSub;
  const std::uint64_t width = 1ull << (msb - kSubBits);
  return (1ull << msb) + sub * width;
}

std::uint64_t Histogram::bucket_hi(std::size_t index) {
  if (index < kLinearLimit) return index + 1;
  const std::size_t rem = index - kLinearLimit;
  const int msb = kSubBits + 1 + static_cast<int>(rem / kSub);
  const std::uint64_t width = 1ull << (msb - kSubBits);
  return bucket_lo(index) + width;
}

void Histogram::record(std::uint64_t value) {
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                : 0.0;
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Target rank in [0, count-1], matching linear interpolation between
  // order statistics (util::Samples::percentile).
  const double target = p * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double first = static_cast<double>(cum);
    cum += buckets_[i];
    if (target < static_cast<double>(cum)) {
      const double frac =
          (target - first) / static_cast<double>(buckets_[i]);
      const auto lo = static_cast<double>(bucket_lo(i));
      const auto hi = static_cast<double>(bucket_hi(i));
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bucket{bucket_lo(i), bucket_hi(i), buckets_[i]});
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c ? c->value : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Gauge* g = find_gauge(name);
  return g ? g->value : 0.0;
}

std::uint64_t MetricsRegistry::histogram_count(std::string_view name) const {
  const Histogram* h = find_histogram(name);
  return h ? h->count() : 0;
}

double MetricsRegistry::histogram_mean(std::string_view name) const {
  const Histogram* h = find_histogram(name);
  return h ? h->mean() : 0.0;
}

double MetricsRegistry::histogram_quantile(std::string_view name,
                                           double p) const {
  const Histogram* h = find_histogram(name);
  return h && h->count() ? h->quantile(p) : 0.0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).value += c.value;
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).value += g.value;
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge(h);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += fmt_double(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":{";
    out += "\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + std::to_string(h.sum());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"max\":" + std::to_string(h.max());
    out += ",\"mean\":" + fmt_double(h.mean());
    out += ",\"p50\":" + fmt_double(h.quantile(0.5));
    out += ",\"p90\":" + fmt_double(h.quantile(0.9));
    out += ",\"p99\":" + fmt_double(h.quantile(0.99));
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& b : h.nonzero_buckets()) {
      if (!bfirst) out += ",";
      bfirst = false;
      // Plain appends: GCC 12's -Wrestrict false-positives on chained
      // `const char* + std::string&&` concatenation (PR105651).
      out += "[";
      out += std::to_string(b.lo);
      out += ",";
      out += std::to_string(b.hi);
      out += ",";
      out += std::to_string(b.count);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace drum::obs
