// drum::obs — the observability subsystem (DESIGN.md §1 row 10).
//
// The paper's methodology (§5, §8) is measurement: quantifying latency,
// throughput, and wasted resources *per reception channel* under targeted
// DoS. This module is the substrate those measurements flow through:
//
//  * MetricsRegistry — named counters, gauges, and log-linear histograms.
//    Recording is O(1); callers cache the returned handle (a stable
//    reference) at registration time so the hot path never touches the name
//    map. Registries from many nodes merge into one experiment-wide view.
//  * Histogram — fixed log-linear bucketing (HdrHistogram-style): exact for
//    values < 64, then 32 linear sub-buckets per power of two, giving a
//    bounded ~3% relative quantile error with no allocation on record.
//
// Threading: a registry belongs to one thread at a time (one per node, like
// the node itself); merge/export happen after the owning thread has quiesced
// (runner stopped, or the single-threaded harness between events).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace drum::obs {

/// Monotonic event count. Not atomic — see the threading note above.
struct Counter {
  std::uint64_t value = 0;

  void inc(std::uint64_t delta = 1) { value += delta; }
};

/// Last-written instantaneous value. merge() sums, so merged gauges read as
/// cluster-wide totals (e.g. queue occupancy across nodes).
struct Gauge {
  double value = 0.0;

  void set(double v) { value = v; }
  void add(double v) { value += v; }
};

/// Log-linear histogram of non-negative integer samples.
///
/// Bucket layout: values in [0, 64) get their own bucket (exact); each
/// subsequent power-of-two range [2^m, 2^(m+1)) is split into 32 linear
/// sub-buckets, so the relative width of any bucket is at most 1/32.
/// Buckets are allocated lazily up to the largest value seen, which keeps
/// small-valued histograms (per-round budgets, queue depths) tiny.
class Histogram {
 public:
  struct Bucket {
    std::uint64_t lo = 0;     ///< inclusive lower bound
    std::uint64_t hi = 0;     ///< exclusive upper bound
    std::uint64_t count = 0;
  };

  void record(std::uint64_t value);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;

  /// p in [0,1]; linear interpolation inside the containing bucket, clamped
  /// to [min, max]. Cross-checked against util::Samples::percentile in
  /// tests/obs_test.cpp.
  [[nodiscard]] double quantile(double p) const;

  /// Non-empty buckets in value order (for export).
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lo(std::size_t index);
  static std::uint64_t bucket_hi(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  // lazily grown to max seen index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Named metric store. Lookup creates on first use and returns a stable
/// reference (node-based map), so instrumented code resolves each handle
/// once and records through it thereafter.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-only lookups; nullptr when the metric was never touched.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Typed read accessors — the supported way to consume metrics. Absent
  /// metrics read as 0, so callers need no existence checks.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] std::uint64_t histogram_count(std::string_view name) const;
  [[nodiscard]] double histogram_mean(std::string_view name) const;
  /// p in [0,1]; 0 when the histogram is absent or empty.
  [[nodiscard]] double histogram_quantile(std::string_view name,
                                          double p) const;

  /// Adds the other registry's contents into this one: counters and
  /// histograms add, gauges sum. Associative and commutative, so per-node
  /// registries fold into one experiment snapshot in any order.
  void merge(const MetricsRegistry& other);

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// names sorted, histograms exported as summary + non-empty buckets.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace drum::obs
