// Exporters for the observability subsystem: JSON snapshot files (the
// machine-readable companion of every results/*.txt table) and CSV time
// series (per-round progressions within one experiment). Both are plain
// strings/files so bench binaries can compose larger documents — e.g. one
// JSON artifact holding a snapshot per (variant, x) point.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drum::obs {

/// Escapes `"` and `\` for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Writes `content` to `path` (truncating). Returns false on I/O failure —
/// callers report, never throw, since metrics export must not kill a run.
bool write_text_file(const std::string& path, std::string_view content);

/// Column-oriented CSV builder for per-round time series: fixed columns,
/// one add_row per sample.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<std::string> columns);

  void add_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& data() const {
    return rows_;
  }

  [[nodiscard]] std::string to_csv() const;
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace drum::obs
