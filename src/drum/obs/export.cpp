#include "drum/obs/export.hpp"

#include <cstdio>
#include <stdexcept>

namespace drum::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) std::fclose(f);
  return ok;
}

TimeSeries::TimeSeries(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TimeSeries::add_row(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("time series row width mismatch");
  }
  rows_.push_back(values);
}

std::string TimeSeries::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ",";
    out += columns_[i];
  }
  out += "\n";
  char buf[64];
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ",";
      std::snprintf(buf, sizeof buf, "%.6g", row[i]);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

bool TimeSeries::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

}  // namespace drum::obs
