// Gossip trace ring: a fixed-capacity ring buffer of typed protocol events,
// cheap enough to leave on in measurement runs. Where the metrics registry
// answers "how much", the trace answers "in what order" — e.g. whether a
// push offer→reply→data handshake completed before the victim's round-end
// flush discarded the reply (the paper's §4 failure mode under flood).
//
// Each ring has its own monotonically increasing sequence number; events
// also carry the recording node's id and round so rings from several nodes
// can be interleaved offline. Recording is O(1) with no allocation; when the
// ring is full the oldest event is overwritten (dropped() counts how many).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drum::obs {

/// Protocol event vocabulary (paper §4's message types plus the resource-
/// bound events §5/§8 measure). `a`/`b` meanings per kind are noted inline.
enum class EventKind : std::uint8_t {
  kRoundTick,        ///< a = round (low 32 bits)
  kOfferSend,        ///< a = target id
  kOfferRecv,        ///< a = sender id
  kPullReqSend,      ///< a = target id
  kPullReqRecv,      ///< a = sender id
  kPushReplySend,    ///< a = target id
  kPushReplyRecv,    ///< a = sender id
  kPushDataSend,     ///< a = target id, b = message count
  kPushDataRecv,     ///< b = message count
  kPullReplySend,    ///< a = target id, b = message count
  kPullReplyRecv,    ///< b = message count
  kDeliver,          ///< a = source id, b = seqno (low 32 bits)
  kBudgetExhausted,  ///< a = channel, b = budget
  kFlushUnread,      ///< a = channel, b = datagrams discarded
  kDecodeError,      ///< a = channel
  kBoxFailure,       ///< a = claimed sender id
  kSigFailure,       ///< a = claimed source id
};

const char* to_string(EventKind kind);

struct TraceEvent {
  std::uint64_t seq = 0;    ///< per-ring sequence number
  std::uint64_t round = 0;  ///< recorder's local round
  std::uint32_t node = 0;   ///< recorder's id
  EventKind kind = EventKind::kRoundTick;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(std::uint32_t node, std::uint64_t round, EventKind kind,
              std::uint32_t a = 0, std::uint32_t b = 0);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return next_seq_; }
  /// Events lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return next_seq_ - size();
  }

  /// Held events, oldest first (sequence numbers ascending).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// CSV with header "seq,node,round,kind,a,b", oldest first.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace drum::obs
