#include "drum/obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace drum::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRoundTick: return "round_tick";
    case EventKind::kOfferSend: return "offer_send";
    case EventKind::kOfferRecv: return "offer_recv";
    case EventKind::kPullReqSend: return "pull_req_send";
    case EventKind::kPullReqRecv: return "pull_req_recv";
    case EventKind::kPushReplySend: return "push_reply_send";
    case EventKind::kPushReplyRecv: return "push_reply_recv";
    case EventKind::kPushDataSend: return "push_data_send";
    case EventKind::kPushDataRecv: return "push_data_recv";
    case EventKind::kPullReplySend: return "pull_reply_send";
    case EventKind::kPullReplyRecv: return "pull_reply_recv";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kBudgetExhausted: return "budget_exhausted";
    case EventKind::kFlushUnread: return "flush_unread";
    case EventKind::kDecodeError: return "decode_error";
    case EventKind::kBoxFailure: return "box_failure";
    case EventKind::kSigFailure: return "sig_failure";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) throw std::invalid_argument("trace capacity must be > 0");
}

void TraceRing::record(std::uint32_t node, std::uint64_t round,
                       EventKind kind, std::uint32_t a, std::uint32_t b) {
  TraceEvent& slot = ring_[next_seq_ % ring_.size()];
  slot.seq = next_seq_++;
  slot.round = round;
  slot.node = node;
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
}

std::size_t TraceRing::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_seq_, ring_.size()));
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = next_seq_ - n;
  for (std::uint64_t s = first; s < next_seq_; ++s) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

std::string TraceRing::to_csv() const {
  std::string out = "seq,node,round,kind,a,b\n";
  for (const auto& e : snapshot()) {
    out += std::to_string(e.seq) + "," + std::to_string(e.node) + "," +
           std::to_string(e.round) + "," + to_string(e.kind) + "," +
           std::to_string(e.a) + "," + std::to_string(e.b) + "\n";
  }
  return out;
}

}  // namespace drum::obs
