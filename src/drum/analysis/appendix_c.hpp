// Appendix C of the paper: the detailed (non-asymptotic) numerical analysis
// of Drum / Push / Pull, with link loss, crashed processes, and DoS attacks.
//
// The model tracks the number of correct processes holding message M as a
// Markov chain. Without an attack it is the single-population recursion of
// §C.2.1 (after [lpbcast]); under attack it is the two-population
// (attacked / non-attacked) recursion of §C.2.2. The output is the expected
// fraction of correct processes holding M at the beginning of each round —
// exactly the curves plotted in the paper's Figures 13 and 14 against the
// simulation results.
#pragma once

#include <cstddef>
#include <vector>

namespace drum::analysis {

enum class Protocol { kDrum, kPush, kPull };

const char* protocol_name(Protocol p);

struct DetailedParams {
  Protocol protocol = Protocol::kDrum;
  std::size_t n = 120;     ///< group size
  std::size_t b = 0;       ///< faulty processes (crashed or malicious)
  double loss = 0.01;      ///< link-loss probability ε
  std::size_t fanout = 4;  ///< total fan-out F (Drum splits F/2 push + F/2 pull)
  /// Attack: number of attacked correct processes is round(alpha * n)
  /// (the paper's α is a fraction of the whole group; all attacked
  /// processes are correct, and the source is attacked).
  double alpha = 0.0;
  /// Fabricated messages per round per attacked process (Drum splits x/2
  /// push + x/2 pull-requests). 0 disables the attack.
  double x = 0.0;
};

/// Per-operation message-discard and delivery probabilities (§C.2).
struct ChannelProbabilities {
  double d_push_u = 0, d_push_a = 0;  ///< discard prob at non-attacked/attacked target
  double d_pull_u = 0, d_pull_a = 0;
  double p_push_u = 0, p_push_a = 0;  ///< per-pair delivery prob via push
  double p_pull_u = 0, p_pull_a = 0;  ///< per-pair delivery prob via pull
};

/// Computes all §C.2 channel probabilities for the given parameters.
ChannelProbabilities channel_probabilities(const DetailedParams& p);

/// Expected fraction of correct processes holding M at the *beginning* of
/// rounds 0..rounds (inclusive), starting from only the source. Element 0 is
/// 1/(n-b).
std::vector<double> expected_coverage(const DetailedParams& p,
                                      std::size_t rounds);

/// First round r such that expected coverage >= threshold (e.g. 0.99);
/// returns `rounds`+1 if never reached within the horizon.
std::size_t rounds_to_coverage(const DetailedParams& p, double threshold,
                               std::size_t max_rounds);

/// Per-population coverage under attack (paper Fig. 6's split): expected
/// fraction of the NON-ATTACKED and of the ATTACKED correct processes
/// holding M at the beginning of each round. Requires an active attack
/// (x > 0, alpha > 0); throws std::invalid_argument otherwise.
struct SplitCoverage {
  std::vector<double> non_attacked;
  std::vector<double> attacked;
};
SplitCoverage expected_coverage_split(const DetailedParams& p,
                                      std::size_t rounds);

}  // namespace drum::analysis
