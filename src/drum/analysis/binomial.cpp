#include "drum/analysis/binomial.hpp"

#include <cmath>

namespace drum::analysis {

double log_choose(std::size_t n, std::size_t k) {
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

double binom_pmf(std::size_t n, std::size_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  double lp = log_choose(n, k) + static_cast<double>(k) * std::log(p) +
              static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

std::vector<double> binom_pmf_vector(std::size_t n, double p) {
  std::vector<double> out(n + 1);
  for (std::size_t k = 0; k <= n; ++k) out[k] = binom_pmf(n, k, p);
  return out;
}

}  // namespace drum::analysis
