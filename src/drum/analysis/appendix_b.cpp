#include "drum/analysis/appendix_b.hpp"

#include <cmath>
#include <limits>

#include "drum/analysis/binomial.hpp"

namespace drum::analysis {

double p_tilde(std::size_t n, std::size_t f, double x) {
  const double q = static_cast<double>(f) / static_cast<double>(n - 1);
  auto pmf = binom_pmf_vector(n - 1, q);
  double acc = 0.0;
  for (std::size_t y = 1; y <= n - 1; ++y) {  // y = 0: nothing valid to read
    // P[no valid request among the F read] = Π_{i=0..F-1} (x-i)/(y+x-i).
    // A factor with x - i <= 0 means the fabricated messages are exhausted,
    // so some valid request is necessarily read (miss = 0).
    double miss = 1.0;
    for (std::size_t i = 0; i < f; ++i) {
      double num = x - static_cast<double>(i);
      double den = static_cast<double>(y) + x - static_cast<double>(i);
      if (num <= 0.0 || den <= 0.0) {
        miss = 0.0;
        break;
      }
      miss *= num / den;
    }
    acc += pmf[y] * (1.0 - miss);
  }
  return acc;
}

double pull_expected_rounds_to_leave_source(std::size_t n, std::size_t f,
                                            double x) {
  double p = p_tilde(n, f, x);
  return p > 0 ? 1.0 / p : std::numeric_limits<double>::infinity();
}

double pull_std_rounds_to_leave_source(std::size_t n, std::size_t f,
                                       double x) {
  double p = p_tilde(n, f, x);
  return p > 0 ? std::sqrt(1.0 - p) / p
               : std::numeric_limits<double>::infinity();
}

double pull_stuck_probability(std::size_t n, std::size_t f, double x,
                              std::size_t rounds) {
  double p = p_tilde(n, f, x);
  return std::pow(1.0 - p, static_cast<double>(rounds));
}

}  // namespace drum::analysis
