// Section 6 of the paper: closed-form asymptotic quantities.
//
//  * Drum's effective expected fan-in/out for attacked and non-attacked
//    processes (Equations (1)-(7)) — these are what prove Lemma 1 (bounded
//    propagation time in x) and Lemma 2 (an attacker should spread out).
//  * Push's lower bound on propagation time (Lemma 4) — linear in x.
//  * Pull's expected rounds-to-leave-source (Lemma 6) — linear in x.
#pragma once

#include <cstddef>

namespace drum::analysis {

/// Effective fan-in/out of Drum under an attack on a fraction alpha of the
/// processes with x fabricated messages each per round (Equations (6)-(7)).
struct DrumFans {
  double attacked;      ///< O^a = I^a
  double non_attacked;  ///< O^u = I^u
};
DrumFans drum_effective_fans(std::size_t n, std::size_t f, double alpha,
                             double x);

/// Lemma 4: lower bound on Push's expected propagation time to all
/// processes: (ln n - ln((1-alpha)n + 1)) / ln(1 + F*alpha*p_a).
double push_propagation_lower_bound(std::size_t n, std::size_t f, double alpha,
                                    double x);

/// Lemma 6 (via Appendix B): expected rounds for M to leave the source in
/// Pull under an attack of x fabricated pull-requests per round.
double pull_source_escape_rounds(std::size_t n, std::size_t f, double x);

}  // namespace drum::analysis
