#include "drum/analysis/asymptotics.hpp"

#include <cmath>

#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"

namespace drum::analysis {

DrumFans drum_effective_fans(std::size_t n, std::size_t f, double alpha,
                             double x) {
  // In Drum, F is split evenly: each half-channel sees x/2 fabricated
  // messages with an acceptance bound of F/2. The paper's equations use the
  // aggregated p_a/p_u; we evaluate them at the per-channel operating point,
  // which preserves the F/2 : x/2 ratio the bounds depend on.
  const double pa = p_a(n, f / 2 == 0 ? 1 : f / 2, x / 2);
  const double pu = p_u(n, f / 2 == 0 ? 1 : f / 2);
  const auto fd = static_cast<double>(f);
  DrumFans fans;
  // Eq. (6):  O^a = I^a = F * ((alpha+1)/2 * p_a + (1-alpha)/2 * p_u)
  fans.attacked = fd * ((alpha + 1) / 2 * pa + (1 - alpha) / 2 * pu);
  // Eq. (7):  O^u = I^u = F * (alpha/2 * p_a + (2-alpha)/2 * p_u)
  fans.non_attacked = fd * (alpha / 2 * pa + (2 - alpha) / 2 * pu);
  return fans;
}

double push_propagation_lower_bound(std::size_t n, std::size_t f, double alpha,
                                    double x) {
  const double pa = p_a(n, f, x);
  const auto nd = static_cast<double>(n);
  double numerator = std::log(nd) - std::log((1 - alpha) * nd + 1);
  double denominator = std::log(1 + static_cast<double>(f) * alpha * pa);
  return numerator / denominator;
}

double pull_source_escape_rounds(std::size_t n, std::size_t f, double x) {
  return pull_expected_rounds_to_leave_source(n, f, x);
}

}  // namespace drum::analysis
