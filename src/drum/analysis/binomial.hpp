// Numerically stable binomial probability helpers shared by the Appendix
// A/B/C computations. Everything is done in log space via lgamma so that
// n = 1000-scale binomials neither overflow nor underflow.
#pragma once

#include <cstddef>
#include <vector>

namespace drum::analysis {

/// log C(n, k); requires 0 <= k <= n.
double log_choose(std::size_t n, std::size_t k);

/// Binomial pmf: P[Bin(n, p) = k].
double binom_pmf(std::size_t n, std::size_t k, double p);

/// Full pmf vector P[Bin(n, p) = k] for k = 0..n. Computed with one lgamma
/// evaluation per term; exact enough for our n (<= a few thousand).
std::vector<double> binom_pmf_vector(std::size_t n, double p);

}  // namespace drum::analysis
