#include "drum/analysis/appendix_c.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "drum/analysis/binomial.hpp"

namespace drum::analysis {

namespace {

// Probabilities below this are pruned from the state distribution; keeps the
// two-population recursion fast without visible effect on the curves.
constexpr double kPrune = 1e-13;

struct OpConfig {
  std::size_t view = 0;  // |view| for this operation
  std::size_t fin = 0;   // per-round acceptance bound F_in
  double x = 0.0;        // fabricated messages per round on this channel
};

// Distribution of Y = number of valid messages received on one channel in a
// round by a given target, conditioned on a specific sender having chosen the
// target and its message having arrived (paper §C.2.1). Index y in
// [1, n-b-1]; element [0] unused.
std::vector<double> valid_arrivals_pmf(std::size_t n, std::size_t b,
                                       double loss, std::size_t view) {
  const std::size_t correct = n - b;
  std::vector<double> pr_y(correct, 0.0);
  const double q_choose =
      static_cast<double>(view) / static_cast<double>(n - 1);
  // z = number of correct processes that chose the target (incl. our sender).
  for (std::size_t z = 1; z <= correct - 1; ++z) {
    double pz = binom_pmf(correct - 2, z - 1, q_choose);
    if (pz < kPrune) continue;
    // y - 1 of the other z - 1 messages survive loss.
    for (std::size_t y = 1; y <= z; ++y) {
      pr_y[y] += pz * binom_pmf(z - 1, y - 1, 1.0 - loss);
    }
  }
  return pr_y;
}

// Discard probability d for one operation (push or pull-request reception):
// the probability that our sender's already-arrived message is dropped by the
// bounded random selection of F_in messages, optionally under x fabricated
// messages per round (§C.2.2). Fabricated messages experience loss too.
double discard_probability(std::size_t n, std::size_t b, double loss,
                           const OpConfig& op, bool attacked) {
  auto pr_y = valid_arrivals_pmf(n, b, loss, op.view);
  const std::size_t correct = n - b;
  const auto fin = static_cast<double>(op.fin);

  if (!attacked || op.x <= 0.0) {
    double d = 0.0;
    for (std::size_t y = op.fin + 1; y <= correct - 1; ++y) {
      d += pr_y[y] * (static_cast<double>(y) - fin) / static_cast<double>(y);
    }
    return d;
  }

  const auto x = static_cast<std::size_t>(std::llround(op.x));
  auto pr_xhat = binom_pmf_vector(x, 1.0 - loss);
  double d = 0.0;
  for (std::size_t y = 1; y <= correct - 1; ++y) {
    if (pr_y[y] < kPrune) continue;
    double inner = 0.0;
    for (std::size_t xh = 0; xh <= x; ++xh) {
      double total = static_cast<double>(y + xh);
      double drop = total > fin ? (total - fin) / total : 0.0;
      inner += pr_xhat[xh] * drop;
    }
    d += pr_y[y] * inner;
  }
  return d;
}

OpConfig push_config(const DetailedParams& p) {
  switch (p.protocol) {
    case Protocol::kDrum:
      return {p.fanout / 2, p.fanout / 2, p.x / 2};
    case Protocol::kPush:
      return {p.fanout, p.fanout, p.x};
    case Protocol::kPull:
      return {0, 0, 0.0};
  }
  throw std::logic_error("bad protocol");
}

OpConfig pull_config(const DetailedParams& p) {
  switch (p.protocol) {
    case Protocol::kDrum:
      return {p.fanout / 2, p.fanout / 2, p.x / 2};
    case Protocol::kPull:
      return {p.fanout, p.fanout, p.x};
    case Protocol::kPush:
      return {0, 0, 0.0};
  }
  throw std::logic_error("bad protocol");
}

// One-step evolution of a probability distribution over "number of holders"
// in a single population of size `pop`, where each non-holder independently
// stays empty with probability `q_star(i)` given i holders.
// dist[i] = P[S = i]. Generic helper for the no-attack recursion.
std::vector<double> evolve_single(const std::vector<double>& dist,
                                  std::size_t pop,
                                  const std::vector<double>& q_star_by_i) {
  std::vector<double> next(pop + 1, 0.0);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    double pi = dist[i];
    if (pi < kPrune) continue;
    double succ = 1.0 - q_star_by_i[i];
    std::size_t holes = pop - i;
    auto gains = binom_pmf_vector(holes, succ);
    for (std::size_t g = 0; g <= holes; ++g) {
      next[i + g] += pi * gains[g];
    }
  }
  return next;
}

}  // namespace

// Defined below; shared by expected_coverage and expected_coverage_split.
static std::vector<std::pair<double, double>> two_population_expectations(
    const DetailedParams& p, const ChannelProbabilities& probs,
    std::size_t attacked_count, std::size_t rounds);

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kDrum: return "drum";
    case Protocol::kPush: return "push";
    case Protocol::kPull: return "pull";
  }
  return "?";
}

ChannelProbabilities channel_probabilities(const DetailedParams& p) {
  if (p.n < 3) throw std::invalid_argument("n too small");
  if (p.b >= p.n) throw std::invalid_argument("b >= n");
  ChannelProbabilities out;
  const double frac = 1.0 / static_cast<double>(p.n - 1);
  const double ok1 = 1.0 - p.loss;        // one traversal (push data)
  const double ok2 = ok1 * ok1;           // request + reply traversal (pull)

  OpConfig push = push_config(p);
  if (push.view > 0) {
    out.d_push_u = discard_probability(p.n, p.b, p.loss, push, false);
    out.d_push_a = discard_probability(p.n, p.b, p.loss, push, true);
    out.p_push_u = static_cast<double>(push.view) * frac * ok1 * (1.0 - out.d_push_u);
    out.p_push_a = static_cast<double>(push.view) * frac * ok1 * (1.0 - out.d_push_a);
  }
  OpConfig pull = pull_config(p);
  if (pull.view > 0) {
    out.d_pull_u = discard_probability(p.n, p.b, p.loss, pull, false);
    out.d_pull_a = discard_probability(p.n, p.b, p.loss, pull, true);
    out.p_pull_u = static_cast<double>(pull.view) * frac * ok2 * (1.0 - out.d_pull_u);
    out.p_pull_a = static_cast<double>(pull.view) * frac * ok2 * (1.0 - out.d_pull_a);
  }
  return out;
}

std::vector<double> expected_coverage(const DetailedParams& p,
                                      std::size_t rounds) {
  const std::size_t correct = p.n - p.b;
  const auto probs = channel_probabilities(p);
  std::vector<double> coverage;
  coverage.reserve(rounds + 1);

  const auto attacked_count = static_cast<std::size_t>(
      std::llround(p.alpha * static_cast<double>(p.n)));
  const bool under_attack = p.x > 0 && attacked_count > 0;

  if (!under_attack) {
    // §C.2.1 single-population recursion. Per-pair delivery probability:
    double pp;
    switch (p.protocol) {
      case Protocol::kPush: pp = probs.p_push_u; break;
      case Protocol::kPull: pp = probs.p_pull_u; break;
      case Protocol::kDrum:
        pp = 1.0 - (1.0 - probs.p_push_u) * (1.0 - probs.p_pull_u);
        break;
      default: throw std::logic_error("bad protocol");
    }
    const double q = 1.0 - pp;
    // q_star(i) = q^i: probability a given non-holder gets nothing from i
    // holders.
    std::vector<double> q_star(correct + 1, 1.0);
    for (std::size_t i = 1; i <= correct; ++i) q_star[i] = q_star[i - 1] * q;

    std::vector<double> dist(correct + 1, 0.0);
    dist[1] = 1.0;  // only the source holds M
    for (std::size_t r = 0; r <= rounds; ++r) {
      double e = 0.0;
      for (std::size_t i = 0; i < dist.size(); ++i) {
        e += dist[i] * static_cast<double>(i);
      }
      coverage.push_back(e / static_cast<double>(correct));
      if (r < rounds) dist = evolve_single(dist, correct, q_star);
    }
    return coverage;
  }

  auto expectations =
      two_population_expectations(p, probs, attacked_count, rounds);
  for (const auto& [eu, ea] : expectations) {
    coverage.push_back((eu + ea) / static_cast<double>(correct));
  }
  return coverage;
}

SplitCoverage expected_coverage_split(const DetailedParams& p,
                                      std::size_t rounds) {
  const auto attacked_count = static_cast<std::size_t>(
      std::llround(p.alpha * static_cast<double>(p.n)));
  if (p.x <= 0 || attacked_count == 0) {
    throw std::invalid_argument("split coverage requires an active attack");
  }
  const auto probs = channel_probabilities(p);
  auto expectations =
      two_population_expectations(p, probs, attacked_count, rounds);
  const std::size_t correct = p.n - p.b;
  const std::size_t na = attacked_count;
  const std::size_t nu = correct - na;
  SplitCoverage out;
  for (const auto& [eu, ea] : expectations) {
    out.non_attacked.push_back(nu ? eu / static_cast<double>(nu) : 0.0);
    out.attacked.push_back(ea / static_cast<double>(na));
  }
  return out;
}

// §C.2.2 two-population recursion: E[S^u_r], E[S^a_r] for r = 0..rounds.
static std::vector<std::pair<double, double>> two_population_expectations(
    const DetailedParams& p, const ChannelProbabilities& probs,
    std::size_t attacked_count, std::size_t rounds) {
  const std::size_t correct = p.n - p.b;
  if (attacked_count > correct) {
    throw std::invalid_argument("attacked processes exceed correct processes");
  }
  std::vector<std::pair<double, double>> expectations;
  expectations.reserve(rounds + 1);
  const std::size_t na = attacked_count;   // attacked correct processes
  const std::size_t nu = correct - na;     // non-attacked correct processes

  // Joint distribution P[S^u = i_u, S^a = i_a], flattened (i_u * (na+1) + i_a).
  std::vector<double> dist((nu + 1) * (na + 1), 0.0);
  dist[1] = 1.0;  // i_u = 0, i_a = 1: the attacked source

  auto idx = [na](std::size_t iu, std::size_t ia) {
    return iu * (na + 1) + ia;
  };

  for (std::size_t r = 0; r <= rounds; ++r) {
    double eu = 0.0, ea = 0.0;
    for (std::size_t iu = 0; iu <= nu; ++iu) {
      for (std::size_t ia = 0; ia <= na; ++ia) {
        eu += dist[idx(iu, ia)] * static_cast<double>(iu);
        ea += dist[idx(iu, ia)] * static_cast<double>(ia);
      }
    }
    expectations.emplace_back(eu, ea);
    if (r == rounds) break;

    std::vector<double> next((nu + 1) * (na + 1), 0.0);
    for (std::size_t iu = 0; iu <= nu; ++iu) {
      for (std::size_t ia = 0; ia <= na; ++ia) {
        double pi = dist[idx(iu, ia)];
        if (pi < kPrune) continue;
        // q*_u / q*_a: probability that a given non-holding non-attacked /
        // attacked process receives nothing this round (§C.2.2).
        auto pw = [](double base, std::size_t e_) {
          return std::pow(base, static_cast<double>(e_));
        };
        double qu, qa;
        switch (p.protocol) {
          case Protocol::kPush:
            qu = pw(1.0 - probs.p_push_u, iu + ia);
            qa = pw(1.0 - probs.p_push_a, iu + ia);
            break;
          case Protocol::kPull:
            qu = qa = pw(1.0 - probs.p_pull_u, iu) *
                      pw(1.0 - probs.p_pull_a, ia);
            break;
          case Protocol::kDrum:
            qu = pw(1.0 - probs.p_push_u, iu + ia) *
                 pw(1.0 - probs.p_pull_u, iu) * pw(1.0 - probs.p_pull_a, ia);
            qa = pw(1.0 - probs.p_push_a, iu + ia) *
                 pw(1.0 - probs.p_pull_u, iu) * pw(1.0 - probs.p_pull_a, ia);
            break;
          default:
            throw std::logic_error("bad protocol");
        }
        auto gains_u = binom_pmf_vector(nu - iu, 1.0 - qu);
        auto gains_a = binom_pmf_vector(na - ia, 1.0 - qa);
        for (std::size_t gu = 0; gu <= nu - iu; ++gu) {
          double pu_g = pi * gains_u[gu];
          if (pu_g < kPrune) continue;
          for (std::size_t ga = 0; ga <= na - ia; ++ga) {
            next[idx(iu + gu, ia + ga)] += pu_g * gains_a[ga];
          }
        }
      }
    }
    dist.swap(next);
  }
  return expectations;
}

std::size_t rounds_to_coverage(const DetailedParams& p, double threshold,
                               std::size_t max_rounds) {
  auto curve = expected_coverage(p, max_rounds);
  for (std::size_t r = 0; r < curve.size(); ++r) {
    if (curve[r] >= threshold) return r;
  }
  return max_rounds + 1;
}

}  // namespace drum::analysis
