#include "drum/analysis/appendix_a.hpp"

#include <algorithm>

#include "drum/analysis/binomial.hpp"

namespace drum::analysis {

namespace {

// E[min(1, F/(Y+x))] with Y = 1 + Bin(n-2, F/(n-1)).
double accept_probability(std::size_t n, std::size_t f, double x) {
  const double q =
      static_cast<double>(f) / static_cast<double>(n - 1);
  const std::size_t trials = n - 2;
  auto pmf = binom_pmf_vector(trials, q);
  double acc = 0.0;
  for (std::size_t k = 0; k <= trials; ++k) {
    double y = static_cast<double>(k + 1);  // our message counts too
    double accept = std::min(1.0, static_cast<double>(f) / (y + x));
    acc += pmf[k] * accept;
  }
  return acc;
}

}  // namespace

double p_u(std::size_t n, std::size_t f) {
  return accept_probability(n, f, 0.0);
}

double p_a(std::size_t n, std::size_t f, double x) {
  return accept_probability(n, f, x);
}

}  // namespace drum::analysis
