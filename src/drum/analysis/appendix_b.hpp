// Appendix B of the paper: p̃, the probability that message M leaves an
// attacked source in one round of the Pull protocol.
//
//   Y  = Bin(n-1, F/(n-1))   valid pull-requests arriving at the source
//   x  fabricated pull-requests also arrive (x >= 0)
//   The source reads F requests uniformly at random out of Y + x;
//   M propagates iff at least one of the Y valid requests is read:
//     p_Y = 1 - Π_{i=0..F-1} (x - i)/(Y + x - i)      (for x >= F)
//         = 1 - C(x, F) / C(Y+x, F)                   in general
//
// The number of rounds for M to leave the source is Geometric(p̃), which
// explains Pull's large propagation-time STD (paper §7.2, Fig. 4).
#pragma once

#include <cstddef>

namespace drum::analysis {

/// p̃ as a function of group size n, fan-out f, and attack intensity x
/// (fabricated pull-requests per round at the source).
double p_tilde(std::size_t n, std::size_t f, double x);

/// Expected rounds for M to leave the source in Pull: 1 / p̃.
double pull_expected_rounds_to_leave_source(std::size_t n, std::size_t f,
                                            double x);

/// STD of the above geometric distribution: sqrt(1 - p̃) / p̃.
double pull_std_rounds_to_leave_source(std::size_t n, std::size_t f, double x);

/// P[M has not left the source after r rounds] = (1 - p̃)^r.
double pull_stuck_probability(std::size_t n, std::size_t f, double x,
                              std::size_t rounds);

}  // namespace drum::analysis
