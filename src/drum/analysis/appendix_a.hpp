// Appendix A of the paper: the probabilities p_u and p_a that a non-attacked
// (resp. attacked) process accepts a valid incoming push or pull-request
// message, in the synchronized-round model with fan-out F and per-round
// acceptance bound F.
//
//   q   = F / (n-1)                       (prob. target is in sender's view)
//   Y   = 1 + Bin(n-2, q)                 (valid messages arriving, incl. ours)
//   p_u = E[ min(1, F / Y) ]
//   p_a = E[ min(1, F / (Y + x)) ]        (x fabricated messages also arrive)
//
// The paper proves p_u > 0.6 for all F >= 1 (Lemma 8 / Fig. 1(a)) and
// p_a < F/x (used throughout §6).
#pragma once

#include <cstddef>

namespace drum::analysis {

/// Probability that a non-attacked process accepts a given valid message.
/// n = group size (>= 2), f = fan-out / acceptance bound.
double p_u(std::size_t n, std::size_t f);

/// Probability that a process attacked with x fabricated messages per round
/// accepts a given valid message. x = 0 reduces to p_u.
double p_a(std::size_t n, std::size_t f, double x);

}  // namespace drum::analysis
