#include "drum/core/node.hpp"

#include <algorithm>
#include <stdexcept>

#include "drum/crypto/portbox.hpp"
#include "drum/util/log.hpp"

namespace drum::core {

Node::Node(NodeConfig cfg, crypto::Identity identity, std::vector<Peer> peers,
           net::Transport& transport, std::uint64_t rng_seed,
           DeliverFn on_deliver)
    : cfg_(cfg),
      identity_(std::move(identity)),
      peers_(std::move(peers)),
      transport_(transport),
      rng_(rng_seed),
      on_deliver_(std::move(on_deliver)),
      buffer_(cfg.buffer_rounds, cfg.seen_rounds) {
  if (cfg_.id >= peers_.size() || peers_[cfg_.id].id != cfg_.id) {
    throw std::invalid_argument("peer directory must be indexed by id");
  }
  auto bind_wk = [&](std::uint16_t port, Channel ch) {
    auto sock = transport_.bind(port);
    if (!sock) throw std::runtime_error("failed to bind well-known port");
    sockets_.push_back(BoundSocket{std::move(sock), ch, 0, true});
  };
  if (cfg_.pull_enabled()) bind_wk(cfg_.wk_pull_port, Channel::kPullReq);
  if (cfg_.push_enabled()) bind_wk(cfg_.wk_offer_port, Channel::kOffer);
  if (cfg_.variant == Variant::kDrumWkPorts) {
    bind_wk(cfg_.wk_pull_reply_port, Channel::kPullData);
    cur_pull_reply_port_ = cfg_.wk_pull_reply_port;
  }
  rotate_random_ports();
  send_gossip();
}

const Peer* Node::find_peer(std::uint32_t id) const {
  if (id >= peers_.size() || !peers_[id].present) return nullptr;
  return &peers_[id];
}

// Looks up the sender; if unknown, tries to admit it via a piggybacked
// CA-signed certificate (paper §10). Returns nullptr when the sender stays
// unknown; increments the unknown_sender stat in that case.
const Peer* Node::resolve_sender(std::uint32_t id, const util::Bytes& cert) {
  if (id == cfg_.id) {
    ++stats_.unknown_sender;
    return nullptr;
  }
  if (const Peer* p = find_peer(id)) return p;
  std::optional<Peer> admitted;
  if (!cert.empty() && cert_validator_) {
    admitted = cert_validator_(util::ByteSpan(cert));
  }
  if (!admitted || admitted->id != id) {
    ++stats_.unknown_sender;
    return nullptr;
  }
  if (admitted->id >= peers_.size()) {
    std::size_t old = peers_.size();
    peers_.resize(admitted->id + 1);
    for (std::size_t i = old; i < peers_.size(); ++i) {
      peers_[i].id = static_cast<std::uint32_t>(i);
      peers_[i].present = false;
    }
  }
  peers_[admitted->id] = *admitted;
  ++stats_.certs_admitted;
  return &peers_[id];
}

void Node::update_peers(std::vector<Peer> peers) {
  if (cfg_.id >= peers.size() || !peers[cfg_.id].present) {
    throw std::invalid_argument("own entry missing from new directory");
  }
  for (std::uint32_t id = 0; id < peers.size(); ++id) {
    if (peers[id].present && peers[id].id != id) {
      throw std::invalid_argument("peer directory must be indexed by id");
    }
  }
  // Drop cached pair keys for entries whose DH key changed or vanished.
  for (auto it = pair_keys_.begin(); it != pair_keys_.end();) {
    std::uint32_t id = it->first;
    bool keep = id < peers.size() && peers[id].present &&
                id < peers_.size() && peers_[id].present &&
                peers[id].dh_pub == peers_[id].dh_pub;
    it = keep ? std::next(it) : pair_keys_.erase(it);
  }
  peers_ = std::move(peers);
}

util::ByteSpan Node::pair_key(std::uint32_t peer_id) {
  auto it = pair_keys_.find(peer_id);
  if (it == pair_keys_.end()) {
    it = pair_keys_
             .emplace(peer_id,
                      identity_.derive_pair_key(peers_[peer_id].dh_pub))
             .first;
  }
  return util::ByteSpan(it->second);
}

std::size_t Node::channel_budget(Channel c) const {
  switch (c) {
    case Channel::kOffer: return cfg_.offer_budget();
    case Channel::kPullReq: return cfg_.pull_request_budget();
    case Channel::kPushReply: return cfg_.push_reply_budget();
    case Channel::kPullData: return cfg_.pull_data_budget();
    case Channel::kPushData: return cfg_.push_data_budget();
  }
  return 0;
}

bool Node::budget_available(Channel c) const {
  const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                       c == Channel::kPushReply;
  if (cfg_.variant == Variant::kDrumSharedBounds && control) {
    return shared_control_used_ < cfg_.shared_control_budget();
  }
  auto it = used_.find(static_cast<int>(c));
  std::size_t used = it == used_.end() ? 0 : it->second;
  return used < channel_budget(c);
}

void Node::consume_budget(Channel c) {
  const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                       c == Channel::kPushReply;
  if (cfg_.variant == Variant::kDrumSharedBounds && control) {
    ++shared_control_used_;
  } else {
    ++used_[static_cast<int>(c)];
  }
}

void Node::poll() {
  for (auto& bs : sockets_) {
    while (budget_available(bs.channel)) {
      auto dgram = bs.sock->recv();
      if (!dgram) break;
      // Reading a datagram consumes the channel's budget *regardless of its
      // validity* — processing bogus requests is precisely the resource a
      // DoS attack burns (paper §1, §4).
      consume_budget(bs.channel);
      ++stats_.datagrams_read;
      try {
        process(bs, *dgram);
      } catch (const util::DecodeError&) {
        ++stats_.decode_errors;
      }
    }
  }
}

void Node::process(const BoundSocket& bs, const net::Datagram& dgram) {
  util::ByteSpan wire(dgram.payload);
  switch (bs.channel) {
    case Channel::kPullReq:
      handle_pull_request(dgram);
      break;
    case Channel::kOffer:
      handle_push_offer(dgram);
      break;
    case Channel::kPushReply:
      handle_push_reply(dgram);
      break;
    case Channel::kPullData:
      handle_data(wire, /*is_pull_reply=*/true);
      break;
    case Channel::kPushData:
      handle_data(wire, /*is_pull_reply=*/false);
      break;
  }
}

void Node::handle_pull_request(const net::Datagram& dgram) {
  auto req = decode_pull_request(util::ByteSpan(dgram.payload), cfg_.max_digest);
  const Peer* peer = resolve_sender(req.sender, req.cert);
  if (!peer) return;
  auto port = crypto::portbox_open_port(pair_key(req.sender),
                                        util::ByteSpan(req.boxed_reply_port));
  if (!port) {
    ++stats_.box_failures;  // fabricated or corrupted request
    return;
  }
  auto msgs = buffer_.select_missing(req.digest, cfg_.max_msgs_per_gossip, rng_);
  ++stats_.pull_requests_served;
  if (msgs.empty()) return;
  PullReply reply{cfg_.id, std::move(msgs)};
  // The reply goes to the requester's random (boxed) port. We send from our
  // own ephemeral data socket so nothing about our well-known ports leaks
  // extra traffic; any socket may send in UDP.
  sockets_.front().sock->send(net::Address{peer->host, *port},
                              util::ByteSpan(encode(reply)));
}

void Node::handle_push_offer(const net::Datagram& dgram) {
  auto offer = decode_push_offer(util::ByteSpan(dgram.payload));
  const Peer* peer = resolve_sender(offer.sender, offer.cert);
  if (!peer) return;
  auto port = crypto::portbox_open_port(pair_key(offer.sender),
                                        util::ByteSpan(offer.boxed_reply_port));
  if (!port) {
    ++stats_.box_failures;
    return;
  }
  ++stats_.push_offers_answered;
  PushReply reply;
  reply.sender = cfg_.id;
  reply.digest = buffer_.digest();
  reply.boxed_data_port = crypto::portbox_seal_port(
      pair_key(offer.sender), cur_push_data_port_, rng_);
  sockets_.front().sock->send(net::Address{peer->host, *port},
                              util::ByteSpan(encode(reply)));
}

void Node::handle_push_reply(const net::Datagram& dgram) {
  auto reply = decode_push_reply(util::ByteSpan(dgram.payload), cfg_.max_digest);
  const Peer* peer = find_peer(reply.sender);
  if (!peer || reply.sender == cfg_.id) {
    ++stats_.unknown_sender;
    return;
  }
  auto port = crypto::portbox_open_port(pair_key(reply.sender),
                                        util::ByteSpan(reply.boxed_data_port));
  if (!port) {
    ++stats_.box_failures;
    return;
  }
  auto msgs =
      buffer_.select_missing(reply.digest, cfg_.max_msgs_per_gossip, rng_);
  ++stats_.push_replies_acted;
  if (msgs.empty()) return;
  PushData data{cfg_.id, std::move(msgs)};
  sockets_.front().sock->send(net::Address{peer->host, *port},
                              util::ByteSpan(encode(data)));
}

void Node::handle_data(util::ByteSpan wire, bool is_pull_reply) {
  std::vector<DataMessage> msgs;
  if (is_pull_reply) {
    msgs = decode_pull_reply(wire, cfg_.max_msgs_per_gossip, cfg_.max_payload)
               .messages;
  } else {
    msgs = decode_push_data(wire, cfg_.max_msgs_per_gossip, cfg_.max_payload)
               .messages;
  }
  for (auto& msg : msgs) {
    if (buffer_.seen(msg.id)) {
      ++stats_.duplicates;
      continue;
    }
    // Sanity checks (paper §4): known source (possibly admitted via its
    // §10 piggybacked certificate) + valid source signature.
    const Peer* source = msg.id.source == cfg_.id
                             ? find_peer(msg.id.source)
                             : resolve_sender(msg.id.source, msg.cert);
    if (!source) continue;
    if (cfg_.verify_signatures &&
        !crypto::verify(source->sign_pub, util::ByteSpan(msg.signed_bytes()),
                        msg.signature)) {
      ++stats_.sig_failures;
      continue;
    }
    Delivery delivery{msg, msg.round_counter};
    buffer_.insert(std::move(msg), round_);
    ++stats_.delivered;
    if (on_deliver_) on_deliver_(delivery);
  }
}

void Node::rotate_random_ports() {
  // Retire expired random sockets.
  std::erase_if(sockets_, [&](const BoundSocket& bs) {
    return !bs.well_known &&
           bs.created_round + cfg_.port_lifetime_rounds <= round_;
  });
  auto bind_random = [&](Channel ch) -> std::uint16_t {
    auto sock = transport_.bind(0);
    if (!sock) return 0;
    std::uint16_t port = sock->local().port;
    sockets_.push_back(BoundSocket{std::move(sock), ch, round_, false});
    return port;
  };
  if (cfg_.pull_enabled() && cfg_.variant != Variant::kDrumWkPorts) {
    cur_pull_reply_port_ = bind_random(Channel::kPullData);
  }
  if (cfg_.push_enabled()) {
    cur_push_reply_port_ = bind_random(Channel::kPushReply);
    cur_push_data_port_ = bind_random(Channel::kPushData);
  }
}

void Node::send_gossip() {
  // Candidate gossip partners: present peers other than ourselves.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(peers_.size());
  for (const auto& p : peers_) {
    if (p.present && p.id != cfg_.id) candidates.push_back(p.id);
  }
  if (candidates.empty()) return;
  const auto nc = static_cast<std::uint32_t>(candidates.size());

  if (cfg_.pull_enabled()) {
    auto view = rng_.sample(nc, static_cast<std::uint32_t>(cfg_.view_pull()),
                            nc);
    Digest digest = buffer_.digest();
    for (auto idx : view) {
      std::uint32_t t = candidates[idx];
      PullRequest req;
      req.sender = cfg_.id;
      req.digest = digest;
      req.cert = own_cert_;
      req.boxed_reply_port =
          crypto::portbox_seal_port(pair_key(t), cur_pull_reply_port_, rng_);
      sockets_.front().sock->send(
          net::Address{peers_[t].host, peers_[t].wk_pull_port},
          util::ByteSpan(encode(req)));
    }
  }
  if (cfg_.push_enabled()) {
    auto view = rng_.sample(nc, static_cast<std::uint32_t>(cfg_.view_push()),
                            nc);
    for (auto idx : view) {
      std::uint32_t t = candidates[idx];
      PushOffer offer;
      offer.sender = cfg_.id;
      offer.cert = own_cert_;
      offer.boxed_reply_port =
          crypto::portbox_seal_port(pair_key(t), cur_push_reply_port_, rng_);
      sockets_.front().sock->send(
          net::Address{peers_[t].host, peers_[t].wk_offer_port},
          util::ByteSpan(encode(offer)));
    }
  }
}

void Node::on_round() {
  // Final processing pass for the ending round: anything that arrived since
  // the last poll() is still "this round's" input and deserves its shot at
  // the remaining budgets (the Java implementation reads continuously; this
  // keeps coarse drivers that poll rarely faithful to that).
  poll();

  ++round_;
  ++stats_.rounds;

  // Discard all unread messages from the incoming buffers (paper §4) —
  // anything beyond this round's budgets, i.e. mostly the flood. (The
  // discard_unread=false ablation keeps the backlog instead; see config.)
  if (cfg_.discard_unread) {
    for (auto& bs : sockets_) {
      while (auto d = bs.sock->recv()) {
        ++stats_.flushed_unread;
      }
    }
  }
  used_.clear();
  shared_control_used_ = 0;

  buffer_.on_round(round_);
  rotate_random_ports();
  send_gossip();
}

void Node::set_own_certificate(util::Bytes own_cert) {
  own_cert_ = std::move(own_cert);
}

void Node::set_cert_validator(CertValidator validator) {
  cert_validator_ = std::move(validator);
}

MessageId Node::multicast(util::ByteSpan payload) {
  DataMessage msg;
  msg.id = MessageId{cfg_.id, next_seqno_++};
  msg.payload.assign(payload.begin(), payload.end());
  msg.cert = own_cert_;  // §10 piggybacking (empty when not enabled)
  msg.signature = identity_.sign(util::ByteSpan(msg.signed_bytes()));
  // Paper §8.1: the source logs 0 and immediately advances the counter to 1.
  msg.round_counter = 1;
  buffer_.insert(std::move(msg), round_);
  return MessageId{cfg_.id, next_seqno_ - 1};
}

}  // namespace drum::core
