#include "drum/core/node.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "drum/check/check.hpp"
#include "drum/crypto/api.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/util/log.hpp"



namespace drum::core {

namespace {
// Indexed by static_cast<int>(Channel); used to name per-channel metrics.
constexpr const char* kChannelNames[5] = {"offer", "pull_req", "push_reply",
                                          "pull_data", "push_data"};

// Flips a re-entrancy flag for a scope; exception-safe so a throwing
// delivery callback cannot leave the node looking permanently "in poll".
struct ReentryGuard {
  explicit ReentryGuard(bool& flag) : flag_(flag) { flag_ = true; }
  ~ReentryGuard() { flag_ = false; }
  ReentryGuard(const ReentryGuard&) = delete;
  ReentryGuard& operator=(const ReentryGuard&) = delete;
  bool& flag_;
};

// Claims the node for the calling thread, catching runtimes that violate
// the "every entry into a node is serialized" contract (reactor.hpp). A
// thread already inside may enter again (multicast from a delivery
// callback); a *different* thread entering concurrently is the bug the
// thread-safety annotations cannot see — the node deliberately has no
// mutex of its own — so it is asserted here at runtime instead.
struct EntryGuard {
  explicit EntryGuard(std::atomic<std::thread::id>& owner) : owner_(owner) {
    const std::thread::id self = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == self) return;  // nested
    std::thread::id nobody{};
    const bool won = owner_.compare_exchange_strong(
        nobody, self, std::memory_order_acquire, std::memory_order_relaxed);
    DRUM_ASSERT(won,
                "Node entered concurrently from two threads — the runtime "
                "must serialize all entry into a node");
    claimed_ = true;
  }
  ~EntryGuard() {
    if (claimed_) owner_.store(std::thread::id{}, std::memory_order_release);
  }
  EntryGuard(const EntryGuard&) = delete;
  EntryGuard& operator=(const EntryGuard&) = delete;

 private:
  std::atomic<std::thread::id>& owner_;
  bool claimed_ = false;
};
}  // namespace

Node::Node(NodeConfig cfg, crypto::Identity identity, std::vector<Peer> peers,
           net::Transport& transport, std::uint64_t rng_seed,
           DeliverFn on_deliver)
    : Node(cfg, std::move(identity),
           std::make_shared<const std::vector<Peer>>(std::move(peers)),
           transport, rng_seed, std::move(on_deliver)) {}

Node::Node(NodeConfig cfg, crypto::Identity identity, PeerDirectory peers,
           net::Transport& transport, std::uint64_t rng_seed,
           DeliverFn on_deliver)
    : cfg_(cfg),
      identity_(std::move(identity)),
      peers_(std::move(peers)),
      transport_(transport),
      rng_(rng_seed),
      on_deliver_(std::move(on_deliver)),
      buffer_(cfg.buffer_rounds, cfg.seen_rounds) {
  if (!peers_) {
    throw std::invalid_argument("peer directory must not be null");
  }
  if (cfg_.id >= dir().size() || dir()[cfg_.id].id != cfg_.id) {
    throw std::invalid_argument("peer directory must be indexed by id");
  }
  if (cfg_.scoring.enabled) {
    score_.reset(dir().size(), cfg_.scoring, cfg_.id);
  }
  init_metrics();
  auto bind_wk = [&](std::uint16_t port, Channel ch) {
    auto res = transport_.bind(port);
    if (!res) {
      throw std::runtime_error("failed to bind well-known port " +
                               std::to_string(port) + ": " +
                               net::to_string(res.error()));
    }
    sockets_.push_back(BoundSocket{res.take(), ch, 0, true});
  };
  if (cfg_.pull_enabled()) bind_wk(cfg_.wk_pull_port, Channel::kPullReq);
  if (cfg_.push_enabled()) bind_wk(cfg_.wk_offer_port, Channel::kOffer);
  if (cfg_.variant == Variant::kDrumWkPorts) {
    bind_wk(cfg_.wk_pull_reply_port, Channel::kPullData);
    cur_pull_reply_port_ = cfg_.wk_pull_reply_port;
  }
  rotate_random_ports();
  send_gossip();
}

void Node::init_metrics() {
  c_.rounds = &registry_.counter("node.rounds");
  c_.delivered = &registry_.counter("node.delivered");
  c_.duplicates = &registry_.counter("node.duplicates");
  c_.datagrams_read = &registry_.counter("node.datagrams_read");
  c_.flushed_unread = &registry_.counter("node.flushed_unread");
  c_.decode_errors = &registry_.counter("node.decode_errors");
  c_.box_failures = &registry_.counter("node.box_failures");
  c_.sig_failures = &registry_.counter("node.sig_failures");
  c_.unknown_sender = &registry_.counter("node.unknown_sender");
  c_.certs_admitted = &registry_.counter("node.certs_admitted");
  c_.pull_requests_served = &registry_.counter("node.pull_requests_served");
  c_.push_offers_answered = &registry_.counter("node.push_offers_answered");
  c_.push_replies_acted = &registry_.counter("node.push_replies_acted");
  for (int i = 0; i < 5; ++i) {
    const std::string base = std::string("chan.") + kChannelNames[i] + ".";
    chan_[i].read = &registry_.counter(base + "read");
    chan_[i].flushed_unread = &registry_.counter(base + "flushed_unread");
    chan_[i].decode_errors = &registry_.counter(base + "decode_errors");
    chan_[i].budget_exhausted = &registry_.counter(base + "budget_exhausted");
    chan_[i].budget_used = &registry_.histogram(base + "budget_used");
  }
  if (cfg_.variant == Variant::kDrumSharedBounds) {
    shared_control_.budget_exhausted =
        &registry_.counter("chan.control.budget_exhausted");
    shared_control_.budget_used =
        &registry_.histogram("chan.control.budget_used");
  }
  if (cfg_.scoring.enabled) {
    c_.score_greylist_drops = &registry_.counter("score.greylist_drops");
    c_.score_overflow_acks = &registry_.counter("score.overflow_acks");
    g_score_greylisted_ = &registry_.gauge("score.greylisted");
    g_score_entries_ = &registry_.gauge("score.greylist_entries");
    g_score_pen_decode_ = &registry_.gauge("score.penalties.decode");
    g_score_pen_overuse_ = &registry_.gauge("score.penalties.overuse");
    g_score_pen_futility_ = &registry_.gauge("score.penalties.futility");
  }
  h_poll_drained_ = &registry_.histogram("node.poll.drained");
}

Node::~Node() {
  if (!socket_hook_) return;
  for (auto& bs : sockets_) socket_hook_(*bs.sock, /*added=*/false);
}

void Node::set_socket_hook(SocketHook hook) {
  socket_hook_ = std::move(hook);
  if (!socket_hook_) return;
  for (auto& bs : sockets_) socket_hook_(*bs.sock, /*added=*/true);
}

const Peer* Node::find_peer(std::uint32_t id) const {
  if (id >= dir().size() || !dir()[id].present) return nullptr;
  return &dir()[id];
}

// Looks up the sender; if unknown, tries to admit it via a piggybacked
// CA-signed certificate (paper §10). Returns nullptr when the sender stays
// unknown; increments the unknown_sender stat in that case.
const Peer* Node::resolve_sender(std::uint32_t id, const util::Bytes& cert) {
  if (id == cfg_.id) {
    c_.unknown_sender->inc();
    return nullptr;
  }
  if (const Peer* p = find_peer(id)) return p;
  std::optional<Peer> admitted;
  if (!cert.empty() && cert_validator_) {
    admitted = cert_validator_(util::ByteSpan(cert));
  }
  if (!admitted || admitted->id != id) {
    c_.unknown_sender->inc();
    return nullptr;
  }
  // Copy-on-write admission: the directory may be shared across a whole
  // swarm, so this node installs its own amended copy instead of mutating
  // in place. Admission is rare (once per newly met member), the copy cost
  // is dwarfed by the certificate check that preceded it.
  std::vector<Peer> d = dir_mutable();
  if (admitted->id >= d.size()) {
    std::size_t old = d.size();
    d.resize(admitted->id + 1);
    for (std::size_t i = old; i < d.size(); ++i) {
      d[i].id = static_cast<std::uint32_t>(i);
      d[i].present = false;
    }
  }
  d[admitted->id] = *admitted;
  set_dir(std::move(d));
  c_.certs_admitted->inc();
  if (cfg_.scoring.enabled) score_.resize(dir().size());
  return &dir()[id];
}

void Node::update_peers(std::vector<Peer> peers) {
  EntryGuard entry(entry_owner_);
  if (cfg_.id >= peers.size() || !peers[cfg_.id].present) {
    throw std::invalid_argument("own entry missing from new directory");
  }
  for (std::uint32_t id = 0; id < peers.size(); ++id) {
    if (peers[id].present && peers[id].id != id) {
      throw std::invalid_argument("peer directory must be indexed by id");
    }
  }
  // Drop cached pair keys for entries whose DH key changed or vanished.
  for (auto it = pair_keys_.begin(); it != pair_keys_.end();) {
    std::uint32_t id = it->first;
    bool keep = id < peers.size() && peers[id].present &&
                id < dir().size() && dir()[id].present &&
                peers[id].dh_pub == dir()[id].dh_pub;
    it = keep ? std::next(it) : pair_keys_.erase(it);
  }
  set_dir(std::move(peers));
  if (cfg_.scoring.enabled) score_.resize(dir().size());
}

void Node::prewarm_pair_keys() {
  EntryGuard entry(entry_owner_);
  for (const auto& p : dir()) {
    if (p.present && p.id != cfg_.id) pair_key(p.id);
  }
}

util::ByteSpan Node::pair_key(std::uint32_t peer_id) {
  auto it = pair_keys_.find(peer_id);
  if (it == pair_keys_.end()) {
    it = pair_keys_
             .emplace(peer_id,
                      identity_.derive_pair_key(dir()[peer_id].dh_pub))
             .first;
  }
  return util::ByteSpan(it->second);
}

std::size_t Node::channel_budget(Channel c) const {
  switch (c) {
    case Channel::kOffer: return cfg_.offer_budget();
    case Channel::kPullReq: return cfg_.pull_request_budget();
    case Channel::kPushReply: return cfg_.push_reply_budget();
    case Channel::kPullData: return cfg_.pull_data_budget();
    case Channel::kPushData: return cfg_.push_data_budget();
  }
  return 0;
}

bool Node::budget_available(Channel c) const {
  return budget_remaining(c) > 0;
}

std::size_t Node::budget_remaining(Channel c) const {
  const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                       c == Channel::kPushReply;
  if (cfg_.variant == Variant::kDrumSharedBounds && control) {
    const std::size_t budget = cfg_.shared_control_budget();
    return shared_control_used_ < budget ? budget - shared_control_used_ : 0;
  }
  auto it = used_.find(static_cast<int>(c));
  const std::size_t used = it == used_.end() ? 0 : it->second;
  const std::size_t budget = channel_budget(c);
  return used < budget ? budget - used : 0;
}

void Node::consume_budget(Channel c) {
  const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                       c == Channel::kPushReply;
  if (cfg_.variant == Variant::kDrumSharedBounds && control) {
    ++shared_control_used_;
  } else {
    ++used_[static_cast<int>(c)];
  }
}

std::size_t Node::budget_used(Channel c) const {
  auto it = used_.find(static_cast<int>(c));
  return it == used_.end() ? 0 : it->second;
}

// Called at the end of each round, before the per-round usage counters
// reset: one histogram sample per enabled channel (its budget consumption
// this round) and an exhaustion count when the flood — or honest load — ate
// the whole budget. This is the paper's §5 "wasted resources" series.
void Node::record_round_budgets() {
  const bool shared = cfg_.variant == Variant::kDrumSharedBounds;
  if (shared) {
    DRUM_INVARIANT(shared_control_used_ <= cfg_.shared_control_budget(),
                   "joint control budget over-spent: ", shared_control_used_,
                   "/", cfg_.shared_control_budget());
    shared_control_.budget_used->record(shared_control_used_);
    if (shared_control_used_ >= cfg_.shared_control_budget()) {
      shared_control_.budget_exhausted->inc();
    }
  }
  for (int i = 0; i < 5; ++i) {
    const auto c = static_cast<Channel>(i);
    const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                         c == Channel::kPushReply;
    if (shared && control) continue;  // accounted jointly above
    const std::size_t budget = channel_budget(c);
    const std::size_t spent = budget_used(c);
    DRUM_INVARIANT(spent <= budget, "channel ", kChannelNames[i],
                   " budget over-spent: ", spent, "/", budget);
    if (budget == 0) continue;  // channel disabled in this variant
    const std::size_t used = spent;
    chan_[i].budget_used->record(used);
    if (used >= budget) {
      chan_[i].budget_exhausted->inc();
      trace(obs::EventKind::kBudgetExhausted, static_cast<std::uint32_t>(i),
            static_cast<std::uint32_t>(budget));
    }
  }
}

void Node::poll_cycle() {
  // The single-node shape of the pipeline: everything this node's sockets
  // hold becomes one local batch, so even a standalone driver gets the wide
  // Ed25519/HMAC passes across every queued datagram.
  ingress::IngressBatch batch;
  drain_ingress(batch);
  batch.dispatch();
}

void Node::drain_ingress(ingress::IngressBatch& batch) {
  EntryGuard entry(entry_owner_);
  DRUM_REQUIRE(!in_poll_,
               "drain_ingress() re-entered (delivery callback drove node?)");
  ReentryGuard guard(in_poll_);
  auto& frames = batch.section_for(*this).frames;
  std::size_t drained = 0;
  net::Datagram chunk[ingress::kRecvChunk];
  for (auto& bs : sockets_) {
    ChannelMetrics& cm = chan_[static_cast<int>(bs.channel)];
    // With scoring on, frames from greylisted peers on the well-known
    // control ports are dropped BEFORE consuming reception budget — the
    // greylisted peer loses its share of the bounded channel capacity. A
    // hard read cap keeps the budget-free drop loop from becoming its own
    // CPU DoS vector.
    const bool scored =
        cfg_.scoring.enabled && bs.well_known &&
        (bs.channel == Channel::kOffer || bs.channel == Channel::kPullReq);
    const std::size_t read_cap =
        channel_budget(bs.channel) * cfg_.scoring.read_multiplier;
    // Scored channels are additionally drained PAST their budget (still
    // under the read cap) so budget-exhaustion is attributable the way the
    // simulator models it — the receiver observes WHO flooded the bound,
    // not just that it overflowed. Over-budget frames are never served:
    // a valid pull request gets the constant-size empty ack (so a busy
    // correct node stays distinguishable from a black hole at every
    // requester's futility signal); a valid offer is scored and dropped.
    std::size_t reads = 0;
    while (true) {
      // Admissible-read window: never pull more out of the queue than this
      // round's budgets (or the scored read cap) still admit — the excess
      // stays queued for the round-end flush, exactly like the one-at-a-
      // time loop this replaced.
      const std::size_t window =
          scored ? (reads < read_cap ? read_cap - reads : 0)
                 : budget_remaining(bs.channel);
      if (window == 0) break;
      const std::size_t want = std::min(window, ingress::kRecvChunk);
      const std::size_t got = bs.sock->recv_batch(chunk, want);
      if (scored) reads += got;
      for (std::size_t i = 0; i < got; ++i) {
        net::Datagram& dgram = chunk[i];
        if (scored) {
          auto claimed = peek_sender(util::ByteSpan(dgram.payload));
          if (claimed && score_.greylisted(*claimed)) {
            c_.score_greylist_drops->inc();
            continue;
          }
        }
        const bool in_budget = budget_available(bs.channel);
        auto disposition = ingress::Disposition::kProcess;
        if (!in_budget) {
          // Budget exhausted (scored channels only — the window above is
          // exact elsewhere): decode + score (+ ack) later, budget
          // untouched.
          disposition = bs.channel == Channel::kPullReq
                            ? ingress::Disposition::kAckOnly
                            : ingress::Disposition::kScoreOnly;
        } else {
          // Reading a datagram consumes the channel's budget *regardless of
          // its validity* — processing bogus requests is precisely the
          // resource a DoS attack burns (paper §1, §4).
          consume_budget(bs.channel);
          c_.datagrams_read->inc();
          cm.read->inc();
        }
        ++drained;
        try {
          parse_into(bs.channel, dgram, disposition, frames);
        } catch (const util::DecodeError&) {
          c_.decode_errors->inc();
          cm.decode_errors->inc();
          if (cfg_.scoring.enabled) {
            // A malformed frame naming a known peer is weak (frameable)
            // evidence against that peer.
            if (auto claimed = peek_sender(util::ByteSpan(dgram.payload))) {
              score_.on_decode_error(*claimed);
            }
          }
          trace(obs::EventKind::kDecodeError,
                static_cast<std::uint32_t>(bs.channel));
        }
      }
      if (got < want) break;  // queue empty
    }
  }
  // Queue drain depth: how much backlog one sweep found. Zero-drain sweeps
  // (the overwhelming majority between events) are not recorded — the
  // histogram describes backlog when there was one.
  if (drained) h_poll_drained_->record(drained);
}

void Node::parse_into(Channel channel, const net::Datagram& dgram,
                      ingress::Disposition disposition,
                      std::vector<ingress::VerifiedFrame>& out) {
  util::ByteSpan wire(dgram.payload);
  ingress::VerifiedFrame f;
  f.channel = channel;
  f.disposition = disposition;
  switch (channel) {
    case Channel::kPullReq: {
      auto req = decode_pull_request(wire, cfg_.max_digest);
      const Peer* peer = resolve_sender(req.sender, req.cert);
      if (!peer) return;
      trace(obs::EventKind::kPullReqRecv, req.sender);
      f.sender = req.sender;
      f.host = peer->host;
      f.digest = std::move(req.digest);
      f.boxed_port = std::move(req.boxed_reply_port);
      break;
    }
    case Channel::kOffer: {
      auto offer = decode_push_offer(wire);
      const Peer* peer = resolve_sender(offer.sender, offer.cert);
      if (!peer) return;
      trace(obs::EventKind::kOfferRecv, offer.sender);
      f.sender = offer.sender;
      f.host = peer->host;
      f.boxed_port = std::move(offer.boxed_reply_port);
      break;
    }
    case Channel::kPushReply: {
      auto reply = decode_push_reply(wire, cfg_.max_digest);
      const Peer* peer = find_peer(reply.sender);
      if (!peer || reply.sender == cfg_.id) {
        c_.unknown_sender->inc();
        return;
      }
      trace(obs::EventKind::kPushReplyRecv, reply.sender);
      f.sender = reply.sender;
      f.host = peer->host;
      f.digest = std::move(reply.digest);
      f.boxed_port = std::move(reply.boxed_data_port);
      break;
    }
    case Channel::kPullData:
    case Channel::kPushData: {
      const bool is_pull_reply = channel == Channel::kPullData;
      std::vector<DataMessage> msgs;
      if (is_pull_reply) {
        auto reply =
            decode_pull_reply(wire, cfg_.max_msgs_per_gossip, cfg_.max_payload);
        f.sender = reply.sender;
        msgs = std::move(reply.messages);
      } else {
        auto push =
            decode_push_data(wire, cfg_.max_msgs_per_gossip, cfg_.max_payload);
        f.sender = push.sender;
        msgs = std::move(push.messages);
      }
      trace(is_pull_reply ? obs::EventKind::kPullReplyRecv
                          : obs::EventKind::kPushDataRecv,
            f.sender, static_cast<std::uint32_t>(msgs.size()));
      // Stage-A sanity checks (paper §4): dedupe against the buffer, then
      // known source (possibly admitted via its §10 piggybacked
      // certificate). Survivors become candidates for the batch-wide
      // Ed25519 pass; ingest() re-checks `seen` so cross-frame duplicates
      // within one batch still count as duplicates, never as forgeries.
      f.candidates.reserve(msgs.size());
      for (auto& msg : msgs) {
        if (buffer_.seen(msg.id)) {
          c_.duplicates->inc();
          continue;
        }
        const Peer* source = msg.id.source == cfg_.id
                                 ? find_peer(msg.id.source)
                                 : resolve_sender(msg.id.source, msg.cert);
        if (!source) continue;
        ingress::DataCandidate cand;
        cand.needs_verify = cfg_.verify_signatures;
        if (cand.needs_verify) {
          // Copied, not pointed-to: resolve_sender may admit a certificate
          // and reallocate the peer directory before verify() runs.
          cand.pub = source->sign_pub;
          cand.signed_bytes = msg.signed_bytes();
        }
        cand.msg = std::move(msg);
        f.candidates.push_back(std::move(cand));
      }
      break;
    }
  }
  if (f.channel != Channel::kPullData && f.channel != Channel::kPushData) {
    // 32-byte copy: pair_key() hands out a span into a cache another
    // stage-A cert admission could invalidate before verify() runs.
    auto key = pair_key(f.sender);
    f.box_key.assign(key.begin(), key.end());
  }
  out.push_back(std::move(f));
}

void Node::ingest(std::span<ingress::VerifiedFrame> frames) {
  EntryGuard entry(entry_owner_);
  DRUM_REQUIRE(!in_poll_,
               "ingest() re-entered (delivery callback drove node?)");
  ReentryGuard guard(in_poll_);
  for (auto& f : frames) {
    switch (f.channel) {
      case Channel::kPullReq:
        apply_pull_request(f);
        break;
      case Channel::kOffer:
        apply_push_offer(f);
        break;
      case Channel::kPushReply:
        apply_push_reply(f);
        break;
      case Channel::kPullData:
      case Channel::kPushData:
        apply_data(f);
        break;
    }
  }
  // All replies staged by the handlers above leave in one scatter call.
  flush_egress();
}

void Node::queue_send(const net::Address& to, util::Bytes&& payload) {
  egress_.emplace_back(to, std::move(payload));
}

void Node::flush_egress() {
  if (egress_.empty()) return;
  // Small stack-friendly staging of spans over the owned payloads; the
  // Bytes in egress_ stay alive until send_many returns.
  std::vector<net::OutboundDatagram> out;
  out.reserve(egress_.size());
  for (const auto& [to, payload] : egress_) {
    out.push_back(net::OutboundDatagram{to, util::ByteSpan(payload)});
  }
  sockets_.front().sock->send_many(out.data(), out.size());
  egress_.clear();  // keeps capacity for the next cycle
}

void Node::apply_pull_request(const ingress::VerifiedFrame& f) {
  if (!f.port) {
    c_.box_failures->inc();  // fabricated or corrupted request
    trace(obs::EventKind::kBoxFailure, f.sender);
    if (cfg_.scoring.enabled) score_.on_decode_error(f.sender);
    return;
  }
  if (cfg_.scoring.enabled) {
    // A valid box proves pair-key possession: this arrival is attributable
    // beyond framing. Overuse past the per-round allowance is the
    // budget-exhaustion signal; if it just tripped the greylist, stop
    // serving immediately.
    score_.on_control_arrival(f.sender);
    if (score_.greylisted(f.sender)) return;
  }
  if (f.disposition == ingress::Disposition::kAckOnly) {
    // Past this round's budget: answer with the empty ack instead of data.
    // Serving is what the bound protects; the ack is a constant-size send
    // already capped by the read multiplier.
    c_.score_overflow_acks->inc();
    queue_send(net::Address{f.host, *f.port}, encode_pull_reply(cfg_.id, {}));
    return;
  }
  auto msgs = buffer_.select_missing(f.digest, cfg_.max_msgs_per_gossip, rng_);
  c_.pull_requests_served->inc();
  if (msgs.empty()) {
    if (cfg_.scoring.enabled) {
      // Protocol extension: acknowledge valid pull requests even when we
      // hold nothing, so requesters' futility signal only accrues at black
      // holes and saturated victims, never at honest idle peers.
      queue_send(net::Address{f.host, *f.port},
                 encode_pull_reply(cfg_.id, {}));
    }
    return;
  }
  trace(obs::EventKind::kPullReplySend, f.sender,
        static_cast<std::uint32_t>(msgs.size()));
  // The reply goes to the requester's random (boxed) port; it rides the
  // cycle's scatter batch (flush_egress). encode_pull_reply serializes
  // straight from the buffer-owned messages — no copies.
  queue_send(net::Address{f.host, *f.port}, encode_pull_reply(cfg_.id, msgs));
}

void Node::apply_push_offer(const ingress::VerifiedFrame& f) {
  if (!f.port) {
    c_.box_failures->inc();
    trace(obs::EventKind::kBoxFailure, f.sender);
    if (cfg_.scoring.enabled) score_.on_decode_error(f.sender);
    return;
  }
  if (cfg_.scoring.enabled) {
    score_.on_control_arrival(f.sender);
    if (score_.greylisted(f.sender)) return;
  }
  if (f.disposition == ingress::Disposition::kScoreOnly) {
    return;  // over-budget arrival: attributed, never answered
  }
  // The sender can vanish from the directory between stages (dynamic
  // membership); sealing needs its current DH key, so re-check.
  if (!find_peer(f.sender)) return;
  c_.push_offers_answered->inc();
  trace(obs::EventKind::kPushReplySend, f.sender);
  PushReply reply;
  reply.sender = cfg_.id;
  reply.digest = buffer_.digest();
  reply.boxed_data_port =
      crypto::portbox_seal_port(pair_key(f.sender), cur_push_data_port_, rng_);
  queue_send(net::Address{f.host, *f.port}, encode(reply));
}

void Node::apply_push_reply(const ingress::VerifiedFrame& f) {
  if (!f.port) {
    c_.box_failures->inc();
    trace(obs::EventKind::kBoxFailure, f.sender);
    return;
  }
  auto msgs = buffer_.select_missing(f.digest, cfg_.max_msgs_per_gossip, rng_);
  c_.push_replies_acted->inc();
  if (msgs.empty()) return;
  trace(obs::EventKind::kPushDataSend, f.sender,
        static_cast<std::uint32_t>(msgs.size()));
  queue_send(net::Address{f.host, *f.port}, encode_push_data(cfg_.id, msgs));
}

void Node::apply_data(ingress::VerifiedFrame& f) {
  const bool is_pull_reply = f.channel == Channel::kPullData;
  if (is_pull_reply && cfg_.scoring.enabled) {
    // Any pull-reply frame (including the empty ack) answers this round's
    // outstanding pull to that peer — the futility streak resets.
    for (auto& [target, answered] : pending_pulls_) {
      if (target == f.sender && !answered) {
        answered = true;
        break;
      }
    }
  }
  if (f.candidates.empty()) return;

  auto accept = [&](DataMessage&& msg) {
    Delivery delivery{msg, msg.round_counter};
    trace(obs::EventKind::kDeliver, msg.id.source,
          static_cast<std::uint32_t>(msg.id.seqno));
    buffer_.insert(std::move(msg), round_);
    c_.delivered->inc();
    if (on_deliver_) on_deliver_(delivery);
  };

  // Pass 1 — batch-window dedupe: a message accepted from an EARLIER frame
  // of this batch (after this frame was drained) makes this copy a
  // duplicate. The one-at-a-time path never signature-checked such copies
  // (its per-datagram pass 1 ran after the earlier datagram delivered), so
  // the verify() verdict is deliberately ignored here — a corrupt-signature
  // duplicate counts as a duplicate, not a forgery, keeping blame
  // attribution byte-identical with the unbatched path.
  std::vector<char> dup(f.candidates.size(), 0);
  for (std::size_t i = 0; i < f.candidates.size(); ++i) {
    if (buffer_.seen(f.candidates[i].msg.id)) {
      c_.duplicates->inc();
      dup[i] = 1;
    }
  }

  // Pass 2 — apply verdicts and deliver in arrival order. Each verdict
  // matches what a one-by-one crypto::ed25519_verify would say (bad
  // signatures are attributed exactly; see api.hpp).
  for (std::size_t i = 0; i < f.candidates.size(); ++i) {
    if (dup[i]) continue;
    ingress::DataCandidate& cand = f.candidates[i];
    if (cand.needs_verify && !cand.verified) {
      c_.sig_failures->inc();
      trace(obs::EventKind::kSigFailure, cand.msg.id.source);
      // Attribute the bad signature to whoever FORWARDED the frame (the
      // frame sender), not the claimed message source — the source field is
      // attacker-chosen, the forwarding peer relayed garbage.
      if (cfg_.scoring.enabled) score_.on_decode_error(f.sender);
      continue;
    }
    // Re-check: the same id can appear twice in one datagram, and a
    // delivery callback may have originated messages meanwhile.
    if (buffer_.seen(cand.msg.id)) {
      c_.duplicates->inc();
      continue;
    }
    accept(std::move(cand.msg));
  }
}

void Node::rotate_random_ports() {
  // Retire expired random sockets, telling the runtime hook first so an
  // event loop can drop its registration before the socket dies.
  std::erase_if(sockets_, [&](const BoundSocket& bs) {
    const bool expire = !bs.well_known &&
                        bs.created_round + cfg_.port_lifetime_rounds <=
                            round_;
    if (expire && socket_hook_) socket_hook_(*bs.sock, /*added=*/false);
    return expire;
  });
  auto bind_random = [&](Channel ch) -> std::uint16_t {
    auto res = transport_.bind(0);
    if (!res) return 0;
    std::uint16_t port = res->local().port;
    auto sock = res.take();
    if (socket_hook_) socket_hook_(*sock, /*added=*/true);
    sockets_.push_back(BoundSocket{std::move(sock), ch, round_, false});
    return port;
  };
  if (cfg_.pull_enabled() && cfg_.variant != Variant::kDrumWkPorts) {
    cur_pull_reply_port_ = bind_random(Channel::kPullData);
  }
  if (cfg_.push_enabled()) {
    cur_push_reply_port_ = bind_random(Channel::kPushReply);
    cur_push_data_port_ = bind_random(Channel::kPushData);
  }
}

void Node::send_gossip() {
  // Candidate gossip partners: present peers other than ourselves. With
  // scoring on, greylisted peers are excluded from view selection (they get
  // no gossip slots from us); if that would empty the candidate set, fall
  // back to the unfiltered directory rather than going silent.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(dir().size());
  const bool filter = cfg_.scoring.enabled;
  for (const auto& p : dir()) {
    if (!p.present || p.id == cfg_.id) continue;
    if (filter && score_.greylisted(p.id)) continue;
    candidates.push_back(p.id);
  }
  if (candidates.empty() && filter) {
    for (const auto& p : dir()) {
      if (p.present && p.id != cfg_.id) candidates.push_back(p.id);
    }
  }
  if (candidates.empty()) return;
  const auto nc = static_cast<std::uint32_t>(candidates.size());

  if (cfg_.pull_enabled()) {
    auto view = rng_.sample(nc, static_cast<std::uint32_t>(cfg_.view_pull()),
                            nc);
    Digest digest = buffer_.digest();
    for (auto idx : view) {
      std::uint32_t t = candidates[idx];
      PullRequest req;
      req.sender = cfg_.id;
      req.digest = digest;
      req.cert = own_cert_;
      req.boxed_reply_port =
          crypto::portbox_seal_port(pair_key(t), cur_pull_reply_port_, rng_);
      trace(obs::EventKind::kPullReqSend, t);
      if (cfg_.scoring.enabled) pending_pulls_.emplace_back(t, false);
      queue_send(net::Address{dir()[t].host, dir()[t].wk_pull_port},
                 encode(req));
    }
  }
  if (cfg_.push_enabled()) {
    auto view = rng_.sample(nc, static_cast<std::uint32_t>(cfg_.view_push()),
                            nc);
    for (auto idx : view) {
      std::uint32_t t = candidates[idx];
      PushOffer offer;
      offer.sender = cfg_.id;
      offer.cert = own_cert_;
      offer.boxed_reply_port =
          crypto::portbox_seal_port(pair_key(t), cur_push_reply_port_, rng_);
      trace(obs::EventKind::kOfferSend, t);
      queue_send(net::Address{dir()[t].host, dir()[t].wk_offer_port},
                 encode(offer));
    }
  }
  // One scatter call for the whole round's fan-out: pull requests + offers
  // leave in a single network transaction instead of one lock/syscall each.
  flush_egress();
}

void Node::on_round() {
  EntryGuard entry(entry_owner_);
  DRUM_REQUIRE(!in_round_, "on_round() re-entered");
  DRUM_REQUIRE(!in_poll_, "on_round() called from inside poll()");
  ReentryGuard guard(in_round_);

  // Final processing pass for the ending round: anything that arrived since
  // the last ingress sweep is still "this round's" input and deserves its
  // shot at the remaining budgets (the Java implementation reads
  // continuously; this keeps coarse drivers that drain rarely faithful to
  // that).
  poll_cycle();

  record_round_budgets();

  if (cfg_.scoring.enabled) {
    // Settle this round's outgoing pulls: anything still unanswered feeds
    // the futility streak of its target.
    for (const auto& [target, answered] : pending_pulls_) {
      score_.on_pull_outcome(target, answered);
    }
    pending_pulls_.clear();
  }

  ++round_;
  c_.rounds->inc();
  trace(obs::EventKind::kRoundTick,
        static_cast<std::uint32_t>(round_ & 0xFFFFFFFFull));

  // Discard all unread messages from the incoming buffers (paper §4) —
  // anything beyond this round's budgets, i.e. mostly the flood. (The
  // discard_unread=false ablation keeps the backlog instead; see config.)
  if (cfg_.discard_unread) {
    net::Datagram chunk[ingress::kRecvChunk];
    for (auto& bs : sockets_) {
      std::uint64_t flushed = 0;
      while (true) {
        const std::size_t got =
            bs.sock->recv_batch(chunk, ingress::kRecvChunk);
        flushed += got;
        if (got < ingress::kRecvChunk) break;
      }
      if (flushed) {
        c_.flushed_unread->inc(flushed);
        chan_[static_cast<int>(bs.channel)].flushed_unread->inc(flushed);
        trace(obs::EventKind::kFlushUnread,
              static_cast<std::uint32_t>(bs.channel),
              static_cast<std::uint32_t>(flushed));
      }
    }
  }
  used_.clear();
  shared_control_used_ = 0;

  if (cfg_.scoring.enabled) {
    score_.begin_round(round_);
    g_score_greylisted_->set(
        static_cast<double>(score_.currently_greylisted()));
    g_score_entries_->set(static_cast<double>(score_.greylist_entries()));
    g_score_pen_decode_->set(static_cast<double>(score_.penalties_decode()));
    g_score_pen_overuse_->set(
        static_cast<double>(score_.penalties_overuse()));
    g_score_pen_futility_->set(
        static_cast<double>(score_.penalties_futility()));
  }

  buffer_.on_round(round_);
  rotate_random_ports();
  send_gossip();

  check_invariants();
}

void Node::check_invariants() const {
#if DRUM_CHECKED
  // Budget accounting: nothing spends past its bound, and disabled channels
  // never see traffic (no socket is bound for them).
  for (int i = 0; i < 5; ++i) {
    const auto c = static_cast<Channel>(i);
    const bool control = c == Channel::kOffer || c == Channel::kPullReq ||
                         c == Channel::kPushReply;
    if (cfg_.variant == Variant::kDrumSharedBounds && control) continue;
    DRUM_INVARIANT(budget_used(c) <= channel_budget(c), "channel ",
                   kChannelNames[i], " over budget: ", budget_used(c), "/",
                   channel_budget(c));
  }
  DRUM_INVARIANT(shared_control_used_ <= cfg_.shared_control_budget(),
                 "joint control budget over-spent");

  // Directory: non-null, indexed by id, our own entry present.
  DRUM_INVARIANT(peers_ != nullptr, "peer directory must never be null");
  DRUM_INVARIANT(cfg_.id < dir().size() && dir()[cfg_.id].present,
                 "own directory entry missing");
  for (std::size_t i = 0; i < dir().size(); ++i) {
    DRUM_INVARIANT(!dir()[i].present || dir()[i].id == i,
                   "directory not indexed by id at slot ", i);
  }

  // Socket/port round-state: the well-known sockets bound at construction
  // stay first and alive; random sockets never outlive their rotation
  // window; the wk-ports ablation pins the pull-reply port.
  DRUM_INVARIANT(!sockets_.empty() && sockets_.front().well_known,
                 "well-known sockets must head the socket list");
  for (const auto& bs : sockets_) {
    DRUM_INVARIANT(bs.sock != nullptr, "null socket in socket list");
    DRUM_INVARIANT(bs.well_known ||
                       bs.created_round + cfg_.port_lifetime_rounds > round_,
                   "random socket outlived its lifetime");
  }
  if (cfg_.variant == Variant::kDrumWkPorts) {
    DRUM_INVARIANT(cur_pull_reply_port_ == cfg_.wk_pull_reply_port,
                   "wk-ports ablation must keep the fixed pull-reply port");
  }

  if (cfg_.scoring.enabled) {
    DRUM_INVARIANT(score_.size() >= dir().size(),
                   "score table lags the peer directory");
    score_.check_invariants();
  }

  buffer_.check_invariants(round_);
#endif
}

void Node::set_own_certificate(util::Bytes own_cert) {
  own_cert_ = std::move(own_cert);
}

void Node::set_cert_validator(CertValidator validator) {
  cert_validator_ = std::move(validator);
}

MessageId Node::multicast(util::ByteSpan payload) {
  EntryGuard entry(entry_owner_);
  DataMessage msg;
  msg.id = MessageId{cfg_.id, next_seqno_++};
  msg.payload.assign(payload.begin(), payload.end());
  msg.cert = own_cert_;  // §10 piggybacking (empty when not enabled)
  msg.signature = identity_.sign(util::ByteSpan(msg.signed_bytes()));
  // Paper §8.1: the source logs 0 and immediately advances the counter to 1.
  msg.round_counter = 1;
  buffer_.insert(std::move(msg), round_);
  return MessageId{cfg_.id, next_seqno_ - 1};
}

}  // namespace drum::core
