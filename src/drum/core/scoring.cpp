#include "drum/core/scoring.hpp"

#include <algorithm>
#include <cmath>

#include "drum/check/check.hpp"

namespace drum::core {

namespace {
/// Decay powers are tabulated this far; an idle gap beyond it rounds the
/// score to zero (decay^4096 at any sane decay is negligible).
constexpr std::size_t kDecayHorizon = 4096;
}  // namespace

void PeerScoreTable::reset(std::size_t n_peers, const ScoringConfig& cfg,
                           std::uint32_t self) {
  cfg_ = cfg;
  self_ = self;
  round_ = 0;
  entries_.assign(n_peers, Entry{});
  if (decay_pow_.empty() || decay_pow_[1] != static_cast<float>(cfg.decay)) {
    decay_pow_.resize(kDecayHorizon);
    double p = 1.0;
    for (std::size_t i = 0; i < kDecayHorizon; ++i) {
      decay_pow_[i] = static_cast<float>(p);
      p *= cfg.decay;
    }
  }
  n_greylist_entries_ = 0;
  n_decode_ = 0;
  n_overuse_ = 0;
  n_futility_ = 0;
}

void PeerScoreTable::resize(std::size_t n_peers) {
  if (n_peers > entries_.size()) {
    entries_.resize(n_peers);
    // New entries start at round_ so their first settle() is a no-op.
    for (auto& e : entries_) {
      if (e.score_round == 0 && e.score == 0.0F) {
        e.score_round = static_cast<std::uint32_t>(round_);
      }
    }
  }
}

void PeerScoreTable::begin_round(std::uint64_t round) { round_ = round; }

void PeerScoreTable::settle(Entry& e) {
  const auto now = static_cast<std::uint32_t>(round_);
  if (e.score_round == now) {
    return;
  }
  const std::uint32_t gap = now - e.score_round;
  e.score = gap < decay_pow_.size() ? e.score * decay_pow_[gap] : 0.0F;
  e.score_round = now;
}

void PeerScoreTable::penalize(std::uint32_t p, double weight) {
  Entry& e = entries_[p];
  settle(e);
  e.score -= static_cast<float>(weight);
  const auto now = static_cast<std::uint32_t>(round_);
  const bool already_grey = e.grey_until != 0 && now < e.grey_until;
  if (e.score <= static_cast<float>(cfg_.greylist_threshold) &&
      !already_grey) {
    // Entering the greylist. Re-offending shortly after a release escalates
    // the strike count (duration doubling); offending long after a release
    // starts the ladder over.
    if (e.last_release != 0 && now - e.last_release <= cfg_.strike_window) {
      e.strikes = static_cast<std::uint8_t>(
          std::min<std::uint32_t>(e.strikes + 1, cfg_.max_strike_shift));
    } else {
      e.strikes = 0;
    }
    const std::uint32_t duration = cfg_.greylist_rounds
                                   << std::min<std::uint32_t>(
                                          e.strikes, cfg_.max_strike_shift);
    e.grey_until = now + std::max<std::uint32_t>(duration, 1);
    ++n_greylist_entries_;
  }
}

void PeerScoreTable::on_decode_error(std::uint32_t p) {
  if (p >= entries_.size() || p == self_) {
    return;
  }
  ++n_decode_;
  penalize(p, cfg_.decode_error_penalty);
}

void PeerScoreTable::on_control_arrival(std::uint32_t p) {
  if (p >= entries_.size() || p == self_) {
    return;
  }
  Entry& e = entries_[p];
  const auto now = static_cast<std::uint32_t>(round_);
  if (e.ctrl_round != now) {
    e.ctrl_round = now;
    e.ctrl_count = 0;
  }
  if (e.ctrl_count < 0xFFFF) {
    ++e.ctrl_count;
  }
  if (e.ctrl_count > cfg_.per_peer_allowance) {
    ++n_overuse_;
    penalize(p, cfg_.overuse_penalty);
  }
}

void PeerScoreTable::on_pull_outcome(std::uint32_t p, bool answered) {
  if (p >= entries_.size() || p == self_) {
    return;
  }
  Entry& e = entries_[p];
  if (answered) {
    e.streak = 0;
    return;
  }
  if (e.streak < 0xFF) {
    ++e.streak;
  }
  if (e.streak >= cfg_.futility_streak) {
    e.streak = 0;
    ++n_futility_;
    penalize(p, cfg_.futility_penalty);
  }
}

bool PeerScoreTable::greylisted(std::uint32_t p) {
  if (p >= entries_.size()) {
    return false;
  }
  Entry& e = entries_[p];
  if (e.grey_until == 0) {
    return false;
  }
  const auto now = static_cast<std::uint32_t>(round_);
  if (now < e.grey_until) {
    return true;
  }
  // Lazy release: record the release round for the strike window and clear
  // the residual score so the peer re-enters on fresh evidence only.
  e.last_release = e.grey_until;
  e.grey_until = 0;
  settle(e);
  e.score = std::max(e.score, static_cast<float>(cfg_.greylist_threshold) / 2);
  return false;
}

double PeerScoreTable::score(std::uint32_t p) {
  if (p >= entries_.size()) {
    return 0.0;
  }
  settle(entries_[p]);
  return entries_[p].score;
}

std::size_t PeerScoreTable::currently_greylisted() {
  std::size_t count = 0;
  for (std::uint32_t p = 0; p < entries_.size(); ++p) {
    if (greylisted(p)) {
      ++count;
    }
  }
  return count;
}

void PeerScoreTable::check_invariants() const {
  if (self_ < entries_.size()) {
    DRUM_INVARIANT(entries_[self_].grey_until == 0,
                   "a node never greylists itself");
    DRUM_INVARIANT(entries_[self_].score == 0.0F, "self score stays zero");
  }
  for (const Entry& e : entries_) {
    DRUM_INVARIANT(e.score <= 0.0F, "scores are non-positive penalties");
  }
}

}  // namespace drum::core
