// The node's message buffer (paper §4, §8.2): received messages are kept for
// a fixed number of rounds and gossiped while buffered; old messages are
// purged. A longer-lived "seen" set prevents purged messages that come back
// from being re-delivered to the application.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "drum/core/message.hpp"
#include "drum/util/rng.hpp"

namespace drum::core {

class MessageBuffer {
 public:
  /// `buffer_rounds`: rounds a message stays gossip-able.
  /// `seen_rounds`: rounds a message id stays in the dedup set (>= buffer).
  MessageBuffer(std::size_t buffer_rounds, std::size_t seen_rounds);

  /// Inserts a new message. Returns false (and does nothing) if the id was
  /// already seen — the dedup step of the paper's "sanity checks".
  bool insert(DataMessage msg, std::uint64_t current_round);

  [[nodiscard]] bool seen(const MessageId& id) const;
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  /// Called once per local round: increments every buffered message's round
  /// counter (paper §8.1) and purges expired entries / seen ids.
  void on_round(std::uint64_t current_round);

  /// Digest of all currently buffered message ids.
  [[nodiscard]] Digest digest() const;

  /// Up to `max_count` random buffered messages whose ids are NOT in
  /// `peer_digest` — the "random subset of missing messages" both push and
  /// pull responses send. Returns pointers into the buffer (no payload
  /// copies; encode_pull_reply/encode_push_data serialize straight from
  /// them), valid until the next insert()/on_round(). Non-const: peer ids
  /// are matched by marking the buffer's own entries (an epoch stamp)
  /// instead of building a temporary hash set of the digest on every call,
  /// and the candidate scratch is reused across calls.
  [[nodiscard]] std::vector<const DataMessage*> select_missing(
      const Digest& peer_digest, std::size_t max_count, util::Rng& rng);

  /// drum::check invariants: digest/size coherence (digest() lists exactly
  /// the buffered ids), every buffered id is still in the seen set (a
  /// buffered-but-forgotten message would be re-delivered on the next copy),
  /// and no entry has outlived its expiry given `current_round`. No-op in
  /// Release builds.
  void check_invariants(std::uint64_t current_round) const;

 private:
  struct Entry {
    DataMessage msg;
    std::uint64_t expires;   // round at which the entry is purged
    std::uint64_t mark = 0;  // select_missing epoch stamp ("peer has it")
  };

  std::size_t buffer_rounds_;
  std::size_t seen_rounds_;
  std::unordered_map<MessageId, Entry, MessageIdHash> buffer_;
  std::unordered_map<MessageId, std::uint64_t, MessageIdHash> seen_;
  std::uint64_t select_epoch_ = 0;  // bumped per select_missing call
  std::vector<const DataMessage*> select_scratch_;  // candidate list, reused
};

}  // namespace drum::core
