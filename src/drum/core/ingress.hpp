// The batched ingress stage (DESIGN.md §12): raw datagrams in, typed and
// signature-checked frames out.
//
// The paper's flood attack wins by charging the victim per datagram — a
// syscall, a parse, an HMAC, an Ed25519 check, each paid one at a time. The
// ingress pipeline amortizes all four:
//
//   socket ready ──► Node::drain_ingress(batch)   stage A, node serialized
//                      recv_batch + budgets + greylist peek + decode
//                 ──► IngressBatch::verify()       lock-free, no node held
//                      one ed25519_verify_batch over every data signature,
//                      one hmac_sha256_batch pass over every port box
//                 ──► Node::ingest(frames)         stage B, node serialized
//                      scoring, greylist, serve/ack, dedupe, delivery
//
// The seam between A and B is the push-style ingress API: a runtime DRAINS
// frames out of many nodes, verifies everything it is holding in one crypto
// pass (across frames AND across co-scheduled nodes), then PUSHES the
// verified frames back in. Single-node drivers run the three stages
// back-to-back on a private batch (drain_ingress + dispatch()).
//
// Budgets are charged at stage A (reading is what the paper's bound meters,
// valid or not), so nothing here lets a node process more than its per-round
// reception budgets — the batch only moves WHERE the crypto runs.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "drum/core/message.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/util/bytes.hpp"

namespace drum::core {

class Node;

/// The five reception channels (paper §4). Shared by Node's socket table and
/// the ingress stage; array indices throughout are static_cast<int>(ch).
enum class Channel { kOffer, kPullReq, kPushReply, kPullData, kPushData };

namespace ingress {

/// recv_batch window per call in stage A and in the round-end flush — the
/// recvmmsg vlen. Matches the kernel's UIO_FASTIOV fast path so one syscall
/// drains up to 64 datagrams without heap iovec allocation.
inline constexpr std::size_t kRecvChunk = 64;

/// How stage A disposed of a control frame relative to its channel budget.
enum class Disposition {
  kProcess,    ///< in budget: serve it
  kAckOnly,    ///< over-budget pull request: score + empty ack, never serve
  kScoreOnly,  ///< over-budget offer: score for attribution, never answer
};

/// One data message awaiting its share of the batched signature check.
struct DataCandidate {
  DataMessage msg;
  /// Copied (not pointed-to): the peer directory can grow between stages.
  crypto::Ed25519PublicKey pub;
  /// Owns the signed byte string; the VerifyJob only holds a view.
  util::Bytes signed_bytes;
  bool needs_verify = false;  ///< false when cfg.verify_signatures is off
  bool verified = false;      ///< written by IngressBatch::verify()
};

/// One parsed frame, decoded and budget-charged at stage A, crypto-checked
/// by IngressBatch::verify(), applied by Node::ingest(). Fields are a union
/// in spirit: control channels use the boxed-port group, data channels the
/// candidate list.
struct VerifiedFrame {
  Channel channel = Channel::kOffer;
  Disposition disposition = Disposition::kProcess;
  /// Control: the resolved sender id. Data: the frame (forwarding) sender.
  std::uint32_t sender = 0;
  /// Control: sender's host, captured at resolve time so stage B can reply
  /// without re-touching the directory.
  std::uint32_t host = 0;

  // ---- control channels (kOffer, kPullReq, kPushReply) -----------------
  /// The sealed reply/data port from the frame; opened by verify().
  util::Bytes boxed_port;
  /// 32-byte pairwise key copy (pair_key() spans can dangle across stages).
  util::Bytes box_key;
  /// The peer's digest (pull request / push reply); empty for offers.
  Digest digest;
  /// verify()'s verdict: the opened port, or nullopt on a bad/forged box.
  std::optional<std::uint16_t> port;

  // ---- data channels (kPullData, kPushData) ----------------------------
  std::vector<DataCandidate> candidates;
};

/// Frames drained from ONE node, plus where to push them back.
struct NodeSection {
  Node* node = nullptr;
  std::vector<VerifiedFrame> frames;
};

/// The accumulator a runtime carries across co-scheduled nodes: drain into
/// it while holding each node, verify() once while holding none, then
/// ingest each section back under its node's serialization.
class IngressBatch {
 public:
  /// The section for `node`, creating it on first use. The pointer stays
  /// valid until clear() (sections are stable once created).
  NodeSection& section_for(Node& node);

  /// Runs the accumulated crypto: every DataCandidate with needs_verify
  /// through one ed25519_verify_batch (per-signature fallback inside keeps
  /// blame exact), every boxed port through one hmac_sha256_batch-backed
  /// portbox pass. Touches no Node state — callers must NOT hold any node
  /// while in here; that is the point.
  void verify();

  /// Convenience for single-threaded drivers (Cluster, tests, examples):
  /// verify, then ingest every section into its node, then clear. Callers
  /// that interleave their own locking call the pieces.
  void dispatch();

  [[nodiscard]] std::deque<NodeSection>& sections() { return sections_; }
  [[nodiscard]] bool empty() const;
  void clear();

 private:
  // Deque, not vector: section_for hands out references a runtime holds
  // across later section_for calls, so growth must not relocate.
  std::deque<NodeSection> sections_;
};

}  // namespace ingress
}  // namespace drum::core
