// Per-source FIFO ordering on top of Drum's unordered probabilistic
// delivery. Gossip delivers each message at most once but in arbitrary
// order, and a message can be lost outright if it purges everywhere before
// reaching some receiver — so a FIFO layer must both hold back out-of-order
// arrivals and eventually *skip* permanent gaps to avoid head-of-line
// deadlock. Skips are surfaced to the application.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "drum/core/message.hpp"

namespace drum::core {

class FifoOrderer {
 public:
  using DeliverFn = std::function<void(const DataMessage&)>;
  /// Called when a gap is skipped: (source, first_missing, count).
  using GapFn =
      std::function<void(std::uint32_t, std::uint64_t, std::uint64_t)>;

  /// `gap_timeout_rounds`: how long the head-of-line may block on a missing
  /// seqno before the gap is declared lost and skipped.
  FifoOrderer(DeliverFn deliver, GapFn on_gap = nullptr,
              std::uint64_t gap_timeout_rounds = 20);

  /// Feed every raw delivery (any order; duplicates must already be
  /// filtered, as drum::core::Node does).
  void on_delivery(const DataMessage& msg, std::uint64_t round);

  /// Call once per round: expires blocked gaps.
  void on_round(std::uint64_t round);

  /// Messages currently held back (all sources).
  [[nodiscard]] std::size_t held() const;

 private:
  struct SourceState {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, DataMessage> holdback;
    std::uint64_t blocked_since = 0;
    bool blocked = false;
  };

  void drain(std::uint32_t source, SourceState& st);

  DeliverFn deliver_;
  GapFn on_gap_;
  std::uint64_t gap_timeout_;
  std::map<std::uint32_t, SourceState> sources_;
};

}  // namespace drum::core
