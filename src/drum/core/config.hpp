// Configuration of a real protocol node. The defaults reproduce the paper's
// measurement setup (§8): combined fan-out 4 (Drum: 2 push + 2 pull),
// 10-round buffers, at most 80 messages per gossip exchange, and per-
// operation resource bounds. The variant enum selects Drum, the Push/Pull
// baselines, or the §9 ablations.
#pragma once

#include <cstddef>
#include <cstdint>

#include "drum/core/scoring.hpp"

namespace drum::core {

enum class Variant {
  kDrum,              ///< push + pull, separate bounds, random ports
  kPush,              ///< push only
  kPull,              ///< pull only
  kDrumWkPorts,       ///< §9: pull-replies arrive on a well-known port
  kDrumSharedBounds,  ///< §9: one joint bound on all control messages
};

const char* variant_name(Variant v);

struct NodeConfig {
  std::uint32_t id = 0;
  Variant variant = Variant::kDrum;

  /// Total fan-out F; Drum variants use F/2 push + F/2 pull views.
  std::size_t fanout = 4;

  /// Well-known ports this node binds (must match its Peer entry).
  std::uint16_t wk_pull_port = 0;
  std::uint16_t wk_offer_port = 0;
  /// Only used by kDrumWkPorts: fixed pull-reply port.
  std::uint16_t wk_pull_reply_port = 0;

  // ---- resource bounds (all "per round") -------------------------------
  /// Push-offers answered per round (paper: typically |view_push|).
  std::size_t max_offers_per_round = 2;
  /// Sending capacity: pull-requests served + push-replies acted on.
  /// Split equally between the two when both operations are enabled.
  std::size_t send_capacity = 4;
  /// Incoming data datagrams processed per round, split equally between
  /// pull-reply data and push data.
  std::size_t recv_data_capacity = 8;

  // ---- gossip parameters ------------------------------------------------
  std::size_t buffer_rounds = 10;       ///< purge messages after this many rounds
  std::size_t seen_rounds = 40;         ///< dedup memory
  std::size_t max_msgs_per_gossip = 80; ///< cap per exchange (paper §8.2)
  std::size_t port_lifetime_rounds = 3; ///< random sockets retired after this

  // ---- sanity-check limits (anti-amplification on fabricated input) -----
  std::size_t max_digest = 4096;
  std::size_t max_payload = 1024;

  /// Paper §4: "At the end of each round, p discards all unread messages
  /// from its incoming message buffers. This is important, especially in
  /// the presence of DoS attacks." Setting this false keeps the backlog
  /// (FIFO carry-over) — an ablation showing why the discard matters: old
  /// flood datagrams then consume every future round's budgets.
  bool discard_unread = true;

  /// Verify Ed25519 source signatures on reception. Always on in tests and
  /// examples. The high-throughput benches may disable it: the paper's
  /// testbed had 50 machines' worth of CPU, this reproduction has one core,
  /// and verification cost is per-message-constant — orthogonal to the DoS
  /// behaviour under study (documented in EXPERIMENTS.md).
  bool verify_signatures = true;

  /// Peer-scoring + greylist defense layer (DESIGN.md §10). Off by default:
  /// vanilla Drum is the paper's protocol; scoring is the ablatable
  /// extension the adversary zoo evaluates.
  ScoringConfig scoring;

  // Derived helpers -------------------------------------------------------
  [[nodiscard]] bool push_enabled() const { return variant != Variant::kPull; }
  [[nodiscard]] bool pull_enabled() const { return variant != Variant::kPush; }
  [[nodiscard]] std::size_t view_push() const {
    if (!push_enabled()) return 0;
    return variant == Variant::kPush ? fanout : fanout / 2;
  }
  [[nodiscard]] std::size_t view_pull() const {
    if (!pull_enabled()) return 0;
    return variant == Variant::kPull ? fanout : fanout / 2;
  }
  /// Per-round budgets for the five reception channels; see node.cpp.
  [[nodiscard]] std::size_t offer_budget() const {
    return push_enabled() ? max_offers_per_round : 0;
  }
  [[nodiscard]] std::size_t pull_request_budget() const {
    if (!pull_enabled()) return 0;
    return push_enabled() ? send_capacity / 2 : send_capacity;
  }
  [[nodiscard]] std::size_t push_reply_budget() const {
    if (!push_enabled()) return 0;
    return pull_enabled() ? send_capacity / 2 : send_capacity;
  }
  [[nodiscard]] std::size_t pull_data_budget() const {
    if (!pull_enabled()) return 0;
    return push_enabled() ? recv_data_capacity / 2 : recv_data_capacity;
  }
  [[nodiscard]] std::size_t push_data_budget() const {
    if (!push_enabled()) return 0;
    return pull_enabled() ? recv_data_capacity / 2 : recv_data_capacity;
  }
  /// kDrumSharedBounds: the joint control budget replaces the separate
  /// offer / pull-request / push-reply budgets (data stays separate, §9).
  [[nodiscard]] std::size_t shared_control_budget() const {
    return max_offers_per_round + send_capacity;
  }
};

/// Baseline config for a protocol variant with the paper's defaults.
NodeConfig make_node_config(Variant v, std::uint32_t id, std::size_t fanout = 4);

}  // namespace drum::core
