#include "drum/core/groupfile.hpp"

#include <cstdio>
#include <sstream>

#include "drum/net/udp_transport.hpp"
#include "drum/util/bytes.hpp"

namespace drum::core {

namespace {

std::string ipv4_to_string(std::uint32_t host) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (host >> 24) & 0xFF,
                (host >> 16) & 0xFF, (host >> 8) & 0xFF, host & 0xFF);
  return buf;
}

}  // namespace

std::string format_group_file(const std::vector<Peer>& peers) {
  std::ostringstream os;
  os << "# drum group file v1\n"
     << "# id host wk_pull wk_offer sign_pub dh_pub\n";
  for (const auto& p : peers) {
    if (!p.present) continue;
    os << p.id << ' ' << ipv4_to_string(p.host) << ' ' << p.wk_pull_port
       << ' ' << p.wk_offer_port << ' '
       << util::to_hex(util::ByteSpan(p.sign_pub.data(), p.sign_pub.size()))
       << ' '
       << util::to_hex(util::ByteSpan(p.dh_pub.data(), p.dh_pub.size()))
       << '\n';
  }
  return os.str();
}

std::optional<std::vector<Peer>> parse_group_file(const std::string& text,
                                                  std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<std::vector<Peer>> {
    if (error) *error = why;
    return std::nullopt;
  };
  std::vector<Peer> entries;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint32_t id;
    std::string host_s, sign_hex, dh_hex;
    std::uint32_t pull, offer;
    if (!(ls >> id)) continue;  // blank / comment-only line
    if (!(ls >> host_s >> pull >> offer >> sign_hex >> dh_hex)) {
      return fail("line " + std::to_string(line_no) + ": missing fields");
    }
    if (pull > 65535 || offer > 65535) {
      return fail("line " + std::to_string(line_no) + ": bad port");
    }
    Peer p;
    p.id = id;
    p.host = net::parse_ipv4(host_s.c_str());
    if (p.host == 0) {
      return fail("line " + std::to_string(line_no) + ": bad host");
    }
    p.wk_pull_port = static_cast<std::uint16_t>(pull);
    p.wk_offer_port = static_cast<std::uint16_t>(offer);
    auto sign = util::from_hex(sign_hex);
    auto dh = util::from_hex(dh_hex);
    if (!sign || sign->size() != p.sign_pub.size() || !dh ||
        dh->size() != p.dh_pub.size()) {
      return fail("line " + std::to_string(line_no) + ": bad key");
    }
    std::copy(sign->begin(), sign->end(), p.sign_pub.begin());
    std::copy(dh->begin(), dh->end(), p.dh_pub.begin());
    p.present = true;
    entries.push_back(p);
  }
  if (entries.empty()) return fail("no members");
  std::uint32_t max_id = 0;
  for (const auto& p : entries) max_id = std::max(max_id, p.id);
  std::vector<Peer> dir(max_id + 1);
  for (std::uint32_t i = 0; i <= max_id; ++i) {
    dir[i].id = i;
    dir[i].present = false;
  }
  for (const auto& p : entries) {
    if (dir[p.id].present) {
      return fail("duplicate id " + std::to_string(p.id));
    }
    dir[p.id] = p;
  }
  return dir;
}

}  // namespace drum::core
