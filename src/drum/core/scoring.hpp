// GossipSub-style peer scoring + greylist — a protocol EXTENSION layered on
// Drum's per-operation resource bounds (DESIGN.md §10; cf. the libp2p
// GossipSub v1.1 peer-scoring design analysed in arXiv 2212.05197 /
// 2311.08859). Drum's bounds cap what an attacker can burn per round;
// scoring additionally identifies WHICH authenticated peer is burning it and
// takes that peer's share away.
//
// Score inputs, all attributable to a claimed sender id:
//  * decode errors     — malformed frames / failed port-boxes naming the
//                        peer. Cheap to frame (anyone can claim any sender on
//                        a well-known port), so the penalty weight is low.
//  * overuse           — budget-exhaustion attribution: valid control frames
//                        beyond a per-peer per-round allowance. A valid
//                        port-box proves possession of the pair key, so this
//                        signal cannot be framed by an off-path spoofer.
//  * pull futility     — the useless-pull ratio from the requester's side:
//                        a peer whose answers to our pull requests never
//                        arrive (black hole / colluding eclipse member) is
//                        penalized after `futility_streak` consecutive
//                        unanswered pulls.
//
// Scores decay multiplicatively toward 0 every round. A peer whose score
// falls below `greylist_threshold` is greylisted for `greylist_rounds`;
// re-offending within `strike_window` of release doubles the duration
// (capped), giving release/re-offend hysteresis. Greylisted peers lose their
// share of the bounded reception budgets (their frames are dropped without
// consuming budget) and are excluded from gossip view selection.
//
// One PeerScoreTable instance scores the peers of ONE node. The same class
// runs inside the Monte-Carlo simulator (one table per simulated correct
// process) and inside the live core::Node, which is what makes the
// sim-vs-live ablation honest. All bookkeeping is O(1) per event with lazy
// decay/expiry — nothing scans the peer set per round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace drum::core {

struct ScoringConfig {
  bool enabled = false;

  /// Per-round multiplicative decay toward 0. Slow by design: misbehavior
  /// signals for any single peer accrue at the pair interaction rate, which
  /// is O(fanout/n) per round.
  double decay = 0.995;

  /// Penalty per malformed frame / failed port-box naming the peer. Low:
  /// this signal can be framed by a spoofer (see header comment).
  double decode_error_penalty = 0.5;

  /// Valid control frames accepted from one peer per round before each
  /// further frame counts as overuse. Honest peers send at most one pull
  /// request plus one push offer to a given target per round, so 2 is the
  /// exact honest ceiling.
  std::uint32_t per_peer_allowance = 2;
  /// Penalty per control frame beyond the allowance (budget-exhaustion
  /// attribution).
  double overuse_penalty = 2.0;

  /// Consecutive unanswered pull requests to a peer before one futility
  /// penalty is charged (and the streak resets). Correct nodes ack every
  /// valid request that reaches them (the empty pull-reply extension), so
  /// an honest pull only goes unanswered on link loss; 3 makes an unlucky
  /// loss streak vanishingly rare while a true black hole still fires on
  /// every third pull.
  std::uint32_t futility_streak = 3;
  /// Below half the greylist magnitude on purpose: no two futility events,
  /// however closely spaced, can greylist on their own — it takes three
  /// inside the decay window, which honest loss rates never produce.
  double futility_penalty = 3.0;

  /// Score at or below which the peer is greylisted.
  double greylist_threshold = -6.0;
  /// Base greylist duration in rounds.
  std::uint32_t greylist_rounds = 64;
  /// A re-offense within this many rounds of release doubles the duration.
  std::uint32_t strike_window = 256;
  /// Cap on doubling: duration = greylist_rounds << min(strikes, this).
  std::uint32_t max_strike_shift = 5;

  /// Live-node CPU guard: with scoring on, a control socket is drained past
  /// its budget — greylisted frames are dropped without consuming it, and
  /// over-budget frames are decoded for attribution (offers) or the empty
  /// ack (pull requests) — so one poll may read up to
  /// budget * read_multiplier datagrams per control channel per round.
  std::uint32_t read_multiplier = 8;
};

class PeerScoreTable {
 public:
  PeerScoreTable() = default;

  /// Resets to `n_peers` peers, all at score 0, not greylisted. `self` is
  /// this node's own id — events naming it are ignored and it is never
  /// greylisted.
  void reset(std::size_t n_peers, const ScoringConfig& cfg,
             std::uint32_t self);

  /// Grows the table (certificate-admitted peers). Existing state is kept.
  void resize(std::size_t n_peers);

  /// Advances the local round clock. Decay and greylist expiry are applied
  /// lazily relative to this.
  void begin_round(std::uint64_t round);

  // ---- inbound events (p = claimed sender id) ---------------------------
  void on_decode_error(std::uint32_t p);
  /// A valid (box-authenticated) control frame from p; counts toward the
  /// per-round allowance and charges overuse_penalty beyond it.
  void on_control_arrival(std::uint32_t p);

  // ---- outbound pull bookkeeping ----------------------------------------
  /// The caller decides per pull request whether it was answered (any
  /// response activity from p this round) and reports the outcome.
  void on_pull_outcome(std::uint32_t p, bool answered);

  // ---- queries ----------------------------------------------------------
  /// True while p is greylisted. Applies lazy release (and records the
  /// release round for hysteresis), so callers need no explicit sweep.
  [[nodiscard]] bool greylisted(std::uint32_t p);
  /// Current (decayed) score of p.
  [[nodiscard]] double score(std::uint32_t p);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t round() const { return round_; }

  // ---- stats ------------------------------------------------------------
  [[nodiscard]] std::uint64_t greylist_entries() const {
    return n_greylist_entries_;
  }
  [[nodiscard]] std::uint64_t penalties_decode() const { return n_decode_; }
  [[nodiscard]] std::uint64_t penalties_overuse() const { return n_overuse_; }
  [[nodiscard]] std::uint64_t penalties_futility() const {
    return n_futility_;
  }
  /// O(n) scan; call at reporting points, not per event.
  [[nodiscard]] std::size_t currently_greylisted();

  /// drum::check invariants: self never greylisted, lazily-released entries
  /// consistent. O(n); call from checked builds only.
  void check_invariants() const;

 private:
  struct Entry {
    float score = 0.0F;
    std::uint32_t score_round = 0;   // round `score` was last brought to
    std::uint32_t ctrl_round = 0;    // round ctrl_count refers to
    std::uint16_t ctrl_count = 0;    // valid control arrivals this round
    std::uint8_t streak = 0;         // consecutive unanswered pulls
    std::uint8_t strikes = 0;        // greylist re-offense count
    std::uint32_t grey_until = 0;    // 0 = not greylisted (round bound excl.)
    std::uint32_t last_release = 0;  // round of last greylist release
  };

  /// Brings e.score to the current round (lazy decay).
  void settle(Entry& e);
  void penalize(std::uint32_t p, double weight);

  ScoringConfig cfg_;
  std::uint32_t self_ = 0;
  std::uint64_t round_ = 0;
  std::vector<Entry> entries_;
  std::vector<float> decay_pow_;  // decay^i for i in [0, horizon)

  std::uint64_t n_greylist_entries_ = 0;
  std::uint64_t n_decode_ = 0;
  std::uint64_t n_overuse_ = 0;
  std::uint64_t n_futility_ = 0;
};

}  // namespace drum::core
