#include "drum/core/buffer.hpp"

#include <algorithm>

#include "drum/check/check.hpp"

namespace drum::core {

MessageBuffer::MessageBuffer(std::size_t buffer_rounds,
                             std::size_t seen_rounds)
    : buffer_rounds_(buffer_rounds),
      seen_rounds_(std::max(seen_rounds, buffer_rounds)) {}

bool MessageBuffer::insert(DataMessage msg, std::uint64_t current_round) {
  if (seen(msg.id)) return false;
  seen_[msg.id] = current_round + seen_rounds_;
  MessageId id = msg.id;
  buffer_.emplace(id, Entry{std::move(msg), current_round + buffer_rounds_});
  return true;
}

bool MessageBuffer::seen(const MessageId& id) const {
  return seen_.contains(id);
}

void MessageBuffer::on_round(std::uint64_t current_round) {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->second.expires <= current_round) {
      it = buffer_.erase(it);
    } else {
      ++it->second.msg.round_counter;
      ++it;
    }
  }
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second <= current_round) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
}

void MessageBuffer::check_invariants(
    [[maybe_unused]] std::uint64_t current_round) const {
#if DRUM_CHECKED
  DRUM_INVARIANT(digest().size() == size(),
                 "digest/size mismatch: ", digest().size(), " vs ", size());
  for (const auto& [id, entry] : buffer_) {
    DRUM_INVARIANT(seen_.contains(id),
                   "buffered message missing from seen set: source ",
                   id.source, " seqno ", id.seqno);
    DRUM_INVARIANT(entry.expires > current_round,
                   "expired entry survived purge: expires ", entry.expires,
                   " round ", current_round);
    DRUM_INVARIANT(entry.msg.id == id, "entry keyed under wrong id");
  }
  for (const auto& [id, expires] : seen_) {
    DRUM_INVARIANT(expires > current_round,
                   "expired seen id survived purge: expires ", expires,
                   " round ", current_round);
  }
#endif
}

Digest MessageBuffer::digest() const {
  Digest d;
  d.reserve(buffer_.size());
  for (const auto& [id, entry] : buffer_) d.push_back(id);
  return d;
}

std::vector<const DataMessage*> MessageBuffer::select_missing(
    const Digest& peer_digest, std::size_t max_count, util::Rng& rng) {
  // Stamp the entries the peer already has with a fresh epoch (one hash
  // lookup per digest id in the existing buffer index), then collect the
  // unstamped rest — no temporary digest set, no payload copies, no
  // allocation beyond the reused scratch and the returned pointer vector.
  ++select_epoch_;
  for (const auto& id : peer_digest) {
    auto it = buffer_.find(id);
    if (it != buffer_.end()) it->second.mark = select_epoch_;
  }
  std::vector<const DataMessage*>& candidates = select_scratch_;
  candidates.clear();
  candidates.reserve(buffer_.size());
  for (auto& [id, entry] : buffer_) {
    if (entry.mark != select_epoch_) candidates.push_back(&entry.msg);
  }
  // Random subset (partial Fisher-Yates over the scratch's head).
  std::size_t take = std::min(max_count, candidates.size());
  for (std::size_t i = 0; i < take; ++i) {
    std::size_t j = i + rng.below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  return {candidates.begin(),
          candidates.begin() + static_cast<std::ptrdiff_t>(take)};
}

}  // namespace drum::core
