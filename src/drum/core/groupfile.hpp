// Group files: the on-disk peer directory for real multi-process
// deployments (examples/drum_node). Plain text, one member per line:
//
//   # comments and blank lines allowed
//   <id> <host-ipv4> <wk_pull_port> <wk_offer_port> <sign_pub_hex> <dh_pub_hex>
//
// The file carries only PUBLIC material; secret keys live in separate
// per-node key files (crypto::Identity::serialize_secret).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "drum/core/node.hpp"

namespace drum::core {

/// Renders a directory as a group file.
std::string format_group_file(const std::vector<Peer>& peers);

/// Parses a group file into an id-indexed directory (holes marked
/// !present). Returns nullopt on any malformed line; `error` (optional)
/// receives a human-readable reason.
std::optional<std::vector<Peer>> parse_group_file(const std::string& text,
                                                  std::string* error = nullptr);

}  // namespace drum::core
