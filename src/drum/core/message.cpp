#include "drum/core/message.hpp"

namespace drum::core {

namespace {

void write_digest(util::ByteWriter& w, const Digest& d) {
  w.u32(static_cast<std::uint32_t>(d.size()));
  for (const auto& id : d) {
    w.u32(id.source);
    w.u64(id.seqno);
  }
}

Digest read_digest(util::ByteReader& r, std::size_t max_digest) {
  std::uint32_t count = r.u32();
  if (count > max_digest) throw util::DecodeError("digest too large");
  Digest d;
  d.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MessageId id;
    id.source = r.u32();
    id.seqno = r.u64();
    d.push_back(id);
  }
  return d;
}

void write_message(util::ByteWriter& w, const DataMessage& m) {
  w.u32(m.id.source);
  w.u64(m.id.seqno);
  w.u32(m.round_counter);
  w.bytes(util::ByteSpan(m.payload));
  w.bytes(util::ByteSpan(m.cert));
  w.raw(util::ByteSpan(m.signature.data(), m.signature.size()));
}

DataMessage read_message(util::ByteReader& r, std::size_t max_payload) {
  DataMessage m;
  m.id.source = r.u32();
  m.id.seqno = r.u64();
  m.round_counter = r.u32();
  m.payload = r.bytes();
  if (m.payload.size() > max_payload) {
    throw util::DecodeError("payload too large");
  }
  m.cert = r.bytes();
  if (m.cert.size() > 1024) throw util::DecodeError("certificate too large");
  auto sig = r.raw(m.signature.size());
  std::copy(sig.begin(), sig.end(), m.signature.begin());
  return m;
}

std::vector<DataMessage> read_messages(util::ByteReader& r,
                                       std::size_t max_messages,
                                       std::size_t max_payload) {
  std::uint32_t count = r.u32();
  if (count > max_messages) throw util::DecodeError("too many data messages");
  std::vector<DataMessage> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(read_message(r, max_payload));
  }
  return out;
}

util::ByteReader begin_decode(util::ByteSpan wire, MsgType expected) {
  util::ByteReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(expected)) {
    throw util::DecodeError("unexpected message type");
  }
  return r;
}

}  // namespace

util::Bytes DataMessage::signed_bytes() const {
  util::ByteWriter w;
  w.u32(id.source);
  w.u64(id.seqno);
  w.bytes(util::ByteSpan(payload));
  return w.take();
}

util::Bytes encode(const PullRequest& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPullRequest));
  w.u32(m.sender);
  write_digest(w, m.digest);
  w.bytes(util::ByteSpan(m.boxed_reply_port));
  w.bytes(util::ByteSpan(m.cert));
  return w.take();
}

util::Bytes encode(const PullReply& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPullReply));
  w.u32(m.sender);
  w.u32(static_cast<std::uint32_t>(m.messages.size()));
  for (const auto& msg : m.messages) write_message(w, msg);
  return w.take();
}

util::Bytes encode(const PushOffer& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPushOffer));
  w.u32(m.sender);
  w.bytes(util::ByteSpan(m.boxed_reply_port));
  w.bytes(util::ByteSpan(m.cert));
  return w.take();
}

util::Bytes encode(const PushReply& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPushReply));
  w.u32(m.sender);
  write_digest(w, m.digest);
  w.bytes(util::ByteSpan(m.boxed_data_port));
  return w.take();
}

util::Bytes encode(const PushData& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPushData));
  w.u32(m.sender);
  w.u32(static_cast<std::uint32_t>(m.messages.size()));
  for (const auto& msg : m.messages) write_message(w, msg);
  return w.take();
}

namespace {

util::Bytes encode_message_list(MsgType type, std::uint32_t sender,
                                const std::vector<const DataMessage*>& msgs) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(sender);
  w.u32(static_cast<std::uint32_t>(msgs.size()));
  for (const auto* msg : msgs) write_message(w, *msg);
  return w.take();
}

}  // namespace

util::Bytes encode_pull_reply(
    std::uint32_t sender, const std::vector<const DataMessage*>& messages) {
  return encode_message_list(MsgType::kPullReply, sender, messages);
}

util::Bytes encode_push_data(
    std::uint32_t sender, const std::vector<const DataMessage*>& messages) {
  return encode_message_list(MsgType::kPushData, sender, messages);
}

MsgType peek_type(util::ByteSpan wire) {
  if (wire.empty()) throw util::DecodeError("empty datagram");
  return static_cast<MsgType>(wire[0]);
}

std::optional<std::uint32_t> peek_sender(util::ByteSpan wire) {
  if (wire.size() < 5) return std::nullopt;
  const auto type = wire[0];
  if (type < static_cast<std::uint8_t>(MsgType::kPullRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kPushData)) {
    return std::nullopt;
  }
  util::ByteReader r(wire);
  r.u8();
  return r.u32();
}

PullRequest decode_pull_request(util::ByteSpan wire, std::size_t max_digest) {
  auto r = begin_decode(wire, MsgType::kPullRequest);
  PullRequest m;
  m.sender = r.u32();
  m.digest = read_digest(r, max_digest);
  m.boxed_reply_port = r.bytes();
  m.cert = r.bytes();
  if (m.cert.size() > 1024) throw util::DecodeError("certificate too large");
  r.expect_done();
  return m;
}

PullReply decode_pull_reply(util::ByteSpan wire, std::size_t max_messages,
                            std::size_t max_payload) {
  auto r = begin_decode(wire, MsgType::kPullReply);
  PullReply m;
  m.sender = r.u32();
  m.messages = read_messages(r, max_messages, max_payload);
  r.expect_done();
  return m;
}

PushOffer decode_push_offer(util::ByteSpan wire) {
  auto r = begin_decode(wire, MsgType::kPushOffer);
  PushOffer m;
  m.sender = r.u32();
  m.boxed_reply_port = r.bytes();
  m.cert = r.bytes();
  if (m.cert.size() > 1024) throw util::DecodeError("certificate too large");
  r.expect_done();
  return m;
}

PushReply decode_push_reply(util::ByteSpan wire, std::size_t max_digest) {
  auto r = begin_decode(wire, MsgType::kPushReply);
  PushReply m;
  m.sender = r.u32();
  m.digest = read_digest(r, max_digest);
  m.boxed_data_port = r.bytes();
  r.expect_done();
  return m;
}

PushData decode_push_data(util::ByteSpan wire, std::size_t max_messages,
                          std::size_t max_payload) {
  auto r = begin_decode(wire, MsgType::kPushData);
  PushData m;
  m.sender = r.u32();
  m.messages = read_messages(r, max_messages, max_payload);
  r.expect_done();
  return m;
}

}  // namespace drum::core
