// The real Drum protocol node (paper §4, §8) and its variants.
//
// A Node is a passive, single-threaded object driven by its runner:
//   drain_ingress() + ingest()
//               — the two-stage ingress pipeline (DESIGN.md §12): stage A
//                 drains sockets into an ingress::IngressBatch within
//                 per-round, per-channel budgets (excess stays queued and is
//                 discarded at the end of the round, exactly as the paper
//                 prescribes); the runner batch-verifies, then stage B
//                 applies the checked frames;
//   on_round()  — the local gossip round tick: purge + age the buffer,
//                 flush unread queues, rotate random ports, reset budgets,
//                 then send this round's pull-requests and push-offers;
//   multicast() — originate a signed application message.
//
// Rounds are *local*: each runner jitters its tick, so rounds are
// unsynchronized across nodes (paper §8). The five reception channels and
// their budgets:
//
//   channel            port            budget (defaults, Drum)
//   push-offer         well-known      |view_push| (2)
//   pull-request       well-known      send_capacity/2 (2)
//   push-reply         random, boxed   send_capacity/2 (2)
//   pull-reply data    random, boxed   recv_data_capacity/2 (4)
//   push data          random, boxed   recv_data_capacity/2 (4)
//
// kDrumSharedBounds merges the three control budgets into one joint budget
// (§9); kDrumWkPorts replaces the random pull-reply port with a fixed,
// attackable one (§9).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "drum/core/buffer.hpp"
#include "drum/core/config.hpp"
#include "drum/core/ingress.hpp"
#include "drum/core/message.hpp"
#include "drum/core/scoring.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/net/transport.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/obs/trace.hpp"
#include "drum/util/rng.hpp"

namespace drum::core {

/// Directory entry for a group member: identity keys plus the well-known
/// ports an attacker also knows. Produced by the membership layer (static in
/// §8's experiments; dynamic in drum::membership).
struct Peer {
  std::uint32_t id = 0;
  std::uint32_t host = 0;
  std::uint16_t wk_pull_port = 0;
  std::uint16_t wk_offer_port = 0;
  std::uint16_t wk_pull_reply_port = 0;  ///< kDrumWkPorts only
  crypto::Ed25519PublicKey sign_pub{};
  crypto::X25519Key dh_pub{};
  /// False marks a hole in the directory (left/expelled/suspected member).
  /// Absent members are never gossiped with and their messages are dropped.
  bool present = true;
};

class Node {
 public:
  struct Delivery {
    DataMessage msg;
    /// The message's round counter at reception — its propagation time in
    /// rounds (paper §8.1).
    std::uint32_t hops = 0;
  };
  using DeliverFn = std::function<void(const Delivery&)>;

  /// Immutable shared peer directory. A 10k-node swarm hands every node the
  /// SAME directory object (one copy instead of n, ~n² Peer entries saved);
  /// nodes never mutate it in place — directory changes (certificate
  /// admission, update_peers) swap in a fresh copy, copy-on-write.
  using PeerDirectory = std::shared_ptr<const std::vector<Peer>>;

  /// `peers` must contain one entry per group member including this node
  /// (index == id). Binds the node's well-known ports on `transport`
  /// immediately; throws std::runtime_error if they are taken.
  Node(NodeConfig cfg, crypto::Identity identity, std::vector<Peer> peers,
       net::Transport& transport, std::uint64_t rng_seed,
       DeliverFn on_deliver);
  /// Shared-directory overload: `peers` must be non-null and is never
  /// mutated through this handle. Prefer this in large swarms.
  Node(NodeConfig cfg, crypto::Identity identity, PeerDirectory peers,
       net::Transport& transport, std::uint64_t rng_seed,
       DeliverFn on_deliver);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Ingress stage A (DESIGN.md §12): drains this node's sockets into
  /// `batch` with recv_batch, charging reception budgets and greylist
  /// peek-drops at read time exactly as the one-at-a-time loop did, and
  /// decoding every admitted datagram into typed frames. No signature or
  /// port-box check
  /// happens here — the caller runs batch.verify() (ideally after draining
  /// several co-scheduled nodes) and then pushes the checked frames back
  /// through ingest(). Must be serialized with every other entry into this
  /// node.
  void drain_ingress(ingress::IngressBatch& batch);

  /// Ingress stage B: applies crypto-checked frames — scoring, greylist,
  /// serving, dedupe, delivery — without re-verifying anything. `frames`
  /// must come from this node's own drain_ingress() section, after
  /// IngressBatch::verify() filled in the verdicts, in drain order. Must be
  /// serialized with every other entry into this node.
  void ingest(std::span<ingress::VerifiedFrame> frames);

  /// Local gossip round tick.
  void on_round();

  /// Originates a signed multicast message (this node is its source).
  /// Returns the assigned message id.
  MessageId multicast(util::ByteSpan payload);

  /// Replaces the peer directory (dynamic membership, paper §10). The new
  /// directory must still be indexed by id (use Peer::present = false for
  /// holes) and must keep this node's own entry present.
  void update_peers(std::vector<Peer> peers);

  /// Derives the X25519 pair key for every present peer now instead of on
  /// first contact. Drum assumes pairwise keys are established by the
  /// membership layer at join time (paper §2); without prewarming, the lazy
  /// cache pays ~n scalar multiplications during the first rounds of
  /// traffic — under an attack benchmark that books bootstrap CPU to the
  /// attack window. Harnesses call this once after construction.
  void prewarm_pair_keys();

  /// §10 certificate piggybacking. `own_cert` (an encoded, CA-signed
  /// certificate) is attached to every message this node originates and
  /// travels with forwarded copies. `validator` is consulted for data
  /// messages from sources missing from the directory: given the attached
  /// certificate bytes it returns the authenticated Peer (or nullopt); on
  /// success the node admits the source into its directory and processes
  /// the message normally. The membership layer installs both.
  using CertValidator =
      std::function<std::optional<Peer>(util::ByteSpan cert)>;
  void set_own_certificate(util::Bytes own_cert);
  void set_cert_validator(CertValidator validator);

  /// Socket lifecycle hook for readiness-driven runtimes (DESIGN.md §8): a
  /// reactor must learn about every socket this node binds — including the
  /// per-round random-port rotation — to (un)register it with its
  /// EventLoop. Called as hook(socket, true) right after a socket is bound
  /// and hook(socket, false) right before it is destroyed. Installing a
  /// hook immediately replays all currently bound sockets as additions;
  /// installing nullptr detaches without replay. The hook runs on whatever
  /// thread drives the node (constructor thread at install, the runtime's
  /// worker during on_round rotation) — never concurrently with itself,
  /// because the node itself is single-threaded.
  using SocketHook = std::function<void(net::Socket&, bool added)>;
  void set_socket_hook(SocketHook hook);

  /// The node's full metric store: activity counters under "node.*"
  /// (rounds, delivered, duplicates, datagrams_read, flushed_unread,
  /// decode_errors, box_failures, sig_failures, unknown_sender,
  /// certs_admitted, pull_requests_served, push_offers_answered,
  /// push_replies_acted) plus per-channel telemetry under "chan.<name>.*"
  /// (read, flushed_unread, decode_errors, budget_exhausted counters and a
  /// per-round budget_used histogram) and the "node.poll.drained"
  /// queue-drain-depth histogram. Read with the typed accessors
  /// (obs::MetricsRegistry::counter_value & friends).
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  /// Attaches (or detaches, with nullptr) a protocol-event trace ring. The
  /// ring must outlive the node; null means no tracing (the default) and
  /// costs one predictable branch per event site.
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }
  /// The peer-scoring table (meaningful only when cfg.scoring.enabled;
  /// empty otherwise). Exposed for tests and harness reporting; the node
  /// itself owns and drives it.
  [[nodiscard]] PeerScoreTable& score_table() { return score_; }
  [[nodiscard]] bool scoring_enabled() const { return cfg_.scoring.enabled; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] bool has_message(const MessageId& id) const {
    return buffer_.seen(id);
  }

  /// drum::check invariants over the whole node: per-channel budget
  /// accounting never exceeds the configured bounds, the peer directory
  /// stays indexed by id with our own entry present, well-known sockets
  /// stay bound (random ones within their lifetime), and the message
  /// buffer's digest/size/seen coherence holds. Called automatically at the
  /// end of every on_round() in checked builds; no-op in Release.
  void check_invariants() const;

 private:
  struct BoundSocket {
    std::unique_ptr<net::Socket> sock;
    Channel channel;
    std::uint64_t created_round = 0;
    bool well_known = false;
  };

  /// One full local ingress cycle: drain → verify → ingest on a private
  /// batch. on_round()'s final processing pass for the ending round.
  void poll_cycle();

  /// Stage-A decode: parses one budget-admitted datagram into typed frames
  /// appended to `out`. Throws util::DecodeError on malformed wire bytes
  /// (the caller charges the blame). `disposition` carries the over-budget
  /// ack-only / score-only marking for the scored control channels.
  void parse_into(Channel channel, const net::Datagram& dgram,
                  ingress::Disposition disposition,
                  std::vector<ingress::VerifiedFrame>& out);

  // Stage-B appliers — the old handle_* bodies minus decode and crypto,
  // which stages A and verify() already did.
  /// Over-budget requests (Disposition::kAckOnly) are scored and answered
  /// with the constant-size empty ack, never served — bound overflow at a
  /// busy correct node is not misbehavior, and the requester's futility
  /// signal stays clean.
  void apply_pull_request(const ingress::VerifiedFrame& f);
  /// Over-budget offers (Disposition::kScoreOnly) are scored for
  /// attribution (the simulator's receiver sees every arrival pre-bound;
  /// this is the live equivalent, capped by the read multiplier) but never
  /// answered.
  void apply_push_offer(const ingress::VerifiedFrame& f);
  void apply_push_reply(const ingress::VerifiedFrame& f);
  void apply_data(ingress::VerifiedFrame& f);

  bool budget_available(Channel c) const;
  /// How many more datagrams this channel may read this round — the
  /// admissible recv_batch window for stage A.
  std::size_t budget_remaining(Channel c) const;
  void consume_budget(Channel c);
  std::size_t channel_budget(Channel c) const;
  std::size_t budget_used(Channel c) const;

  void init_metrics();
  void record_round_budgets();
  void trace(obs::EventKind kind, std::uint32_t a = 0, std::uint32_t b = 0) {
    if (trace_) trace_->record(cfg_.id, round_, kind, a, b);
  }

  const Peer* find_peer(std::uint32_t id) const;
  const Peer* resolve_sender(std::uint32_t id, const util::Bytes& cert);
  util::ByteSpan pair_key(std::uint32_t peer_id);
  void rotate_random_ports();
  void send_gossip();

  /// Stage one outgoing datagram for the current cycle; flushed as a single
  /// Socket::send_many scatter call (one network lock / one sendmmsg for
  /// the whole gossip fan-out) by flush_egress() at the end of ingest() and
  /// send_gossip().
  void queue_send(const net::Address& to, util::Bytes&& payload);
  void flush_egress();

  /// Read access to the directory.
  [[nodiscard]] const std::vector<Peer>& dir() const { return *peers_; }
  /// Copy-on-write access: clones the directory (even if notionally unique —
  /// directory changes are rare and cheap relative to the crypto they
  /// accompany), for the caller to mutate and then install via set_dir().
  [[nodiscard]] std::vector<Peer> dir_mutable() const { return *peers_; }
  void set_dir(std::vector<Peer>&& d) {
    peers_ = std::make_shared<const std::vector<Peer>>(std::move(d));
  }

  NodeConfig cfg_;
  crypto::Identity identity_;
  /// Never null. Shared (possibly by every node in a swarm) and immutable;
  /// mutations go through a local copy + pointer swap (see dir_mutable()).
  PeerDirectory peers_;
  net::Transport& transport_;
  util::Rng rng_;
  DeliverFn on_deliver_;

  MessageBuffer buffer_;
  std::uint64_t round_ = 0;
  std::uint64_t next_seqno_ = 0;

  // Round-state machine legality (drum::check): a Node is single-threaded
  // and neither the ingress stages nor on_round() may re-enter — a delivery
  // callback that drives the same node again would corrupt budgets
  // mid-flight.
  // multicast() from a callback is legal. Maintained unconditionally
  // (two bools), asserted only in checked builds.
  bool in_poll_ = false;
  bool in_round_ = false;
  /// Which thread is currently inside the node (default id = nobody).
  /// The node has no mutex on purpose — serialization is the *runtime's*
  /// job (ReactorRuntime's per-node st.mu, NodeRunner's single thread) —
  /// so this guard turns a broken runtime contract into a loud checked-
  /// build failure instead of silent state corruption. Same-thread nesting
  /// is legal (multicast from a delivery callback); cross-thread overlap
  /// never is. See EntryGuard in node.cpp.
  std::atomic<std::thread::id> entry_owner_{};

  std::vector<BoundSocket> sockets_;  // well-known first, then rotating
  std::uint16_t cur_pull_reply_port_ = 0;
  std::uint16_t cur_push_reply_port_ = 0;
  std::uint16_t cur_push_data_port_ = 0;

  // Per-round budget usage.
  std::unordered_map<int, std::size_t> used_;
  std::size_t shared_control_used_ = 0;

  std::unordered_map<std::uint32_t, util::Bytes> pair_keys_;
  util::Bytes own_cert_;

  /// Egress staging buffer (queue_send/flush_egress). Member, not a local,
  /// so its capacity survives across cycles instead of reallocating every
  /// round.
  std::vector<std::pair<net::Address, util::Bytes>> egress_;

  // Peer-scoring layer (cfg_.scoring.enabled; DESIGN.md §10). The table
  // scores peers from attributable events; pending_pulls_ tracks this
  // round's outgoing pull requests for the futility signal (resolved at the
  // next on_round()).
  PeerScoreTable score_;
  std::vector<std::pair<std::uint32_t, bool>> pending_pulls_;
  CertValidator cert_validator_;
  SocketHook socket_hook_;

  // Observability. The registry owns all counters/histograms; the structs
  // below cache handles resolved once in init_metrics() so the hot path
  // never does a name lookup.
  obs::MetricsRegistry registry_;
  obs::TraceRing* trace_ = nullptr;
  struct StatCounters {
    obs::Counter* rounds = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* duplicates = nullptr;
    obs::Counter* datagrams_read = nullptr;
    obs::Counter* flushed_unread = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* box_failures = nullptr;
    obs::Counter* sig_failures = nullptr;
    obs::Counter* unknown_sender = nullptr;
    obs::Counter* certs_admitted = nullptr;
    obs::Counter* pull_requests_served = nullptr;
    obs::Counter* push_offers_answered = nullptr;
    obs::Counter* push_replies_acted = nullptr;
    /// Scoring layer (registered only when cfg.scoring.enabled):
    /// frames from greylisted peers dropped before consuming budget.
    obs::Counter* score_greylist_drops = nullptr;
    /// valid pull requests read past the budget and answered with an empty
    /// ack instead of data (futility-signal hygiene).
    obs::Counter* score_overflow_acks = nullptr;
  } c_;
  /// Scoring gauges, refreshed each on_round(): peers currently greylisted,
  /// cumulative greylist entries, and per-signal penalty totals.
  obs::Gauge* g_score_greylisted_ = nullptr;
  obs::Gauge* g_score_entries_ = nullptr;
  obs::Gauge* g_score_pen_decode_ = nullptr;
  obs::Gauge* g_score_pen_overuse_ = nullptr;
  obs::Gauge* g_score_pen_futility_ = nullptr;
  struct ChannelMetrics {
    obs::Counter* read = nullptr;
    obs::Counter* flushed_unread = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* budget_exhausted = nullptr;
    obs::Histogram* budget_used = nullptr;
  };
  ChannelMetrics chan_[5];
  /// kDrumSharedBounds only: the joint control budget's telemetry.
  ChannelMetrics shared_control_;
  obs::Histogram* h_poll_drained_ = nullptr;
};

}  // namespace drum::core
