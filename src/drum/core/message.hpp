// Wire formats of the real Drum protocol (paper §4):
//
//   PullRequest  -> target's well-known pull port:
//                   digest + encrypted random port awaiting the reply
//   PullReply    -> requester's (decrypted) random port: data messages
//   PushOffer    -> target's well-known offer port:
//                   encrypted random port awaiting the push-reply
//   PushReply    -> offerer's random port: digest + encrypted random data port
//   PushData     -> target's (decrypted) random data port: data messages
//
// Every data message is signed by its source (Ed25519) over
// (source, seqno, payload); the per-hop round counter used for latency
// accounting (paper §8.1) is *outside* the signature because every holder
// increments it each round.
//
// All encode/decode is little-endian via drum::util::ByteWriter/Reader;
// decode throws util::DecodeError on malformed input (fabricated packets do
// this all the time — the node counts and drops them).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "drum/crypto/ed25519.hpp"
#include "drum/util/bytes.hpp"

namespace drum::core {

/// Globally unique message identity: (source id, per-source sequence number).
struct MessageId {
  std::uint32_t source = 0;
  std::uint64_t seqno = 0;

  auto operator<=>(const MessageId&) const = default;
};

struct MessageIdHash {
  std::size_t operator()(const MessageId& id) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.source) << 40) ^ id.seqno);
  }
};

/// An application multicast message as carried on the wire.
struct DataMessage {
  MessageId id;
  /// Paper §8.1 round counter: 0 at creation, incremented once per local
  /// round by every process holding the message; receivers log it as the
  /// message's propagation time in rounds.
  std::uint32_t round_counter = 0;
  util::Bytes payload;
  /// Paper §10 certificate piggybacking: optionally, the source's CA-signed
  /// certificate rides along with the message (empty = none), letting
  /// receivers with incomplete membership databases authenticate unknown
  /// sources. Self-authenticating (CA signature inside), so it is outside
  /// the source's own signature and travels with every forwarded copy.
  util::Bytes cert;
  crypto::Ed25519Signature signature{};

  /// The bytes the source signs (excludes round_counter and cert).
  [[nodiscard]] util::Bytes signed_bytes() const;
};

using Digest = std::vector<MessageId>;

enum class MsgType : std::uint8_t {
  kPullRequest = 1,
  kPullReply = 2,
  kPushOffer = 3,
  kPushReply = 4,
  kPushData = 5,
};

struct PullRequest {
  std::uint32_t sender = 0;
  Digest digest;
  util::Bytes boxed_reply_port;  ///< portbox under the pair key
  util::Bytes cert;              ///< §10 piggybacked certificate (optional)
};

struct PullReply {
  std::uint32_t sender = 0;
  std::vector<DataMessage> messages;
};

struct PushOffer {
  std::uint32_t sender = 0;
  util::Bytes boxed_reply_port;
  util::Bytes cert;  ///< §10 piggybacked certificate (optional)
};

struct PushReply {
  std::uint32_t sender = 0;
  Digest digest;
  util::Bytes boxed_data_port;
};

struct PushData {
  std::uint32_t sender = 0;
  std::vector<DataMessage> messages;
};

util::Bytes encode(const PullRequest& m);
util::Bytes encode(const PullReply& m);
util::Bytes encode(const PushOffer& m);
util::Bytes encode(const PushReply& m);
util::Bytes encode(const PushData& m);

/// Zero-copy encoders for the gossip hot path: serialize a PullReply /
/// PushData straight from buffer-owned messages (what
/// MessageBuffer::select_missing returns) without materializing an owning
/// struct first. Wire format is identical to the encode() overloads above.
util::Bytes encode_pull_reply(std::uint32_t sender,
                              const std::vector<const DataMessage*>& messages);
util::Bytes encode_push_data(std::uint32_t sender,
                             const std::vector<const DataMessage*>& messages);

/// Peeks at the type byte; throws DecodeError on empty input.
MsgType peek_type(util::ByteSpan wire);

/// Nothrow peek at the claimed sender id: every frame encodes the type byte
/// followed by the sender u32, so five bytes suffice. Returns nullopt for
/// truncated or unknown-type input. This is what lets the scoring layer
/// drop a greylisted peer's frames BEFORE spending reception budget on a
/// full decode.
std::optional<std::uint32_t> peek_sender(util::ByteSpan wire);

/// Each decode_* checks the type byte and full consumption; throws
/// util::DecodeError otherwise. `max_*` caps guard against memory-
/// amplification from fabricated packets.
PullRequest decode_pull_request(util::ByteSpan wire, std::size_t max_digest);
PullReply decode_pull_reply(util::ByteSpan wire, std::size_t max_messages,
                            std::size_t max_payload);
PushOffer decode_push_offer(util::ByteSpan wire);
PushReply decode_push_reply(util::ByteSpan wire, std::size_t max_digest);
PushData decode_push_data(util::ByteSpan wire, std::size_t max_messages,
                          std::size_t max_payload);

}  // namespace drum::core
