#include "drum/core/ordered.hpp"

namespace drum::core {

FifoOrderer::FifoOrderer(DeliverFn deliver, GapFn on_gap,
                         std::uint64_t gap_timeout_rounds)
    : deliver_(std::move(deliver)),
      on_gap_(std::move(on_gap)),
      gap_timeout_(gap_timeout_rounds) {}

void FifoOrderer::drain(std::uint32_t source, SourceState& st) {
  (void)source;
  while (true) {
    auto it = st.holdback.find(st.next_seq);
    if (it == st.holdback.end()) break;
    if (deliver_) deliver_(it->second);
    st.holdback.erase(it);
    ++st.next_seq;
  }
  st.blocked = !st.holdback.empty();
}

void FifoOrderer::on_delivery(const DataMessage& msg, std::uint64_t round) {
  auto& st = sources_[msg.id.source];
  if (msg.id.seqno < st.next_seq) return;  // stale (already skipped past)
  bool was_blocked = st.blocked;
  st.holdback.emplace(msg.id.seqno, msg);
  drain(msg.id.source, st);
  if (st.blocked && !was_blocked) st.blocked_since = round;
}

void FifoOrderer::on_round(std::uint64_t round) {
  for (auto& [source, st] : sources_) {
    if (!st.blocked) continue;
    if (round - st.blocked_since < gap_timeout_) continue;
    // Head-of-line gap expired: skip to the earliest held message.
    std::uint64_t first_missing = st.next_seq;
    std::uint64_t next_held = st.holdback.begin()->first;
    if (on_gap_) on_gap_(source, first_missing, next_held - first_missing);
    st.next_seq = next_held;
    drain(source, st);
    if (st.blocked) st.blocked_since = round;  // a further gap starts now
  }
}

std::size_t FifoOrderer::held() const {
  std::size_t total = 0;
  for (const auto& [source, st] : sources_) total += st.holdback.size();
  return total;
}

}  // namespace drum::core
