#include "drum/core/ingress.hpp"

#include "drum/core/node.hpp"
#include "drum/crypto/api.hpp"
#include "drum/crypto/portbox.hpp"

namespace drum::core::ingress {

NodeSection& IngressBatch::section_for(Node& node) {
  for (auto& sec : sections_) {
    if (sec.node == &node) return sec;
  }
  sections_.push_back(NodeSection{&node, {}});
  return sections_.back();
}

bool IngressBatch::empty() const {
  for (const auto& sec : sections_) {
    if (!sec.frames.empty()) return false;
  }
  return true;
}

void IngressBatch::clear() { sections_.clear(); }

void IngressBatch::verify() {
  // Gather every pending signature and every sealed port across ALL
  // sections — the whole point of accumulating across co-scheduled nodes is
  // that one worker sweep becomes one wide crypto pass.
  std::vector<crypto::VerifyJob> sig_jobs;
  std::vector<DataCandidate*> sig_targets;
  std::vector<crypto::PortBoxOpenJob> box_jobs;
  std::vector<VerifiedFrame*> box_targets;
  for (auto& sec : sections_) {
    for (auto& f : sec.frames) {
      if (f.channel == Channel::kPullData || f.channel == Channel::kPushData) {
        for (auto& cand : f.candidates) {
          if (!cand.needs_verify) continue;
          sig_jobs.push_back(crypto::VerifyJob{cand.pub,
                                               util::ByteSpan(cand.signed_bytes),
                                               cand.msg.signature});
          sig_targets.push_back(&cand);
        }
      } else {
        box_jobs.push_back(crypto::PortBoxOpenJob{util::ByteSpan(f.box_key),
                                                  util::ByteSpan(f.boxed_port)});
        box_targets.push_back(&f);
      }
    }
  }
  if (!sig_jobs.empty()) {
    const std::vector<bool> verdicts = crypto::ed25519_verify_batch(
        std::span<const crypto::VerifyJob>(sig_jobs));
    for (std::size_t i = 0; i < sig_targets.size(); ++i) {
      sig_targets[i]->verified = verdicts[i];
    }
  }
  if (!box_jobs.empty()) {
    auto ports = crypto::portbox_open_port_batch(
        std::span<const crypto::PortBoxOpenJob>(box_jobs));
    for (std::size_t i = 0; i < box_targets.size(); ++i) {
      box_targets[i]->port = ports[i];
    }
  }
}

void IngressBatch::dispatch() {
  verify();
  for (auto& sec : sections_) {
    if (sec.frames.empty()) continue;
    sec.node->ingest(std::span<VerifiedFrame>(sec.frames));
  }
  clear();
}

}  // namespace drum::core::ingress
