#include "drum/core/config.hpp"

namespace drum::core {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kDrum: return "drum";
    case Variant::kPush: return "push";
    case Variant::kPull: return "pull";
    case Variant::kDrumWkPorts: return "drum-wk-ports";
    case Variant::kDrumSharedBounds: return "drum-shared-bounds";
  }
  return "?";
}

NodeConfig make_node_config(Variant v, std::uint32_t id, std::size_t fanout) {
  NodeConfig cfg;
  cfg.id = id;
  cfg.variant = v;
  cfg.fanout = fanout;
  // The paper's resource-bound convention: a process accepts messages from
  // at most F others per round; Drum splits this F/2 + F/2 via the derived
  // budget helpers. Offer budget tracks the push view size.
  cfg.max_offers_per_round = cfg.view_push() == 0 ? 0 : cfg.view_push();
  cfg.send_capacity = fanout;
  return cfg;
}

}  // namespace drum::core
