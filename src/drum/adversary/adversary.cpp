#include "drum/adversary/adversary.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace drum::adversary {

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kOffer:
      return "offer";
    case Channel::kPullRequest:
      return "pull-request";
    case Channel::kPullReply:
      return "pull-reply";
  }
  return "?";
}

namespace detail {
void register_builtins();  // strategies.cpp
}  // namespace detail

namespace {

std::map<std::string, Factory>& registry() {
  static std::map<std::string, Factory> map;
  return map;
}

void ensure_builtins() {
  static const bool once = [] {
    detail::register_builtins();
    return true;
  }();
  (void)once;
}

}  // namespace

bool register_strategy(const std::string& name, Factory factory) {
  return registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Adversary> make(std::string_view name, const Params& params) {
  ensure_builtins();
  auto& map = registry();
  auto it = map.find(std::string(name));
  if (it == map.end()) {
    std::ostringstream msg;
    msg << "unknown adversary strategy '" << name << "' (registered:";
    for (const auto& [key, factory] : map) {
      msg << ' ' << key;
    }
    msg << ')';
    throw std::invalid_argument(msg.str());
  }
  return it->second(params);
}

std::vector<std::string> registered() {
  ensure_builtins();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [key, factory] : registry()) {
    names.push_back(key);
  }
  return names;
}

}  // namespace drum::adversary
