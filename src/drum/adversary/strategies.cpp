// The built-in adversary zoo. Each strategy is a pure planner: RoundView in,
// Plan out. Keep strategies free of backend knowledge — anything they "know"
// must be observable by a real attacker (public budgets, victim ids, traffic
// volume) or owned by it (colluding insiders).
#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "drum/adversary/adversary.hpp"

namespace drum::adversary {
namespace {

std::uint32_t whole(double d) {
  return d <= 0.0 ? 0U : static_cast<std::uint32_t>(std::llround(d));
}

/// Splits `x` fabricated messages across the victim's enabled control
/// channels the way the paper's attacker does: evenly over what is
/// attackable (offer / pull-request, plus the reply port under the wk-ports
/// ablation).
void add_split(Plan& plan, const RoundView& v, std::uint32_t target, double x,
               std::uint32_t claimed) {
  const std::uint32_t total = whole(x);
  if (total == 0) {
    return;
  }
  std::vector<Channel> channels;
  if (v.push_channel) {
    channels.push_back(Channel::kOffer);
  }
  if (v.pull_channel) {
    channels.push_back(Channel::kPullRequest);
    if (v.reply_port_attackable) {
      channels.push_back(Channel::kPullReply);
    }
  }
  if (channels.empty()) {
    return;
  }
  const auto share = static_cast<std::uint32_t>(total / channels.size());
  std::uint32_t remainder =
      total - share * static_cast<std::uint32_t>(channels.size());
  for (Channel ch : channels) {
    std::uint32_t count = share;
    if (remainder > 0) {
      ++count;
      --remainder;
    }
    if (count > 0) {
      plan.floods.push_back(Flood{target, ch, count, claimed});
    }
  }
}

/// The paper's baseline (§7): x fabricated messages per victim per round,
/// split across the attackable well-known ports, all spoofed.
class Flooder final : public Adversary {
 public:
  explicit Flooder(const Params& params) : params_(params) {}
  const char* name() const override { return "flood"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    for (std::uint32_t victim : view.attacked) {
      add_split(plan, view, victim, params_.x, kSpoofed);
    }
  }

 private:
  Params params_;
};

/// Slow-drip: sends exactly ceil(budget * drip_fill) spoofed messages per
/// control channel per victim — just enough to contest every acceptance
/// slot while staying orders of magnitude below flood volume (and below any
/// rate-based detector). With budget B and B fabricated arrivals, honest
/// traffic wins each slot with probability ~1/2.
class SlowDrip final : public Adversary {
 public:
  explicit SlowDrip(const Params& params) : params_(params) {}
  const char* name() const override { return "slow-drip"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    const double fill = params_.drip_fill;
    for (std::uint32_t victim : view.attacked) {
      if (view.push_channel) {
        const std::uint32_t c = std::max<std::uint32_t>(
            1, whole(static_cast<double>(view.offer_budget) * fill));
        plan.floods.push_back(Flood{victim, Channel::kOffer, c, kSpoofed});
      }
      if (view.pull_channel) {
        const std::uint32_t c = std::max<std::uint32_t>(
            1, whole(static_cast<double>(view.pull_request_budget) * fill));
        plan.floods.push_back(
            Flood{victim, Channel::kPullRequest, c, kSpoofed});
        if (view.reply_port_attackable) {
          plan.floods.push_back(
              Flood{victim, Channel::kPullReply, c, kSpoofed});
        }
      }
    }
  }

 private:
  Params params_;
};

/// Pull-request amplification: a small squad of colluding INSIDERS per
/// victim sends valid (pair-key-sealed) control frames at both well-known
/// ports — pull requests, each eliciting a full-size reply (request bytes
/// in, data bytes out), and push offers, each eliciting a push-reply while
/// crowding honest offers out of the victim's bounded offer budget. The
/// requests starve the victim's serving capacity; the offers starve its
/// reception. Because every frame authenticates, this is attributable
/// traffic: the overuse signal in the scoring layer is aimed at exactly
/// this shape. Falls back to a spoofed flood when the adversary holds no
/// members.
class PullAmplify final : public Adversary {
 public:
  explicit PullAmplify(const Params& params) : params_(params) {}
  const char* name() const override { return "pull-amplify"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    const std::size_t m = view.colluders.size();
    if (!view.pull_channel || m == 0) {
      for (std::uint32_t victim : view.attacked) {
        add_split(plan, view, victim, params_.x, kSpoofed);
      }
      return;
    }
    const std::size_t squad = std::max<std::size_t>(
        1, std::min(params_.squad, m));
    for (std::size_t i = 0; i < view.attacked.size(); ++i) {
      const std::uint32_t victim = view.attacked[i];
      const std::uint32_t total =
          std::max<std::uint32_t>(static_cast<std::uint32_t>(squad),
                                  whole(params_.x / 4.0));
      const auto each = static_cast<std::uint32_t>(total / squad);
      const std::uint32_t offers =
          view.push_channel ? each / 2 : 0;
      const std::uint32_t requests = each - offers;
      for (std::size_t j = 0; j < squad; ++j) {
        const std::uint32_t insider =
            view.colluders[(i * squad + j) % m];
        if (requests > 0) {
          plan.floods.push_back(
              Flood{victim, Channel::kPullRequest, requests, insider});
        }
        if (offers > 0) {
          plan.floods.push_back(
              Flood{victim, Channel::kOffer, offers, insider});
        }
      }
    }
  }

 private:
  Params params_;
};

/// Adaptive re-targeting: instead of spreading x over a fixed victim set,
/// concentrate the whole budget (x * |attacked|) on the `focus` nodes that
/// looked most useful (highest observed traffic volume) last round. Until a
/// usefulness signal exists it behaves like a focused flooder on the first
/// victims.
class Adaptive final : public Adversary {
 public:
  explicit Adaptive(const Params& params) : params_(params) {}
  const char* name() const override { return "adaptive"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    targets_.clear();
    const std::size_t focus = std::max<std::size_t>(1, params_.focus);
    bool any_signal = false;
    for (float u : view.usefulness) {
      if (u > 0.0F) {
        any_signal = true;
        break;
      }
    }
    if (any_signal) {
      order_.clear();
      for (std::uint32_t id = 0; id < view.usefulness.size(); ++id) {
        if (std::find(view.colluders.begin(), view.colluders.end(), id) !=
            view.colluders.end()) {
          continue;
        }
        order_.emplace_back(view.usefulness[id], id);
      }
      const std::size_t k = std::min(focus, order_.size());
      std::partial_sort(order_.begin(), order_.begin() + k, order_.end(),
                        [](const auto& a, const auto& b) {
                          if (a.first != b.first) {
                            return a.first > b.first;
                          }
                          return a.second < b.second;
                        });
      for (std::size_t i = 0; i < k; ++i) {
        targets_.push_back(order_[i].second);
      }
    } else {
      for (std::size_t i = 0; i < view.attacked.size() && i < focus; ++i) {
        targets_.push_back(view.attacked[i]);
      }
    }
    if (targets_.empty()) {
      return;
    }
    const double per_target =
        params_.x * static_cast<double>(view.attacked.size()) /
        static_cast<double>(targets_.size());
    for (std::uint32_t t : targets_) {
      add_split(plan, view, t, per_target, kSpoofed);
    }
  }

 private:
  Params params_;
  std::vector<std::pair<float, std::uint32_t>> order_;
  std::vector<std::uint32_t> targets_;
};

/// Eclipse/partition: the colluding members poison the victims' membership
/// views so a `capture` fraction of their gossip slots point at colluders —
/// who black-hole everything sent their way (wasted fan-out, unanswered
/// pulls: the futility signal's territory). The colluders then ENFORCE the
/// partition from their captured position: posing as the victim's
/// neighbors, a squad floods its bounded offer budget with valid insider
/// offers so honest pushes stop getting through either. Cutting both the
/// victim's outbound pulls and inbound pushes is what makes an eclipse an
/// eclipse; each arm trips a different scoring signal (futility vs
/// overuse).
class Eclipse final : public Adversary {
 public:
  explicit Eclipse(const Params& params) : params_(params) {}
  const char* name() const override { return "eclipse"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    const std::size_t m = view.colluders.size();
    if (m == 0) {
      return;
    }
    plan.view_capture = std::clamp(params_.capture, 0.0, 1.0);
    if (!view.push_channel) {
      return;
    }
    const std::size_t squad = std::max<std::size_t>(
        1, std::min(params_.squad, m));
    for (std::size_t i = 0; i < view.attacked.size(); ++i) {
      const std::uint32_t victim = view.attacked[i];
      const std::uint32_t each = std::max<std::uint32_t>(
          1, whole(params_.x / (4.0 * static_cast<double>(squad))));
      for (std::size_t j = 0; j < squad; ++j) {
        const std::uint32_t insider = view.colluders[(i * squad + j) % m];
        plan.floods.push_back(Flood{victim, Channel::kOffer, each, insider});
      }
    }
  }

 private:
  Params params_;
};

/// Colluding multi-node flood: the insiders coordinate so that EACH sends at
/// most one valid pull request per victim per round — individually under the
/// per-peer allowance, collectively far over the victim's bounded budget.
/// The membership rotates which insiders hit which victim each round. The
/// remainder of the budget goes out as spoofed offers. This is the
/// strategy built to slip under per-peer scoring; the bench reports how far
/// it gets.
class Collude final : public Adversary {
 public:
  explicit Collude(const Params& params) : params_(params) {}
  const char* name() const override { return "collude"; }
  void plan_round(const RoundView& view, util::Rng& rng,
                  Plan& plan) override {
    (void)rng;
    const std::size_t m = view.colluders.size();
    for (std::size_t i = 0; i < view.attacked.size(); ++i) {
      const std::uint32_t victim = view.attacked[i];
      std::uint32_t insiders = 0;
      if (view.pull_channel && m > 0) {
        insiders = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(m, whole(params_.x / 2.0)));
        for (std::uint32_t j = 0; j < insiders; ++j) {
          const std::uint32_t insider =
              view.colluders[(i + j + view.round) % m];
          plan.floods.push_back(
              Flood{victim, Channel::kPullRequest, 1, insider});
        }
      }
      const double rest = params_.x - static_cast<double>(insiders);
      if (rest > 0.0) {
        if (view.push_channel) {
          plan.floods.push_back(
              Flood{victim, Channel::kOffer, whole(rest), kSpoofed});
        } else {
          add_split(plan, view, victim, rest, kSpoofed);
        }
      }
    }
  }

 private:
  Params params_;
};

template <typename T>
std::unique_ptr<Adversary> build(const Params& params) {
  return std::make_unique<T>(params);
}

}  // namespace

namespace detail {

void register_builtins() {
  register_strategy("flood", build<Flooder>);
  register_strategy("slow-drip", build<SlowDrip>);
  register_strategy("pull-amplify", build<PullAmplify>);
  register_strategy("adaptive", build<Adaptive>);
  register_strategy("eclipse", build<Eclipse>);
  register_strategy("collude", build<Collude>);
}

}  // namespace detail
}  // namespace drum::adversary
