// drum::adversary — the adversary-strategy subsystem (DESIGN.md §10).
//
// The paper evaluates Drum against exactly one adversary: a flooder that
// splits a fixed budget of fabricated messages across the victims'
// well-known ports. The GossipSub formal-analysis line (arXiv 2212.05197,
// 2311.08859) catalogues richer misbehaving-peer attacks; this subsystem
// models them behind one interface so that every strategy runs identically
// against the Monte-Carlo simulator (sim::engine) and the live reactor
// harness (harness::Swarm).
//
// Shape: once per round the backend builds a RoundView (what a real attacker
// could observe: group size, victim set, colluding insider ids, the public
// per-round budgets, and coarse per-node activity). The strategy's
// plan_round() fills a Plan — a list of Flood actions plus a view-capture
// knob — and the backend realizes it: the sim converts floods into
// fabricated arrivals at the acceptance bounds; the swarm crafts and sends
// real datagrams. Strategies therefore contain zero transport or simulator
// code.
//
// Two attacker capabilities are distinguished by Flood::claimed_sender:
//  * kSpoofed  — off-path traffic with garbage authenticators. Consumes the
//    victim's bounded reception budget but fails the port-box, so it is not
//    attributable to any group member (peer scoring cannot touch it).
//  * a colluder id — an INSIDER frame sealed with the real pair key of a
//    malicious member. It passes authentication and competes for budget as
//    legitimate traffic, but is attributable — exactly the traffic class
//    peer scoring exists for.
//
// Registry: strategies self-register by name ("flood", "slow-drip",
// "pull-amplify", "adaptive", "eclipse", "collude"); make() instantiates by
// name so benches/CLI flags select strategies without compile-time coupling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "drum/util/rng.hpp"

namespace drum::adversary {

/// Sentinel claimed_sender for non-attributable spoofed traffic.
inline constexpr std::uint32_t kSpoofed = 0xFFFFFFFFU;

/// Victim-side channel a flood aims at. kPullReply is only attackable when
/// replies use a well-known port (the §9 ablation); RoundView says whether
/// the backend exposes it.
enum class Channel : std::uint8_t {
  kOffer = 0,
  kPullRequest = 1,
  kPullReply = 2,
};

const char* channel_name(Channel c);

/// One flood action: `count` fabricated messages aimed at `target`'s
/// `channel` this round, claiming to come from `claimed_sender`.
struct Flood {
  std::uint32_t target = 0;
  Channel channel = Channel::kOffer;
  std::uint32_t count = 0;
  std::uint32_t claimed_sender = kSpoofed;
};

/// Everything a strategy may do in one round.
struct Plan {
  std::vector<Flood> floods;
  /// Eclipse knob in [0,1]: fraction of each attacked node's gossip view
  /// slots the colluders capture (membership poisoning). Backends realize
  /// it by redirecting that fraction of the victim's view samples to
  /// colluders.
  double view_capture = 0.0;

  void clear() {
    floods.clear();
    view_capture = 0.0;
  }
};

/// What the attacker can observe at the start of a round. Spans point into
/// backend-owned storage valid for the duration of plan_round().
struct RoundView {
  std::uint64_t round = 0;
  std::size_t n = 0;  ///< group size
  std::span<const std::uint32_t> attacked;   ///< victim ids
  std::span<const std::uint32_t> colluders;  ///< malicious member ids
  /// Public per-round acceptance budgets at each victim (protocol config).
  std::size_t offer_budget = 2;
  std::size_t pull_request_budget = 2;
  /// Which control channels this protocol variant exposes.
  bool push_channel = true;
  bool pull_channel = true;
  /// True only for the wk-ports ablation: pull replies arrive on an
  /// attackable well-known port.
  bool reply_port_attackable = false;
  /// Coarse per-node activity signal (observed traffic volume last round),
  /// indexed by node id; empty when the backend exposes none. Drives the
  /// adaptive re-targeting strategy.
  std::span<const float> usefulness;
};

/// Strategy tuning knobs; every strategy reads the subset it cares about.
struct Params {
  /// Fabricated messages per round per attacked process (the paper's x).
  double x = 64.0;
  /// pull-amplify: colluders per victim squad.
  std::size_t squad = 4;
  /// eclipse: fraction of victim view slots captured.
  double capture = 0.6;
  /// adaptive: number of nodes the budget concentrates on.
  std::size_t focus = 8;
  /// slow-drip: fraction of each per-round budget to fill (1.0 = exactly
  /// the budget, the "just below detection thresholds" operating point).
  double drip_fill = 1.0;
};

/// Strategy selection for a simulation/benchmark point. An empty strategy
/// name means "no zoo adversary" (the legacy paper flooder model applies).
struct Spec {
  std::string strategy;
  Params params;

  [[nodiscard]] bool enabled() const { return !strategy.empty(); }
};

class Adversary {
 public:
  virtual ~Adversary() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Fills `plan` for this round. `rng` is the attacker's private stream
  /// (forked per trial by the sim; seeded by the harness) — strategies must
  /// take all randomness from it.
  virtual void plan_round(const RoundView& view, util::Rng& rng,
                          Plan& plan) = 0;
};

using Factory =
    std::function<std::unique_ptr<Adversary>(const Params& params)>;

/// Registers a strategy factory under `name`; returns false (and keeps the
/// existing entry) if the name is taken.
bool register_strategy(const std::string& name, Factory factory);

/// Instantiates a registered strategy. Throws std::invalid_argument for an
/// unknown name (the message lists the registered ones).
[[nodiscard]] std::unique_ptr<Adversary> make(std::string_view name,
                                              const Params& params);

/// Names of all registered strategies, sorted.
[[nodiscard]] std::vector<std::string> registered();

}  // namespace drum::adversary
