// Round-synchronized Monte-Carlo simulator of gossip multicast under DoS
// attack — the model of the paper's §5 and §7 (originally MATLAB):
//
//  * synchronized rounds; fan-out F; per-round acceptance bound F
//    (Drum splits both F/2 push + F/2 pull);
//  * one tracked message M originating at a single source; every process
//    gossips every round regardless of holding M (they have other traffic),
//    so contention at the acceptance bounds is always present;
//  * push modelled without push-offers, pull-replies always accepted
//    (random ports), both as in the paper's simulation section;
//  * iid link loss on every traversal (requests, replies, data, and the
//    attacker's fabricated messages alike);
//  * a fraction of group members is malicious: they emit the fabricated
//    traffic, never forward valid messages, but remain legitimate gossip
//    targets (wasted fan-out), exactly as in §7;
//  * the attacked set is a fraction alpha of the group (all correct), and
//    the source is attacked.
//
// Two ablation variants of §9 are also modelled:
//  * kDrumWkPorts — pull-replies go to a well-known (attackable) port; the
//    adversary splits the pull budget between the request and reply ports;
//  * kDrumSharedBounds — one joint acceptance bound over push + pull-request
//    arrivals instead of separate per-operation bounds.
//
// Execution model (DESIGN.md §9): simulate_many pre-forks one Rng per trial
// from the master seed (in trial order), runs trials on a small worker pool
// (SimOptions::threads / DRUM_SIM_THREADS), and merges per-worker partial
// aggregates back in trial order — the AggregateResult is bit-identical for
// every thread count, including 1. simulate_run itself is allocation-lean:
// all per-round buffers live in a reusable SimScratch.
#pragma once

#include <cstdint>
#include <vector>

#include "drum/adversary/adversary.hpp"
#include "drum/core/scoring.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/stats.hpp"

namespace drum::sim {

enum class SimProtocol {
  kDrum,
  kPush,
  kPull,
  kDrumWkPorts,       ///< §9 ablation: no random ports on pull-replies
  kDrumSharedBounds,  ///< §9 ablation: joint bound on control channels
};

const char* protocol_name(SimProtocol p);

struct SimParams {
  SimProtocol protocol = SimProtocol::kDrum;
  std::size_t n = 120;              ///< group size
  std::size_t fanout = 4;           ///< F
  double loss = 0.01;               ///< per-link loss probability
  double malicious_fraction = 0.1;  ///< adversary-controlled group members
  double crashed_fraction = 0.0;    ///< crashed-before-M members (Fig. 2(b))
  double alpha = 0.0;               ///< attacked fraction of the group
  double x = 0.0;                   ///< fabricated msgs/round per attacked proc
  std::size_t max_rounds = 300;     ///< simulation horizon
  double coverage_target = 0.99;    ///< "propagation time" threshold
  /// Ablation of Drum's even fan-out split: for the kDrum protocol, use
  /// this push-view size (pull view = fanout - this). 0 = even split F/2.
  /// The attacker still splits its budget x/2 push + x/2 pull (it cannot
  /// observe the victim's split).
  std::size_t drum_push_view = 0;
  /// Ablation of the ATTACKER's budget split against kDrum: fraction of x
  /// aimed at the push (offer) channel, remainder at the pull-request
  /// channel. Default 0.5 (the paper's attack). Drum's point is that no
  /// split helps: whichever channel the attacker abandons carries the data.
  double attack_push_fraction = 0.5;
  /// Adversary-zoo strategy (drum::adversary). When enabled, it REPLACES
  /// the legacy x-flooder above: all fabricated/insider traffic and view
  /// poisoning come from the strategy's per-round Plan, with the malicious
  /// members acting as its colluding insiders and the alpha-set as its
  /// designated victims. Not supported for kDrumSharedBounds.
  adversary::Spec attack;
  /// Peer-scoring + greylist defense layer (core::PeerScoreTable), run by
  /// every correct process. Independent of `attack` — an all-correct run
  /// with scoring on is the false-positive gate. When enabled, correct
  /// processes also acknowledge every accepted pull request (the empty
  /// pull-reply protocol extension), so futility only accrues at black
  /// holes and saturated victims. Not supported for kDrumSharedBounds.
  core::ScoringConfig scoring;
};

/// Outcome of a single simulated run.
struct RunResult {
  /// Rounds until `coverage_target` of all correct processes hold M
  /// (max_rounds + 1 when not reached within the horizon).
  std::size_t rounds_to_target = 0;
  /// Same threshold restricted to the attacked / non-attacked correct
  /// subsets (paper Fig. 6). Zero-size subsets report 0.
  std::size_t rounds_to_target_attacked = 0;
  std::size_t rounds_to_target_non_attacked = 0;
  /// First round at the start of which some process other than the source
  /// holds M (Pull's dominant latency term, §7.2).
  std::size_t rounds_to_leave_source = 0;
  /// coverage_by_round[r] = fraction of correct processes holding M at the
  /// beginning of round r.
  std::vector<double> coverage_by_round;
  bool reached = false;
  /// Scoring-layer outcomes (zero when scoring is disabled): total
  /// greylist-entry events across all correct processes, and how many
  /// (process, peer) pairs were greylisted when the run ended.
  std::uint64_t greylist_entries = 0;
  std::uint64_t greylisted_at_end = 0;
};

/// Reusable per-worker scratch space for simulate_run: the per-round arrival
/// buffers, holder bitmaps, and sampling vectors live here and keep their
/// capacity across runs, so the inner simulation loop performs no heap
/// allocation after the first round at a given group size. One SimScratch
/// belongs to one thread at a time; the parallel engine keeps one per
/// worker.
class SimScratch {
 public:
  SimScratch() = default;

 private:
  friend RunResult simulate_run(const SimParams& params, util::Rng& rng,
                                SimScratch& scratch);

  struct PushArrival {
    std::uint32_t sender;
    char carries_m;
  };

  struct SentPull {
    std::uint32_t target;
    char answered;
  };

  std::vector<char> has_m_, new_m_;
  std::vector<std::vector<PushArrival>> push_arrivals_;
  std::vector<std::vector<std::uint32_t>> pull_requests_;
  std::vector<std::vector<char>> reply_arrivals_;
  std::vector<std::size_t> fab_;      // kDrumSharedBounds only
  std::vector<double> ratio_;         // kDrumSharedBounds only
  std::vector<std::uint32_t> view_;       // gossip-target sample
  std::vector<std::uint32_t> accepted_;   // accept_bounded output
  std::vector<std::uint32_t> picks_;      // accept_bounded sample
  std::vector<std::uint32_t> sample_scratch_;  // Rng::sample_into dense pool

  // Adversary-zoo / scoring state; touched only when the respective
  // feature is enabled in SimParams.
  std::vector<core::PeerScoreTable> tables_;     // one per correct process
  std::vector<std::uint32_t> attacked_ids_, colluder_ids_;
  std::vector<float> usefulness_, served_;       // adaptive-attack signal
  std::vector<std::uint32_t> fab_push_, fab_pull_, fab_reply_;
  std::vector<std::vector<SentPull>> sent_pulls_;  // futility bookkeeping
  adversary::Plan plan_;
};

/// Simulates one run. `rng` supplies all randomness (deterministic replay).
RunResult simulate_run(const SimParams& params, util::Rng& rng);

/// As above, but reusing `scratch` buffers across calls (the hot path of
/// simulate_many). Identical RNG consumption and results as the two-argument
/// overload.
RunResult simulate_run(const SimParams& params, util::Rng& rng,
                       SimScratch& scratch);

/// Aggregate of `runs` independent runs.
struct AggregateResult {
  util::Samples rounds_to_target;
  util::Samples rounds_to_target_attacked;
  util::Samples rounds_to_target_non_attacked;
  util::Samples rounds_to_leave_source;
  /// Greylist-entry events per run (all zero when scoring is disabled).
  util::Samples greylist_entries;
  util::CoverageCurve coverage;
  std::size_t unreached_runs = 0;

  /// Appends another aggregate's trials after this one's. Merging
  /// per-worker partials in trial order reproduces the serial accumulation
  /// bit-for-bit (see util::Samples / util::CoverageCurve).
  void merge(const AggregateResult& other);

  bool operator==(const AggregateResult&) const = default;
};

/// Execution options for simulate_many. These control HOW trials execute,
/// never WHAT they compute: the aggregate is bit-identical for every thread
/// count (each trial's Rng is pre-forked from the master seed in trial
/// order, and partials merge back in trial order).
struct SimOptions {
  /// Worker threads. 0 = the DRUM_SIM_THREADS environment variable if set,
  /// else std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Optional pool telemetry sink: sim.trials / sim.chunks counters,
  /// sim.threads gauge, sim.trial_us / sim.queue_depth histograms.
  obs::MetricsRegistry* metrics = nullptr;
};

AggregateResult simulate_many(const SimParams& params, std::size_t runs,
                              std::uint64_t seed);
AggregateResult simulate_many(const SimParams& params, std::size_t runs,
                              std::uint64_t seed, const SimOptions& options);

}  // namespace drum::sim
