#include "drum/sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "drum/check/annotations.hpp"

namespace drum::sim {

namespace {

// Number of fabricated messages that arrive (each independently survives
// link loss).
std::size_t fabricated_arrivals(double x, double loss, util::Rng& rng) {
  auto sent = static_cast<std::size_t>(std::llround(x));
  std::size_t arrived = 0;
  for (std::size_t i = 0; i < sent; ++i) {
    if (!rng.chance(loss)) ++arrived;  // drum-lint: legacy-stream
  }
  return arrived;
}

// Bounded random acceptance: `valid` items compete with `fabricated` items
// for `bound` acceptance slots; fills `out` with the indices (into the valid
// list) that were accepted. `picks`/`sample_scratch` are reusable buffers.
void accept_bounded(std::size_t valid, std::size_t fabricated,
                    std::size_t bound, util::Rng& rng,
                    std::vector<std::uint32_t>& out,
                    std::vector<std::uint32_t>& picks,
                    std::vector<std::uint32_t>& sample_scratch) {
  out.clear();
  std::size_t total = valid + fabricated;
  if (total == 0 || valid == 0) return;
  if (total <= bound) {
    for (std::size_t i = 0; i < valid; ++i) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
    return;
  }
  rng.sample_into(static_cast<std::uint32_t>(total),  // drum-lint: legacy-stream
                  static_cast<std::uint32_t>(bound),
                  static_cast<std::uint32_t>(total), picks, sample_scratch);
  for (auto p : picks) {
    if (p < valid) out.push_back(p);
  }
}

struct ChannelPlan {
  std::size_t view_push = 0, bound_push = 0;
  std::size_t view_pull = 0, bound_pull = 0;
  double x_push = 0, x_pull_req = 0, x_pull_reply = 0;
  bool bounded_pull_replies = false;  // kDrumWkPorts
  bool shared_bound = false;          // kDrumSharedBounds
};

ChannelPlan make_plan(const SimParams& p) {
  ChannelPlan c;
  const std::size_t f = p.fanout;
  const std::size_t push_view =
      p.drum_push_view > 0 ? std::min(p.drum_push_view, f - 1) : f / 2;
  switch (p.protocol) {
    case SimProtocol::kPush:
      c.view_push = c.bound_push = f;
      c.x_push = p.x;
      break;
    case SimProtocol::kPull:
      c.view_pull = c.bound_pull = f;
      c.x_pull_req = p.x;
      break;
    case SimProtocol::kDrum:
      c.view_push = c.bound_push = push_view;
      c.view_pull = c.bound_pull = f - push_view;
      c.x_push = p.x * p.attack_push_fraction;
      c.x_pull_req = p.x * (1.0 - p.attack_push_fraction);
      break;
    case SimProtocol::kDrumWkPorts:
      // §9: the adversary splits the pull budget between the (well-known)
      // request port and the now-attackable well-known reply port.
      c.view_push = c.bound_push = f / 2;
      c.view_pull = c.bound_pull = f / 2;
      c.x_push = p.x / 2;
      c.x_pull_req = p.x / 4;
      c.x_pull_reply = p.x / 4;
      c.bounded_pull_replies = true;
      break;
    case SimProtocol::kDrumSharedBounds:
      c.view_push = f / 2;
      c.view_pull = f / 2;
      c.bound_push = c.bound_pull = f;  // one joint bound of F
      c.x_push = p.x / 2;
      c.x_pull_req = p.x / 2;
      c.shared_bound = true;
      break;
  }
  return c;
}

}  // namespace

const char* protocol_name(SimProtocol p) {
  switch (p) {
    case SimProtocol::kDrum: return "drum";
    case SimProtocol::kPush: return "push";
    case SimProtocol::kPull: return "pull";
    case SimProtocol::kDrumWkPorts: return "drum-wk-ports";
    case SimProtocol::kDrumSharedBounds: return "drum-shared-bounds";
  }
  return "?";
}

RunResult simulate_run(const SimParams& params, util::Rng& rng) {
  SimScratch scratch;
  return simulate_run(params, rng, scratch);  // drum-lint: legacy-stream
}

RunResult simulate_run(const SimParams& params, util::Rng& rng,
                       SimScratch& sc) {
  const std::size_t n = params.n;
  if (n < 4) throw std::invalid_argument("group too small");
  const auto n_mal = static_cast<std::size_t>(
      std::llround(params.malicious_fraction * static_cast<double>(n)));
  const auto n_crash = static_cast<std::size_t>(
      std::llround(params.crashed_fraction * static_cast<double>(n)));
  if (n_mal + n_crash >= n) throw std::invalid_argument("no correct processes");
  const std::size_t n_correct = n - n_mal - n_crash;

  // Roles: [0, n_mal) malicious, [n_mal, n_mal + n_crash) crashed,
  // the rest alive & correct.
  auto is_malicious = [&](std::size_t id) { return id < n_mal; };
  auto is_crashed = [&](std::size_t id) {
    return id >= n_mal && id < n_mal + n_crash;
  };
  auto is_correct = [&](std::size_t id) { return id >= n_mal + n_crash; };

  // Attacked set: round(alpha*n) correct processes starting at the first
  // correct id; the source is the first correct process, hence attacked
  // whenever the attack is active (paper §5).
  // Adversary zoo + scoring layer. Both are strictly additive: with both
  // disabled, the run consumes the rng stream exactly as before (the
  // bit-identity contract of DESIGN.md §9 covers legacy parameters only).
  const bool zoo = params.attack.enabled();
  const bool scoring = params.scoring.enabled;

  auto n_attacked = static_cast<std::size_t>(
      std::llround(params.alpha * static_cast<double>(n)));
  n_attacked = std::min(n_attacked, n_correct);
  const bool attack_on = zoo ? n_attacked > 0 : (params.x > 0 && n_attacked > 0);
  if (!attack_on) n_attacked = 0;
  const std::size_t first_correct = n_mal + n_crash;
  auto is_attacked = [&](std::size_t id) {
    return attack_on && is_correct(id) && id < first_correct + n_attacked;
  };
  const std::size_t source = first_correct;

  const ChannelPlan plan = make_plan(params);
  if ((zoo || scoring) && plan.shared_bound) {
    throw std::invalid_argument(
        "adversary zoo / scoring are not modelled for kDrumSharedBounds");
  }

  std::unique_ptr<adversary::Adversary> adv;
  util::Rng adv_rng(0);
  if (zoo) {
    adv = adversary::make(params.attack.strategy, params.attack.params);
    adv_rng = rng.fork();
    sc.attacked_ids_.clear();
    for (std::size_t i = 0; i < n_attacked; ++i) {
      sc.attacked_ids_.push_back(static_cast<std::uint32_t>(first_correct + i));
    }
    sc.colluder_ids_.clear();
    for (std::size_t i = 0; i < n_mal; ++i) {
      sc.colluder_ids_.push_back(static_cast<std::uint32_t>(i));
    }
    sc.usefulness_.assign(n, 0.0F);
    sc.served_.assign(n, 0.0F);
  }
  auto& tables = sc.tables_;
  if (scoring) {
    tables.resize(n);
    for (std::size_t id = first_correct; id < n; ++id) {
      tables[id].reset(n, params.scoring, static_cast<std::uint32_t>(id));
    }
    sc.sent_pulls_.resize(n);
  }

  std::vector<char>& has_m = sc.has_m_;
  has_m.assign(n, 0);
  has_m[source] = 1;

  RunResult result;
  result.rounds_to_target = params.max_rounds + 1;
  result.rounds_to_target_attacked = params.max_rounds + 1;
  result.rounds_to_target_non_attacked = params.max_rounds + 1;
  result.rounds_to_leave_source = params.max_rounds + 1;

  // Per-target arrival buffers, reused across rounds AND across runs: the
  // inner vectors keep their capacity, so after warm-up a round allocates
  // nothing.
  auto& push_arrivals = sc.push_arrivals_;
  auto& pull_requests = sc.pull_requests_;  // requester ids
  auto& reply_arrivals = sc.reply_arrivals_;  // reply-carries-M
  push_arrivals.resize(n);
  pull_requests.resize(n);
  reply_arrivals.resize(n);

  const std::size_t target_all = static_cast<std::size_t>(
      std::ceil(params.coverage_target * static_cast<double>(n_correct)));
  const std::size_t target_att = static_cast<std::size_t>(
      std::ceil(params.coverage_target * static_cast<double>(n_attacked)));
  const std::size_t n_non_att = n_correct - n_attacked;
  const std::size_t target_non = static_cast<std::size_t>(
      std::ceil(params.coverage_target * static_cast<double>(n_non_att)));

  for (std::size_t round = 0; round <= params.max_rounds; ++round) {
    // --- metrics at the beginning of the round ---
    std::size_t holders = 0, holders_att = 0;
    for (std::size_t id = first_correct; id < n; ++id) {
      if (has_m[id]) {
        ++holders;
        if (is_attacked(id)) ++holders_att;
      }
    }
    std::size_t holders_non = holders - holders_att;
    result.coverage_by_round.push_back(static_cast<double>(holders) /
                                       static_cast<double>(n_correct));
    if (holders > 1 && result.rounds_to_leave_source > round) {
      result.rounds_to_leave_source = round;
    }
    if (holders >= target_all && result.rounds_to_target > round) {
      result.rounds_to_target = round;
      result.reached = true;
    }
    if (n_attacked > 0 && holders_att >= target_att &&
        result.rounds_to_target_attacked > round) {
      result.rounds_to_target_attacked = round;
    }
    if (n_non_att > 0 && holders_non >= target_non &&
        result.rounds_to_target_non_attacked > round) {
      result.rounds_to_target_non_attacked = round;
    }
    if (result.reached &&
        (n_attacked == 0 || result.rounds_to_target_attacked <= round) &&
        (n_non_att == 0 || result.rounds_to_target_non_attacked <= round)) {
      break;
    }
    if (round == params.max_rounds) break;

    for (auto& v : push_arrivals) v.clear();
    for (auto& v : pull_requests) v.clear();
    for (auto& v : reply_arrivals) v.clear();

    // --- adversary planning + scoring round clock ---
    if (scoring) {
      for (std::size_t id = first_correct; id < n; ++id) {
        tables[id].begin_round(round);
        sc.sent_pulls_[id].clear();
      }
    }
    double view_capture = 0.0;
    if (zoo) {
      sc.served_.assign(n, 0.0F);
      sc.fab_push_.assign(n, 0);
      sc.fab_pull_.assign(n, 0);
      sc.fab_reply_.assign(n, 0);
      sc.plan_.clear();
      adversary::RoundView view;
      view.round = round;
      view.n = n;
      view.attacked = sc.attacked_ids_;
      view.colluders = sc.colluder_ids_;
      view.offer_budget = plan.bound_push;
      view.pull_request_budget = plan.bound_pull;
      view.push_channel = plan.view_push > 0;
      view.pull_channel = plan.view_pull > 0;
      view.reply_port_attackable = plan.bounded_pull_replies;
      view.usefulness = sc.usefulness_;
      adv->plan_round(view, adv_rng, sc.plan_);
      view_capture = sc.plan_.view_capture;

      for (const adversary::Flood& f : sc.plan_.floods) {
        if (f.target >= n || !is_correct(f.target)) continue;
        if (f.claimed_sender == adversary::kSpoofed) {
          // Off-path spoofed traffic: consumes budget, fails the port-box,
          // unattributable. Each message independently survives link loss.
          const std::size_t arrived = fabricated_arrivals(
              static_cast<double>(f.count), params.loss, adv_rng);
          switch (f.channel) {
            case adversary::Channel::kOffer:
              sc.fab_push_[f.target] += arrived;
              break;
            case adversary::Channel::kPullRequest:
              sc.fab_pull_[f.target] += arrived;
              break;
            case adversary::Channel::kPullReply:
              sc.fab_reply_[f.target] += arrived;
              break;
          }
        } else if (f.claimed_sender < n) {
          // Insider traffic: authenticates, competes like honest arrivals,
          // and is attributable — the greylist drops it before the bound.
          for (std::uint32_t i = 0; i < f.count; ++i) {
            if (adv_rng.chance(params.loss)) continue;
            if (scoring && tables[f.target].greylisted(f.claimed_sender)) {
              continue;  // dropped pre-budget
            }
            switch (f.channel) {
              case adversary::Channel::kOffer:
                push_arrivals[f.target].push_back({f.claimed_sender, 0});
                break;
              case adversary::Channel::kPullRequest:
                pull_requests[f.target].push_back(f.claimed_sender);
                break;
              case adversary::Channel::kPullReply:
                sc.fab_reply_[f.target] += 1;
                break;
            }
            if (scoring && f.channel != adversary::Channel::kPullReply) {
              tables[f.target].on_control_arrival(f.claimed_sender);
            }
          }
        }
      }
    }

    // When a correct process finds a greylisted peer in its sampled view,
    // it re-draws the slot (exclusion from view selection). Bounded
    // retries; a failed re-draw wastes the slot.
    auto fix_target = [&](std::uint32_t t, std::size_t p) -> std::uint32_t {
      if (!scoring) return t;
      for (int tries = 0;
           tries < 4 && tables[p].greylisted(t); ++tries) {
        t = static_cast<std::uint32_t>(rng.below(n));
      }
      return t;
    };
    // Eclipse view poisoning: a captured slot of an attacked process points
    // at a colluder instead — unless the process has that colluder
    // greylisted, in which case the poisoned entry is rejected.
    auto capture_target = [&](std::uint32_t t, std::size_t p) -> std::uint32_t {
      if (view_capture <= 0.0 || n_mal == 0 || !is_attacked(p)) return t;
      if (!adv_rng.chance(view_capture)) return t;
      const std::uint32_t c =
          sc.colluder_ids_[adv_rng.below(sc.colluder_ids_.size())];
      if (scoring && tables[p].greylisted(c)) return t;
      return c;
    };

    // --- send phase (synchronized: everyone uses the snapshot `has_m`) ---
    for (std::size_t p = first_correct; p < n; ++p) {
      if (plan.view_push > 0) {
        if (zoo && has_m[p]) {
          // Observable data volume from p this round (adaptive's signal).
          sc.served_[p] += static_cast<float>(plan.view_push);
        }
        rng.sample_into(static_cast<std::uint32_t>(n),  // drum-lint: legacy-stream
                        static_cast<std::uint32_t>(plan.view_push),
                        static_cast<std::uint32_t>(p), sc.view_,
                        sc.sample_scratch_);
        for (auto t : sc.view_) {
          if (zoo) t = capture_target(t, p);
          t = fix_target(t, p);
          if (t == p) continue;  // failed greylist re-draw hit self
          if (is_malicious(t) || is_crashed(t)) continue;  // wasted fan-out
          if (rng.chance(params.loss)) continue;  // drum-lint: legacy-stream
          if (scoring && tables[t].greylisted(
                             static_cast<std::uint32_t>(p))) {
            continue;  // receiver drops greylisted peers pre-budget
          }
          push_arrivals[t].push_back(
              {static_cast<std::uint32_t>(p), has_m[p]});
          if (scoring) {
            tables[t].on_control_arrival(static_cast<std::uint32_t>(p));
          }
        }
      }
      if (plan.view_pull > 0) {
        rng.sample_into(static_cast<std::uint32_t>(n),  // drum-lint: legacy-stream
                        static_cast<std::uint32_t>(plan.view_pull),
                        static_cast<std::uint32_t>(p), sc.view_,
                        sc.sample_scratch_);
        for (auto t : sc.view_) {
          if (zoo) t = capture_target(t, p);
          t = fix_target(t, p);
          if (t == p) continue;
          std::size_t sent_idx = 0;
          if (scoring) {
            // Track the request for the futility signal. A correct
            // receiver acks every valid request that reaches it (the
            // empty pull-reply extension — bound overflow is normal
            // operation, never misbehavior), so `answered` is decided
            // here: the request arrives AND the ack survives the return
            // path. Only black holes — malicious or crashed peers — and
            // link loss leave a pull unanswered.
            sent_idx = sc.sent_pulls_[p].size();
            sc.sent_pulls_[p].push_back({t, 0});
          }
          if (is_malicious(t) || is_crashed(t)) continue;
          if (rng.chance(params.loss)) continue;  // drum-lint: legacy-stream
          if (scoring && tables[t].greylisted(
                             static_cast<std::uint32_t>(p))) {
            continue;
          }
          pull_requests[t].push_back(static_cast<std::uint32_t>(p));
          if (scoring) {
            tables[t].on_control_arrival(static_cast<std::uint32_t>(p));
            if (!rng.chance(params.loss)) {
              sc.sent_pulls_[p][sent_idx].answered = 1;
            }
          }
        }
      }
    }

    // --- receive phase ---
    std::vector<char>& new_m = sc.new_m_;
    new_m.assign(has_m.begin(), has_m.end());

    if (plan.shared_bound) {
      // §9 ablation: one joint bound covers ALL control messages —
      // pull-requests, push-offers, and push-replies (paper §9). Because
      // push-replies now compete in the flooded pool instead of having
      // their own (unattackable, random-port) budget, an attacked process
      // also loses the ability to COMPLETE ITS OWN outgoing pushes: each
      // outgoing push needs its push-reply to survive the sender's joint
      // bound. We model that as thinning each push delivery by the
      // sender's control-acceptance ratio this round.
      auto& fab = sc.fab_;
      auto& ratio = sc.ratio_;
      fab.assign(n, 0);
      ratio.assign(n, 1.0);
      for (std::size_t t = first_correct; t < n; ++t) {
        if (is_attacked(t)) {
          fab[t] = fabricated_arrivals(plan.x_push, params.loss, rng) +  // drum-lint: legacy-stream
                   fabricated_arrivals(plan.x_pull_req, params.loss, rng);  // drum-lint: legacy-stream
        }
        std::size_t total =
            push_arrivals[t].size() + pull_requests[t].size() + fab[t];
        ratio[t] = total <= plan.bound_push
                       ? 1.0
                       : static_cast<double>(plan.bound_push) /
                             static_cast<double>(total);
      }
      for (std::size_t t = first_correct; t < n; ++t) {
        std::size_t v_push = push_arrivals[t].size();
        std::size_t v_pull = pull_requests[t].size();
        accept_bounded(v_push + v_pull, fab[t], plan.bound_push, rng,  // drum-lint: legacy-stream
                       sc.accepted_, sc.picks_, sc.sample_scratch_);
        for (auto idx : sc.accepted_) {
          if (idx < v_push) {
            const auto& arr = push_arrivals[t][idx];
            // Push-reply must survive the sender's joint bound too.
            if (arr.carries_m && rng.chance(ratio[arr.sender])) new_m[t] = 1;  // drum-lint: legacy-stream
          } else {
            auto requester = pull_requests[t][idx - v_push];
            if (has_m[t] && !rng.chance(params.loss)) {  // drum-lint: legacy-stream
              reply_arrivals[requester].push_back(1);
            }
          }
        }
      }
    } else {
      for (std::size_t t = first_correct; t < n; ++t) {
        const bool att = is_attacked(t);
        if (plan.view_push > 0) {
          std::size_t fab =
              zoo ? sc.fab_push_[t]
                  : (att ? fabricated_arrivals(plan.x_push, params.loss, rng)  // drum-lint: legacy-stream
                         : 0);
          accept_bounded(push_arrivals[t].size(), fab, plan.bound_push, rng,  // drum-lint: legacy-stream
                         sc.accepted_, sc.picks_, sc.sample_scratch_);
          for (auto idx : sc.accepted_) {
            if (push_arrivals[t][idx].carries_m) new_m[t] = 1;
          }
        }
        if (plan.view_pull > 0) {
          std::size_t fab =
              zoo ? sc.fab_pull_[t]
                  : (att ? fabricated_arrivals(plan.x_pull_req, params.loss,
                                               rng)  // drum-lint: legacy-stream
                         : 0);
          accept_bounded(pull_requests[t].size(), fab, plan.bound_pull, rng,  // drum-lint: legacy-stream
                         sc.accepted_, sc.picks_, sc.sample_scratch_);
          for (auto idx : sc.accepted_) {
            auto requester = pull_requests[t][idx];
            if (has_m[t] && !rng.chance(params.loss)) {  // drum-lint: legacy-stream
              reply_arrivals[requester].push_back(1);
              if (zoo) sc.served_[t] += 1.0F;
            }
          }
        }
      }
    }

    // --- pull-reply delivery ---
    for (std::size_t t = first_correct; t < n; ++t) {
      auto& replies = reply_arrivals[t];
      if (replies.empty()) continue;
      if (plan.bounded_pull_replies) {
        // §9 ablation: replies land on a well-known, attacked, bounded port.
        std::size_t fab = zoo ? sc.fab_reply_[t]
                          : is_attacked(t)
                              ? fabricated_arrivals(plan.x_pull_reply,
                                                    params.loss, rng)  // drum-lint: legacy-stream
                              : 0;
        accept_bounded(replies.size(), fab, plan.bound_pull, rng,  // drum-lint: legacy-stream
                       sc.accepted_, sc.picks_, sc.sample_scratch_);
        for (auto idx : sc.accepted_) {
          if (replies[idx]) new_m[t] = 1;
        }
      } else {
        for (auto carries_m : replies) {
          if (carries_m) new_m[t] = 1;
        }
      }
    }

    // --- round-end scoring bookkeeping ---
    if (scoring) {
      for (std::size_t p = first_correct; p < n; ++p) {
        for (const auto& sent : sc.sent_pulls_[p]) {
          tables[p].on_pull_outcome(sent.target, sent.answered != 0);
        }
      }
    }
    if (zoo) {
      sc.usefulness_.swap(sc.served_);
    }

    has_m.swap(new_m);
  }

  if (scoring) {
    for (std::size_t id = first_correct; id < n; ++id) {
      result.greylist_entries += tables[id].greylist_entries();
      result.greylisted_at_end += tables[id].currently_greylisted();
    }
  }
  return result;
}

void AggregateResult::merge(const AggregateResult& other) {
  rounds_to_target.merge(other.rounds_to_target);
  rounds_to_target_attacked.merge(other.rounds_to_target_attacked);
  rounds_to_target_non_attacked.merge(other.rounds_to_target_non_attacked);
  rounds_to_leave_source.merge(other.rounds_to_leave_source);
  greylist_entries.merge(other.greylist_entries);
  coverage.merge(other.coverage);
  unreached_runs += other.unreached_runs;
}

namespace {

// Folds one trial's outcome into an aggregate — the same accumulation the
// old serial loop performed, applied per chunk by the workers.
void accumulate(AggregateResult& agg, const SimParams& params,
                const RunResult& res) {
  agg.rounds_to_target.add(static_cast<double>(res.rounds_to_target));
  if (params.alpha > 0 && (params.x > 0 || params.attack.enabled())) {
    agg.rounds_to_target_attacked.add(
        static_cast<double>(res.rounds_to_target_attacked));
    agg.rounds_to_target_non_attacked.add(
        static_cast<double>(res.rounds_to_target_non_attacked));
  }
  agg.rounds_to_leave_source.add(
      static_cast<double>(res.rounds_to_leave_source));
  if (params.scoring.enabled) {
    agg.greylist_entries.add(static_cast<double>(res.greylist_entries));
  }
  agg.coverage.add_run(res.coverage_by_round);
  if (!res.reached) ++agg.unreached_runs;
}

std::size_t resolve_threads(std::size_t requested, std::size_t runs) {
  std::size_t t = requested;
  if (t == 0) {
    if (const char* env = std::getenv("DRUM_SIM_THREADS");
        env != nullptr && *env != '\0') {
      t = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  return std::clamp<std::size_t>(t, 1, std::max<std::size_t>(runs, 1));
}

}  // namespace

AggregateResult simulate_many(const SimParams& params, std::size_t runs,
                              std::uint64_t seed) {
  return simulate_many(params, runs, seed, SimOptions{});
}

AggregateResult simulate_many(const SimParams& params, std::size_t runs,
                              std::uint64_t seed, const SimOptions& options) {
  const std::size_t threads = resolve_threads(options.threads, runs);

  // Pre-fork one Rng per trial from the master seed, in trial order — the
  // exact fork sequence the serial loop used — so every trial's randomness
  // is fixed before scheduling begins.
  std::vector<util::Rng> rngs;
  rngs.reserve(runs);
  util::Rng master(seed);
  for (std::size_t r = 0; r < runs; ++r) rngs.push_back(master.fork());  // drum-lint: legacy-stream

  // Trials execute in chunks pulled from a shared counter (cheap dynamic
  // load balancing); each chunk accumulates into its own partial, and
  // partials merge back in chunk order == trial order, which makes the
  // aggregate independent of both the thread count and the schedule.
  const std::size_t chunk = std::max<std::size_t>(1, runs / (threads * 4));
  const std::size_t n_chunks = runs == 0 ? 0 : (runs + chunk - 1) / chunk;
  std::vector<AggregateResult> partials(n_chunks);

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  // Function-local: guards `error` below.
  check::Mutex err_mu;  // drum-lint: allow(mutex-annotation)
  std::exception_ptr error;  // first failure wins; written under err_mu
  std::vector<obs::MetricsRegistry> worker_metrics(
      options.metrics != nullptr ? threads : 0);

  auto worker = [&](std::size_t w) {
    SimScratch scratch;
    obs::MetricsRegistry* reg =
        options.metrics != nullptr ? &worker_metrics[w] : nullptr;
    obs::Counter* trials_c = reg ? &reg->counter("sim.trials") : nullptr;
    obs::Counter* chunks_c = reg ? &reg->counter("sim.chunks") : nullptr;
    obs::Histogram* trial_us = reg ? &reg->histogram("sim.trial_us") : nullptr;
    obs::Histogram* depth_h =
        reg ? &reg->histogram("sim.queue_depth") : nullptr;
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks) break;
        if (depth_h != nullptr) {
          depth_h->record(static_cast<std::uint64_t>(n_chunks - 1 - c));
        }
        if (chunks_c != nullptr) chunks_c->inc();
        AggregateResult& agg = partials[c];
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(runs, lo + chunk);
        for (std::size_t t = lo; t < hi; ++t) {
          if (trial_us != nullptr) {
            const auto t0 = std::chrono::steady_clock::now();
            RunResult res = simulate_run(params, rngs[t], scratch);
            const auto t1 = std::chrono::steady_clock::now();
            trial_us->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                    .count()));
            trials_c->inc();
            accumulate(agg, params, res);
          } else {
            RunResult res = simulate_run(params, rngs[t], scratch);
            accumulate(agg, params, res);
          }
        }
      }
    } catch (...) {
      const check::MutexLock lk(err_mu);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& th : pool) th.join();
  }
  if (error) std::rethrow_exception(error);

  AggregateResult agg;
  for (const auto& p : partials) agg.merge(p);
  if (options.metrics != nullptr) {
    for (const auto& m : worker_metrics) options.metrics->merge(m);
    options.metrics->gauge("sim.threads").set(static_cast<double>(threads));
  }
  return agg;
}

}  // namespace drum::sim
