// ChaCha20 stream cipher (RFC 8439). Used together with HMAC-SHA256 in the
// encrypt-then-MAC "port box" that protects random port numbers on the wire
// (paper §4: "random ports ... are encrypted").
//
// This is the incremental form; the one-shot chacha20_xor() lives in
// drum/crypto/api.hpp. Whole-block spans route through the active
// crypto::Backend (scalar reference, 4-way SSE2, or 8-way AVX2 — see
// backend.hpp); all backends generate bit-identical keystreams.
#pragma once

#include <array>
#include <cstdint>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(util::ByteSpan key, util::ByteSpan nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place. Stateful: successive calls
  /// continue the stream.
  void crypt(std::uint8_t* data, std::size_t len);

  /// Convenience: returns data XOR keystream.
  util::Bytes crypt_copy(util::ByteSpan data);

  /// Raw block function (exposed for RFC 8439 test vectors).
  static std::array<std::uint8_t, 64> block(util::ByteSpan key,
                                            util::ByteSpan nonce,
                                            std::uint32_t counter);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> keystream_{};
  std::size_t ks_pos_ = 64;  // exhausted
};

}  // namespace drum::crypto
