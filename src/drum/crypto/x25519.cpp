#include "drum/crypto/x25519.hpp"

#include "drum/crypto/fe25519.hpp"

namespace drum::crypto {

X25519Key x25519_clamp(X25519Key scalar) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
  return scalar;
}

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  X25519Key k = x25519_clamp(scalar);

  Fe x1, x2, z2, x3, z3;
  fe_frombytes(x1, point.data());
  fe_one(x2);
  fe_zero(z2);
  fe_copy(x3, x1);
  fe_one(z3);

  std::uint64_t swap = 0;
  for (int t = 254; t >= 0; --t) {
    std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a, aa, b, bb, e, c, d, da, cb, tmp;
    fe_add(a, x2, z2);
    fe_sq(aa, a);
    fe_sub(b, x2, z2);
    fe_sq(bb, b);
    fe_sub(e, aa, bb);
    fe_add(c, x3, z3);
    fe_sub(d, x3, z3);
    fe_mul(da, d, a);
    fe_mul(cb, c, b);
    fe_add(tmp, da, cb);
    fe_sq(x3, tmp);
    fe_sub(tmp, da, cb);
    fe_sq(tmp, tmp);
    fe_mul(z3, x1, tmp);
    fe_mul(x2, aa, bb);
    fe_mul_small(tmp, e, 121665);
    fe_add(tmp, aa, tmp);
    fe_mul(z2, e, tmp);
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  Fe zinv, out;
  fe_invert(zinv, z2);
  fe_mul(out, x2, zinv);
  X25519Key result;
  fe_tobytes(result.data(), out);
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

}  // namespace drum::crypto
