// Internal Ed25519 group arithmetic shared by ed25519.cpp (sign/verify) and
// ed25519_batch.cpp (batch verification). Extended homogeneous coordinates
// over fe25519 with the complete twisted-Edwards addition law. Not part of
// the public API — include drum/crypto/ed25519.hpp / api.hpp instead.
#pragma once

#include <array>
#include <cstdint>

#include "drum/crypto/fe25519.hpp"
#include "drum/util/bytes.hpp"

namespace drum::crypto::detail {

// Extended homogeneous coordinates (X:Y:Z:T), x = X/Z, y = Y/Z, xy = T/Z.
struct Ge {
  Fe x, y, z, t;
};

// Curve constants: d = -121665/121666, 2d, sqrt(-1) (all mod p).
const Fe& const_d();
const Fe& const_d2();
const Fe& const_sqrtm1();

void ge_identity(Ge& h);
bool ge_is_identity(const Ge& h);

// Unified twisted-Edwards addition (a = -1): complete for Ed25519 because d
// is non-square, so it also handles doubling and identity correctly.
void ge_add(Ge& out, const Ge& p, const Ge& q);
void ge_neg(Ge& out, const Ge& p);

// Variable-time double-and-add over the 256-bit scalar (little-endian).
void ge_scalarmult(Ge& out, const std::uint8_t scalar[32], const Ge& p);

void ge_tobytes(std::uint8_t s[32], const Ge& h);
// Decompression (RFC 8032 §5.1.3). Returns false on invalid encodings.
bool ge_frombytes(Ge& h, const std::uint8_t s[32]);

// Base point B: y = 4/5, x positive ("even").
const Ge& base_point();

// Reduce a little-endian value mod L to 32 little-endian bytes.
std::array<std::uint8_t, 32> reduce_mod_l(util::ByteSpan bytes);

std::array<std::uint8_t, 32> clamp_scalar(const std::uint8_t h[32]);

}  // namespace drum::crypto::detail
