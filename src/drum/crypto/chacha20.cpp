#include "drum/crypto/chacha20.hpp"

#include <stdexcept>

#include "drum/crypto/backend.hpp"
#include "drum/crypto/backend_impl.hpp"

namespace drum::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void run_block(const std::array<std::uint32_t, 16>& in,
               std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + in[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

namespace detail {

// Portable reference (the scalar backend): one block at a time.
void chacha20_xor_blocks_scalar(const std::uint32_t state[16],
                                std::uint8_t* data, std::size_t nblocks) {
  std::array<std::uint32_t, 16> st;
  for (int i = 0; i < 16; ++i) st[i] = state[i];
  std::array<std::uint8_t, 64> ks;
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    run_block(st, ks);
    st[12] += 1;  // 32-bit block counter, wraps (RFC 8439 §2.3)
    for (int i = 0; i < 64; ++i) data[64 * blk + i] ^= ks[i];
  }
}

}  // namespace detail

ChaCha20::ChaCha20(util::ByteSpan key, util::ByteSpan nonce,
                   std::uint32_t counter) {
  if (key.size() != kKeySize) throw std::invalid_argument("chacha20 key size");
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("chacha20 nonce size");
  }
  state_[0] = 0x61707865; state_[1] = 0x3320646e;
  state_[2] = 0x79622d32; state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  run_block(state_, keystream_);
  state_[12] += 1;
  ks_pos_ = 0;
}

void ChaCha20::crypt(std::uint8_t* data, std::size_t len) {
  std::size_t i = 0;
  // Drain any keystream buffered by a previous partial-block call.
  while (ks_pos_ < 64 && i < len) data[i++] ^= keystream_[ks_pos_++];
  // Whole blocks go through the active backend in one call.
  if (const std::size_t nblocks = (len - i) / 64) {
    active_backend().chacha20_xor_blocks(state_.data(), data + i, nblocks);
    state_[12] += static_cast<std::uint32_t>(nblocks);
    i += nblocks * 64;
  }
  if (i < len) {
    refill();
    while (i < len) data[i++] ^= keystream_[ks_pos_++];
  }
}

util::Bytes ChaCha20::crypt_copy(util::ByteSpan data) {
  util::Bytes out(data.begin(), data.end());
  crypt(out.data(), out.size());
  return out;
}

std::array<std::uint8_t, 64> ChaCha20::block(util::ByteSpan key,
                                             util::ByteSpan nonce,
                                             std::uint32_t counter) {
  ChaCha20 c(key, nonce, counter);
  std::array<std::uint8_t, 64> out;
  run_block(c.state_, out);
  return out;
}

}  // namespace drum::crypto
