// The "port box": authenticated encryption of the random ephemeral port
// numbers Drum advertises in pull-requests and push-offers (paper §4: "The
// random ports transmitted during the push and pull operations are
// encrypted ... in order to prevent an adversary from discovering them").
//
// Construction: encrypt-then-MAC. ChaCha20 under a pairwise key encrypts the
// payload; HMAC-SHA256 (truncated to 16 bytes) authenticates nonce+ciphertext.
// The pairwise key is derived from an X25519 shared secret via HKDF (see
// keys.hpp). A fresh random 12-byte nonce is carried alongside each box.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"

namespace drum::crypto {

inline constexpr std::size_t kPortBoxNonceSize = 12;
inline constexpr std::size_t kPortBoxTagSize = 16;
inline constexpr std::size_t kPortBoxKeySize = 32;

/// Wire overhead added by seal() on top of the plaintext size.
inline constexpr std::size_t kPortBoxOverhead =
    kPortBoxNonceSize + kPortBoxTagSize;

/// Seals `plaintext` under `key`. The nonce is drawn from `rng`.
/// Output layout: nonce || ciphertext || tag.
util::Bytes portbox_seal(util::ByteSpan key, util::ByteSpan plaintext,
                         util::Rng& rng);

/// Opens a sealed box; returns nullopt if the tag does not verify or the
/// box is malformed. Constant-time tag comparison.
std::optional<util::Bytes> portbox_open(util::ByteSpan key,
                                        util::ByteSpan box);

/// Convenience for the common case of boxing a single u16 port.
util::Bytes portbox_seal_port(util::ByteSpan key, std::uint16_t port,
                              util::Rng& rng);
std::optional<std::uint16_t> portbox_open_port(util::ByteSpan key,
                                               util::ByteSpan box);

/// One box to open under one pairwise key. Both spans are views; the caller
/// keeps the backing storage alive across the batch call.
struct PortBoxOpenJob {
  util::ByteSpan key;
  util::ByteSpan box;
};

/// Opens many port boxes at once. The HMAC tags are recomputed via
/// hmac_sha256_batch (multi-buffer SHA-256), so a batch of boxed control
/// frames costs two wide hash passes instead of 2·n scalar ones. Result i is
/// exactly portbox_open_port(jobs[i].key, jobs[i].box): nullopt on a bad tag,
/// malformed box, or non-port plaintext size.
std::vector<std::optional<std::uint16_t>> portbox_open_port_batch(
    std::span<const PortBoxOpenJob> jobs);

}  // namespace drum::crypto
