// 4-way ChaCha20 block generation with SSE2. ChaCha20 blocks are
// independent given the counter, so four blocks run in lockstep, one per
// 32-bit lane: sixteen state vectors, each broadcasting one state word,
// with the counter vector offset per lane (state[12] + {0,1,2,3}, wrapping
// mod 2^32 as RFC 8439 prescribes). A 4x4 dword transpose per 4-word group
// turns the word-major result back into per-block keystream bytes.
//
// Remainder blocks (nblocks % 4) fall back to the scalar reference with the
// counter advanced past the vectorized part.
//
// Compiled with -msse2 (baseline on x86-64); empty TU without it.
#include "drum/crypto/backend_impl.hpp"

#if defined(DRUM_CRYPTO_HAVE_SSE2) && defined(__SSE2__)

#include <emmintrin.h>

namespace drum::crypto::detail {

namespace {

inline __m128i rotl(__m128i x, int n) {
  return _mm_or_si128(_mm_slli_epi32(x, n), _mm_srli_epi32(x, 32 - n));
}

inline void quarter_round(__m128i& a, __m128i& b, __m128i& c, __m128i& d) {
  a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a); d = rotl(d, 16);
  c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c); b = rotl(b, 12);
  a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a); d = rotl(d, 8);
  c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c); b = rotl(b, 7);
}

// r[j] <- dword j of each input row, row index in the lane position.
inline void transpose4x4(__m128i r[4]) {
  const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
  const __m128i t1 = _mm_unpacklo_epi32(r[2], r[3]);
  const __m128i t2 = _mm_unpackhi_epi32(r[0], r[1]);
  const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
  r[0] = _mm_unpacklo_epi64(t0, t1);
  r[1] = _mm_unpackhi_epi64(t0, t1);
  r[2] = _mm_unpacklo_epi64(t2, t3);
  r[3] = _mm_unpackhi_epi64(t2, t3);
}

}  // namespace

void chacha20_xor_blocks_sse2(const std::uint32_t state[16],
                              std::uint8_t* data, std::size_t nblocks) {
  std::size_t done = 0;
  for (; done + 4 <= nblocks; done += 4) {
    __m128i init[16];
    for (int i = 0; i < 16; ++i) {
      init[i] = _mm_set1_epi32(static_cast<int>(state[i]));
    }
    // Counter lanes: base + {0,1,2,3}; _mm_add_epi32 wraps mod 2^32.
    init[12] = _mm_add_epi32(
        _mm_set1_epi32(static_cast<int>(state[12] +
                                        static_cast<std::uint32_t>(done))),
        _mm_setr_epi32(0, 1, 2, 3));

    __m128i x[16];
    for (int i = 0; i < 16; ++i) x[i] = init[i];
    for (int round = 0; round < 10; ++round) {
      quarter_round(x[0], x[4], x[8], x[12]);
      quarter_round(x[1], x[5], x[9], x[13]);
      quarter_round(x[2], x[6], x[10], x[14]);
      quarter_round(x[3], x[7], x[11], x[15]);
      quarter_round(x[0], x[5], x[10], x[15]);
      quarter_round(x[1], x[6], x[11], x[12]);
      quarter_round(x[2], x[7], x[8], x[13]);
      quarter_round(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) x[i] = _mm_add_epi32(x[i], init[i]);

    // Per 4-word group, transpose word-major -> block-major and XOR out.
    std::uint8_t* out = data + 64 * done;
    for (int grp = 0; grp < 4; ++grp) {
      __m128i q[4] = {x[4 * grp], x[4 * grp + 1], x[4 * grp + 2],
                      x[4 * grp + 3]};
      transpose4x4(q);
      for (int b = 0; b < 4; ++b) {
        __m128i* p = reinterpret_cast<__m128i*>(out + 64 * b + 16 * grp);
        _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), q[b]));
      }
    }
  }

  if (done < nblocks) {
    std::uint32_t st[16];
    for (int i = 0; i < 16; ++i) st[i] = state[i];
    st[12] += static_cast<std::uint32_t>(done);
    chacha20_xor_blocks_scalar(st, data + 64 * done, nblocks - done);
  }
}

}  // namespace drum::crypto::detail

#endif  // DRUM_CRYPTO_HAVE_SSE2 && __SSE2__
