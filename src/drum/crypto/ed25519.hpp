// Ed25519 signatures (RFC 8032). Implemented over the fe25519 field with the
// complete twisted-Edwards addition law (a = -1, non-square d, so a single
// unified formula covers addition and doubling). Scalar arithmetic mod the
// group order L is done with BigInt.
//
// Drum uses Ed25519 for: message source authentication ("unforgeable
// multicast"), CA-signed membership certificates, and signed join/leave
// events (paper §3, §10).
#pragma once

#include <array>
#include <optional>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

using Ed25519Seed = std::array<std::uint8_t, kEd25519SeedSize>;
using Ed25519PublicKey = std::array<std::uint8_t, kEd25519PublicKeySize>;
using Ed25519Signature = std::array<std::uint8_t, kEd25519SignatureSize>;

/// Derives the public key from a 32-byte seed (RFC 8032 §5.1.5).
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Signs a message (RFC 8032 §5.1.6). Deterministic.
Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& pub,
                              util::ByteSpan message);

/// Verifies a signature (RFC 8032 §5.1.7). Rejects non-canonical S and
/// invalid point encodings.
bool ed25519_verify(const Ed25519PublicKey& pub, util::ByteSpan message,
                    const Ed25519Signature& sig);

}  // namespace drum::crypto
