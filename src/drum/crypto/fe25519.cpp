#include "drum/crypto/fe25519.hpp"

namespace drum::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
constexpr u64 kMask = (1ULL << 51) - 1;
}  // namespace

void fe_zero(Fe& h) {
  for (auto& l : h.v) l = 0;
}

void fe_one(Fe& h) {
  fe_zero(h);
  h.v[0] = 1;
}

void fe_copy(Fe& h, const Fe& f) { h = f; }

void fe_frombytes(Fe& h, const std::uint8_t* s) {
  auto load64 = [](const std::uint8_t* p) {
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
    return v;
  };
  h.v[0] = load64(s) & kMask;
  h.v[1] = (load64(s + 6) >> 3) & kMask;
  h.v[2] = (load64(s + 12) >> 6) & kMask;
  h.v[3] = (load64(s + 19) >> 1) & kMask;
  h.v[4] = (load64(s + 24) >> 12) & kMask;
}

namespace {
// Weak reduction: brings all limbs below 2^52 or so.
inline void carry_pass(Fe& h) {
  for (int i = 0; i < 4; ++i) {
    h.v[i + 1] += h.v[i] >> 51;
    h.v[i] &= kMask;
  }
  h.v[0] += 19 * (h.v[4] >> 51);
  h.v[4] &= kMask;
}
}  // namespace

void fe_tobytes(std::uint8_t* s, const Fe& f) {
  Fe t = f;
  carry_pass(t);
  carry_pass(t);
  carry_pass(t);
  // Now t < 2^255 + small; subtract p if t >= p (two conditional passes).
  for (int pass = 0; pass < 2; ++pass) {
    // Compute t - p = t - (2^255 - 19); if non-negative, keep it.
    u64 q = (t.v[0] + 19) >> 51;
    q = (t.v[1] + q) >> 51;
    q = (t.v[2] + q) >> 51;
    q = (t.v[3] + q) >> 51;
    q = (t.v[4] + q) >> 51;  // q = 1 iff t >= p
    t.v[0] += 19 * q;
    t.v[1] += t.v[0] >> 51; t.v[0] &= kMask;
    t.v[2] += t.v[1] >> 51; t.v[1] &= kMask;
    t.v[3] += t.v[2] >> 51; t.v[2] &= kMask;
    t.v[4] += t.v[3] >> 51; t.v[3] &= kMask;
    t.v[4] &= kMask;  // drop the 2^255 bit
  }
  u64 limbs[4];
  limbs[0] = t.v[0] | t.v[1] << 51;
  limbs[1] = t.v[1] >> 13 | t.v[2] << 38;
  limbs[2] = t.v[2] >> 26 | t.v[3] << 25;
  limbs[3] = t.v[3] >> 39 | t.v[4] << 12;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s[8 * i + j] = static_cast<std::uint8_t>(limbs[i] >> (8 * j));
    }
  }
}

void fe_add(Fe& h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 5; ++i) h.v[i] = f.v[i] + g.v[i];
  carry_pass(h);
}

void fe_sub(Fe& h, const Fe& f, const Fe& g) {
  // Add 2p (in loose form) to keep limbs non-negative.
  h.v[0] = f.v[0] + 0xFFFFFFFFFFFDAULL - g.v[0];
  h.v[1] = f.v[1] + 0xFFFFFFFFFFFFEULL - g.v[1];
  h.v[2] = f.v[2] + 0xFFFFFFFFFFFFEULL - g.v[2];
  h.v[3] = f.v[3] + 0xFFFFFFFFFFFFEULL - g.v[3];
  h.v[4] = f.v[4] + 0xFFFFFFFFFFFFEULL - g.v[4];
  carry_pass(h);
}

void fe_neg(Fe& h, const Fe& f) {
  Fe zero;
  fe_zero(zero);
  fe_sub(h, zero, f);
}

void fe_mul(Fe& h, const Fe& f, const Fe& g) {
  const u64 f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const u64 g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3, g4_19 = 19 * g4;

  u128 t0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 +
            (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 t1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 +
            (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 t2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 +
            (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 t3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 +
            (u128)f4 * g4_19;
  u128 t4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 +
            (u128)f4 * g0;

  u64 r0, r1, r2, r3, r4, carry;
  r0 = (u64)t0 & kMask; carry = (u64)(t0 >> 51);
  t1 += carry;
  r1 = (u64)t1 & kMask; carry = (u64)(t1 >> 51);
  t2 += carry;
  r2 = (u64)t2 & kMask; carry = (u64)(t2 >> 51);
  t3 += carry;
  r3 = (u64)t3 & kMask; carry = (u64)(t3 >> 51);
  t4 += carry;
  r4 = (u64)t4 & kMask; carry = (u64)(t4 >> 51);
  r0 += carry * 19;
  r1 += r0 >> 51; r0 &= kMask;
  r2 += r1 >> 51; r1 &= kMask;

  h.v[0] = r0; h.v[1] = r1; h.v[2] = r2; h.v[3] = r3; h.v[4] = r4;
}

void fe_sq(Fe& h, const Fe& f) { fe_mul(h, f, f); }

void fe_mul_small(Fe& h, const Fe& f, u64 n) {
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)f.v[i] * n;
  u64 r0, r1, r2, r3, r4, carry;
  r0 = (u64)t[0] & kMask; carry = (u64)(t[0] >> 51);
  t[1] += carry;
  r1 = (u64)t[1] & kMask; carry = (u64)(t[1] >> 51);
  t[2] += carry;
  r2 = (u64)t[2] & kMask; carry = (u64)(t[2] >> 51);
  t[3] += carry;
  r3 = (u64)t[3] & kMask; carry = (u64)(t[3] >> 51);
  t[4] += carry;
  r4 = (u64)t[4] & kMask; carry = (u64)(t[4] >> 51);
  r0 += carry * 19;
  r1 += r0 >> 51; r0 &= kMask;
  h.v[0] = r0; h.v[1] = r1; h.v[2] = r2; h.v[3] = r3; h.v[4] = r4;
}

void fe_cswap(Fe& f, Fe& g, u64 b) {
  u64 mask = 0 - b;
  for (int i = 0; i < 5; ++i) {
    u64 x = mask & (f.v[i] ^ g.v[i]);
    f.v[i] ^= x;
    g.v[i] ^= x;
  }
}

void fe_cmov(Fe& h, const Fe& f, u64 b) {
  u64 mask = 0 - b;
  for (int i = 0; i < 5; ++i) {
    h.v[i] ^= mask & (h.v[i] ^ f.v[i]);
  }
}

namespace {
// h = f^(2^n) via n squarings.
void fe_sqn(Fe& h, const Fe& f, int n) {
  fe_sq(h, f);
  for (int i = 1; i < n; ++i) fe_sq(h, h);
}
}  // namespace

void fe_invert(Fe& out, const Fe& z) {
  // Addition chain for p-2 = 2^255 - 21 (standard ref10 chain).
  Fe t0, t1, t2, t3;
  fe_sq(t0, z);                 // 2
  fe_sqn(t1, t0, 2);            // 8
  fe_mul(t1, z, t1);            // 9
  fe_mul(t0, t0, t1);           // 11
  fe_sq(t2, t0);                // 22
  fe_mul(t1, t1, t2);           // 31 = 2^5 - 1
  fe_sqn(t2, t1, 5);            // 2^10 - 2^5
  fe_mul(t1, t2, t1);           // 2^10 - 1
  fe_sqn(t2, t1, 10);           // 2^20 - 2^10
  fe_mul(t2, t2, t1);           // 2^20 - 1
  fe_sqn(t3, t2, 20);           // 2^40 - 2^20
  fe_mul(t2, t3, t2);           // 2^40 - 1
  fe_sqn(t2, t2, 10);           // 2^50 - 2^10
  fe_mul(t1, t2, t1);           // 2^50 - 1
  fe_sqn(t2, t1, 50);           // 2^100 - 2^50
  fe_mul(t2, t2, t1);           // 2^100 - 1
  fe_sqn(t3, t2, 100);          // 2^200 - 2^100
  fe_mul(t2, t3, t2);           // 2^200 - 1
  fe_sqn(t2, t2, 50);           // 2^250 - 2^50
  fe_mul(t1, t2, t1);           // 2^250 - 1
  fe_sqn(t1, t1, 5);            // 2^255 - 2^5
  fe_mul(out, t1, t0);          // 2^255 - 21
}

void fe_pow22523(Fe& out, const Fe& z) {
  // z^((p-5)/8) = z^(2^252 - 3) (standard ref10 chain).
  Fe t0, t1, t2;
  fe_sq(t0, z);                 // 2
  fe_sqn(t1, t0, 2);            // 8
  fe_mul(t1, z, t1);            // 9
  fe_mul(t0, t0, t1);           // 11
  fe_sq(t0, t0);                // 22
  fe_mul(t0, t1, t0);           // 31
  fe_sqn(t1, t0, 5);            // 2^10 - 2^5
  fe_mul(t0, t1, t0);           // 2^10 - 1
  fe_sqn(t1, t0, 10);           // 2^20 - 2^10
  fe_mul(t1, t1, t0);           // 2^20 - 1
  fe_sqn(t2, t1, 20);           // 2^40 - 2^20
  fe_mul(t1, t2, t1);           // 2^40 - 1
  fe_sqn(t1, t1, 10);           // 2^50 - 2^10
  fe_mul(t0, t1, t0);           // 2^50 - 1
  fe_sqn(t1, t0, 50);           // 2^100 - 2^50
  fe_mul(t1, t1, t0);           // 2^100 - 1
  fe_sqn(t2, t1, 100);          // 2^200 - 2^100
  fe_mul(t1, t2, t1);           // 2^200 - 1
  fe_sqn(t1, t1, 50);           // 2^250 - 2^50
  fe_mul(t0, t1, t0);           // 2^250 - 1
  fe_sqn(t0, t0, 2);            // 2^252 - 4
  fe_mul(out, t0, z);           // 2^252 - 3
}

bool fe_is_zero(const Fe& f) {
  std::uint8_t s[32];
  fe_tobytes(s, f);
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

bool fe_is_negative(const Fe& f) {
  std::uint8_t s[32];
  fe_tobytes(s, f);
  return (s[0] & 1) != 0;
}

}  // namespace drum::crypto
