// Internal declarations of the per-backend block functions assembled into
// Backend tables by backend.cpp. Scalar entry points live in sha256.cpp /
// chacha20.cpp next to the reference implementations; ISA-specific ones
// live in their own translation units (sha256_shani.cpp, sha256_avx2.cpp,
// chacha20_sse2.cpp, chacha20_avx2.cpp) compiled with the matching -m
// flags. Not installed / not part of the public API.
#pragma once

#include <cstddef>
#include <cstdint>

namespace drum::crypto::detail {

void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                            std::size_t nblocks);
void sha256_compress_x8_scalar(std::uint32_t states[8][8],
                               const std::uint8_t* const blocks[8],
                               std::size_t nblocks);
void chacha20_xor_blocks_scalar(const std::uint32_t state[16],
                                std::uint8_t* data, std::size_t nblocks);

#if defined(DRUM_CRYPTO_HAVE_SHANI)
// SHA extensions (one block per ~64 cycles); requires SHA-NI + SSSE3 + SSE4.1.
void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                           std::size_t nblocks);
#endif

#if defined(DRUM_CRYPTO_HAVE_AVX2)
// Eight-lane multi-buffer SHA-256 (one 32-bit op per lane per instruction).
void sha256_compress_x8_avx2(std::uint32_t states[8][8],
                             const std::uint8_t* const blocks[8],
                             std::size_t nblocks);
// Eight ChaCha20 blocks per pass.
void chacha20_xor_blocks_avx2(const std::uint32_t state[16],
                              std::uint8_t* data, std::size_t nblocks);
#endif

#if defined(DRUM_CRYPTO_HAVE_SSE2)
// Four ChaCha20 blocks per pass (SSE2 is baseline on x86-64).
void chacha20_xor_blocks_sse2(const std::uint32_t state[16],
                              std::uint8_t* data, std::size_t nblocks);
#endif

}  // namespace drum::crypto::detail
