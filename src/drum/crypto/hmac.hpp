// HMAC (RFC 2104) over SHA-256 and SHA-512, plus HKDF (RFC 5869).
// Used to authenticate encrypted-port boxes and to derive pairwise session
// keys from X25519 shared secrets.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "drum/crypto/sha256.hpp"
#include "drum/crypto/sha512.hpp"
#include "drum/util/bytes.hpp"

namespace drum::crypto {

/// HMAC-SHA256(key, data).
Sha256::Digest hmac_sha256(util::ByteSpan key, util::ByteSpan data);

/// HMAC-SHA256 over many independent (key, data) pairs at once. Runs the
/// inner and outer hashes as two sha256_batch passes (8-lane AVX2 when
/// available), so a flood of port-boxed control frames authenticates at
/// multi-buffer throughput. `keys.size()` must equal `datas.size()`; digest
/// i is exactly hmac_sha256(keys[i], datas[i]).
std::vector<Sha256::Digest> hmac_sha256_batch(
    std::span<const util::ByteSpan> keys,
    std::span<const util::ByteSpan> datas);

/// HMAC-SHA512(key, data).
Sha512::Digest hmac_sha512(util::ByteSpan key, util::ByteSpan data);

/// HKDF-SHA256 extract-then-expand (RFC 5869). `out_len` <= 255*32.
util::Bytes hkdf_sha256(util::ByteSpan ikm, util::ByteSpan salt,
                        std::string_view info, std::size_t out_len);

}  // namespace drum::crypto
