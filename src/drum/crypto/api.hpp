// The one public entry point for drum's cryptographic primitives.
//
// Shapes, uniformly:
//   * one-shot  — crypto::sha256(msg), crypto::sha512(msg),
//                 crypto::chacha20_xor(...), crypto::ed25519_verify(...)
//   * incremental — the Sha256 / Sha512 / ChaCha20 classes
//                 (construct = init, update, final)
//   * batch     — crypto::sha256_batch(msgs),
//                 crypto::ed25519_verify_batch(jobs)
//
// Every form routes through the active crypto::Backend (backend.hpp):
// scalar reference, or ISA-accelerated paths picked at startup from CPUID
// and overridable with DRUM_CRYPTO_BACKEND=scalar|native. Results are
// bit-identical across backends.
#pragma once

#include <span>
#include <vector>

#include "drum/crypto/chacha20.hpp"
#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/sha256.hpp"
#include "drum/crypto/sha512.hpp"
#include "drum/util/bytes.hpp"

namespace drum::crypto {

/// One-shot SHA-256.
Sha256::Digest sha256(util::ByteSpan data);

/// One-shot SHA-512.
Sha512::Digest sha512(util::ByteSpan data);

/// SHA-256 over many independent messages at once. Groups of eight run in
/// lockstep through the multi-buffer backend (8-lane AVX2 when available),
/// so throughput is highest when messages have similar lengths. Digest i is
/// exactly sha256(messages[i]).
std::vector<Sha256::Digest> sha256_batch(
    std::span<const util::ByteSpan> messages);

/// One-shot ChaCha20: XORs the keystream for (key, nonce, counter) into
/// `data` in place. Equivalent to ChaCha20(key, nonce, counter).crypt(...).
void chacha20_xor(util::ByteSpan key, util::ByteSpan nonce,
                  std::uint32_t counter, std::uint8_t* data, std::size_t len);

/// Copying form of chacha20_xor.
util::Bytes chacha20_xor_copy(util::ByteSpan key, util::ByteSpan nonce,
                              std::uint32_t counter, util::ByteSpan data);

/// One unit of batch signature verification. `message` is a non-owning view;
/// the caller keeps the bytes alive until ed25519_verify_batch returns.
struct VerifyJob {
  Ed25519PublicKey pub;
  util::ByteSpan message;
  Ed25519Signature sig;
};

/// Verifies many Ed25519 signatures, sharing the doubling ladder across the
/// whole batch (random linear combination + Straus multi-scalar
/// multiplication). Malformed encodings (non-canonical S, invalid points)
/// are rejected per-signature up front exactly as ed25519_verify does, and
/// if the combined check fails the batch falls back to per-signature
/// verification to attribute the exact bad indices — so any single bad
/// signature gets the same verdict as ed25519_verify, and a forgery passes
/// only with probability ~2^-128 per attempt. Sole caveat (standard for
/// batch Ed25519, cf. RFC 8032 §8.9 and ed25519_batch.cpp): multiple
/// colluding signatures whose defects lie entirely in the order-8 torsion
/// subgroup may cancel inside the combination and be accepted; this does
/// not affect unforgeability.
std::vector<bool> ed25519_verify_batch(std::span<const VerifyJob> jobs);

}  // namespace drum::crypto
