#include "drum/crypto/backend.hpp"

#include <cstdlib>
#include <cstring>

#include "drum/crypto/backend_impl.hpp"
#include "drum/util/log.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace drum::crypto {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
// XCR0 via xgetbv: bit 1 = SSE state, bit 2 = AVX (YMM) state. AVX2 is only
// usable when the OS context-switches the YMM registers.
std::uint64_t read_xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect_cpu() {
  CpuFeatures f;
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (__get_cpuid(1, &a, &b, &c, &d)) {
    f.sse2 = (d >> 26) & 1;
    f.ssse3 = (c >> 9) & 1;
    f.sse41 = (c >> 19) & 1;
    const bool osxsave = (c >> 27) & 1;
    const bool avx = (c >> 28) & 1;
    unsigned a7 = 0, b7 = 0, c7 = 0, d7 = 0;
    if (__get_cpuid_count(7, 0, &a7, &b7, &c7, &d7)) {
      f.sha_ni = (b7 >> 29) & 1;
      const bool avx2_bit = (b7 >> 5) & 1;
      f.avx2 = avx2_bit && avx && osxsave && ((read_xcr0() & 0x6) == 0x6);
    }
  }
  return f;
}
#else
CpuFeatures detect_cpu() { return CpuFeatures{}; }
#endif

Backend make_scalar() {
  Backend b;
  b.name = "scalar";
  b.sha256_compress = detail::sha256_compress_scalar;
  b.sha256_compress_x8 = detail::sha256_compress_x8_scalar;
  b.chacha20_xor_blocks = detail::chacha20_xor_blocks_scalar;
  return b;
}

Backend make_native() {
  Backend b = make_scalar();
  b.name = "native";
  [[maybe_unused]] const CpuFeatures& cpu = cpu_features();
#if defined(DRUM_CRYPTO_HAVE_SHANI)
  if (cpu.sha_ni && cpu.ssse3 && cpu.sse41) {
    b.sha256_compress = detail::sha256_compress_shani;
  }
#endif
#if defined(DRUM_CRYPTO_HAVE_AVX2)
  if (cpu.avx2) {
    b.sha256_compress_x8 = detail::sha256_compress_x8_avx2;
    b.chacha20_xor_blocks = detail::chacha20_xor_blocks_avx2;
  }
#endif
#if defined(DRUM_CRYPTO_HAVE_SSE2)
  if (cpu.sse2 && b.chacha20_xor_blocks == detail::chacha20_xor_blocks_scalar) {
    b.chacha20_xor_blocks = detail::chacha20_xor_blocks_sse2;
  }
#endif
  return b;
}

// The mutable active pointer. Initialized from the environment on first
// use; set_active_backend() (tests/benches only) may swap it later.
const Backend* initial_active() {
  const char* env = std::getenv("DRUM_CRYPTO_BACKEND");
  if (env == nullptr || std::strcmp(env, "native") == 0) {
    return &native_backend();
  }
  if (std::strcmp(env, "scalar") == 0) return &scalar_backend();
  util::log_line(util::LogLevel::kWarn,
                 std::string("ignoring unknown DRUM_CRYPTO_BACKEND=") + env +
                     " (expected scalar|native)");
  return &native_backend();
}

const Backend*& active_slot() {
  static const Backend* active = initial_active();
  return active;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_cpu();
  return f;
}

const Backend& scalar_backend() {
  static const Backend b = make_scalar();
  return b;
}

const Backend& native_backend() {
  static const Backend b = make_native();
  return b;
}

bool native_backend_accelerated() {
  const Backend& n = native_backend();
  const Backend& s = scalar_backend();
  return n.sha256_compress != s.sha256_compress ||
         n.sha256_compress_x8 != s.sha256_compress_x8 ||
         n.chacha20_xor_blocks != s.chacha20_xor_blocks;
}

const Backend& active_backend() { return *active_slot(); }

bool set_active_backend(std::string_view name) {
  if (name == "scalar") {
    active_slot() = &scalar_backend();
    return true;
  }
  if (name == "native") {
    active_slot() = &native_backend();
    return true;
  }
  return false;
}

std::vector<const Backend*> all_backends() {
  std::vector<const Backend*> out{&scalar_backend()};
  if (native_backend_accelerated()) out.push_back(&native_backend());
  return out;
}

}  // namespace drum::crypto
