// crypto::Backend — runtime dispatch between the portable scalar reference
// implementations and ISA-specific (SHA-NI / AVX2 / SSE2) ones.
//
// Why it exists: the paper's cost model (§6, App. A–C) bounds a victim's
// survivability by how cheaply it processes an adversarial flood — every
// fabricated message costs a hash, a MAC check, or a decrypt before it can
// be discarded. Vectorized primitives shrink that per-message cost by 4–8×,
// directly widening the flood a node can absorb per round.
//
// Design: each primitive keeps its scalar implementation as the portable
// reference backend; ISA-specific translation units (compiled with their
// own -m flags, so the rest of the tree stays portable) export alternative
// entry points for the block-level hot loops only. A Backend is a plain
// table of function pointers; the active one is chosen once at startup from
// CPUID and can be forced with DRUM_CRYPTO_BACKEND=scalar|native (or from
// tests/benches via set_active_backend()). All backends are bit-identical:
// they implement the same FIPS 180-4 / RFC 8439 functions, differing only
// in how many blocks they process per instruction.
//
// Callers never include this header to do crypto — they use
// drum/crypto/api.hpp, which routes through the active backend internally.
// This header is for tests, benchmarks, and startup diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace drum::crypto {

/// Block-level entry points one backend provides. Pointers are never null:
/// a backend missing an ISA path carries the scalar function there.
struct Backend {
  const char* name;

  /// SHA-256: compress `nblocks` consecutive 64-byte blocks into `state`
  /// (FIPS 180-4 §6.2.2). `state` is the 8-word working hash, host order.
  void (*sha256_compress)(std::uint32_t state[8], const std::uint8_t* blocks,
                          std::size_t nblocks);

  /// Eight independent SHA-256 streams in lockstep: for each lane l,
  /// compress `nblocks` consecutive blocks starting at `blocks[l]` into
  /// `states[l]`. The multi-buffer form behind sha256_batch().
  void (*sha256_compress_x8)(std::uint32_t states[8][8],
                             const std::uint8_t* const blocks[8],
                             std::size_t nblocks);

  /// ChaCha20 (RFC 8439): XOR `nblocks` keystream blocks into `data` in
  /// place. `state` is the full 16-word input state; the block counter for
  /// block b is state[12] + b (mod 2^32) — the caller advances state[12]
  /// by nblocks afterwards.
  void (*chacha20_xor_blocks)(const std::uint32_t state[16],
                              std::uint8_t* data, std::size_t nblocks);
};

/// The portable reference backend (always available, any architecture).
const Backend& scalar_backend();

/// The best backend this build and this CPU support. Falls back to the
/// scalar functions per-primitive when an ISA path is missing, and equals
/// scalar_backend()'s table entirely on non-x86 builds.
const Backend& native_backend();

/// True when native_backend() accelerates at least one primitive.
bool native_backend_accelerated();

/// The backend all api.hpp entry points route through. Resolved once on
/// first use: native unless DRUM_CRYPTO_BACKEND=scalar is set in the
/// environment (DRUM_CRYPTO_BACKEND=native is accepted and is the default;
/// any other value is ignored with a warning).
const Backend& active_backend();

/// Forces the active backend ("scalar" or "native") — a test/bench hook.
/// Not thread-safe: call only while no other thread runs crypto.
/// Returns false (and changes nothing) for unknown names.
bool set_active_backend(std::string_view name);

/// The distinct compiled-in backends, scalar first — tests iterate this to
/// run the KAT suites against every implementation present in the build.
std::vector<const Backend*> all_backends();

/// Raw CPUID feature bits the selection is based on (x86-64; all false on
/// other architectures). Exposed for diagnostics and test logging.
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool avx2 = false;    ///< includes the OS-saves-YMM (XGETBV) check
  bool sha_ni = false;
};
const CpuFeatures& cpu_features();

}  // namespace drum::crypto
