#include "drum/crypto/keys.hpp"

#include "drum/crypto/api.hpp"
#include "drum/crypto/hmac.hpp"

namespace drum::crypto {

Identity Identity::generate(util::Rng& rng) {
  Identity id;
  for (auto& b : id.sign_seed_) b = static_cast<std::uint8_t>(rng.below(256));
  id.sign_pub_ = ed25519_public_key(id.sign_seed_);
  for (auto& b : id.dh_secret_) b = static_cast<std::uint8_t>(rng.below(256));
  id.dh_secret_ = x25519_clamp(id.dh_secret_);
  id.dh_pub_ = x25519_base(id.dh_secret_);
  return id;
}

Ed25519Signature Identity::sign(util::ByteSpan message) const {
  return ed25519_sign(sign_seed_, sign_pub_, message);
}

util::Bytes Identity::derive_pair_key(const X25519Key& peer_dh_public) const {
  X25519Key shared = x25519(dh_secret_, peer_dh_public);
  // Salt with the sorted pair of public keys so both sides derive the same
  // key and distinct pairs never share keys even on (improbable) shared-
  // secret collisions.
  util::Bytes salt;
  const auto& a = dh_pub_;
  const auto& b = peer_dh_public;
  bool a_first = std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                              b.end());
  const auto& first = a_first ? a : b;
  const auto& second = a_first ? b : a;
  salt.insert(salt.end(), first.begin(), first.end());
  salt.insert(salt.end(), second.begin(), second.end());
  return hkdf_sha256(util::ByteSpan(shared.data(), shared.size()),
                     util::ByteSpan(salt.data(), salt.size()),
                     "drum portbox pair key v1", 32);
}

util::Bytes Identity::serialize_secret() const {
  util::Bytes out(sign_seed_.begin(), sign_seed_.end());
  out.insert(out.end(), dh_secret_.begin(), dh_secret_.end());
  return out;
}

std::optional<Identity> Identity::deserialize_secret(util::ByteSpan secret) {
  if (secret.size() != kEd25519SeedSize + kX25519KeySize) return std::nullopt;
  Identity id;
  std::copy(secret.begin(), secret.begin() + kEd25519SeedSize,
            id.sign_seed_.begin());
  std::copy(secret.begin() + kEd25519SeedSize, secret.end(),
            id.dh_secret_.begin());
  id.sign_pub_ = ed25519_public_key(id.sign_seed_);
  id.dh_secret_ = x25519_clamp(id.dh_secret_);
  id.dh_pub_ = x25519_base(id.dh_secret_);
  return id;
}

std::string Identity::short_id() const {
  auto digest = sha256(util::ByteSpan(sign_pub_.data(), sign_pub_.size()));
  return util::to_hex(util::ByteSpan(digest.data(), 8));
}

}  // namespace drum::crypto
