// Batch Ed25519 verification (api.hpp: ed25519_verify_batch).
//
// Scheme: random linear combination. Each signature i satisfies, when valid,
//     S_i·B = R_i + k_i·A_i        with k_i = SHA512(R_i || A_i || M_i) mod L.
// Draw independent random 128-bit odd coefficients z_i and check the single
// combined equation
//     (Σ z_i S_i mod L)·B + Σ z_i·(-R_i) + Σ (z_i k_i mod L)·(-A_i) == O
// with one Straus (interleaved window) multi-scalar multiplication, sharing
// the ~252 doublings of the ladder across the whole batch. An invalid
// signature makes the combination non-zero except with probability ~2^-128
// over the z_i (odd z_i so a single signature's small-torsion defect can
// never cancel itself).
//
// Verdict policy: per-signature parse failures (non-canonical S, invalid A
// or R encodings) are rejected deterministically before the combined check,
// exactly as ed25519_verify does. If the combined equation fails, the batch
// falls back to per-signature ed25519_verify so the bad indices are
// attributed exactly. The one intentional divergence from per-signature
// verification: several colluding signatures whose defects all lie in the
// order-8 torsion subgroup can cancel each other inside the combination and
// be accepted (the standard cofactored-style batch caveat, cf. RFC 8032
// §8.9); unforgeability is unaffected since the prime-order component —
// the part bound to the message — is always checked.
#include <cstring>
#include <random>
#include <vector>

#include "drum/crypto/api.hpp"
#include "drum/crypto/bigint.hpp"
#include "drum/crypto/ed25519_internal.hpp"
#include "drum/crypto/sha512.hpp"
#include "drum/util/rng.hpp"

namespace drum::crypto {

namespace {

using detail::Ge;

// 128-bit odd random coefficient, little-endian in the low 16 bytes.
// Process entropy, not the deterministic simulation RNG: an attacker must
// not be able to predict the combination coefficients.
std::array<std::uint8_t, 32> random_z128_odd() {
  thread_local util::Rng rng = [] {
    std::random_device rd;
    const std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    return util::Rng(seed);
  }();
  std::array<std::uint8_t, 32> z{};
  std::uint64_t lo = rng.next() | 1;  // odd
  std::uint64_t hi = rng.next();
  for (int i = 0; i < 8; ++i) {
    z[i] = static_cast<std::uint8_t>(lo >> (8 * i));
    z[8 + i] = static_cast<std::uint8_t>(hi >> (8 * i));
  }
  return z;
}

struct MsmEntry {
  std::array<std::uint8_t, 32> scalar;  // little-endian, < L
  Ge point;
};

// Straus interleaved multi-scalar multiplication with 4-bit windows:
// returns whether Σ scalar_i · point_i is the group identity. One shared
// ladder of 252 doublings; per entry a 15-element table of small multiples
// and one table addition per non-zero nibble.
bool msm_is_identity(const std::vector<MsmEntry>& entries) {
  std::vector<std::array<Ge, 15>> tables(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    tables[i][0] = entries[i].point;
    for (int j = 1; j < 15; ++j) {
      detail::ge_add(tables[i][j], tables[i][j - 1], entries[i].point);
    }
  }
  Ge acc;
  detail::ge_identity(acc);
  for (int nib = 63; nib >= 0; --nib) {
    if (nib != 63) {
      for (int k = 0; k < 4; ++k) detail::ge_add(acc, acc, acc);
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::uint8_t byte = entries[i].scalar[nib / 2];
      const std::uint8_t v = (nib & 1) ? (byte >> 4) : (byte & 0x0f);
      if (v != 0) detail::ge_add(acc, acc, tables[i][v - 1]);
    }
  }
  return detail::ge_is_identity(acc);
}

std::array<std::uint8_t, 32> to_le32(const BigInt& v) {
  auto le = v.to_bytes_le(32);
  std::array<std::uint8_t, 32> out{};
  std::copy(le.begin(), le.end(), out.begin());
  return out;
}

}  // namespace

std::vector<bool> ed25519_verify_batch(std::span<const VerifyJob> jobs) {
  std::vector<bool> verdicts(jobs.size(), false);
  if (jobs.empty()) return verdicts;
  if (jobs.size() == 1) {
    verdicts[0] = ed25519_verify(jobs[0].pub, jobs[0].message, jobs[0].sig);
    return verdicts;
  }

  // Deterministic per-signature parse pass, identical to ed25519_verify's
  // rejections: non-canonical S and invalid point encodings never reach the
  // probabilistic combined check.
  struct Parsed {
    std::size_t idx;
    Ge neg_a, neg_r;
    BigInt s;
    std::array<std::uint8_t, 32> k;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const VerifyJob& job = jobs[i];
    BigInt s = BigInt::from_bytes_le(util::ByteSpan(job.sig.data() + 32, 32));
    if (!(s < ed25519_order())) continue;
    Ge a, r;
    if (!detail::ge_frombytes(a, job.pub.data())) continue;
    if (!detail::ge_frombytes(r, job.sig.data())) continue;

    Sha512 hk;
    hk.update(util::ByteSpan(job.sig.data(), 32));
    hk.update(util::ByteSpan(job.pub.data(), job.pub.size()));
    hk.update(job.message);
    auto k_full = hk.final();
    Parsed p;
    p.idx = i;
    p.s = std::move(s);
    p.k = detail::reduce_mod_l(util::ByteSpan(k_full.data(), k_full.size()));
    detail::ge_neg(p.neg_a, a);
    detail::ge_neg(p.neg_r, r);
    parsed.push_back(std::move(p));
  }
  if (parsed.empty()) return verdicts;

  // Assemble the combined equation: one base-point term plus (-R_i, -A_i)
  // pairs per signature.
  std::vector<MsmEntry> entries;
  entries.reserve(2 * parsed.size() + 1);
  entries.emplace_back();  // base-point slot, scalar filled in below
  BigInt zs_sum(0);
  for (const Parsed& p : parsed) {
    const auto z = random_z128_odd();
    const BigInt big_z = BigInt::from_bytes_le(util::ByteSpan(z.data(), 16));
    zs_sum = (zs_sum + big_z * p.s) % ed25519_order();
    MsmEntry er;
    er.scalar = z;
    er.point = p.neg_r;
    entries.push_back(er);
    MsmEntry ea;
    const BigInt big_k = BigInt::from_bytes_le(util::ByteSpan(p.k.data(), 32));
    ea.scalar = to_le32((big_z * big_k) % ed25519_order());
    ea.point = p.neg_a;
    entries.push_back(ea);
  }
  entries[0].scalar = to_le32(zs_sum);
  entries[0].point = detail::base_point();

  if (msm_is_identity(entries)) {
    for (const Parsed& p : parsed) verdicts[p.idx] = true;
    return verdicts;
  }

  // Combined check failed: at least one signature in the batch is bad.
  // Attribute exactly with per-signature verification.
  for (const Parsed& p : parsed) {
    const VerifyJob& job = jobs[p.idx];
    verdicts[p.idx] = ed25519_verify(job.pub, job.message, job.sig);
  }
  return verdicts;
}

}  // namespace drum::crypto
