// Arithmetic in GF(2^255 - 19), the base field of Curve25519/Ed25519.
// Representation: 5 limbs of 51 bits (radix 2^51), unsigned, loosely reduced
// between operations; tobytes() performs the full canonical reduction.
// Follows the well-known "donna-64bit" layout. Verified indirectly through
// the RFC 7748 / RFC 8032 test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

struct Fe {
  std::uint64_t v[5];
};

void fe_zero(Fe& h);
void fe_one(Fe& h);
void fe_copy(Fe& h, const Fe& f);

/// Load 32 little-endian bytes; the top bit is ignored (as per RFC 7748).
void fe_frombytes(Fe& h, const std::uint8_t* s);
/// Store the canonical (fully reduced) 32-byte little-endian encoding.
void fe_tobytes(std::uint8_t* s, const Fe& f);

void fe_add(Fe& h, const Fe& f, const Fe& g);
void fe_sub(Fe& h, const Fe& f, const Fe& g);
void fe_neg(Fe& h, const Fe& f);
void fe_mul(Fe& h, const Fe& f, const Fe& g);
void fe_sq(Fe& h, const Fe& f);
/// h = f * n for small n (n < 2^13); used for *121666 in the X25519 ladder
/// and small curve constants.
void fe_mul_small(Fe& h, const Fe& f, std::uint64_t n);

/// Constant-time conditional swap: (f,g) <- b ? (g,f) : (f,g). b in {0,1}.
void fe_cswap(Fe& f, Fe& g, std::uint64_t b);
/// Constant-time conditional move: h <- b ? f : h. b in {0,1}.
void fe_cmov(Fe& h, const Fe& f, std::uint64_t b);

/// h = f^(p-2) = f^-1 (Fermat). ~254 squarings.
void fe_invert(Fe& h, const Fe& f);
/// h = f^((p-5)/8); used for square roots in Ed25519 point decompression.
void fe_pow22523(Fe& h, const Fe& f);

bool fe_is_zero(const Fe& f);
/// Least significant bit of the canonical encoding ("sign" bit in EdDSA).
bool fe_is_negative(const Fe& f);

}  // namespace drum::crypto
