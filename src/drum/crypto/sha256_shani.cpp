// SHA-256 compression via the x86 SHA extensions (SHA-NI): the CPU executes
// four rounds per sha256rnds2 pair, bringing 1 KiB hashing from ~5 µs
// (scalar) to well under 1 µs. Structure follows the widely published
// Intel/Gueron reference flow: state kept in the ABEF/CDGH register layout
// the sha256rnds2 instruction expects, message schedule advanced with
// sha256msg1/sha256msg2 plus one palignr per 4-round group.
//
// This TU is compiled with -msha -msse4.1 (see crypto/CMakeLists.txt); the
// guard below keeps it an empty TU if those flags are ever dropped.
// Selected at runtime by backend.cpp only when CPUID reports SHA + SSSE3 +
// SSE4.1, so building this file never requires the host to support it.
#include "drum/crypto/backend_impl.hpp"

#if defined(DRUM_CRYPTO_HAVE_SHANI) && defined(__SHA__) && defined(__SSE4_1__)

#include <immintrin.h>

namespace drum::crypto::detail {

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                           std::size_t nblocks) {
  // Byte shuffle turning each 32-bit word big-endian.
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a,b,c,d},{e,f,g,h} into the ABEF/CDGH layout sha256rnds2 uses.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);        // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);  // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);       // CDGH

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* data = blocks + 64 * blk;
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;

    // msgs[] is a rolling window over the message schedule, four W words
    // per slot; at group g it holds W[4(g-3) .. 4g+3].
    __m128i msgs[4];
    for (int t = 0; t < 4; ++t) {
      msgs[t] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * t)),
          mask);
    }

    for (int g = 0; g < 16; ++g) {
      const __m128i k =
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * g]));
      __m128i msg = _mm_add_epi32(msgs[g & 3], k);
      st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
      if (g >= 3 && g < 15) {
        // W[4(g+1)..4(g+1)+3] = msg2(msg1(W_{g-3}, W_{g-2}) +
        //                            alignr(W_g, W_{g-1}, 4), W_g)
        const __m128i t1 =
            _mm_sha256msg1_epu32(msgs[(g + 1) & 3], msgs[(g + 2) & 3]);
        const __m128i t2 = _mm_alignr_epi8(msgs[g & 3], msgs[(g + 3) & 3], 4);
        msgs[(g + 1) & 3] =
            _mm_sha256msg2_epu32(_mm_add_epi32(t1, t2), msgs[g & 3]);
      }
    }

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
  }

  // Back to {a..d},{e..h}.
  __m128i t = _mm_shuffle_epi32(st0, 0x1B);   // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);         // DCHG
  st0 = _mm_blend_epi16(t, st1, 0xF0);        // DCBA
  st1 = _mm_alignr_epi8(st1, t, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

}  // namespace drum::crypto::detail

#endif  // DRUM_CRYPTO_HAVE_SHANI && __SHA__ && __SSE4_1__
