// Minimal arbitrary-precision unsigned integer on 32-bit limbs.
// Only what Ed25519 scalar arithmetic mod L needs: add, multiply, compare,
// shift, and modular reduction by shift-and-subtract. Not performance
// critical (signing/verification cost is dominated by curve operations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Little-endian byte import/export.
  static BigInt from_bytes_le(util::ByteSpan bytes);
  /// Exports exactly `n` little-endian bytes (value must fit).
  util::Bytes to_bytes_le(std::size_t n) const;

  static BigInt from_hex(const std::string& hex);
  [[nodiscard]] std::string to_hex() const;

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator%(const BigInt& m) const;
  BigInt operator<<(std::size_t bits) const;

  std::strong_ordering operator<=>(const BigInt& rhs) const;
  bool operator==(const BigInt& rhs) const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

 private:
  void trim();
  // Least-significant limb first; no trailing zero limbs (canonical form).
  std::vector<std::uint32_t> limbs_;
};

/// The Ed25519 group order L = 2^252 + 27742317777372353535851937790883648493.
const BigInt& ed25519_order();

}  // namespace drum::crypto
