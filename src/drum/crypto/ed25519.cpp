#include "drum/crypto/ed25519.hpp"

#include <cstring>

#include "drum/crypto/bigint.hpp"
#include "drum/crypto/ed25519_internal.hpp"
#include "drum/crypto/sha512.hpp"

namespace drum::crypto {

namespace detail {

// d = -121665/121666 mod p.
const Fe& const_d() {
  static const Fe d = [] {
    Fe num, den, den_inv, out;
    fe_zero(num);
    num.v[0] = 121665;
    fe_neg(num, num);            // -121665
    fe_zero(den);
    den.v[0] = 121666;
    fe_invert(den_inv, den);
    fe_mul(out, num, den_inv);
    return out;
  }();
  return d;
}

// 2d, used in the unified addition formula.
const Fe& const_d2() {
  static const Fe d2 = [] {
    Fe out;
    fe_add(out, const_d(), const_d());
    return out;
  }();
  return d2;
}

// sqrt(-1) = 2^((p-1)/4).
const Fe& const_sqrtm1() {
  static const Fe sqrtm1 = [] {
    // sqrt(-1) = 2^((p-1)/4); computed via x = 2^((p-1)/4) using pow22523
    // identities is awkward, so use the known canonical encoding.
    static const std::uint8_t enc[32] = {
        0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f,
        0xad, 0x06, 0x18, 0x43, 0x2f, 0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00,
        0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b};
    Fe out;
    fe_frombytes(out, enc);
    return out;
  }();
  return sqrtm1;
}

void ge_identity(Ge& h) {
  fe_zero(h.x);
  fe_one(h.y);
  fe_one(h.z);
  fe_zero(h.t);
}

bool ge_is_identity(const Ge& h) {
  // Identity is (0 : Z : Z : 0), i.e. x = 0 and y = z.
  Fe diff;
  fe_sub(diff, h.y, h.z);
  return fe_is_zero(h.x) && fe_is_zero(diff);
}

void ge_add(Ge& out, const Ge& p, const Ge& q) {
  Fe a, b, c, d, e, f, g, h, t0, t1;
  fe_sub(t0, p.y, p.x);
  fe_sub(t1, q.y, q.x);
  fe_mul(a, t0, t1);           // A = (Y1-X1)(Y2-X2)
  fe_add(t0, p.y, p.x);
  fe_add(t1, q.y, q.x);
  fe_mul(b, t0, t1);           // B = (Y1+X1)(Y2+X2)
  fe_mul(c, p.t, q.t);
  fe_mul(c, c, const_d2());    // C = 2d T1 T2
  fe_mul(d, p.z, q.z);
  fe_add(d, d, d);             // D = 2 Z1 Z2
  fe_sub(e, b, a);
  fe_sub(f, d, c);
  fe_add(g, d, c);
  fe_add(h, b, a);
  fe_mul(out.x, e, f);
  fe_mul(out.y, g, h);
  fe_mul(out.t, e, h);
  fe_mul(out.z, f, g);
}

void ge_neg(Ge& out, const Ge& p) {
  fe_neg(out.x, p.x);
  fe_copy(out.y, p.y);
  fe_copy(out.z, p.z);
  fe_neg(out.t, p.t);
}

// Variable-time double-and-add over the 253-bit scalar (little-endian bytes).
// Signing uses secret scalars, so strictly this leaks timing; acceptable for
// a research reproduction (noted in README's security caveats).
void ge_scalarmult(Ge& out, const std::uint8_t scalar[32], const Ge& p) {
  Ge acc;
  ge_identity(acc);
  for (int bit = 255; bit >= 0; --bit) {
    ge_add(acc, acc, acc);
    if ((scalar[bit / 8] >> (bit % 8)) & 1) {
      ge_add(acc, acc, p);
    }
  }
  out = acc;
}

void ge_tobytes(std::uint8_t s[32], const Ge& h) {
  Fe zinv, x, y;
  fe_invert(zinv, h.z);
  fe_mul(x, h.x, zinv);
  fe_mul(y, h.y, zinv);
  fe_tobytes(s, y);
  s[31] ^= static_cast<std::uint8_t>(fe_is_negative(x) ? 0x80 : 0x00);
}

// Decompression (RFC 8032 §5.1.3). Returns false on invalid encodings.
bool ge_frombytes(Ge& h, const std::uint8_t s[32]) {
  Fe y, y2, u, v, v3, x, x2, check;
  fe_frombytes(y, s);
  // u = y^2 - 1, v = d y^2 + 1.
  fe_sq(y2, y);
  Fe one;
  fe_one(one);
  fe_sub(u, y2, one);
  fe_mul(v, y2, const_d());
  fe_add(v, v, one);
  // x = u v^3 (u v^7)^((p-5)/8)
  fe_sq(v3, v);
  fe_mul(v3, v3, v);           // v^3
  fe_sq(x, v3);
  fe_mul(x, x, v);             // v^7
  fe_mul(x, x, u);             // u v^7
  fe_pow22523(x, x);
  fe_mul(x, x, v3);
  fe_mul(x, x, u);             // u v^3 (u v^7)^((p-5)/8)
  // check = v x^2
  fe_sq(x2, x);
  fe_mul(check, x2, v);
  Fe neg_u;
  fe_neg(neg_u, u);
  Fe diff1, diff2;
  fe_sub(diff1, check, u);
  fe_sub(diff2, check, neg_u);
  if (!fe_is_zero(diff1)) {
    if (!fe_is_zero(diff2)) return false;  // not a square: invalid point
    fe_mul(x, x, const_sqrtm1());
  }
  bool x_neg = fe_is_negative(x);
  bool want_neg = (s[31] & 0x80) != 0;
  if (x_neg != want_neg) {
    if (fe_is_zero(x) && want_neg) return false;  // -0 is non-canonical
    fe_neg(x, x);
  }
  fe_copy(h.x, x);
  fe_copy(h.y, y);
  fe_one(h.z);
  fe_mul(h.t, x, y);
  return true;
}

const Ge& base_point() {
  static const Ge b = [] {
    // y = 4/5 mod p; x recovered by decompression with the "even" sign bit.
    Fe four, five, five_inv, y;
    fe_zero(four);
    four.v[0] = 4;
    fe_zero(five);
    five.v[0] = 5;
    fe_invert(five_inv, five);
    fe_mul(y, four, five_inv);
    std::uint8_t enc[32];
    fe_tobytes(enc, y);  // sign bit 0 = even x
    Ge out;
    bool ok = ge_frombytes(out, enc);
    (void)ok;
    return out;
  }();
  return b;
}

// Reduce a 64-byte little-endian value mod L to 32 little-endian bytes.
std::array<std::uint8_t, 32> reduce_mod_l(util::ByteSpan bytes) {
  BigInt v = BigInt::from_bytes_le(bytes) % ed25519_order();
  auto le = v.to_bytes_le(32);
  std::array<std::uint8_t, 32> out{};
  std::copy(le.begin(), le.end(), out.begin());
  return out;
}

std::array<std::uint8_t, 32> clamp_scalar(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> s{};
  std::memcpy(s.data(), h, 32);
  s[0] &= 248;
  s[31] &= 127;
  s[31] |= 64;
  return s;
}

}  // namespace detail

namespace {

using detail::Ge;

// Local SHA512 one-shot: this file sits below api.hpp in the layering, so
// it cannot route through the backend dispatcher.
Sha512::Digest sha512_oneshot(util::ByteSpan data) {
  Sha512 h;
  h.update(data);
  return h.final();
}

}  // namespace

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  auto h = sha512_oneshot(util::ByteSpan(seed.data(), seed.size()));
  auto s = detail::clamp_scalar(h.data());
  Ge a;
  detail::ge_scalarmult(a, s.data(), detail::base_point());
  Ed25519PublicKey pub;
  detail::ge_tobytes(pub.data(), a);
  return pub;
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& pub,
                              util::ByteSpan message) {
  auto h = sha512_oneshot(util::ByteSpan(seed.data(), seed.size()));
  auto s = detail::clamp_scalar(h.data());

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(util::ByteSpan(h.data() + 32, 32));
  hr.update(message);
  auto r_full = hr.final();
  auto r = detail::reduce_mod_l(util::ByteSpan(r_full.data(), r_full.size()));

  Ge rp;
  detail::ge_scalarmult(rp, r.data(), detail::base_point());
  Ed25519Signature sig{};
  detail::ge_tobytes(sig.data(), rp);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(util::ByteSpan(sig.data(), 32));
  hk.update(util::ByteSpan(pub.data(), pub.size()));
  hk.update(message);
  auto k_full = hk.final();
  auto k = detail::reduce_mod_l(util::ByteSpan(k_full.data(), k_full.size()));

  // S = (r + k*s) mod L
  BigInt big_r = BigInt::from_bytes_le(util::ByteSpan(r.data(), 32));
  BigInt big_k = BigInt::from_bytes_le(util::ByteSpan(k.data(), 32));
  BigInt big_s = BigInt::from_bytes_le(util::ByteSpan(s.data(), 32));
  BigInt big_out = (big_r + big_k * big_s) % ed25519_order();
  auto s_le = big_out.to_bytes_le(32);
  std::copy(s_le.begin(), s_le.end(), sig.begin() + 32);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& pub, util::ByteSpan message,
                    const Ed25519Signature& sig) {
  // Canonical S < L.
  BigInt s = BigInt::from_bytes_le(util::ByteSpan(sig.data() + 32, 32));
  if (!(s < ed25519_order())) return false;

  Ge a, r;
  if (!detail::ge_frombytes(a, pub.data())) return false;
  if (!detail::ge_frombytes(r, sig.data())) return false;

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(util::ByteSpan(sig.data(), 32));
  hk.update(util::ByteSpan(pub.data(), pub.size()));
  hk.update(message);
  auto k_full = hk.final();
  auto k = detail::reduce_mod_l(util::ByteSpan(k_full.data(), k_full.size()));

  // Check S·B == R + k·A  ⇔  S·B + k·(-A) == R.
  std::array<std::uint8_t, 32> s_le{};
  std::memcpy(s_le.data(), sig.data() + 32, 32);
  Ge sb, ka, neg_a, sum;
  detail::ge_scalarmult(sb, s_le.data(), detail::base_point());
  detail::ge_neg(neg_a, a);
  detail::ge_scalarmult(ka, k.data(), neg_a);
  detail::ge_add(sum, sb, ka);

  std::uint8_t sum_enc[32], r_enc[32];
  detail::ge_tobytes(sum_enc, sum);
  detail::ge_tobytes(r_enc, r);
  return std::memcmp(sum_enc, r_enc, 32) == 0;
}

}  // namespace drum::crypto
