// 8-way ChaCha20 block generation with AVX2. Same scheme as the SSE2
// backend but with eight independent blocks per pass, one per 32-bit lane
// of a __m256i: counter lanes state[12] + {0..7} (wrapping mod 2^32), the
// 20 rounds run lanewise, then two 8x8 dword transposes per pass turn the
// word-major result into per-block keystream bytes. rotl by 16 and 8 use
// a byte shuffle (1 uop) instead of the shift/shift/or sequence.
//
// Remainder blocks (nblocks % 8) fall back to the scalar reference with the
// counter advanced past the vectorized part.
//
// Compiled with -mavx2 (see crypto/CMakeLists.txt); empty TU without it.
#include "drum/crypto/backend_impl.hpp"

#if defined(DRUM_CRYPTO_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace drum::crypto::detail {

namespace {

inline __m256i rotl_shift(__m256i x, int n) {
  return _mm256_or_si256(_mm256_slli_epi32(x, n), _mm256_srli_epi32(x, 32 - n));
}

inline __m256i rotl16(__m256i x) {
  const __m256i ctl = _mm256_setr_epi8(
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,  //
      2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  return _mm256_shuffle_epi8(x, ctl);
}

inline __m256i rotl8(__m256i x) {
  const __m256i ctl = _mm256_setr_epi8(
      3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,  //
      3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
  return _mm256_shuffle_epi8(x, ctl);
}

inline void quarter_round(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a); d = rotl16(d);
  c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c); b = rotl_shift(b, 12);
  a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a); d = rotl8(d);
  c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c); b = rotl_shift(b, 7);
}

// r[j] <- dword j of each input row, row index in the lane position.
inline void transpose8x8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

}  // namespace

void chacha20_xor_blocks_avx2(const std::uint32_t state[16],
                              std::uint8_t* data, std::size_t nblocks) {
  std::size_t done = 0;
  for (; done + 8 <= nblocks; done += 8) {
    __m256i init[16];
    for (int i = 0; i < 16; ++i) {
      init[i] = _mm256_set1_epi32(static_cast<int>(state[i]));
    }
    // Counter lanes: base + {0..7}; _mm256_add_epi32 wraps mod 2^32.
    init[12] = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(state[12] +
                                           static_cast<std::uint32_t>(done))),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));

    __m256i x[16];
    for (int i = 0; i < 16; ++i) x[i] = init[i];
    for (int round = 0; round < 10; ++round) {
      quarter_round(x[0], x[4], x[8], x[12]);
      quarter_round(x[1], x[5], x[9], x[13]);
      quarter_round(x[2], x[6], x[10], x[14]);
      quarter_round(x[3], x[7], x[11], x[15]);
      quarter_round(x[0], x[5], x[10], x[15]);
      quarter_round(x[1], x[6], x[11], x[12]);
      quarter_round(x[2], x[7], x[8], x[13]);
      quarter_round(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) x[i] = _mm256_add_epi32(x[i], init[i]);

    // Two transposes: x[0..7] -> words 0..7 of each block, x[8..15] ->
    // words 8..15. After each, vector b holds block b's 32-byte half.
    std::uint8_t* out = data + 64 * done;
    for (int half = 0; half < 2; ++half) {
      __m256i q[8];
      for (int j = 0; j < 8; ++j) q[j] = x[8 * half + j];
      transpose8x8(q);
      for (int b = 0; b < 8; ++b) {
        __m256i* p = reinterpret_cast<__m256i*>(out + 64 * b + 32 * half);
        _mm256_storeu_si256(p, _mm256_xor_si256(_mm256_loadu_si256(p), q[b]));
      }
    }
  }

  if (done < nblocks) {
    std::uint32_t st[16];
    for (int i = 0; i < 16; ++i) st[i] = state[i];
    st[12] += static_cast<std::uint32_t>(done);
    chacha20_xor_blocks_scalar(st, data + 64 * done, nblocks - done);
  }
}

}  // namespace drum::crypto::detail

#endif  // DRUM_CRYPTO_HAVE_AVX2 && __AVX2__
