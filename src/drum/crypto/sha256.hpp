// SHA-256 (FIPS 180-4). The incremental (init/update/final) form of the
// primitive; one-shot and batch forms live in drum/crypto/api.hpp. The
// block compression routes through the active crypto::Backend (scalar
// reference, SHA-NI, or AVX2 multi-buffer — see backend.hpp), all of which
// are bit-identical and verified against the NIST example vectors in
// tests/crypto_test.cpp and per-backend in tests/crypto_backend_test.cpp.
//
// Used for: message digests in gossip digests, message ids, HMAC-SHA256,
// and certificate fingerprints.
#pragma once

#include <array>
#include <cstdint>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Incremental interface: construct (init), update repeatedly, final.
  void update(util::ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest final();

 private:
  std::array<std::uint32_t, 8> state_;
  std::uint64_t bits_ = 0;
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace drum::crypto
