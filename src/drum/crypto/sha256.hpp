// SHA-256 (FIPS 180-4). Implemented from the specification; verified against
// the NIST example vectors in tests/crypto_test.cpp.
//
// Used for: message digests in gossip digests, message ids, HMAC-SHA256, and
// certificate fingerprints.
#pragma once

#include <array>
#include <cstdint>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Streaming interface.
  void update(util::ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(util::ByteSpan data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bits_ = 0;
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace drum::crypto
