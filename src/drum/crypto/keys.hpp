// Process identity and pairwise key derivation.
//
// Every group member holds:
//   * a long-term Ed25519 identity keypair — signs data messages (source
//     authentication) and is what the CA certifies (paper §3, §10);
//   * a long-term X25519 keypair — yields pairwise symmetric keys under
//     which random ports are encrypted (paper §4).
//
// The paper assumes "standard cryptographic techniques" and a PKI; this
// module is that substrate, built on the from-scratch primitives in this
// directory.
#pragma once

#include <cstdint>
#include <string>

#include "drum/crypto/ed25519.hpp"
#include "drum/crypto/x25519.hpp"
#include "drum/util/bytes.hpp"
#include "drum/util/rng.hpp"

namespace drum::crypto {

/// Long-term identity of a process. Generation is deterministic given the
/// RNG so simulated deployments are reproducible.
class Identity {
 public:
  /// Generates fresh Ed25519 + X25519 keypairs from `rng`.
  static Identity generate(util::Rng& rng);

  [[nodiscard]] const Ed25519PublicKey& sign_public() const { return sign_pub_; }
  [[nodiscard]] const X25519Key& dh_public() const { return dh_pub_; }

  /// Signs a message with the identity key.
  [[nodiscard]] Ed25519Signature sign(util::ByteSpan message) const;

  /// Derives the pairwise symmetric key shared with `peer_dh_public`.
  /// Symmetric: derive_pair_key(a, B_pub) == derive_pair_key(b, A_pub).
  /// (X25519 ECDH followed by HKDF with a fixed protocol label.)
  [[nodiscard]] util::Bytes derive_pair_key(const X25519Key& peer_dh_public) const;

  /// Stable short identifier (hex of the first 8 bytes of the signing key
  /// hash); used in logs.
  [[nodiscard]] std::string short_id() const;

  /// Secret-key export/import for real deployments (key files on disk).
  /// Layout: 32-byte Ed25519 seed || 32-byte X25519 secret. Guard the
  /// bytes accordingly.
  [[nodiscard]] util::Bytes serialize_secret() const;
  /// Reconstructs the identity (and re-derives the public keys); returns
  /// nullopt on malformed input.
  static std::optional<Identity> deserialize_secret(util::ByteSpan secret);

 private:
  Ed25519Seed sign_seed_{};
  Ed25519PublicKey sign_pub_{};
  X25519Key dh_secret_{};
  X25519Key dh_pub_{};
};

}  // namespace drum::crypto
