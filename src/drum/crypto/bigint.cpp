#include "drum/crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace drum::crypto {

BigInt::BigInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_le(util::ByteSpan bytes) {
  BigInt out;
  out.limbs_.resize((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

util::Bytes BigInt::to_bytes_le(std::size_t n) const {
  util::Bytes out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t limb = i / 4;
    if (limb >= limbs_.size()) break;
    out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 4)));
  }
  // Check the value actually fits in n bytes.
  for (std::size_t i = n * 8; i < limbs_.size() * 32; ++i) {
    if (bit(i)) throw std::overflow_error("BigInt::to_bytes_le overflow");
  }
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw std::invalid_argument("BigInt::from_hex: bad digit");
    out = (out << 4) + BigInt(static_cast<std::uint64_t>(v));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(*it >> shift) & 0xF]);
    }
  }
  auto first = out.find_first_not_of('0');
  return first == std::string::npos ? "0" : out.substr(first);
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw std::underflow_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0);
    if (diff < 0) {
      diff += 1LL << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j] +
                          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + rhs.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator%(const BigInt& m) const {
  if (m.is_zero()) throw std::domain_error("BigInt modulo by zero");
  if (*this < m) return *this;

  // Single-limb divisor: fold the limbs top-down through uint64 division.
  if (m.limbs_.size() == 1) {
    const std::uint64_t d = m.limbs_[0];
    std::uint64_t r = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      r = ((r << 32) | limbs_[i]) % d;
    }
    BigInt out;
    if (r) out.limbs_.push_back(static_cast<std::uint32_t>(r));
    return out;
  }

  // Knuth algorithm D (TAOCP vol. 2, §4.3.1), remainder only. Word-based:
  // one pass per quotient digit instead of one per bit — this sits on the
  // Ed25519 mod-L hot path (sign, verify, and especially batch verify).
  // D1: normalize so the divisor's top limb has its high bit set; qhat
  // estimates are then off by at most 2.
  int shift = 0;
  for (std::uint32_t top = m.limbs_.back(); !(top & 0x80000000u); top <<= 1) {
    ++shift;
  }
  std::vector<std::uint32_t> u = (*this << shift).limbs_;
  const std::vector<std::uint32_t> v = (m << shift).limbs_;
  const std::size_t n = v.size();
  u.resize(std::max(u.size(), n) + 1, 0);
  const std::uint64_t b = std::uint64_t(1) << 32;

  for (std::size_t j = u.size() - n; j-- > 0;) {
    // D3: estimate the quotient digit from the top two dividend limbs.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat >= b ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= b) break;
    }
    // D4: multiply and subtract (signed borrow propagation).
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i];
      const std::int64_t t = static_cast<std::int64_t>(u[i + j]) - borrow -
                             static_cast<std::int64_t>(p & 0xffffffffu);
      u[i + j] = static_cast<std::uint32_t>(t);
      borrow = static_cast<std::int64_t>(p >> 32) - (t >> 32);
    }
    const std::int64_t t = static_cast<std::int64_t>(u[j + n]) - borrow;
    u[j + n] = static_cast<std::uint32_t>(t);
    // D6: qhat was one too large (probability ~2/b): add the divisor back.
    if (t < 0) {
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + carry;
        u[i + j] = static_cast<std::uint32_t>(s);
        carry = s >> 32;
      }
      u[j + n] += static_cast<std::uint32_t>(carry);
    }
  }

  // D8: the low n limbs are the (normalized) remainder; denormalize.
  BigInt rem;
  rem.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift) {
    for (std::size_t i = 0; i + 1 < rem.limbs_.size(); ++i) {
      rem.limbs_[i] = (rem.limbs_[i] >> shift) |
                      (rem.limbs_[i + 1] << (32 - shift));
    }
    rem.limbs_.back() >>= shift;
  }
  rem.trim();
  return rem;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  std::size_t limb_shift = bits / 32;
  std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

bool BigInt::operator==(const BigInt& rhs) const {
  return limbs_ == rhs.limbs_;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

const BigInt& ed25519_order() {
  static const BigInt kL = BigInt::from_hex(
      "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed");
  return kL;
}

}  // namespace drum::crypto
