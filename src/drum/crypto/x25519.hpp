// X25519 Diffie-Hellman (RFC 7748). Constant-time Montgomery ladder over
// GF(2^255-19). Drum uses X25519 to derive pairwise keys under which random
// port numbers are encrypted on the wire (paper §4).
#pragma once

#include <array>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

inline constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point (u-coordinate). RFC 7748 §5.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

/// Clamps 32 random bytes into a valid X25519 private scalar.
X25519Key x25519_clamp(X25519Key scalar);

}  // namespace drum::crypto
