#include "drum/crypto/api.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "drum/crypto/backend.hpp"

namespace drum::crypto {

namespace {

constexpr std::uint32_t kSha256Iv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                        0xa54ff53a, 0x510e527f, 0x9b05688c,
                                        0x1f83d9ab, 0x5be0cd19};

// FIPS 180-4 padding + final compression on a raw state, for lanes peeled
// off the multi-buffer path. `tail` is the sub-block remainder (< 64 bytes),
// `total` the full message length in bytes.
Sha256::Digest sha256_state_final(std::uint32_t state[8],
                                  const std::uint8_t* tail, std::size_t tail_len,
                                  std::uint64_t total, const Backend& be) {
  std::uint8_t buf[128] = {};
  if (tail_len > 0) std::memcpy(buf, tail, tail_len);
  buf[tail_len] = 0x80;
  const std::size_t padded = (tail_len + 1 + 8 <= 64) ? 64 : 128;
  const std::uint64_t bits = total * 8;
  for (int i = 0; i < 8; ++i) {
    buf[padded - 8 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  be.sha256_compress(state, buf, padded / 64);
  Sha256::Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

}  // namespace

Sha256::Digest sha256(util::ByteSpan data) {
  Sha256 h;
  h.update(data);
  return h.final();
}

Sha512::Digest sha512(util::ByteSpan data) {
  Sha512 h;
  h.update(data);
  return h.final();
}

std::vector<Sha256::Digest> sha256_batch(
    std::span<const util::ByteSpan> messages) {
  std::vector<Sha256::Digest> out(messages.size());
  const Backend& be = active_backend();
  std::size_t i = 0;
  for (; i + 8 <= messages.size(); i += 8) {
    // Lockstep over the block count every lane still has; per-lane leftovers
    // (length differences + sub-block tails) finish single-stream.
    std::uint32_t states[8][8];
    const std::uint8_t* ptrs[8];
    std::size_t common_blocks = std::numeric_limits<std::size_t>::max();
    for (int lane = 0; lane < 8; ++lane) {
      std::memcpy(states[lane], kSha256Iv, sizeof kSha256Iv);
      ptrs[lane] = messages[i + lane].data();
      common_blocks = std::min(common_blocks, messages[i + lane].size() / 64);
    }
    if (common_blocks > 0) be.sha256_compress_x8(states, ptrs, common_blocks);
    for (int lane = 0; lane < 8; ++lane) {
      const util::ByteSpan m = messages[i + lane];
      std::size_t off = common_blocks * 64;
      if (const std::size_t rest = (m.size() - off) / 64) {
        be.sha256_compress(states[lane], m.data() + off, rest);
        off += rest * 64;
      }
      out[i + lane] = sha256_state_final(states[lane], m.data() + off,
                                         m.size() - off, m.size(), be);
    }
  }
  for (; i < messages.size(); ++i) out[i] = sha256(messages[i]);
  return out;
}

void chacha20_xor(util::ByteSpan key, util::ByteSpan nonce,
                  std::uint32_t counter, std::uint8_t* data, std::size_t len) {
  ChaCha20 c(key, nonce, counter);
  c.crypt(data, len);
}

util::Bytes chacha20_xor_copy(util::ByteSpan key, util::ByteSpan nonce,
                              std::uint32_t counter, util::ByteSpan data) {
  util::Bytes out(data.begin(), data.end());
  chacha20_xor(key, nonce, counter, out.data(), out.size());
  return out;
}

}  // namespace drum::crypto
