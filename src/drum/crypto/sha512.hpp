// SHA-512 (FIPS 180-4). Required by Ed25519 (RFC 8032). Verified against
// NIST example vectors in tests. The incremental (init/update/final) form;
// the one-shot crypto::sha512() lives in drum/crypto/api.hpp.
#pragma once

#include <array>
#include <cstdint>

#include "drum/util/bytes.hpp"

namespace drum::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();

  /// Incremental interface: construct (init), update repeatedly, final.
  void update(util::ByteSpan data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest final();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::uint64_t bits_ = 0;  // message length < 2^64 bits, ample here
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace drum::crypto
