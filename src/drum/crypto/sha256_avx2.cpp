// 8-way multi-buffer SHA-256 with AVX2. SHA-256 has a strict sequential
// dependency inside one message, so single-stream SIMD gains little; instead
// this runs EIGHT independent messages in lockstep, one per 32-bit SIMD
// lane. Used by crypto::sha256_batch() (api.hpp) and by the batch verify
// path, where many same-length digests are needed at once.
//
// Layout: states[lane][word] outside, transposed to word-major __m256i
// vectors inside (vector w holds word w of all eight lanes). Message words
// are loaded with an 8x8 dword transpose per half-block plus a byteswap.
//
// Compiled with -mavx2 (see crypto/CMakeLists.txt); empty TU without it.
#include "drum/crypto/backend_impl.hpp"

#if defined(DRUM_CRYPTO_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace drum::crypto::detail {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m256i rotr(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

// In-place 8x8 dword transpose: on return r[j] holds dword j of each input
// row, row index in the lane position.
inline void transpose8x8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

}  // namespace

void sha256_compress_x8_avx2(std::uint32_t states[8][8],
                             const std::uint8_t* const blocks[8],
                             std::size_t nblocks) {
  // Per-dword big-endian byteswap, replicated across both 128-bit halves.
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  __m256i h[8];
  for (int w = 0; w < 8; ++w) {
    h[w] = _mm256_set_epi32(
        static_cast<int>(states[7][w]), static_cast<int>(states[6][w]),
        static_cast<int>(states[5][w]), static_cast<int>(states[4][w]),
        static_cast<int>(states[3][w]), static_cast<int>(states[2][w]),
        static_cast<int>(states[1][w]), static_cast<int>(states[0][w]));
  }

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    __m256i w[64];
    for (int half = 0; half < 2; ++half) {
      __m256i rows[8];
      for (int lane = 0; lane < 8; ++lane) {
        rows[lane] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            blocks[lane] + 64 * blk + 32 * half));
      }
      transpose8x8(rows);
      for (int j = 0; j < 8; ++j) {
        w[8 * half + j] = _mm256_shuffle_epi8(rows[j], bswap);
      }
    }
    for (int i = 16; i < 64; ++i) {
      const __m256i w15 = w[i - 15];
      const __m256i w2 = w[i - 2];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w15, 7), rotr(w15, 18)),
          _mm256_srli_epi32(w15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w2, 17), rotr(w2, 19)),
          _mm256_srli_epi32(w2, 10));
      w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0),
                              _mm256_add_epi32(w[i - 7], s1));
    }

    __m256i a = h[0], b = h[1], c = h[2], d = h[3];
    __m256i e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const __m256i s1 =
          _mm256_xor_si256(_mm256_xor_si256(rotr(e, 6), rotr(e, 11)),
                           rotr(e, 25));
      const __m256i ch = _mm256_xor_si256(
          _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(hh, s1), _mm256_add_epi32(ch, w[i])),
          _mm256_set1_epi32(static_cast<int>(kK[i])));
      const __m256i s0 =
          _mm256_xor_si256(_mm256_xor_si256(rotr(a, 2), rotr(a, 13)),
                           rotr(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(s0, maj);
      hh = g; g = f; f = e; e = _mm256_add_epi32(d, t1);
      d = c; c = b; b = a; a = _mm256_add_epi32(t1, t2);
    }
    h[0] = _mm256_add_epi32(h[0], a);
    h[1] = _mm256_add_epi32(h[1], b);
    h[2] = _mm256_add_epi32(h[2], c);
    h[3] = _mm256_add_epi32(h[3], d);
    h[4] = _mm256_add_epi32(h[4], e);
    h[5] = _mm256_add_epi32(h[5], f);
    h[6] = _mm256_add_epi32(h[6], g);
    h[7] = _mm256_add_epi32(h[7], hh);
  }

  alignas(32) std::uint32_t tmp[8];
  for (int w = 0; w < 8; ++w) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), h[w]);
    for (int lane = 0; lane < 8; ++lane) states[lane][w] = tmp[lane];
  }
}

}  // namespace drum::crypto::detail

#endif  // DRUM_CRYPTO_HAVE_AVX2 && __AVX2__
