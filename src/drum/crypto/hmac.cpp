#include "drum/crypto/hmac.hpp"

#include <cstring>
#include <stdexcept>

#include "drum/crypto/api.hpp"

namespace drum::crypto {

namespace {

template <typename Hash>
typename Hash::Digest hmac(util::ByteSpan key, util::ByteSpan data) {
  std::array<std::uint8_t, Hash::kBlockSize> k{};
  if (key.size() > Hash::kBlockSize) {
    Hash kh;
    kh.update(key);
    auto d = kh.final();
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, Hash::kBlockSize> ipad, opad;
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hash inner;
  inner.update(util::ByteSpan(ipad.data(), ipad.size()));
  inner.update(data);
  auto inner_digest = inner.final();
  Hash outer;
  outer.update(util::ByteSpan(opad.data(), opad.size()));
  outer.update(util::ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.final();
}

}  // namespace

Sha256::Digest hmac_sha256(util::ByteSpan key, util::ByteSpan data) {
  return hmac<Sha256>(key, data);
}

std::vector<Sha256::Digest> hmac_sha256_batch(
    std::span<const util::ByteSpan> keys,
    std::span<const util::ByteSpan> datas) {
  if (keys.size() != datas.size()) {
    throw std::invalid_argument("hmac_sha256_batch: key/data count mismatch");
  }
  const std::size_t n = keys.size();
  if (n == 0) return {};

  // Inner pass: sha256((key ^ ipad) || data) for every pair, materialized as
  // contiguous buffers so the multi-buffer backend can run them in lockstep.
  std::vector<util::Bytes> inner_bufs(n);
  std::vector<util::ByteSpan> spans(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::array<std::uint8_t, Sha256::kBlockSize> k{};
    if (keys[i].size() > Sha256::kBlockSize) {
      Sha256 kh;
      kh.update(keys[i]);
      auto d = kh.final();
      std::copy(d.begin(), d.end(), k.begin());
    } else {
      std::copy(keys[i].begin(), keys[i].end(), k.begin());
    }
    util::Bytes& buf = inner_bufs[i];
    buf.resize(Sha256::kBlockSize + datas[i].size());
    for (std::size_t j = 0; j < Sha256::kBlockSize; ++j) {
      buf[j] = static_cast<std::uint8_t>(k[j] ^ 0x36);
    }
    if (!datas[i].empty()) {
      std::memcpy(buf.data() + Sha256::kBlockSize, datas[i].data(),
                  datas[i].size());
    }
    // Stash the opad block for the outer pass in place of the data tail
    // later; for now just record the span to hash.
    spans[i] = util::ByteSpan(buf.data(), buf.size());
  }
  auto inner = sha256_batch(std::span<const util::ByteSpan>(spans));

  // Outer pass: sha256((key ^ opad) || inner_digest). The key block is
  // recovered from the ipad buffer (x ^ 0x36 ^ 0x5c == x ^ opad's pad).
  std::vector<util::Bytes> outer_bufs(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::Bytes& buf = outer_bufs[i];
    buf.resize(Sha256::kBlockSize + Sha256::kDigestSize);
    for (std::size_t j = 0; j < Sha256::kBlockSize; ++j) {
      buf[j] = static_cast<std::uint8_t>(inner_bufs[i][j] ^ 0x36 ^ 0x5c);
    }
    std::memcpy(buf.data() + Sha256::kBlockSize, inner[i].data(),
                Sha256::kDigestSize);
    spans[i] = util::ByteSpan(buf.data(), buf.size());
  }
  return sha256_batch(std::span<const util::ByteSpan>(spans));
}

Sha512::Digest hmac_sha512(util::ByteSpan key, util::ByteSpan data) {
  return hmac<Sha512>(key, data);
}

util::Bytes hkdf_sha256(util::ByteSpan ikm, util::ByteSpan salt,
                        std::string_view info, std::size_t out_len) {
  if (out_len > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf output too long");
  }
  // Extract.
  auto prk = hmac_sha256(salt, ikm);
  // Expand.
  util::Bytes out;
  out.reserve(out_len);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    util::Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    auto d = hmac_sha256(util::ByteSpan(prk.data(), prk.size()),
                         util::ByteSpan(block.data(), block.size()));
    t.assign(d.begin(), d.end());
    std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

}  // namespace drum::crypto
