#include "drum/crypto/hmac.hpp"

#include <stdexcept>

namespace drum::crypto {

namespace {

template <typename Hash>
typename Hash::Digest hmac(util::ByteSpan key, util::ByteSpan data) {
  std::array<std::uint8_t, Hash::kBlockSize> k{};
  if (key.size() > Hash::kBlockSize) {
    Hash kh;
    kh.update(key);
    auto d = kh.final();
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, Hash::kBlockSize> ipad, opad;
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hash inner;
  inner.update(util::ByteSpan(ipad.data(), ipad.size()));
  inner.update(data);
  auto inner_digest = inner.final();
  Hash outer;
  outer.update(util::ByteSpan(opad.data(), opad.size()));
  outer.update(util::ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.final();
}

}  // namespace

Sha256::Digest hmac_sha256(util::ByteSpan key, util::ByteSpan data) {
  return hmac<Sha256>(key, data);
}

Sha512::Digest hmac_sha512(util::ByteSpan key, util::ByteSpan data) {
  return hmac<Sha512>(key, data);
}

util::Bytes hkdf_sha256(util::ByteSpan ikm, util::ByteSpan salt,
                        std::string_view info, std::size_t out_len) {
  if (out_len > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf output too long");
  }
  // Extract.
  auto prk = hmac_sha256(salt, ikm);
  // Expand.
  util::Bytes out;
  out.reserve(out_len);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    util::Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    auto d = hmac_sha256(util::ByteSpan(prk.data(), prk.size()),
                         util::ByteSpan(block.data(), block.size()));
    t.assign(d.begin(), d.end());
    std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

}  // namespace drum::crypto
