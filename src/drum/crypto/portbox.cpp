#include "drum/crypto/portbox.hpp"

#include <cstring>
#include <stdexcept>

#include "drum/check/check.hpp"
#include "drum/crypto/api.hpp"
#include "drum/crypto/hmac.hpp"

namespace drum::crypto {

namespace {

// MAC over nonce || ciphertext, truncated.
std::array<std::uint8_t, kPortBoxTagSize> compute_tag(util::ByteSpan key,
                                                      util::ByteSpan nonce,
                                                      util::ByteSpan ct) {
  // Sized buffer + memcpy rather than insert-after-construct: GCC 12's
  // -Warray-bounds mis-attributes the vector growth to the fixed-size
  // nonce array the buffer was seeded from.
  util::Bytes mac_input(nonce.size() + ct.size());
  if (!nonce.empty()) {
    std::memcpy(mac_input.data(), nonce.data(), nonce.size());
  }
  if (!ct.empty()) {
    std::memcpy(mac_input.data() + nonce.size(), ct.data(), ct.size());
  }
  auto full = hmac_sha256(key, util::ByteSpan(mac_input.data(), mac_input.size()));
  std::array<std::uint8_t, kPortBoxTagSize> tag{};
  std::copy(full.begin(), full.begin() + kPortBoxTagSize, tag.begin());
  return tag;
}

}  // namespace

util::Bytes portbox_seal(util::ByteSpan key, util::ByteSpan plaintext,
                         util::Rng& rng) {
  if (key.size() != kPortBoxKeySize) {
    throw std::invalid_argument("portbox key size");
  }
  std::array<std::uint8_t, kPortBoxNonceSize> nonce;
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.below(256));
  // Checked builds: a (key, nonce) pair must never cover two different
  // plaintexts — that is keystream reuse, which breaks the stream cipher.
  // (A byte-identical replay is tolerated: deterministic simulations replay
  // seeded worlds on purpose; see check::note_nonce.)
  DRUM_INVARIANT(
      check::note_nonce(key, util::ByteSpan(nonce.data(), nonce.size()),
                        plaintext),
      "portbox nonce reuse under one pair key");

  util::Bytes ct = chacha20_xor_copy(
      key, util::ByteSpan(nonce.data(), nonce.size()), 1, plaintext);
  auto tag = compute_tag(key, util::ByteSpan(nonce.data(), nonce.size()),
                         util::ByteSpan(ct.data(), ct.size()));

  util::Bytes out(nonce.size() + ct.size() + tag.size());
  std::memcpy(out.data(), nonce.data(), nonce.size());
  if (!ct.empty()) {
    std::memcpy(out.data() + nonce.size(), ct.data(), ct.size());
  }
  std::memcpy(out.data() + nonce.size() + ct.size(), tag.data(), tag.size());
  return out;
}

std::optional<util::Bytes> portbox_open(util::ByteSpan key,
                                        util::ByteSpan box) {
  if (key.size() != kPortBoxKeySize) {
    throw std::invalid_argument("portbox key size");
  }
  if (box.size() < kPortBoxOverhead) return std::nullopt;
  auto nonce = box.subspan(0, kPortBoxNonceSize);
  auto ct = box.subspan(kPortBoxNonceSize,
                        box.size() - kPortBoxOverhead);
  auto tag = box.subspan(box.size() - kPortBoxTagSize);

  auto expected = compute_tag(key, nonce, ct);
  if (!util::ct_equal(util::ByteSpan(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  return chacha20_xor_copy(key, nonce, 1, ct);
}

util::Bytes portbox_seal_port(util::ByteSpan key, std::uint16_t port,
                              util::Rng& rng) {
  std::uint8_t pt[2] = {static_cast<std::uint8_t>(port),
                        static_cast<std::uint8_t>(port >> 8)};
  return portbox_seal(key, util::ByteSpan(pt, 2), rng);
}

std::optional<std::uint16_t> portbox_open_port(util::ByteSpan key,
                                               util::ByteSpan box) {
  auto pt = portbox_open(key, box);
  if (!pt || pt->size() != 2) return std::nullopt;
  return static_cast<std::uint16_t>((*pt)[0] | (*pt)[1] << 8);
}

std::vector<std::optional<std::uint16_t>> portbox_open_port_batch(
    std::span<const PortBoxOpenJob> jobs) {
  std::vector<std::optional<std::uint16_t>> out(jobs.size());
  if (jobs.empty()) return out;

  // Malformed boxes are settled without hashing; everything else feeds one
  // batched HMAC pass over nonce || ciphertext.
  std::vector<std::size_t> live;
  live.reserve(jobs.size());
  std::vector<util::Bytes> mac_inputs;
  mac_inputs.reserve(jobs.size());
  std::vector<util::ByteSpan> keys, datas;
  keys.reserve(jobs.size());
  datas.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    if (j.key.size() != kPortBoxKeySize) {
      throw std::invalid_argument("portbox key size");
    }
    if (j.box.size() < kPortBoxOverhead) continue;
    util::Bytes mac_input(j.box.size() - kPortBoxTagSize);
    std::memcpy(mac_input.data(), j.box.data(), mac_input.size());
    mac_inputs.push_back(std::move(mac_input));
    keys.push_back(j.key);
    live.push_back(i);
  }
  for (const auto& buf : mac_inputs) {
    datas.emplace_back(buf.data(), buf.size());
  }
  auto macs = hmac_sha256_batch(std::span<const util::ByteSpan>(keys),
                                std::span<const util::ByteSpan>(datas));

  for (std::size_t k = 0; k < live.size(); ++k) {
    const auto& j = jobs[live[k]];
    auto tag = j.box.subspan(j.box.size() - kPortBoxTagSize);
    if (!util::ct_equal(util::ByteSpan(macs[k].data(), kPortBoxTagSize), tag)) {
      continue;
    }
    auto nonce = j.box.subspan(0, kPortBoxNonceSize);
    auto ct = j.box.subspan(kPortBoxNonceSize, j.box.size() - kPortBoxOverhead);
    util::Bytes pt = chacha20_xor_copy(j.key, nonce, 1, ct);
    if (pt.size() != 2) continue;
    out[live[k]] = static_cast<std::uint16_t>(pt[0] | pt[1] << 8);
  }
  return out;
}

}  // namespace drum::crypto
