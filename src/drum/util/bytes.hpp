// Byte-buffer serialization primitives used by every wire format in the
// repository. All multi-byte integers are encoded little-endian; this is the
// single canonical encoding for drum wire messages, certificates and digests.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace drum::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Thrown by ByteReader when a read runs past the end of the buffer or a
/// length prefix is inconsistent. Deserialization of untrusted network input
/// must catch this (fabricated packets routinely trigger it).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder. Grows an internal buffer; take() moves it out.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw_le(v); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    raw_le(bits);
  }

  /// Raw bytes, no length prefix (fixed-size fields: hashes, keys, nonces).
  void raw(ByteSpan b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  /// Length-prefixed (u32) variable-size field.
  void bytes(ByteSpan b);
  void str(std::string_view s);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked decoder over a non-owning span. Every accessor throws
/// DecodeError instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() {
    std::uint64_t bits = take_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Fixed-size raw field.
  ByteSpan raw(std::size_t n);
  /// Length-prefixed variable-size field (u32 prefix).
  Bytes bytes();
  std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  /// Throws unless the whole buffer has been consumed — call at the end of
  /// every message decode so trailing garbage is rejected.
  void expect_done() const;

 private:
  template <typename T>
  T take_le() {
    if (remaining() < sizeof(T)) throw DecodeError("short read");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding of a byte span ("deadbeef").
std::string to_hex(ByteSpan b);
/// Inverse of to_hex; returns nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

/// Constant-time equality for secrets (MAC tags, keys).
bool ct_equal(ByteSpan a, ByteSpan b);

}  // namespace drum::util
