#include "drum/util/rng.hpp"

#include <algorithm>

namespace drum::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform on [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint32_t> Rng::sample(std::uint32_t n, std::uint32_t k,
                                       std::uint32_t exclude) {
  std::vector<std::uint32_t> out;
  std::vector<std::uint32_t> scratch;
  sample_into(n, k, exclude, out, scratch);
  return out;
}

void Rng::sample_into(std::uint32_t n, std::uint32_t k, std::uint32_t exclude,
                      std::vector<std::uint32_t>& out,
                      std::vector<std::uint32_t>& scratch) {
  const std::uint32_t pop = exclude < n ? n - 1 : n;
  k = std::min(k, pop);
  out.clear();
  out.reserve(k);
  if (k == 0) return;
  if (k * 3 >= pop) {
    // Dense: partial Fisher-Yates over the explicit population.
    std::vector<std::uint32_t>& ids = scratch;
    ids.clear();
    ids.reserve(pop);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i != exclude) ids.push_back(i);
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      std::size_t j = i + below(ids.size() - i);
      std::swap(ids[i], ids[j]);
      out.push_back(ids[i]);
    }
  } else {
    // Sparse: rejection sampling. k is small here (< pop/3), so dedup by
    // linear scan over the picks so far — same accept/reject decisions as
    // a hash set, no allocation.
    while (out.size() < k) {
      auto v = static_cast<std::uint32_t>(below(n));
      if (v == exclude ||
          std::find(out.begin(), out.end(), v) != out.end()) {
        continue;
      }
      out.push_back(v);
    }
  }
}

Rng Rng::fork() { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace drum::util
