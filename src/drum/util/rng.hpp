// Deterministic, fast pseudo-random number generation for simulations and
// protocol random choices. Every simulation run is seeded explicitly so that
// experiments are exactly reproducible; nothing in drum_sim touches global
// RNG state.
//
// Xoshiro256** (Blackman & Vigna) seeded via SplitMix64, the authors'
// recommended seeding procedure.
#pragma once

#include <cstdint>
#include <vector>

namespace drum::util {

/// SplitMix64 — used to expand a 64-bit seed into Xoshiro state, and as a
/// tiny standalone generator in tests.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the members below are preferred in
/// hot simulation loops.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// k distinct values sampled uniformly from {0,..,n-1} \ {exclude}.
  /// Pass exclude = n (or any value >= n) to exclude nothing. This is the
  /// "choose a view of gossip partners" primitive: a process never picks
  /// itself. k is clamped to the population size.
  std::vector<std::uint32_t> sample(std::uint32_t n, std::uint32_t k,
                                    std::uint32_t exclude);

  /// Allocation-free variant of sample() for hot loops: the result goes
  /// into `out` and `scratch` holds the dense-case population between
  /// calls (both keep their capacity). Consumes the generator identically
  /// to sample() — simulation replays are unchanged by switching between
  /// the two.
  void sample_into(std::uint32_t n, std::uint32_t k, std::uint32_t exclude,
                   std::vector<std::uint32_t>& out,
                   std::vector<std::uint32_t>& scratch);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace drum::util
