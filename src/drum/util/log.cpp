#include "drum/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace drum::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  using namespace std::chrono;
  auto now = duration_cast<milliseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFF;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %lld.%03lld t%04zx] %s\n", level_name(level),
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), tid, msg.c_str());
}

}  // namespace drum::util
