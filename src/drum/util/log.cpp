#include "drum/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "drum/check/annotations.hpp"

namespace drum::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
check::Mutex g_mutex;
/// nullptr means stderr (resolved at write time: stderr is not a constant
/// expression, so it cannot be the static initializer).
std::FILE* g_sink DRUM_GUARDED_BY(g_mutex) = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::FILE* sink) {
  check::MutexLock lock(g_mutex);
  g_sink = sink;
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  using namespace std::chrono;
  auto now = duration_cast<milliseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFF;
  check::MutexLock lock(g_mutex);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[%s %lld.%03lld t%04zx] %s\n", level_name(level),
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), tid, msg.c_str());
}

}  // namespace drum::util
