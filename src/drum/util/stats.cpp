#include "drum/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace drum::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  auto n = static_cast<double>(n_ + other.n_);
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) / n;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::merge(const Samples& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::ci95_halfwidth() const {
  if (xs_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(xs_.size()));
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> s = sorted();
  if (p <= 0) return s.front();
  if (p >= 1) return s.back();
  double pos = p * static_cast<double>(s.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1 - frac) + s[lo + 1] * frac;
}

double Samples::cdf_at(double x) const {
  if (xs_.empty()) return 0.0;
  std::size_t c = 0;
  for (double v : xs_) c += (v <= x) ? 1 : 0;
  return static_cast<double>(c) / static_cast<double>(xs_.size());
}

std::vector<double> Samples::sorted() const {
  std::vector<double> s = xs_;
  std::sort(s.begin(), s.end());
  return s;
}

void CoverageCurve::add_run(const std::vector<double>& coverage_by_round) {
  data_.insert(data_.end(), coverage_by_round.begin(),
               coverage_by_round.end());
  lens_.push_back(static_cast<std::uint32_t>(coverage_by_round.size()));
}

void CoverageCurve::merge(const CoverageCurve& other) {
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  lens_.insert(lens_.end(), other.lens_.begin(), other.lens_.end());
}

std::vector<double> CoverageCurve::average() const {
  std::size_t max_len = 0;
  for (auto len : lens_) max_len = std::max<std::size_t>(max_len, len);
  std::vector<double> sum(max_len, 0.0);
  // Summation runs in stored (run) order per element, so the result is
  // bit-identical to the old incremental accumulation with final-value
  // back-fill of shorter runs.
  std::size_t off = 0;
  for (auto len : lens_) {
    const double fin = len ? data_[off + len - 1] : 0.0;
    for (std::size_t r = 0; r < max_len; ++r) {
      sum[r] += r < len ? data_[off + r] : fin;
    }
    off += len;
  }
  if (!lens_.empty()) {
    for (auto& v : sum) v /= static_cast<double>(lens_.size());
  }
  return sum;
}

}  // namespace drum::util
