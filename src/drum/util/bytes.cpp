#include "drum/util/bytes.hpp"

namespace drum::util {

void ByteWriter::bytes(ByteSpan b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

ByteSpan ByteReader::raw(std::size_t n) {
  if (remaining() < n) throw DecodeError("short raw read");
  ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Bytes ByteReader::bytes() {
  std::uint32_t n = u32();
  if (remaining() < n) throw DecodeError("length prefix exceeds buffer");
  ByteSpan b = raw(n);
  return Bytes(b.begin(), b.end());
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (remaining() < n) throw DecodeError("length prefix exceeds buffer");
  ByteSpan b = raw(n);
  return std::string(b.begin(), b.end());
}

void ByteReader::expect_done() const {
  if (!done()) throw DecodeError("trailing bytes after message");
}

std::string to_hex(ByteSpan b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace drum::util
