// Statistics accumulators used by the simulator and the measurement harness:
// streaming mean/variance (Welford), sample collections with percentiles and
// empirical CDFs, and per-round coverage curves averaged over runs.
//
// Samples and CoverageCurve are *mergeable*: the parallel simulation engine
// (sim::simulate_many) accumulates per-worker partials and folds them into
// one aggregate. Both store raw per-run data, so a merge is a concatenation
// and every derived statistic is a pure function of the merged contents —
// merging partials in trial order reproduces the serial accumulation
// bit-for-bit, and quantiles (which sort) are identical under ANY merge
// order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace drum::util {

/// Streaming mean / variance / min / max (Welford's algorithm). O(1) space.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores raw samples; supports percentiles and CDF extraction.
/// Used for latency distributions (paper Fig. 11) and propagation times.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  /// Appends the other collection's samples after this one's. Counts, CDFs
  /// and quantiles are order-independent; mean/stddev sum in stored order,
  /// so merging partials in trial order matches serial insertion exactly.
  void merge(const Samples& other);
  void reserve(std::size_t n) { xs_.reserve(n); }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean: 1.96 * s / sqrt(n). Zero with fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const;
  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  [[nodiscard]] const std::vector<double>& raw() const { return xs_; }
  /// Sorted copy of the samples.
  [[nodiscard]] std::vector<double> sorted() const;

  bool operator==(const Samples&) const = default;

 private:
  std::vector<double> xs_;
};

/// Average per-round coverage curve over many runs: curve[r] = expected
/// fraction of processes holding the message at the start of round r
/// (paper Figs. 5, 13, 14). Runs may have different lengths; shorter runs
/// are extended with their final value (coverage is monotone).
///
/// Per-run curves are stored verbatim (concatenated into one flat buffer)
/// rather than summed on the fly, so two curves merge by concatenation and
/// average() — which sums runs in stored order — gives bit-identical output
/// whether the runs were added one by one or arrived as merged partials in
/// the same overall order.
class CoverageCurve {
 public:
  /// Adds a single run's coverage-by-round series.
  void add_run(const std::vector<double>& coverage_by_round);
  /// Appends the other curve's runs after this one's.
  void merge(const CoverageCurve& other);
  /// Averaged curve across all added runs.
  [[nodiscard]] std::vector<double> average() const;
  [[nodiscard]] std::size_t runs() const { return lens_.size(); }

  bool operator==(const CoverageCurve&) const = default;

 private:
  std::vector<double> data_;        // all runs' curves, concatenated
  std::vector<std::uint32_t> lens_;  // length of each run's curve
};

}  // namespace drum::util
