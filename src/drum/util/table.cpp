#include "drum/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace drum::util {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::pretty() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "," : "") << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s# csv\n%s\n", title.c_str(), pretty().c_str(),
              csv().c_str());
  std::fflush(stdout);
}

}  // namespace drum::util
