// Aligned-console + CSV table printer. Every bench binary reports its
// figure's series through this so outputs are uniform and machine-parseable
// (EXPERIMENTS.md is assembled from the CSV blocks).
#pragma once

#include <string>
#include <vector>

namespace drum::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  /// Aligned, human-readable rendering.
  [[nodiscard]] std::string pretty() const;
  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  [[nodiscard]] std::string csv() const;

  /// Prints a titled block: title line, pretty table, then a "# csv" block.
  void print(const std::string& title) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming trailing zeros.
std::string fmt(double v, int precision = 3);

}  // namespace drum::util
