// Minimal leveled logger. Thread-safe (a single global mutex serializes
// lines). Off by default above WARN so simulation hot loops stay silent;
// examples enable INFO/DEBUG explicitly.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace drum::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[level ts thread] message".
void log_line(LogLevel level, const std::string& msg);

/// Redirects log output (nullptr restores stderr). The stream must stay
/// valid until the next set_log_sink(); tests use this to capture output.
void set_log_sink(std::FILE* sink);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace drum::util

#define DRUM_LOG(level)                                      \
  if (::drum::util::log_level() <= ::drum::util::level)      \
  ::drum::util::detail::LogStream(::drum::util::level)

#define DRUM_DEBUG DRUM_LOG(LogLevel::kDebug)
#define DRUM_INFO DRUM_LOG(LogLevel::kInfo)
#define DRUM_WARN DRUM_LOG(LogLevel::kWarn)
#define DRUM_ERROR DRUM_LOG(LogLevel::kError)
