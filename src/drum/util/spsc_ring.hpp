// drum::util::SpscRing — a bounded single-producer/single-consumer queue for
// cross-shard handoff in the sharded reactor (DESIGN.md §13).
//
// One ring exists per *ordered* shard pair: shard A pushes, shard B pops, and
// nobody else touches either end. That pairing is what lets the ring be two
// atomics and a buffer instead of a mutex: the producer owns the tail index,
// the consumer owns the head index, and each side publishes its progress with
// a release store that the other side reads with an acquire load. Indices are
// monotonically increasing (masked only on slot access), so full/empty never
// needs a reserved slot: size == tail - head.
//
// The producer and consumer each keep a *cached* copy of the other side's
// index and only re-read the shared atomic when the cache says the ring looks
// full (or empty). In steady state a push is therefore one relaxed load, one
// slot write and one release store — no shared-line ping-pong. Head and tail
// live on separate cache lines (alignas of the hardware destructive
// interference size) so the two sides never false-share.
//
// The SPSC contract is compiler-enforced the same way the rest of the tree
// enforces locking (DESIGN.md §11): the ring exposes two zero-size capability
// members, `producer` and `consumer`; try_push requires the former, try_pop
// the latter. A thread claims its role once with assume_producer() /
// assume_consumer() (a DRUM_ASSERT_CAPABILITY no-op whose correctness is the
// shard wiring's responsibility: the reactor gives each ring exactly one
// pushing shard and one popping shard). Under `-Wthread-safety` a call from
// an unclaimed context fails to compile.
//
// Wakeup is deliberately NOT the ring's job. "Signal eventfd on
// empty→non-empty" is unsound with cached indices — the producer's stale view
// of head can claim non-empty when the consumer already drained and went to
// sleep. The reactor layers a per-consumer idle flag over the ring instead
// (see ReactorRuntime::Shard::idle); the ring stays pure memory.
//
// This header is a shard-local hot path: scripts/drum_lint.py's
// `shard-affinity` check bans any mutex acquisition in this file.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "drum/check/annotations.hpp"
#include "drum/check/check.hpp"

namespace drum::util {

// Fixed 64, not std::hardware_destructive_interference_size: the standard
// constant varies with -mtune and compiler version (GCC warns about exactly
// that), and 64 is the destructive-interference granularity on every
// x86-64/AArch64 machine this builds for.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// An empty capability type naming one end of the ring. Instances carry no
  /// state; they exist so the thread-safety analysis can prove each end is
  /// entered only by the thread that claimed it.
  struct DRUM_CAPABILITY("role") Role {};

  /// `capacity` is rounded up to the next power of two (minimum 2) so the
  /// slot index is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    DRUM_REQUIRE(capacity > 0, "SpscRing capacity must be positive");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// The producing thread calls this once before its first try_push. The
  /// caller vouches that no other thread will ever push.
  void assume_producer() const DRUM_ASSERT_CAPABILITY(producer) {}
  /// The consuming thread calls this once before its first try_pop.
  void assume_consumer() const DRUM_ASSERT_CAPABILITY(consumer) {}

  /// False iff the ring is full. Producer thread only.
  bool try_push(const T& v) DRUM_REQUIRES(producer) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= capacity()) return false;
    }
    buf_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// False iff the ring is empty. Consumer thread only.
  bool try_pop(T& out) DRUM_REQUIRES(consumer) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = buf_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot emptiness. Exact only for the consumer (new items may arrive
  /// immediately after); any other thread gets a racy hint.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Snapshot occupancy; same caveat as empty().
  [[nodiscard]] std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t - h;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  Role producer;  ///< capability: held by the (single) pushing thread
  Role consumer;  ///< capability: held by the (single) popping thread

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;

  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;

  // Consumer-owned line: head plus the consumer's cached view of tail.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;

  // Trailing pad so an adjacent object cannot share the consumer's line.
  char pad_[kCacheLine - sizeof(std::atomic<std::size_t>) -
            sizeof(std::size_t)]{};
};

}  // namespace drum::util
