// Tiny command-line flag parser shared by the bench binaries and examples.
// Supports "--name value" and "--name=value"; unknown flags are an error so
// typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace drum::util {

class Flags {
 public:
  /// Parses argv. Exits with a usage message on unknown or malformed flags
  /// (bench binaries treat flag typos as fatal). "--help" prints registered
  /// descriptions and exits 0.
  Flags(int argc, char** argv);

  /// Registration: each get_* both registers the flag (for --help) and
  /// returns its parsed value or the default.
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help);
  double get_double(const std::string& name, double def,
                    const std::string& help);
  bool get_bool(const std::string& name, bool def, const std::string& help);
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help);

  /// Call after all get_* registrations: errors out on flags that were
  /// passed but never registered, and handles --help.
  void done();

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;
};

}  // namespace drum::util
