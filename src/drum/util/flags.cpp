#include "drum/util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace drum::util {

Flags::Flags(int argc, char** argv) : program_(argc > 0 ? argv[0] : "?") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: positional arguments not supported: %s\n",
                   program_.c_str(), arg.c_str());
      std::exit(2);
    }
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag => boolean true
      }
    }
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def,
                            const std::string& help) {
  help_lines_.push_back("  --" + name + " (int, default " +
                        std::to_string(def) + "): " + help);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def,
                         const std::string& help) {
  help_lines_.push_back("  --" + name + " (double, default " +
                        std::to_string(def) + "): " + help);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def,
                     const std::string& help) {
  help_lines_.push_back("  --" + name + " (bool, default " +
                        (def ? "true" : "false") + "): " + help);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::get_string(const std::string& name, const std::string& def,
                              const std::string& help) {
  help_lines_.push_back("  --" + name + " (string, default \"" + def +
                        "\"): " + help);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

void Flags::done() {
  if (help_requested_) {
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    for (const auto& line : help_lines_) {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    std::exit(0);
  }
  for (const auto& [name, used] : consumed_) {
    if (!used) {
      std::fprintf(stderr, "%s: unknown flag --%s (see --help)\n",
                   program_.c_str(), name.c_str());
      std::exit(2);
    }
  }
}

}  // namespace drum::util
