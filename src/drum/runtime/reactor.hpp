// ReactorRuntime — event-driven execution of many protocol nodes in one
// process (DESIGN.md §8).
//
// The thread-per-node NodeRunner shape matches the paper's deployment (one
// JVM per machine) but caps a single-process experiment at a few dozen nodes:
// each node costs a thread that wakes every poll_interval whether or not
// datagrams arrived. ReactorRuntime inverts that: one net::EventLoop owns
// readiness (epoll for UDP sockets, the wakeup bridge for MemTransport, a
// timerfd-backed deadline queue for round ticks), and a small worker pool
// executes node callbacks only when there is work. 512 nodes plus a flooding
// adversary fit in one Release process (examples/swarm.cpp).
//
// Serialization contract: a core::Node stays single-threaded. Every entry
// into a node — drain_ingress(), ingest(), on_round(), multicast(),
// with_node() — happens under that node's own mutex; the
// scheduled/ready/round_due flags ensure at most one worker drains a node at
// a time and no readiness edge is lost. Workers pop nodes in small batches
// and run the DESIGN.md §12 ingress pipeline across them: drain each node
// under its lock, run ONE wide crypto pass (Ed25519 + port-box HMAC batches
// spanning every co-scheduled node) with no lock held, then re-lock each
// node to ingest its verified frames. Delivery
// callbacks therefore run on whichever thread is currently driving the node
// (a worker, or the loop thread when workers == 0) and must never re-enter
// poll()/on_round() — the same `in_poll_`/`in_round_` invariant the node
// itself asserts.
//
// Round ticks are per-node one-shot timers re-armed from the previous
// deadline (next = previous + jittered(round)), never from "now" — so
// per-tick dispatch latency does not accumulate into drift. A node that
// falls more than one full round behind (a stalled debug build, a paused
// process) resynchronizes to now instead of burst-firing the backlog; the
// "reactor.timer_resyncs" loop counter records each such skip.
//
// Telemetry: each node's registry gains the same "runner.*" metrics
// NodeRunner wrote (ticks, polls, poll_us, tick_interval_us) plus
// "reactor.dispatch_us" — the delay between a round tick firing on the loop
// thread and the node actually executing it. The loop's own registry
// (loop_registry()) carries the "loop.*" metrics from net::EventLoop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "drum/check/annotations.hpp"
#include "drum/core/node.hpp"
#include "drum/net/event_loop.hpp"
#include "drum/util/rng.hpp"

namespace drum::runtime {

struct ReactorConfig {
  /// Mean local round duration (paper: ~1 s).
  std::chrono::milliseconds round{1000};
  /// Uniform jitter as a fraction of `round` (+/-): keeps rounds
  /// unsynchronized across nodes (paper §4, §8).
  double jitter = 0.2;
  /// Worker threads executing node callbacks. 0 dispatches inline on the
  /// loop thread — one thread total, the NodeRunner-compatibility shape.
  std::size_t workers = 0;
  /// Record "runner.*" / "reactor.*" timing into each node's registry.
  bool instrument = true;
};

class ReactorRuntime {
 public:
  using NodeId = std::size_t;

  explicit ReactorRuntime(ReactorConfig cfg);
  /// Stops and joins if still running.
  ~ReactorRuntime();

  ReactorRuntime(const ReactorRuntime&) = delete;
  ReactorRuntime& operator=(const ReactorRuntime&) = delete;

  /// Registers a node; only legal while stopped. `node` must outlive the
  /// runtime. `seed` feeds this node's tick-jitter RNG. Returns the id used
  /// by multicast()/with_node().
  NodeId add_node(core::Node& node, std::uint64_t seed);

  /// Installs socket hooks, arms every node's first round tick, and launches
  /// the loop + worker threads. Idempotent while running.
  void start();
  /// Idempotent; blocks until all threads joined, then detaches the socket
  /// hooks so nodes are plain single-threaded objects again. start() may be
  /// called again afterwards.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Thread-safe multicast through node `id`.
  core::MessageId multicast(NodeId id, util::ByteSpan payload);

  /// Runs `fn` with exclusive access to node `id`. Keep it short — it blocks
  /// that node's protocol (and a worker slot).
  void with_node(NodeId id, const std::function<void(core::Node&)>& fn);

  /// The loop's own telemetry ("loop.*" counters, timer slop histogram,
  /// "reactor.timer_resyncs"). Read only while stopped.
  [[nodiscard]] const obs::MetricsRegistry& loop_registry() const {
    return loop_registry_;
  }

 private:
  struct NodeState {
    /// Serializes all entry into the node — the lock that implements the
    /// "a core::Node stays single-threaded" contract above.
    check::Mutex mu;
    core::Node* node DRUM_GUARDED_BY(mu) = nullptr;
    util::Rng rng;  ///< tick jitter; loop thread only (after start)

    /// True while the node sits in the run queue or a worker is draining it
    /// — prevents duplicate queue entries, not duplicate work (mu does
    /// that).
    std::atomic<bool> scheduled{false};
    std::atomic<bool> ready{false};      ///< sockets may have datagrams
    std::atomic<bool> round_due{false};  ///< the round timer fired

    // Round-tick bookkeeping; loop thread only.
    net::EventLoop::Clock::time_point next_deadline{};
    net::EventLoop::TimerId timer_id = 0;
    /// When the current round tick fired, as µs since the steady-clock
    /// epoch. Atomic because the next tick can (rarely) fire while a worker
    /// is still reading the previous value.
    std::atomic<std::int64_t> fire_us{0};

    // Telemetry; written under mu. Same names NodeRunner used, so merged
    // experiment metrics read identically across runtimes.
    obs::Counter* m_ticks DRUM_GUARDED_BY(mu) = nullptr;
    obs::Counter* m_polls DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_poll_us DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_tick_interval_us DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_dispatch_us DRUM_GUARDED_BY(mu) = nullptr;
    net::EventLoop::Clock::time_point last_tick DRUM_GUARDED_BY(mu){};

    explicit NodeState(core::Node& n, std::uint64_t seed)
        : node(&n), rng(seed) {}
  };

  net::EventLoop::Clock::duration jittered_round(NodeState& st);
  void arm_first_tick(NodeState& st);
  void on_round_timer(NodeState& st);  // loop thread
  /// Queues `st` for a worker (or drains it inline when workers == 0).
  void dispatch(NodeState& st);
  /// Takes st.mu, then drains the node via drain_node().
  void run_node(NodeState& st);
  /// Drains one node: poll / on_round until both flags are clear. Split
  /// from run_node so the analysis can prove every node entry holds st.mu.
  /// Inline (workers == 0) path only; workers run run_batch() instead.
  void drain_node(NodeState& st) DRUM_REQUIRES(st.mu);
  /// The worker-path ingress pipeline (DESIGN.md §12): drain every popped
  /// node under its own lock into one core::ingress::IngressBatch, run the
  /// accumulated crypto once with NO node lock held, then re-lock each
  /// drained node to push its verified frames back in. Round ticks stay
  /// self-contained under a single lock hold.
  void run_batch(const std::vector<NodeState*>& sts,
                 core::ingress::IngressBatch& batch);
  void worker_main();
  void install_hooks(NodeState& st);

  ReactorConfig cfg_;
  net::EventLoop loop_;
  obs::MetricsRegistry loop_registry_;
  obs::Counter* m_resyncs_ = nullptr;

  std::deque<NodeState> nodes_;  // deque: stable addresses, non-movable state

  check::Mutex sources_mu_;
  std::unordered_map<net::Socket*, net::EventLoop::SourceId> sources_
      DRUM_GUARDED_BY(sources_mu_);

  check::Mutex queue_mu_;
  /// _any: waits on a check::MutexLock (BasicLockable), which keeps the
  /// queue under the annotated capability.
  std::condition_variable_any queue_cv_;
  std::deque<NodeState*> queue_ DRUM_GUARDED_BY(queue_mu_);
  bool workers_stop_ DRUM_GUARDED_BY(queue_mu_) = false;

  /// Serializes start()/stop() against each other; owns the thread handles.
  check::Mutex lifecycle_mu_;
  std::thread loop_thread_ DRUM_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> workers_ DRUM_GUARDED_BY(lifecycle_mu_);
  /// Mirror of `!workers_.empty()`, readable from loop/worker threads
  /// without lifecycle_mu_: dispatch() keys inline-vs-queued execution off
  /// it. Written in start() before any event can fire.
  std::atomic<bool> inline_dispatch_{true};
  std::atomic<bool> running_{false};
};

}  // namespace drum::runtime
