// ReactorRuntime — event-driven execution of many protocol nodes in one
// process (DESIGN.md §8, §13).
//
// The thread-per-node NodeRunner shape matches the paper's deployment (one
// JVM per machine) but caps a single-process experiment at a few dozen nodes:
// each node costs a thread that wakes every poll_interval whether or not
// datagrams arrived. ReactorRuntime inverts that: a net::EventLoop owns
// readiness (epoll for UDP sockets, the wakeup bridge for MemTransport, a
// timerfd-backed deadline queue for round ticks), and node callbacks run only
// when there is work. 512 nodes plus a flooding adversary fit in one Release
// process (examples/swarm.cpp).
//
// The runtime has two shapes, selected by ReactorConfig::shards:
//
//  * shards == 1 — the compat anchor: ONE loop plus an optional worker pool
//    (cfg.workers), exactly the PR-8 runtime. Workers pop nodes from a
//    mutex-guarded queue in small batches and run the DESIGN.md §12 ingress
//    pipeline across them.
//  * shards >= 2 — one EventLoop + thread per shard (DESIGN.md §13). Each
//    shard owns a disjoint set of nodes (id % shards), its own
//    ingress batch, drain scratch, and telemetry registry, so the
//    steady-state hot path allocates nothing and contends on no cross-thread
//    mutex. A dispatch targeting a node homed on another shard crosses over
//    a bounded util::SpscRing (one per ordered shard pair) plus an eventfd
//    nudge when the consumer had gone idle; everything else stays on the
//    node's home thread. `workers` is ignored — each shard drains its own
//    nodes on its loop thread. 0 = auto (hardware_concurrency).
//
// Serialization contract (both shapes): a core::Node stays single-threaded.
// Every entry into a node — drain_ingress(), ingest(), on_round(),
// multicast(), with_node() — happens under that node's own mutex; the
// scheduled/ready/round_due flags ensure at most one thread drains a node at
// a time and no readiness edge is lost. In sharded steady state the home
// thread is the only contender, so the per-node lock is an uncontended CAS —
// it exists to keep multicast()/with_node() safe from any thread. Delivery
// callbacks run on whichever thread is currently driving the node and must
// never re-enter node entry points.
//
// Round ticks are per-node one-shot timers on the node's home loop, re-armed
// from the previous deadline (next = previous + jittered(round)), never from
// "now" — so per-tick dispatch latency does not accumulate into drift. A
// node that falls more than one full round behind resynchronizes to now
// instead of burst-firing the backlog; the "reactor.timer_resyncs" counter
// records each such skip.
//
// Telemetry: each node's registry gains the same "runner.*" metrics
// NodeRunner wrote (ticks, polls, poll_us, tick_interval_us) plus
// "reactor.dispatch_us". The runtime's own registry (loop_registry()) carries
// the "loop.*" metrics from net::EventLoop; in sharded mode every shard's
// loop metrics and its "reactor.shard.*" counters (ring_handoffs, wakeups,
// ring_full_fallbacks, batches) merge into it at stop(), plus the
// "reactor.shards" gauge.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "drum/check/annotations.hpp"
#include "drum/core/node.hpp"
#include "drum/net/event_loop.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/spsc_ring.hpp"

namespace drum::runtime {

struct ReactorConfig {
  /// Mean local round duration (paper: ~1 s).
  std::chrono::milliseconds round{1000};
  /// Uniform jitter as a fraction of `round` (+/-): keeps rounds
  /// unsynchronized across nodes (paper §4, §8).
  double jitter = 0.2;
  /// Worker threads executing node callbacks when shards == 1. 0 dispatches
  /// inline on the loop thread — one thread total, the NodeRunner-
  /// compatibility shape. Ignored when the runtime runs sharded.
  std::size_t workers = 0;
  /// Reactor shards: 0 = auto (std::thread::hardware_concurrency), 1 = the
  /// single-loop runtime above, N >= 2 = one loop thread per shard with SPSC
  /// cross-shard handoff. The resolved value is fixed at start().
  std::size_t shards = 0;
  /// Record "runner.*" / "reactor.*" timing into each node's registry.
  bool instrument = true;
};

class ReactorRuntime {
 public:
  using NodeId = std::size_t;

  explicit ReactorRuntime(ReactorConfig cfg);
  /// Stops and joins if still running.
  ~ReactorRuntime();

  ReactorRuntime(const ReactorRuntime&) = delete;
  ReactorRuntime& operator=(const ReactorRuntime&) = delete;

  /// Registers a node; only legal while stopped. `node` must outlive the
  /// runtime. `seed` feeds this node's tick-jitter RNG. Returns the id used
  /// by multicast()/with_node().
  NodeId add_node(core::Node& node, std::uint64_t seed);

  /// Installs socket hooks, arms every node's first round tick, and launches
  /// the loop (or shard) threads. Idempotent while running.
  void start();
  /// Idempotent; blocks until all threads joined, then detaches the socket
  /// hooks so nodes are plain single-threaded objects again. start() may be
  /// called again afterwards.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Shards the last start() resolved to (0 before the first start).
  [[nodiscard]] std::size_t shard_count() const {
    return n_shards_.load(std::memory_order_relaxed);
  }

  /// Thread-safe multicast through node `id`.
  core::MessageId multicast(NodeId id, util::ByteSpan payload);

  /// Runs `fn` with exclusive access to node `id`. Keep it short — it blocks
  /// that node's protocol (and its shard or a worker slot).
  void with_node(NodeId id, const std::function<void(core::Node&)>& fn);

  /// The runtime's own telemetry ("loop.*" counters, timer slop histogram,
  /// "reactor.timer_resyncs", and in sharded mode the merged per-shard
  /// "reactor.shard.*" counters). Read only while stopped.
  [[nodiscard]] const obs::MetricsRegistry& loop_registry() const {
    return loop_registry_;
  }

 private:
  struct NodeState {
    /// Serializes all entry into the node — the lock that implements the
    /// "a core::Node stays single-threaded" contract above.
    check::Mutex mu;
    core::Node* node DRUM_GUARDED_BY(mu) = nullptr;
    util::Rng rng;  ///< tick jitter; home loop thread only (after start)

    /// Which shard owns this node (id % shards). Written at start(), read
    /// by dispatch() from any thread — the start/stop lifecycle provides the
    /// ordering.
    std::size_t shard = 0;

    /// True while the node sits in a run queue, a ring, or a shard-local
    /// ready list, or is being drained — prevents duplicate entries, not
    /// duplicate work (mu does that).
    std::atomic<bool> scheduled{false};
    std::atomic<bool> ready{false};      ///< sockets may have datagrams
    std::atomic<bool> round_due{false};  ///< the round timer fired

    // Round-tick bookkeeping; home loop thread only.
    net::EventLoop::Clock::time_point next_deadline{};
    net::EventLoop::TimerId timer_id = 0;
    /// When the current round tick fired, as µs since the steady-clock
    /// epoch. Atomic because the next tick can (rarely) fire while a worker
    /// is still reading the previous value.
    std::atomic<std::int64_t> fire_us{0};

    // Telemetry; written under mu. Same names NodeRunner used, so merged
    // experiment metrics read identically across runtimes.
    obs::Counter* m_ticks DRUM_GUARDED_BY(mu) = nullptr;
    obs::Counter* m_polls DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_poll_us DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_tick_interval_us DRUM_GUARDED_BY(mu) = nullptr;
    obs::Histogram* m_dispatch_us DRUM_GUARDED_BY(mu) = nullptr;
    net::EventLoop::Clock::time_point last_tick DRUM_GUARDED_BY(mu){};

    explicit NodeState(core::Node& n, std::uint64_t seed)
        : node(&n), rng(seed) {}
  };

  /// One drained node awaiting its post-verify ingest (run_batch phase 3).
  struct Drained {
    NodeState* st = nullptr;
    core::Node* node = nullptr;  // captured under st->mu during the drain
    std::int64_t drain_us = 0;
  };

  /// Everything one shard thread owns (DESIGN.md §13). Only `inbound`,
  /// `idle`, and `sources` are ever touched by another thread; the rest is
  /// loop-thread confined after start().
  struct Shard {
    std::size_t index = 0;
    net::EventLoop loop;
    obs::MetricsRegistry registry;

    // drum-lint: shard-local
    /// Nodes to drain this cycle; fed by same-shard dispatches and by
    /// drain_rings(). Swapped into `proc` before processing so run_batch's
    /// own dispatches (a node's sends waking a same-shard peer) append to a
    /// stable vector.
    std::vector<NodeState*> ready;
    std::vector<NodeState*> proc;
    std::vector<Drained> drain_scratch;
    core::ingress::IngressBatch batch;
    // drum-lint: shard-local end

    /// inbound[p] carries handoffs produced by shard p (null when
    /// p == index). Capacity covers every node homed here, so a push only
    /// fails if a stale duplicate race transiently overfills — the producer
    /// then falls back to loop.post().
    std::vector<std::unique_ptr<util::SpscRing<NodeState*>>> inbound;
    /// True while the loop thread is (about to be) blocked in epoll_wait
    /// with all rings drained. A producer that flips true -> false owes the
    /// shard one eventfd nudge; see dispatch() for the fence protocol.
    std::atomic<bool> idle{true};

    /// Socket registrations for this shard's nodes. Hook callbacks usually
    /// fire on the home loop thread (per-round port rotation), but
    /// with_node() can rotate from any thread, hence the lock.
    check::Mutex sources_mu;
    std::unordered_map<net::Socket*, net::EventLoop::SourceId> sources
        DRUM_GUARDED_BY(sources_mu);

    std::thread thread;

    // Telemetry; shard thread only (producer-side counters live in the
    // *producing* shard's registry — registries are single-thread confined).
    obs::Counter* m_handoffs = nullptr;   ///< pushes onto peer rings
    obs::Counter* m_wakes = nullptr;      ///< eventfd nudges sent to peers
    obs::Counter* m_ring_full = nullptr;  ///< full-ring fallbacks to post()
    obs::Counter* m_batches = nullptr;    ///< drain/verify/ingest passes
    obs::Counter* m_resyncs = nullptr;    ///< reactor.timer_resyncs
  };

  net::EventLoop::Clock::duration jittered_round(NodeState& st);
  net::EventLoop& home_loop(NodeState& st);
  void arm_first_tick(NodeState& st);
  void on_round_timer(NodeState& st);  // home loop thread
  /// Routes `st` to whoever runs it: the worker queue / inline path when
  /// shards == 1, the home shard's ready list or inbound ring otherwise.
  void dispatch(NodeState& st);
  /// Inline (workers == 0, shards == 1) path: the single-node batch.
  void run_node(NodeState& st);
  /// The ingress pipeline (DESIGN.md §12): drain every node under its own
  /// lock into `batch`, run the accumulated crypto once with NO node lock
  /// held, then re-lock each drained node to push its verified frames back
  /// in. Round ticks stay self-contained under a single lock hold.
  void run_batch(std::span<NodeState* const> sts,
                 core::ingress::IngressBatch& batch,
                 std::vector<Drained>& scratch);
  void worker_main();
  void install_hooks(NodeState& st);          // shards == 1
  void install_hooks_sharded(NodeState& st);  // shards >= 2

  void start_single() DRUM_REQUIRES(lifecycle_mu_);
  void stop_single() DRUM_REQUIRES(lifecycle_mu_);
  void start_sharded(std::size_t n_shards) DRUM_REQUIRES(lifecycle_mu_);
  void stop_sharded() DRUM_REQUIRES(lifecycle_mu_);

  /// End-of-cycle hook on shard `sh`'s loop thread: drain inbound rings,
  /// run the batch pipeline over everything accumulated, and only declare
  /// the shard idle once a post-drain re-scan of the rings comes up empty.
  void shard_cycle(Shard& sh);
  /// Pops every inbound ring into sh.ready.
  void drain_rings(Shard& sh);

  ReactorConfig cfg_;
  net::EventLoop loop_;  ///< the shards == 1 loop; idle in sharded mode
  obs::MetricsRegistry loop_registry_;
  obs::Counter* m_resyncs_ = nullptr;

  std::deque<NodeState> nodes_;  // deque: stable addresses, non-movable state

  check::Mutex sources_mu_;
  std::unordered_map<net::Socket*, net::EventLoop::SourceId> sources_
      DRUM_GUARDED_BY(sources_mu_);

  check::Mutex queue_mu_;
  /// _any: waits on a check::MutexLock (BasicLockable), which keeps the
  /// queue under the annotated capability.
  std::condition_variable_any queue_cv_;
  std::deque<NodeState*> queue_ DRUM_GUARDED_BY(queue_mu_);
  bool workers_stop_ DRUM_GUARDED_BY(queue_mu_) = false;

  /// Serializes start()/stop() against each other; owns the thread handles.
  check::Mutex lifecycle_mu_;
  std::thread loop_thread_ DRUM_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> workers_ DRUM_GUARDED_BY(lifecycle_mu_);

  /// Shards of the current run; built by start_sharded(), torn down by
  /// stop_sharded(). unique_ptr: EventLoop is neither movable nor copyable.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Inline-path scratch (shards == 1, workers == 0); loop thread only.
  core::ingress::IngressBatch inline_batch_;
  std::vector<Drained> inline_scratch_;

  /// Mirror of `!workers_.empty()`, readable from loop/worker threads
  /// without lifecycle_mu_: dispatch() keys inline-vs-queued execution off
  /// it. Written in start() before any event can fire.
  std::atomic<bool> inline_dispatch_{true};
  /// True while the current run is sharded; written under lifecycle_mu_
  /// before any event can fire, read lock-free by dispatch().
  std::atomic<bool> sharded_{false};
  std::atomic<std::size_t> n_shards_{0};
  std::atomic<bool> running_{false};
};

}  // namespace drum::runtime
