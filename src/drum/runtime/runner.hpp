// Real-time execution of protocol nodes: one thread per node, jittered
// local round ticks, frequent polling — the deployment shape of the paper's
// multithreaded Java implementation ("the operations that occur in a round
// are not synchronized", §8).
//
// A core::Node is deliberately single-threaded; NodeRunner owns the thread
// and serializes all access. Application threads interact through the
// thread-safe multicast() / with_node() entry points. Delivery callbacks run
// on the runner thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "drum/core/node.hpp"
#include "drum/util/rng.hpp"

namespace drum::runtime {

struct RunnerConfig {
  /// Mean local round duration (paper: ~1 s).
  std::chrono::milliseconds round{1000};
  /// Uniform jitter as a fraction of `round` (+/-): keeps rounds
  /// unsynchronized across nodes so an attacker cannot aim at round starts
  /// (paper §4).
  double jitter = 0.2;
  /// How often the runner drains the node's sockets between ticks.
  std::chrono::milliseconds poll_interval{2};
  /// Record runner telemetry into the node's metrics registry:
  /// "runner.ticks" / "runner.polls" counters, the "runner.poll_us" poll-
  /// call duration histogram, and "runner.tick_interval_us" — the realized
  /// (jittered) gap between round ticks, whose spread is the evidence that
  /// rounds stay unsynchronized. Costs two clock reads per poll iteration.
  bool instrument = true;
};

class NodeRunner {
 public:
  /// Does not start the thread; call start(). `node` must outlive the
  /// runner.
  NodeRunner(core::Node& node, RunnerConfig cfg, std::uint64_t seed);
  /// Stops and joins if still running.
  ~NodeRunner();

  NodeRunner(const NodeRunner&) = delete;
  NodeRunner& operator=(const NodeRunner&) = delete;

  void start();
  /// Idempotent; blocks until the thread has joined.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Thread-safe multicast through the node.
  core::MessageId multicast(util::ByteSpan payload);

  /// Runs `fn` with exclusive access to the node (for stats, directory
  /// updates, etc.). Keep it short — it blocks the protocol.
  void with_node(const std::function<void(core::Node&)>& fn);

 private:
  void loop();

  core::Node& node_;
  RunnerConfig cfg_;
  util::Rng rng_;
  std::mutex mu_;  // guards node_ and rng_
  /// Serializes start()/stop() against each other: two threads stopping (or
  /// one stopping while another restarts) must not both observe a joinable
  /// thread and race on join().
  std::mutex lifecycle_mu_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace drum::runtime
