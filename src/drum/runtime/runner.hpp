// NodeRunner — single-node compatibility facade over ReactorRuntime.
//
// Historically this was a dedicated thread sleep-polling the node on a
// fixed cadence. It is now a thin shim over a one-node ReactorRuntime with
// workers == 0: one thread total (the event loop), woken by socket readiness
// and the round timer instead of a sleep cadence. The public API and the
// "runner.*" telemetry names are unchanged.
//
// New code hosting more than one node should use ReactorRuntime directly
// (reactor.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "drum/core/node.hpp"
#include "drum/runtime/reactor.hpp"

namespace drum::runtime {

struct RunnerConfig {
  /// Mean local round duration (paper: ~1 s).
  std::chrono::milliseconds round{1000};
  /// Uniform jitter as a fraction of `round` (+/-): keeps rounds
  /// unsynchronized across nodes so an attacker cannot aim at round starts
  /// (paper §4).
  double jitter = 0.2;
  /// Record runner telemetry into the node's metrics registry:
  /// "runner.ticks" / "runner.polls" counters, the "runner.poll_us" poll-
  /// call duration histogram, and "runner.tick_interval_us" — the realized
  /// (jittered) gap between round ticks, whose spread is the evidence that
  /// rounds stay unsynchronized.
  bool instrument = true;
};

class NodeRunner {
 public:
  /// Does not start the thread; call start(). `node` must outlive the
  /// runner.
  NodeRunner(core::Node& node, RunnerConfig cfg, std::uint64_t seed);

  NodeRunner(const NodeRunner&) = delete;
  NodeRunner& operator=(const NodeRunner&) = delete;

  void start() { reactor_.start(); }
  /// Idempotent; blocks until the loop thread has joined.
  void stop() { reactor_.stop(); }
  [[nodiscard]] bool running() const { return reactor_.running(); }

  /// Thread-safe multicast through the node.
  core::MessageId multicast(util::ByteSpan payload) {
    return reactor_.multicast(0, payload);
  }

  /// Runs `fn` with exclusive access to the node (for stats, directory
  /// updates, etc.). Keep it short — it blocks the protocol.
  void with_node(const std::function<void(core::Node&)>& fn) {
    reactor_.with_node(0, fn);
  }

 private:
  ReactorRuntime reactor_;
};

}  // namespace drum::runtime
