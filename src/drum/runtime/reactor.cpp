#include "drum/runtime/reactor.hpp"

#include <atomic>

#include "drum/check/check.hpp"

namespace drum::runtime {

using Clock = net::EventLoop::Clock;
using std::chrono::duration_cast;
using std::chrono::microseconds;

namespace {

/// Nodes popped per queue critical section (shards == 1 worker path).
/// Bounding the batch keeps other workers fed under load while still giving
/// verify() a cross-node window: 8 nodes × a few frames each already fills
/// the Ed25519 batch ladder.
constexpr std::size_t kWorkerBatch = 8;

/// Nodes per drain/verify/ingest pass on a shard thread. Wider than the
/// worker batch (there are no co-workers to feed), narrower than "everything
/// this cycle" so a flood against one shard still bounds per-pass latency
/// and batch memory.
constexpr std::size_t kShardBatch = 64;

/// Which shard's loop thread we are on, if any. dispatch() keys the
/// same-shard fast path and the ring producer index off this; the owner
/// check keeps two coexisting runtimes (tests tear fleets up and down) from
/// misrouting each other's handoffs.
struct TlsShard {
  const void* owner = nullptr;
  std::size_t index = 0;
};
thread_local TlsShard tls_shard;

}  // namespace

ReactorRuntime::ReactorRuntime(ReactorConfig cfg) : cfg_(cfg) {
  DRUM_REQUIRE(cfg.round.count() > 0, "round duration must be positive");
  DRUM_REQUIRE(cfg.jitter >= 0.0 && cfg.jitter < 1.0,
               "jitter must be in [0, 1): ", cfg.jitter);
  loop_.set_registry(&loop_registry_);
  m_resyncs_ = &loop_registry_.counter("reactor.timer_resyncs");
}

ReactorRuntime::~ReactorRuntime() { stop(); }

ReactorRuntime::NodeId ReactorRuntime::add_node(core::Node& node,
                                                std::uint64_t seed) {
  DRUM_REQUIRE(!running_.load(), "add_node while the reactor is running");
  nodes_.emplace_back(node, seed);
  NodeState& st = nodes_.back();
  if (cfg_.instrument) {
    // Uncontended (the runtime is stopped), but the telemetry fields are
    // guarded by st.mu and the analysis rightly demands the lock.
    check::MutexLock lock(st.mu);
    auto& reg = node.registry();
    st.m_ticks = &reg.counter("runner.ticks");
    st.m_polls = &reg.counter("runner.polls");
    st.m_poll_us = &reg.histogram("runner.poll_us");
    st.m_tick_interval_us = &reg.histogram("runner.tick_interval_us");
    st.m_dispatch_us = &reg.histogram("reactor.dispatch_us");
  }
  return nodes_.size() - 1;
}

Clock::duration ReactorRuntime::jittered_round(NodeState& st) {
  double j = 1.0 + cfg_.jitter * (2.0 * st.rng.uniform() - 1.0);
  return duration_cast<Clock::duration>(cfg_.round * j);
}

net::EventLoop& ReactorRuntime::home_loop(NodeState& st) {
  return sharded_.load(std::memory_order_relaxed) ? shards_[st.shard]->loop
                                                  : loop_;
}

void ReactorRuntime::install_hooks(NodeState& st) {
  NodeState* stp = &st;
  check::MutexLock node_lock(st.mu);
  // Replays existing sockets immediately and fires again on every per-round
  // random-port rotation (from a worker, inside on_round, under st.mu).
  st.node->set_socket_hook([this, stp](net::Socket& sock, bool added) {
    if (added) {
      auto id = loop_.add_socket(sock, [this, stp] {
        stp->ready.store(true);
        dispatch(*stp);
      });
      check::MutexLock lock(sources_mu_);
      sources_[&sock] = id;
    } else {
      net::EventLoop::SourceId id = 0;
      {
        check::MutexLock lock(sources_mu_);
        auto it = sources_.find(&sock);
        if (it == sources_.end()) return;
        id = it->second;
        sources_.erase(it);
      }
      loop_.remove_socket(id);
    }
  });
}

void ReactorRuntime::install_hooks_sharded(NodeState& st) {
  NodeState* stp = &st;
  Shard* sh = shards_[st.shard].get();
  check::MutexLock node_lock(st.mu);
  st.node->set_socket_hook([this, stp, sh](net::Socket& sock, bool added) {
    if (added) {
      if (sock.native_handle() >= 0) {
        // Real fd: epoll on the home shard's loop — readiness fires on the
        // home thread with no cross-thread structure at all.
        auto id = sh->loop.add_socket(sock, [this, stp] {
          stp->ready.store(true);
          dispatch(*stp);
        });
        check::MutexLock lock(sh->sources_mu);
        sh->sources[&sock] = id;
      } else {
        // MemSocket: bypass the loop's mem bridge (whose notify path takes
        // the consumer loop's mutex from the sender's thread) and route the
        // readiness edge through dispatch() directly — same-shard sends
        // stay thread-local, cross-shard sends ride the SPSC ring.
        {
          check::MutexLock lock(sh->sources_mu);
          sh->sources[&sock] = 0;  // 0: no loop registration to undo
        }
        sock.set_ready_callback([this, stp] {
          stp->ready.store(true);
          dispatch(*stp);
        });
        // Datagrams may have been delivered before the callback attached.
        stp->ready.store(true);
        dispatch(*stp);
      }
    } else {
      net::EventLoop::SourceId id = 0;
      {
        check::MutexLock lock(sh->sources_mu);
        auto it = sh->sources.find(&sock);
        if (it == sh->sources.end()) return;
        id = it->second;
        sh->sources.erase(it);
      }
      if (id != 0) {
        sh->loop.remove_socket(id);
      } else {
        sock.set_ready_callback(nullptr);
      }
    }
  });
}

void ReactorRuntime::arm_first_tick(NodeState& st) {
  st.next_deadline = Clock::now() + jittered_round(st);
  st.last_tick = Clock::now();
  st.timer_id = home_loop(st).add_timer(st.next_deadline,
                                        [this, &st] { on_round_timer(st); });
}

void ReactorRuntime::on_round_timer(NodeState& st) {
  st.fire_us.store(
      duration_cast<microseconds>(Clock::now().time_since_epoch()).count());
  st.round_due.store(true);
  dispatch(st);
  // Drift-free re-arm: the next deadline grows from the previous *deadline*,
  // so dispatch slop never accumulates. Only when a stall has pushed us a
  // full round (or more) behind do we resync to now — skipping the backlog
  // instead of burst-firing it.
  st.next_deadline += jittered_round(st);
  auto now = Clock::now();
  if (st.next_deadline <= now) {
    st.next_deadline = now + jittered_round(st);
    if (sharded_.load(std::memory_order_relaxed)) {
      shards_[st.shard]->m_resyncs->inc();
    } else {
      m_resyncs_->inc();
    }
  }
  st.timer_id = home_loop(st).add_timer(st.next_deadline,
                                        [this, &st] { on_round_timer(st); });
}

void ReactorRuntime::dispatch(NodeState& st) {
  // `scheduled` only dedups queue/ring entries. A notifier that loses this
  // race is covered: the winner clears `scheduled` before draining the
  // flags, so any flag set after that drain finds `scheduled` false and
  // re-enqueues.
  if (st.scheduled.exchange(true)) return;
  if (!sharded_.load(std::memory_order_relaxed)) {
    if (inline_dispatch_.load(std::memory_order_relaxed)) {
      run_node(st);
      return;
    }
    {
      check::MutexLock lock(queue_mu_);
      queue_.push_back(&st);
    }
    queue_cv_.notify_one();
    return;
  }

  Shard& home = *shards_[st.shard];
  if (tls_shard.owner == this) {
    const std::size_t from = tls_shard.index;
    if (from == st.shard) {
      // drum-lint: shard-local
      // Same shard: the node is drained later this cycle (or next — the
      // cycle hook self-wakes when it leaves work behind). Pure
      // thread-local push.
      home.ready.push_back(&st);
      return;
      // drum-lint: shard-local end
    }
    Shard& prod = *shards_[from];
    util::SpscRing<NodeState*>& ring = *home.inbound[from];
    ring.assume_producer();  // shard `from`'s thread is the sole pusher
    if (ring.try_push(&st)) {
      prod.m_handoffs->inc();
      // Dekker handshake with shard_cycle(): our push must be visible to
      // the consumer's post-idle ring re-scan OR its idle=true must be
      // visible to us — the paired seq_cst fences guarantee at least one.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (home.idle.exchange(false, std::memory_order_relaxed)) {
        home.loop.wake();
        prod.m_wakes->inc();
      }
      return;
    }
    prod.m_ring_full->inc();
    // Fall through: the ring is transiently overfull — the loop's post queue
    // is the unbounded safety valve.
  }
  // External threads (harness, attacker, with_node-triggered rotations) and
  // ring-full fallbacks go through the home loop's post queue.
  home.loop.post([this, &st] { shards_[st.shard]->ready.push_back(&st); });
}

void ReactorRuntime::run_node(NodeState& st) {
  NodeState* stp = &st;
  run_batch(std::span<NodeState* const>(&stp, 1), inline_batch_,
            inline_scratch_);
}

void ReactorRuntime::run_batch(std::span<NodeState* const> sts,
                               core::ingress::IngressBatch& batch,
                               std::vector<Drained>& scratch) {
  scratch.clear();

  // Phase 1 — drain. Each node is held only long enough to move its backlog
  // (budget-charged, greylist-peeked, decoded) into the shared batch.
  for (NodeState* stp : sts) {
    NodeState& st = *stp;
    st.scheduled.store(false);
    check::MutexLock lock(st.mu);
    if (st.round_due.exchange(false)) {
      // Round ticks stay self-contained: on_round() drains, flushes and
      // re-budgets via its own internal cycle, and batching a drain across
      // the round boundary would bill the new round's budgets for the old
      // round's backlog. Its internal cycle also consumes any pending
      // readiness, so clear the flag first — an edge arriving later finds
      // scheduled == false and re-enqueues.
      st.ready.store(false);
      auto now = Clock::now();
      st.node->on_round();
      if (st.m_ticks) {
        st.m_ticks->inc();
        auto gap = duration_cast<microseconds>(now - st.last_tick).count();
        st.m_tick_interval_us->record(static_cast<std::uint64_t>(gap));
        auto now_us =
            duration_cast<microseconds>(now.time_since_epoch()).count();
        auto slop = now_us - st.fire_us.load();
        st.m_dispatch_us->record(
            static_cast<std::uint64_t>(slop < 0 ? 0 : slop));
        st.last_tick = now;
      }
      continue;
    }
    if (st.ready.exchange(false)) {
      auto t0 = Clock::now();
      st.node->drain_ingress(batch);
      scratch.push_back(Drained{
          stp, st.node,
          duration_cast<microseconds>(Clock::now() - t0).count()});
    }
  }

  if (scratch.empty()) return;

  // Phase 2 — the wide crypto pass: every signature and every port box the
  // drain produced, across ALL nodes, in one batch. No node lock is held
  // here, so co-workers keep draining and round ticks keep firing.
  batch.verify();

  // Phase 3 — push the verified frames back in, per node, serialized again.
  for (Drained& d : scratch) {
    NodeState& st = *d.st;
    check::MutexLock lock(st.mu);
    auto t0 = Clock::now();
    auto& sec = batch.section_for(*d.node);
    if (!sec.frames.empty()) {
      d.node->ingest(std::span<core::ingress::VerifiedFrame>(sec.frames));
    }
    if (st.m_polls) {
      auto dt = duration_cast<microseconds>(Clock::now() - t0).count();
      st.m_polls->inc();
      st.m_poll_us->record(static_cast<std::uint64_t>(d.drain_us + dt));
    }
  }
  batch.clear();
}

void ReactorRuntime::worker_main() {
  std::vector<NodeState*> popped;
  popped.reserve(kWorkerBatch);
  std::vector<Drained> scratch;
  scratch.reserve(kWorkerBatch);
  core::ingress::IngressBatch batch;
  for (;;) {
    popped.clear();
    {
      check::MutexLock lock(queue_mu_);
      queue_cv_.wait(lock, [this]() DRUM_REQUIRES(queue_mu_) {
        return workers_stop_ || !queue_.empty();
      });
      if (workers_stop_ && queue_.empty()) return;
      while (!queue_.empty() && popped.size() < kWorkerBatch) {
        popped.push_back(queue_.front());
        queue_.pop_front();
      }
    }
    run_batch(popped, batch, scratch);
  }
}

void ReactorRuntime::drain_rings(Shard& sh) {
  // drum-lint: shard-local
  for (auto& ring : sh.inbound) {
    if (!ring) continue;
    ring->assume_consumer();  // this shard's thread is the sole popper
    NodeState* st = nullptr;
    while (ring->try_pop(st)) sh.ready.push_back(st);
  }
  // drum-lint: shard-local end
}

void ReactorRuntime::shard_cycle(Shard& sh) {
  // We are demonstrably awake; claim active so producers stop nudging.
  sh.idle.store(false, std::memory_order_relaxed);
  drain_rings(sh);
  if (!sh.ready.empty()) {
    // drum-lint: shard-local
    // Swap before processing: run_batch re-enters dispatch() (a node's
    // sends wake same-shard peers), which appends to sh.ready — never to
    // the vector being iterated.
    sh.proc.clear();
    sh.proc.swap(sh.ready);
    std::size_t i = 0;
    while (i < sh.proc.size()) {
      const std::size_t n = std::min(kShardBatch, sh.proc.size() - i);
      run_batch(std::span<NodeState* const>(sh.proc.data() + i, n), sh.batch,
                sh.drain_scratch);
      sh.m_batches->inc();
      i += n;
    }
    sh.proc.clear();
    // drum-lint: shard-local end
  }
  if (!sh.ready.empty()) {
    // Processing produced more same-shard work. Return through epoll (so fd
    // readiness and timers are not starved) but make it come straight back.
    sh.loop.wake();
    return;
  }
  // Nothing local. Declare idle, then re-scan the rings: a producer whose
  // push raced our drain either sees idle == true (and nudges us) or its
  // push is visible to this scan — the fence pairs with dispatch()'s.
  sh.idle.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (auto& ring : sh.inbound) {
    if (ring && !ring->empty()) {
      sh.idle.store(false, std::memory_order_relaxed);
      sh.loop.wake();
      return;
    }
  }
  // Truly idle: block in epoll until a producer's nudge, fd readiness, or
  // the next round timer. (A lost wake cannot stall the shard forever —
  // every node re-arms a round timer on this loop.)
}

void ReactorRuntime::start() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (running_.exchange(true)) return;
  std::size_t n = cfg_.shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  n_shards_.store(n, std::memory_order_relaxed);
  sharded_.store(n >= 2, std::memory_order_relaxed);
  if (n >= 2) {
    start_sharded(n);
  } else {
    start_single();
  }
}

void ReactorRuntime::start_single() {
  {
    check::MutexLock lock(queue_mu_);
    workers_stop_ = false;
  }
  // Workers first so inline-vs-queued dispatch is decided before any event
  // can fire (dispatch() keys off inline_dispatch_ — the lock-free mirror
  // of workers_.empty(), which itself stays under lifecycle_mu_).
  inline_dispatch_.store(cfg_.workers == 0);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  for (auto& st : nodes_) {
    // add_socket queues an initial catch-up dispatch per socket, so
    // datagrams that arrived before start() are polled without an explicit
    // kick here.
    install_hooks(st);
    arm_first_tick(st);
  }
  // Clear any stop request left by a previous run; lifecycle_mu_ guarantees
  // no stop() can race this before the new loop thread is launched.
  loop_.reset();
  loop_thread_ = std::thread([this] { loop_.run(); });
}

void ReactorRuntime::start_sharded(std::size_t n_shards) {
  shards_.clear();
  const std::size_t per_shard = (nodes_.size() + n_shards - 1) / n_shards;
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& sh = *shards_.back();
    sh.index = s;
    sh.loop.set_registry(&sh.registry);
    sh.m_handoffs = &sh.registry.counter("reactor.shard.ring_handoffs");
    sh.m_wakes = &sh.registry.counter("reactor.shard.wakeups");
    sh.m_ring_full = &sh.registry.counter("reactor.shard.ring_full_fallbacks");
    sh.m_batches = &sh.registry.counter("reactor.shard.batches");
    sh.m_resyncs = &sh.registry.counter("reactor.timer_resyncs");
    sh.ready.reserve(per_shard + kShardBatch);
    sh.proc.reserve(per_shard + kShardBatch);
    sh.drain_scratch.reserve(kShardBatch);
    sh.inbound.resize(n_shards);
    for (std::size_t p = 0; p < n_shards; ++p) {
      if (p == s) continue;
      sh.inbound[p] = std::make_unique<util::SpscRing<NodeState*>>(
          std::max<std::size_t>(64, per_shard + 1));
    }
    Shard* shp = &sh;
    sh.loop.set_cycle_callback([this, shp] { shard_cycle(*shp); });
  }
  std::size_t id = 0;
  for (auto& st : nodes_) {
    st.shard = id++ % n_shards;
    install_hooks_sharded(st);
    arm_first_tick(st);
  }
  for (auto& shp : shards_) {
    Shard* sh = shp.get();
    sh->loop.reset();
    sh->thread = std::thread([this, sh] {
      tls_shard = TlsShard{this, sh->index};
      sh->loop.run();
      tls_shard = TlsShard{};
    });
  }
}

void ReactorRuntime::stop() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (!running_.load()) return;
  if (sharded_.load(std::memory_order_relaxed)) {
    stop_sharded();
  } else {
    stop_single();
  }
  running_.store(false);
}

void ReactorRuntime::stop_single() {
  loop_.stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    check::MutexLock lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // With all threads quiesced, return the nodes to plain single-threaded
  // life: cancel round timers (else a restart would burst-fire the stale
  // backlog), detach the hooks, and unregister every socket.
  for (auto& st : nodes_) {
    loop_.cancel_timer(st.timer_id);
    check::MutexLock node_lock(st.mu);
    st.node->set_socket_hook(nullptr);
  }
  {
    check::MutexLock lock(sources_mu_);
    for (auto& [sock, id] : sources_) loop_.remove_socket(id);
    sources_.clear();
  }
}

void ReactorRuntime::stop_sharded() {
  for (auto& sh : shards_) sh->loop.stop();
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) sh->thread.join();
  }
  // All shard threads quiesced. Cancel timers, detach hooks, clear the
  // scheduling flags (rings and ready lists may hold stale entries that die
  // with the shards below), and unregister sockets.
  for (auto& st : nodes_) {
    shards_[st.shard]->loop.cancel_timer(st.timer_id);
    {
      check::MutexLock node_lock(st.mu);
      st.node->set_socket_hook(nullptr);
    }
    st.scheduled.store(false);
    st.ready.store(false);
    st.round_due.store(false);
  }
  for (auto& sh : shards_) {
    check::MutexLock lock(sh->sources_mu);
    for (auto& [sock, id] : sh->sources) {
      if (id != 0) {
        sh->loop.remove_socket(id);
      } else {
        sock->set_ready_callback(nullptr);
      }
    }
    sh->sources.clear();
  }
  // Fold every shard's loop + reactor.shard.* telemetry into the runtime
  // registry, then tear the shards down (a restart builds fresh ones).
  for (auto& sh : shards_) loop_registry_.merge(sh->registry);
  loop_registry_.gauge("reactor.shards")
      .set(static_cast<double>(shards_.size()));
  shards_.clear();
}

core::MessageId ReactorRuntime::multicast(NodeId id, util::ByteSpan payload) {
  DRUM_REQUIRE(id < nodes_.size(), "multicast: bad node id ", id);
  NodeState& st = nodes_[id];
  check::MutexLock lock(st.mu);
  return st.node->multicast(payload);
}

void ReactorRuntime::with_node(NodeId id,
                               const std::function<void(core::Node&)>& fn) {
  DRUM_REQUIRE(id < nodes_.size(), "with_node: bad node id ", id);
  DRUM_REQUIRE(fn != nullptr, "with_node requires a callable");
  NodeState& st = nodes_[id];
  check::MutexLock lock(st.mu);
  fn(*st.node);
}

}  // namespace drum::runtime
