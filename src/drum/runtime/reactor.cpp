#include "drum/runtime/reactor.hpp"

#include "drum/check/check.hpp"

namespace drum::runtime {

using Clock = net::EventLoop::Clock;
using std::chrono::duration_cast;
using std::chrono::microseconds;

ReactorRuntime::ReactorRuntime(ReactorConfig cfg) : cfg_(cfg) {
  DRUM_REQUIRE(cfg.round.count() > 0, "round duration must be positive");
  DRUM_REQUIRE(cfg.jitter >= 0.0 && cfg.jitter < 1.0,
               "jitter must be in [0, 1): ", cfg.jitter);
  loop_.set_registry(&loop_registry_);
  m_resyncs_ = &loop_registry_.counter("reactor.timer_resyncs");
}

ReactorRuntime::~ReactorRuntime() { stop(); }

ReactorRuntime::NodeId ReactorRuntime::add_node(core::Node& node,
                                                std::uint64_t seed) {
  DRUM_REQUIRE(!running_.load(), "add_node while the reactor is running");
  nodes_.emplace_back(node, seed);
  NodeState& st = nodes_.back();
  if (cfg_.instrument) {
    // Uncontended (the runtime is stopped), but the telemetry fields are
    // guarded by st.mu and the analysis rightly demands the lock.
    check::MutexLock lock(st.mu);
    auto& reg = node.registry();
    st.m_ticks = &reg.counter("runner.ticks");
    st.m_polls = &reg.counter("runner.polls");
    st.m_poll_us = &reg.histogram("runner.poll_us");
    st.m_tick_interval_us = &reg.histogram("runner.tick_interval_us");
    st.m_dispatch_us = &reg.histogram("reactor.dispatch_us");
  }
  return nodes_.size() - 1;
}

Clock::duration ReactorRuntime::jittered_round(NodeState& st) {
  double j = 1.0 + cfg_.jitter * (2.0 * st.rng.uniform() - 1.0);
  return duration_cast<Clock::duration>(cfg_.round * j);
}

void ReactorRuntime::install_hooks(NodeState& st) {
  NodeState* stp = &st;
  check::MutexLock node_lock(st.mu);
  // Replays existing sockets immediately and fires again on every per-round
  // random-port rotation (from a worker, inside on_round, under st.mu).
  st.node->set_socket_hook([this, stp](net::Socket& sock, bool added) {
    if (added) {
      auto id = loop_.add_socket(sock, [this, stp] {
        stp->ready.store(true);
        dispatch(*stp);
      });
      check::MutexLock lock(sources_mu_);
      sources_[&sock] = id;
    } else {
      net::EventLoop::SourceId id = 0;
      {
        check::MutexLock lock(sources_mu_);
        auto it = sources_.find(&sock);
        if (it == sources_.end()) return;
        id = it->second;
        sources_.erase(it);
      }
      loop_.remove_socket(id);
    }
  });
}

void ReactorRuntime::arm_first_tick(NodeState& st) {
  st.next_deadline = Clock::now() + jittered_round(st);
  st.last_tick = Clock::now();
  st.timer_id =
      loop_.add_timer(st.next_deadline, [this, &st] { on_round_timer(st); });
}

void ReactorRuntime::on_round_timer(NodeState& st) {
  st.fire_us.store(
      duration_cast<microseconds>(Clock::now().time_since_epoch()).count());
  st.round_due.store(true);
  dispatch(st);
  // Drift-free re-arm: the next deadline grows from the previous *deadline*,
  // so dispatch slop never accumulates. Only when a stall has pushed us a
  // full round (or more) behind do we resync to now — skipping the backlog
  // instead of burst-firing it.
  st.next_deadline += jittered_round(st);
  auto now = Clock::now();
  if (st.next_deadline <= now) {
    st.next_deadline = now + jittered_round(st);
    m_resyncs_->inc();
  }
  st.timer_id =
      loop_.add_timer(st.next_deadline, [this, &st] { on_round_timer(st); });
}

void ReactorRuntime::dispatch(NodeState& st) {
  // `scheduled` only dedups queue entries. A notifier that loses this race
  // is covered: the winner clears `scheduled` before draining the flags, so
  // any flag set after that drain finds `scheduled` false and re-enqueues.
  if (st.scheduled.exchange(true)) return;
  if (inline_dispatch_.load(std::memory_order_relaxed)) {
    run_node(st);
    return;
  }
  {
    check::MutexLock lock(queue_mu_);
    queue_.push_back(&st);
  }
  queue_cv_.notify_one();
}

void ReactorRuntime::run_node(NodeState& st) {
  st.scheduled.store(false);
  check::MutexLock lock(st.mu);
  drain_node(st);
}

void ReactorRuntime::drain_node(NodeState& st) {
  for (;;) {
    const bool r = st.ready.exchange(false);
    const bool rd = st.round_due.exchange(false);
    if (!r && !rd) break;
    if (r) {
      if (st.m_polls) {
        auto t0 = Clock::now();
        st.node->poll();
        auto dt = duration_cast<microseconds>(Clock::now() - t0).count();
        st.m_polls->inc();
        st.m_poll_us->record(static_cast<std::uint64_t>(dt));
      } else {
        st.node->poll();
      }
    }
    if (rd) {
      auto now = Clock::now();
      st.node->on_round();
      if (st.m_ticks) {
        st.m_ticks->inc();
        auto gap = duration_cast<microseconds>(now - st.last_tick).count();
        st.m_tick_interval_us->record(static_cast<std::uint64_t>(gap));
        auto now_us =
            duration_cast<microseconds>(now.time_since_epoch()).count();
        auto slop = now_us - st.fire_us.load();
        st.m_dispatch_us->record(
            static_cast<std::uint64_t>(slop < 0 ? 0 : slop));
        st.last_tick = now;
      }
    }
  }
}

namespace {
/// Nodes popped per queue critical section. Bounding the batch keeps other
/// workers fed under load while still giving verify() a cross-node window:
/// 8 nodes × a few frames each already fills the Ed25519 batch ladder.
constexpr std::size_t kWorkerBatch = 8;
}  // namespace

void ReactorRuntime::run_batch(const std::vector<NodeState*>& sts,
                               core::ingress::IngressBatch& batch) {
  struct Drained {
    NodeState* st;
    core::Node* node;  // captured under st->mu during the drain phase
    std::int64_t drain_us;
  };
  Drained drained[kWorkerBatch];
  std::size_t n_drained = 0;

  // Phase 1 — drain. Each node is held only long enough to move its backlog
  // (budget-charged, greylist-peeked, decoded) into the shared batch.
  for (NodeState* stp : sts) {
    NodeState& st = *stp;
    st.scheduled.store(false);
    check::MutexLock lock(st.mu);
    if (st.round_due.exchange(false)) {
      // Round ticks stay self-contained: on_round() drains, flushes and
      // re-budgets via its own internal cycle, and batching a drain across
      // the round boundary would bill the new round's budgets for the old
      // round's backlog. Its internal cycle also consumes any pending
      // readiness, so clear the flag first — an edge arriving later finds
      // scheduled == false and re-enqueues.
      st.ready.store(false);
      auto now = Clock::now();
      st.node->on_round();
      if (st.m_ticks) {
        st.m_ticks->inc();
        auto gap = duration_cast<microseconds>(now - st.last_tick).count();
        st.m_tick_interval_us->record(static_cast<std::uint64_t>(gap));
        auto now_us =
            duration_cast<microseconds>(now.time_since_epoch()).count();
        auto slop = now_us - st.fire_us.load();
        st.m_dispatch_us->record(
            static_cast<std::uint64_t>(slop < 0 ? 0 : slop));
        st.last_tick = now;
      }
      continue;
    }
    if (st.ready.exchange(false)) {
      auto t0 = Clock::now();
      st.node->drain_ingress(batch);
      drained[n_drained++] = Drained{
          stp, st.node, duration_cast<microseconds>(Clock::now() - t0).count()};
    }
  }

  if (n_drained == 0) return;

  // Phase 2 — the wide crypto pass: every signature and every port box the
  // drain produced, across ALL nodes, in one batch. No node lock is held
  // here, so co-workers keep draining and round ticks keep firing.
  batch.verify();

  // Phase 3 — push the verified frames back in, per node, serialized again.
  for (std::size_t i = 0; i < n_drained; ++i) {
    Drained& d = drained[i];
    NodeState& st = *d.st;
    check::MutexLock lock(st.mu);
    auto t0 = Clock::now();
    auto& sec = batch.section_for(*d.node);
    if (!sec.frames.empty()) {
      d.node->ingest(std::span<core::ingress::VerifiedFrame>(sec.frames));
    }
    if (st.m_polls) {
      auto dt = duration_cast<microseconds>(Clock::now() - t0).count();
      st.m_polls->inc();
      st.m_poll_us->record(static_cast<std::uint64_t>(d.drain_us + dt));
    }
  }
  batch.clear();
}

void ReactorRuntime::worker_main() {
  std::vector<NodeState*> popped;
  popped.reserve(kWorkerBatch);
  core::ingress::IngressBatch batch;
  for (;;) {
    popped.clear();
    {
      check::MutexLock lock(queue_mu_);
      queue_cv_.wait(lock, [this]() DRUM_REQUIRES(queue_mu_) {
        return workers_stop_ || !queue_.empty();
      });
      if (workers_stop_ && queue_.empty()) return;
      while (!queue_.empty() && popped.size() < kWorkerBatch) {
        popped.push_back(queue_.front());
        queue_.pop_front();
      }
    }
    run_batch(popped, batch);
  }
}

void ReactorRuntime::start() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (running_.exchange(true)) return;
  {
    check::MutexLock lock(queue_mu_);
    workers_stop_ = false;
  }
  // Workers first so inline-vs-queued dispatch is decided before any event
  // can fire (dispatch() keys off inline_dispatch_ — the lock-free mirror
  // of workers_.empty(), which itself stays under lifecycle_mu_).
  inline_dispatch_.store(cfg_.workers == 0);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  for (auto& st : nodes_) {
    // add_socket queues an initial catch-up dispatch per socket, so
    // datagrams that arrived before start() are polled without an explicit
    // kick here.
    install_hooks(st);
    arm_first_tick(st);
  }
  // Clear any stop request left by a previous run; lifecycle_mu_ guarantees
  // no stop() can race this before the new loop thread is launched.
  loop_.reset();
  loop_thread_ = std::thread([this] { loop_.run(); });
}

void ReactorRuntime::stop() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (!running_.load()) return;
  loop_.stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    check::MutexLock lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // With all threads quiesced, return the nodes to plain single-threaded
  // life: cancel round timers (else a restart would burst-fire the stale
  // backlog), detach the hooks, and unregister every socket.
  for (auto& st : nodes_) {
    loop_.cancel_timer(st.timer_id);
    check::MutexLock node_lock(st.mu);
    st.node->set_socket_hook(nullptr);
  }
  {
    check::MutexLock lock(sources_mu_);
    for (auto& [sock, id] : sources_) loop_.remove_socket(id);
    sources_.clear();
  }
  running_.store(false);
}

core::MessageId ReactorRuntime::multicast(NodeId id, util::ByteSpan payload) {
  DRUM_REQUIRE(id < nodes_.size(), "multicast: bad node id ", id);
  NodeState& st = nodes_[id];
  check::MutexLock lock(st.mu);
  return st.node->multicast(payload);
}

void ReactorRuntime::with_node(NodeId id,
                               const std::function<void(core::Node&)>& fn) {
  DRUM_REQUIRE(id < nodes_.size(), "with_node: bad node id ", id);
  DRUM_REQUIRE(fn != nullptr, "with_node requires a callable");
  NodeState& st = nodes_[id];
  check::MutexLock lock(st.mu);
  fn(*st.node);
}

}  // namespace drum::runtime
