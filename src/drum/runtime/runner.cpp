#include "drum/runtime/runner.hpp"

#include "drum/check/check.hpp"

namespace drum::runtime {

NodeRunner::NodeRunner(core::Node& node, RunnerConfig cfg, std::uint64_t seed)
    : node_(node), cfg_(cfg), rng_(seed) {
  DRUM_REQUIRE(cfg.round.count() > 0, "round duration must be positive");
  DRUM_REQUIRE(cfg.jitter >= 0.0 && cfg.jitter < 1.0,
               "jitter must be in [0, 1): ", cfg.jitter);
  DRUM_REQUIRE(cfg.poll_interval.count() >= 0,
               "poll interval must be non-negative");
}

NodeRunner::~NodeRunner() { stop(); }

void NodeRunner::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  thread_ = std::thread([this] { loop(); });
}

void NodeRunner::stop() {
  stop_requested_.store(true);
  // The join must be exclusive: pre-fix, two concurrent stop() calls could
  // both see joinable() and race on join() (caught by the TSan stress test).
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

core::MessageId NodeRunner::multicast(util::ByteSpan payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return node_.multicast(payload);
}

void NodeRunner::with_node(const std::function<void(core::Node&)>& fn) {
  DRUM_REQUIRE(fn != nullptr, "with_node requires a callable");
  std::lock_guard<std::mutex> lock(mu_);
  fn(node_);
}

void NodeRunner::loop() {
  using clock = std::chrono::steady_clock;
  using std::chrono::duration_cast;
  using std::chrono::microseconds;

  // Runner telemetry lands in the node's own registry so one merge per node
  // carries protocol and execution-timing metrics together. Handles are
  // resolved once, under the lock, before the loop starts.
  obs::Counter* m_ticks = nullptr;
  obs::Counter* m_polls = nullptr;
  obs::Histogram* m_poll_us = nullptr;
  obs::Histogram* m_tick_interval_us = nullptr;

  auto next_tick = clock::now();
  auto last_tick = clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.instrument) {
      auto& reg = node_.registry();
      m_ticks = &reg.counter("runner.ticks");
      m_polls = &reg.counter("runner.polls");
      m_poll_us = &reg.histogram("runner.poll_us");
      m_tick_interval_us = &reg.histogram("runner.tick_interval_us");
    }
    double j = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
    next_tick += duration_cast<clock::duration>(cfg_.round * j);
  }
  while (!stop_requested_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (m_polls) {
        auto t0 = clock::now();
        node_.poll();
        auto dt = duration_cast<microseconds>(clock::now() - t0).count();
        m_polls->inc();
        m_poll_us->record(static_cast<std::uint64_t>(dt));
      } else {
        node_.poll();
      }
      auto now = clock::now();
      if (now >= next_tick) {
        node_.on_round();
        if (m_ticks) {
          m_ticks->inc();
          auto gap = duration_cast<microseconds>(now - last_tick).count();
          m_tick_interval_us->record(static_cast<std::uint64_t>(gap));
          last_tick = now;
        }
        double j = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
        next_tick =
            clock::now() + duration_cast<clock::duration>(cfg_.round * j);
      }
    }
    std::this_thread::sleep_for(cfg_.poll_interval);
  }
}

}  // namespace drum::runtime
