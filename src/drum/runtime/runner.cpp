#include "drum/runtime/runner.hpp"

namespace drum::runtime {

namespace {
ReactorConfig to_reactor(const RunnerConfig& cfg) {
  ReactorConfig rc;
  rc.round = cfg.round;
  rc.jitter = cfg.jitter;
  rc.workers = 0;  // dispatch inline on the loop thread: one thread total
  rc.instrument = cfg.instrument;
  return rc;
}
}  // namespace

NodeRunner::NodeRunner(core::Node& node, RunnerConfig cfg, std::uint64_t seed)
    : reactor_(to_reactor(cfg)) {
  reactor_.add_node(node, seed);
}

}  // namespace drum::runtime
