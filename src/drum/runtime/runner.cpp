#include "drum/runtime/runner.hpp"

namespace drum::runtime {

NodeRunner::NodeRunner(core::Node& node, RunnerConfig cfg, std::uint64_t seed)
    : node_(node), cfg_(cfg), rng_(seed) {}

NodeRunner::~NodeRunner() { stop(); }

void NodeRunner::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  thread_ = std::thread([this] { loop(); });
}

void NodeRunner::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

core::MessageId NodeRunner::multicast(util::ByteSpan payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return node_.multicast(payload);
}

void NodeRunner::with_node(const std::function<void(core::Node&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fn(node_);
}

void NodeRunner::loop() {
  auto next_tick = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    double j = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
    next_tick += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        cfg_.round * j);
  }
  while (!stop_requested_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      node_.poll();
      if (std::chrono::steady_clock::now() >= next_tick) {
        node_.on_round();
        double j = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
        next_tick = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(cfg_.round * j);
      }
    }
    std::this_thread::sleep_for(cfg_.poll_interval);
  }
}

}  // namespace drum::runtime
