#include "drum/net/transport.hpp"

#include <cstdio>

namespace drum::net {

std::string to_string(const Address& a) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (a.host >> 24) & 0xFF,
                (a.host >> 16) & 0xFF, (a.host >> 8) & 0xFF, a.host & 0xFF,
                a.port);
  return buf;
}

}  // namespace drum::net
