#include "drum/net/transport.hpp"

#include <cstdio>

namespace drum::net {

std::string to_string(const Address& a) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (a.host >> 24) & 0xFF,
                (a.host >> 16) & 0xFF, (a.host >> 8) & 0xFF, a.host & 0xFF,
                a.port);
  return buf;
}

const char* to_string(BindError e) {
  switch (e) {
    case BindError::kNone: return "ok";
    case BindError::kPortTaken: return "port taken";
    case BindError::kPortsExhausted: return "ephemeral ports exhausted";
    case BindError::kSystem: return "system error";
  }
  return "unknown bind error";
}

std::size_t Socket::recv_batch(Datagram* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    auto d = recv();
    if (!d) break;
    out[n++] = std::move(*d);
  }
  return n;
}

void Socket::send_batch(const Address& to, const util::ByteSpan* payloads,
                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) send(to, payloads[i]);
}

void Socket::send_many(const OutboundDatagram* msgs, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) send(msgs[i].to, msgs[i].payload);
}

}  // namespace drum::net
