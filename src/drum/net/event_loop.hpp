// drum::net::EventLoop — the readiness reactor under the real-time runtime
// (DESIGN.md §8).
//
// One loop multiplexes three event kinds:
//  * fd sockets (UdpSocket): registered with epoll, edge-triggered — each
//    arriving datagram re-arms the event, so a budget-exhausted node that
//    stops reading does not spin the loop;
//  * fd-less sockets (MemSocket): a wakeup bridge — the socket's
//    set_ready_callback() flags the source and signals the loop's eventfd
//    from the sender's thread;
//  * timers: a deadline-ordered queue backed by one timerfd armed to the
//    earliest deadline (absolute CLOCK_MONOTONIC, so no drift accumulates).
//
// Threading contract: run() executes on exactly one thread and all event
// callbacks are invoked there, serially. Registration (add_socket /
// add_timer / cancel_timer / post / stop) is thread-safe and may be called
// from callbacks. Callbacks are invoked with no loop lock held; a callback
// may fire once after its source was removed (the event was already in
// flight) — callers' callback targets must tolerate that or outlive the
// loop. The locking discipline is compiler-enforced: mu_ is a
// check::Mutex capability and every field it protects carries
// DRUM_GUARDED_BY (see drum/check/annotations.hpp, DESIGN.md §11).
//
// Telemetry (set_registry, written by the loop thread only): "loop.wakeups",
// "loop.fd_events", "loop.mem_ready", "loop.posts", "loop.timers_fired"
// counters and the "loop.timer_slop_us" histogram (how late each timer
// fired vs its deadline).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "drum/check/annotations.hpp"
#include "drum/net/transport.hpp"
#include "drum/obs/metrics.hpp"

namespace drum::net {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using SourceId = std::uint64_t;
  using TimerId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a socket for readiness dispatch: `on_ready` runs on the loop
  /// thread whenever the socket (may) have datagrams to read. Spurious
  /// invocations are possible; the callback drains with recv()/recv_batch()
  /// until empty. The socket must stay alive until remove_socket().
  SourceId add_socket(Socket& sock, Callback on_ready);
  /// Unregisters; the socket may be destroyed afterwards. Idempotent.
  void remove_socket(SourceId id);

  /// One-shot timer at an absolute deadline; re-arm from the callback for
  /// periodic behavior (compute the next deadline from the previous one, not
  /// from now — that is what keeps tick intervals drift-free).
  TimerId add_timer(Clock::time_point deadline, Callback fn);
  TimerId add_timer_in(Clock::duration delay, Callback fn) {
    return add_timer(Clock::now() + delay, std::move(fn));
  }
  /// Best-effort: a timer already being dispatched is not recalled.
  void cancel_timer(TimerId id);

  /// Runs `fn` on the loop thread at the next iteration.
  void post(Callback fn);

  /// Forces the loop through one more iteration (epoll_wait returns even if
  /// no fd is ready). Thread-safe and async-signal-cheap: one eventfd write.
  /// The sharded reactor uses this to nudge a peer shard after pushing onto
  /// its SPSC ring — the data travels through the ring, only the wakeup
  /// travels through the loop.
  void wake();

  /// Installs a callback the loop thread invokes at the END of every
  /// iteration, after socket readiness, posts, and timers have all been
  /// dispatched. Call only while the loop is not running (same rule as
  /// set_registry); pass nullptr to detach. The sharded reactor drains its
  /// shard-local ready list and inbound rings here, so per-cycle work is
  /// batched across everything the iteration produced.
  void set_cycle_callback(Callback fn);

  /// Blocks, dispatching events until stop(). Call from exactly one thread.
  /// A stop() issued before run() is entered still takes effect (the request
  /// is sticky): run() returns immediately. Reuse after a stop requires
  /// reset().
  void run();
  /// Thread-safe; run() returns after the current iteration. Sticky: also
  /// stops a run() that has not started yet.
  void stop();
  /// Clears a prior stop request so the loop can run() again. Call only
  /// when no run() is active and no concurrent stop() can target the
  /// upcoming run (e.g. under the owner's lifecycle lock, before spawning
  /// the loop thread).
  void reset() { stop_requested_.store(false); }
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Attaches loop telemetry (nullptr detaches). Call before run(); the
  /// registry must outlive the loop and is written by the loop thread only.
  void set_registry(obs::MetricsRegistry* registry);

 private:
  struct Source {
    Socket* sock = nullptr;
    int fd = -1;                ///< -1: fd-less, uses the wakeup bridge
    Callback on_ready;
    bool ready_pending = false; ///< mem bridge: already queued this cycle
  };

  void notify_source(SourceId id);  // mem bridge, any thread
  void arm_timerfd() DRUM_REQUIRES(mu_);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   ///< eventfd: posts, stop, mem-socket readiness
  int timer_fd_ = -1;  ///< timerfd armed to the earliest deadline

  check::Mutex mu_;
  std::uint64_t next_id_ DRUM_GUARDED_BY(mu_) = 2;  // 0/1 = fd sentinels
  std::unordered_map<SourceId, Source> sources_ DRUM_GUARDED_BY(mu_);
  std::vector<SourceId> mem_ready_ DRUM_GUARDED_BY(mu_);
  std::vector<Callback> posts_ DRUM_GUARDED_BY(mu_);
  struct Timer {
    TimerId id;
    Callback fn;
  };
  std::multimap<Clock::time_point, Timer> timers_ DRUM_GUARDED_BY(mu_);
  std::unordered_map<TimerId, std::multimap<Clock::time_point, Timer>::iterator>
      timer_index_ DRUM_GUARDED_BY(mu_);
  Clock::time_point armed_deadline_ DRUM_GUARDED_BY(mu_) =
      Clock::time_point::max();

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Set before run(), invoked by the loop thread only (like registry_).
  Callback cycle_cb_;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* m_wakeups_ = nullptr;
  obs::Counter* m_fd_events_ = nullptr;
  obs::Counter* m_mem_ready_ = nullptr;
  obs::Counter* m_posts_ = nullptr;
  obs::Counter* m_timers_fired_ = nullptr;
  obs::Histogram* m_timer_slop_us_ = nullptr;
};

}  // namespace drum::net
