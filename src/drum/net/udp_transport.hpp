// Real UDP sockets (IPv4). Substitutes for the paper's 100 Mbit Emulab LAN:
// all processes run on this machine, each node binding its own set of
// loopback UDP ports. Sockets are non-blocking; a poll loop or the epoll
// EventLoop drains them (UdpSocket exposes its fd via native_handle()). The
// OS socket buffer plays the bounded-receive-queue role that a flood fills.
// recv_batch()/send_batch() use recvmmsg/sendmmsg so victims drain and the
// attack generator sprays at line rate, one syscall per batch.
#pragma once

#include <cstdint>
#include <memory>

#include "drum/net/transport.hpp"
#include "drum/obs/metrics.hpp"

namespace drum::net {

/// Parses dotted-quad into host byte order (e.g. "127.0.0.1").
std::uint32_t parse_ipv4(const char* dotted);

class UdpTransport final : public Transport {
 public:
  /// All sockets bind on `host` (default loopback).
  explicit UdpTransport(std::uint32_t host = parse_ipv4("127.0.0.1"));

  BindResult bind(std::uint16_t port) override;
  [[nodiscard]] std::uint32_t host() const override { return host_; }

  /// When enabled, sockets bind with SO_REUSEPORT: several sockets (one per
  /// reactor shard, DESIGN.md §13) share one well-known port and the kernel
  /// load-balances incoming datagrams across them by flow hash — the real-
  /// network analogue of sharding a node's ingress. Applies to sockets
  /// bound afterwards; binding a taken port still fails with kPortTaken
  /// when the holder did not opt in.
  void set_reuse_port(bool on) { reuse_port_ = on; }
  [[nodiscard]] bool reuse_port() const { return reuse_port_; }

  /// Attaches a metrics registry (nullptr detaches); applies to sockets
  /// bound afterwards. Records "net.udp.sent" / "net.udp.recv" /
  /// "net.udp.send_errors" counters and the "net.udp.rx_backlog_bytes"
  /// histogram — the OS receive-buffer occupancy (FIONREAD) left after each
  /// read, i.e. the kernel-queue backlog a flood builds. Same ownership and
  /// threading contract as the sockets themselves (one polling thread).
  void set_registry(obs::MetricsRegistry* registry);

 private:
  std::uint32_t host_;
  bool reuse_port_ = false;
  obs::MetricsRegistry* registry_ = nullptr;
};

}  // namespace drum::net
