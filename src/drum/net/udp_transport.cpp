#include "drum/net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "drum/util/log.hpp"

namespace drum::net {

std::uint32_t parse_ipv4(const char* dotted) {
  in_addr a{};
  if (inet_pton(AF_INET, dotted, &a) != 1) return 0;
  return ntohl(a.s_addr);
}

namespace {

sockaddr_in make_sockaddr(const Address& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  sa.sin_addr.s_addr = htonl(a.host);
  return sa;
}

// Instrumentation handles shared by all sockets of one transport; null
// members mean "not attached".
struct UdpMetrics {
  obs::Counter* sent = nullptr;
  obs::Counter* recv = nullptr;
  obs::Counter* send_errors = nullptr;
  obs::Histogram* rx_backlog_bytes = nullptr;
};

class UdpSocket final : public Socket {
 public:
  UdpSocket(int fd, Address local, UdpMetrics metrics)
      : fd_(fd), local_(local), m_(metrics) {}
  ~UdpSocket() override {
    if (fd_ >= 0) ::close(fd_);
  }
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::optional<Datagram> recv() override {
    std::array<std::uint8_t, 65536> buf;
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    ssize_t r = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (r < 0) return std::nullopt;  // EAGAIN or error: nothing to read
    if (m_.recv) {
      m_.recv->inc();
      // Kernel receive-buffer occupancy after this read — the backlog a
      // flood keeps full (and the flush-unread pass later discards).
      int pending = 0;
      if (::ioctl(fd_, FIONREAD, &pending) == 0 && pending >= 0) {
        m_.rx_backlog_bytes->record(static_cast<std::uint64_t>(pending));
      }
    }
    Datagram d;
    d.from.host = ntohl(from.sin_addr.s_addr);
    d.from.port = ntohs(from.sin_port);
    d.payload.assign(buf.data(), buf.data() + r);
    return d;
  }

  void send(const Address& to, util::ByteSpan payload) override {
    sockaddr_in sa = make_sockaddr(to);
    ssize_t r = ::sendto(fd_, payload.data(), payload.size(), 0,
                         reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (r < 0) {
      if (m_.send_errors) m_.send_errors->inc();
      if (errno != EAGAIN && errno != ECONNREFUSED) {
        DRUM_DEBUG << "udp send to " << to_string(to)
                   << " failed: " << std::strerror(errno);
      }
    } else if (m_.sent) {
      m_.sent->inc();
    }
  }

  [[nodiscard]] Address local() const override { return local_; }

 private:
  int fd_;
  Address local_;
  UdpMetrics m_;
};

}  // namespace

UdpTransport::UdpTransport(std::uint32_t host) : host_(host) {}

void UdpTransport::set_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
}

std::unique_ptr<Socket> UdpTransport::bind(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return nullptr;
  sockaddr_in sa = make_sockaddr(Address{host_, port});
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return nullptr;
  }
  // Discover the actual port (for port = 0, the kernel picked one — this is
  // Drum's random-port primitive on the real network).
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  Address local{host_, ntohs(bound.sin_port)};
  UdpMetrics metrics;
  if (registry_) {
    metrics.sent = &registry_->counter("net.udp.sent");
    metrics.recv = &registry_->counter("net.udp.recv");
    metrics.send_errors = &registry_->counter("net.udp.send_errors");
    metrics.rx_backlog_bytes =
        &registry_->histogram("net.udp.rx_backlog_bytes");
  }
  return std::make_unique<UdpSocket>(fd, local, metrics);
}

}  // namespace drum::net
