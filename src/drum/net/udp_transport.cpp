#include "drum/net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "drum/util/log.hpp"

namespace drum::net {

std::uint32_t parse_ipv4(const char* dotted) {
  in_addr a{};
  if (inet_pton(AF_INET, dotted, &a) != 1) return 0;
  return ntohl(a.s_addr);
}

namespace {

sockaddr_in make_sockaddr(const Address& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  sa.sin_addr.s_addr = htonl(a.host);
  return sa;
}

// Instrumentation handles shared by all sockets of one transport; null
// members mean "not attached".
struct UdpMetrics {
  obs::Counter* sent = nullptr;
  obs::Counter* recv = nullptr;
  obs::Counter* send_errors = nullptr;
  obs::Histogram* rx_backlog_bytes = nullptr;
};

// recvmmsg/sendmmsg slot counts. Receive buffers must hold a full datagram
// (65535 bytes) or the kernel truncates it, so the receive scratch is heavy
// (kRecvSlots * 64 KiB) and therefore thread_local: all sockets polled on a
// thread share one copy instead of paying ~1 MiB each across a 512-node
// swarm.
constexpr std::size_t kRecvSlots = 16;
constexpr std::size_t kRecvBufSize = 65536;
constexpr std::size_t kSendSlots = 64;

struct RecvScratch {
  std::vector<std::uint8_t> buf =
      std::vector<std::uint8_t>(kRecvSlots * kRecvBufSize);
  std::array<mmsghdr, kRecvSlots> msgs{};
  std::array<iovec, kRecvSlots> iovs{};
  std::array<sockaddr_in, kRecvSlots> froms{};
};

class UdpSocket final : public Socket {
 public:
  UdpSocket(int fd, Address local, UdpMetrics metrics)
      : fd_(fd), local_(local), m_(metrics) {}
  ~UdpSocket() override {
    if (fd_ >= 0) ::close(fd_);
  }
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::optional<Datagram> recv() override {
    std::array<std::uint8_t, 65536> buf;
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    ssize_t r = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (r < 0) return std::nullopt;  // EAGAIN or error: nothing to read
    if (m_.recv) {
      m_.recv->inc();
      record_backlog();
    }
    Datagram d;
    d.from.host = ntohl(from.sin_addr.s_addr);
    d.from.port = ntohs(from.sin_port);
    d.payload.assign(buf.data(), buf.data() + r);
    return d;
  }

  std::size_t recv_batch(Datagram* out, std::size_t max) override {
    static thread_local RecvScratch s;
    std::size_t total = 0;
    while (total < max) {
      const auto want = static_cast<unsigned>(
          std::min(kRecvSlots, max - total));
      for (unsigned i = 0; i < want; ++i) {
        s.iovs[i] = {s.buf.data() + i * kRecvBufSize, kRecvBufSize};
        s.msgs[i] = {};
        s.msgs[i].msg_hdr.msg_iov = &s.iovs[i];
        s.msgs[i].msg_hdr.msg_iovlen = 1;
        s.msgs[i].msg_hdr.msg_name = &s.froms[i];
        s.msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      }
      int n = ::recvmmsg(fd_, s.msgs.data(), want, 0, nullptr);
      if (n <= 0) break;  // EAGAIN or error: queue drained
      for (int i = 0; i < n; ++i) {
        Datagram& d = out[total++];
        d.from.host = ntohl(s.froms[i].sin_addr.s_addr);
        d.from.port = ntohs(s.froms[i].sin_port);
        const std::uint8_t* base = s.buf.data() + i * kRecvBufSize;
        d.payload.assign(base, base + s.msgs[i].msg_len);
      }
      if (m_.recv) m_.recv->inc(static_cast<std::uint64_t>(n));
      if (static_cast<unsigned>(n) < want) break;  // queue drained
    }
    if (total && m_.recv) record_backlog();
    return total;
  }

  void send(const Address& to, util::ByteSpan payload) override {
    sockaddr_in sa = make_sockaddr(to);
    ssize_t r = ::sendto(fd_, payload.data(), payload.size(), 0,
                         reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (r < 0) {
      if (m_.send_errors) m_.send_errors->inc();
      if (errno != EAGAIN && errno != ECONNREFUSED) {
        DRUM_DEBUG << "udp send to " << to_string(to)
                   << " failed: " << std::strerror(errno);
      }
    } else if (m_.sent) {
      m_.sent->inc();
    }
  }

  void send_batch(const Address& to, const util::ByteSpan* payloads,
                  std::size_t count) override {
    sockaddr_in sa = make_sockaddr(to);
    std::array<mmsghdr, kSendSlots> msgs{};
    std::array<iovec, kSendSlots> iovs{};
    std::size_t i = 0;
    while (i < count) {
      const auto batch = static_cast<unsigned>(
          std::min(kSendSlots, count - i));
      for (unsigned k = 0; k < batch; ++k) {
        const util::ByteSpan& p = payloads[i + k];
        // sendmmsg never writes through msg_iov; the const_cast is the
        // API's, not ours.
        iovs[k] = {const_cast<std::uint8_t*>(p.data()), p.size()};
        msgs[k] = {};
        msgs[k].msg_hdr.msg_iov = &iovs[k];
        msgs[k].msg_hdr.msg_iovlen = 1;
        msgs[k].msg_hdr.msg_name = &sa;
        msgs[k].msg_hdr.msg_namelen = sizeof sa;
      }
      int sent = ::sendmmsg(fd_, msgs.data(), batch, 0);
      if (sent <= 0) {
        if (m_.send_errors) m_.send_errors->inc(batch);
        if (errno != EAGAIN && errno != ECONNREFUSED) {
          DRUM_DEBUG << "udp sendmmsg to " << to_string(to)
                     << " failed: " << std::strerror(errno);
        }
        return;  // remaining payloads dropped, like UDP under pressure
      }
      if (m_.sent) m_.sent->inc(static_cast<std::uint64_t>(sent));
      i += static_cast<std::size_t>(sent);
    }
  }

  void send_many(const OutboundDatagram* msgs, std::size_t count) override {
    std::array<mmsghdr, kSendSlots> hdrs{};
    std::array<iovec, kSendSlots> iovs{};
    std::array<sockaddr_in, kSendSlots> names{};
    std::size_t i = 0;
    while (i < count) {
      const auto batch = static_cast<unsigned>(
          std::min(kSendSlots, count - i));
      for (unsigned k = 0; k < batch; ++k) {
        const OutboundDatagram& m = msgs[i + k];
        names[k] = make_sockaddr(m.to);
        // sendmmsg never writes through msg_iov; the const_cast is the
        // API's, not ours.
        iovs[k] = {const_cast<std::uint8_t*>(m.payload.data()),
                   m.payload.size()};
        hdrs[k] = {};
        hdrs[k].msg_hdr.msg_iov = &iovs[k];
        hdrs[k].msg_hdr.msg_iovlen = 1;
        hdrs[k].msg_hdr.msg_name = &names[k];
        hdrs[k].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      }
      int sent = ::sendmmsg(fd_, hdrs.data(), batch, 0);
      if (sent <= 0) {
        if (m_.send_errors) m_.send_errors->inc(batch);
        if (errno != EAGAIN && errno != ECONNREFUSED) {
          DRUM_DEBUG << "udp sendmmsg (scatter) failed: "
                     << std::strerror(errno);
        }
        return;  // remaining datagrams dropped, like UDP under pressure
      }
      if (m_.sent) m_.sent->inc(static_cast<std::uint64_t>(sent));
      i += static_cast<std::size_t>(sent);
    }
  }

  [[nodiscard]] Address local() const override { return local_; }

  [[nodiscard]] int native_handle() const override { return fd_; }

 private:
  void record_backlog() {
    // Kernel receive-buffer occupancy after this read — the backlog a
    // flood keeps full (and the flush-unread pass later discards).
    int pending = 0;
    if (::ioctl(fd_, FIONREAD, &pending) == 0 && pending >= 0) {
      m_.rx_backlog_bytes->record(static_cast<std::uint64_t>(pending));
    }
  }

  int fd_;
  Address local_;
  UdpMetrics m_;
};

}  // namespace

UdpTransport::UdpTransport(std::uint32_t host) : host_(host) {}

void UdpTransport::set_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
}

BindResult UdpTransport::bind(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return BindError::kSystem;
  if (reuse_port_) {
    int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      ::close(fd);
      return BindError::kSystem;
    }
  }
  sockaddr_in sa = make_sockaddr(Address{host_, port});
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    int err = errno;
    ::close(fd);
    if (err == EADDRINUSE) {
      // With port 0 the kernel only fails with EADDRINUSE when the
      // ephemeral range is fully bound.
      return port == 0 ? BindError::kPortsExhausted : BindError::kPortTaken;
    }
    return BindError::kSystem;
  }
  // Discover the actual port (for port = 0, the kernel picked one — this is
  // Drum's random-port primitive on the real network).
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return BindError::kSystem;
  }
  Address local{host_, ntohs(bound.sin_port)};
  UdpMetrics metrics;
  if (registry_) {
    metrics.sent = &registry_->counter("net.udp.sent");
    metrics.recv = &registry_->counter("net.udp.recv");
    metrics.send_errors = &registry_->counter("net.udp.send_errors");
    metrics.rx_backlog_bytes =
        &registry_->histogram("net.udp.rx_backlog_bytes");
  }
  return std::make_unique<UdpSocket>(fd, local, metrics);
}

}  // namespace drum::net
