// In-process datagram network. One MemNetwork is the "LAN"; each node gets a
// MemTransport (a host number) and binds Sockets on it. Thread-safe: nodes
// may run on their own threads (one reactor shard each, DESIGN.md §13), and
// the attack injector sends from fake hosts concurrently.
//
// Models what matters for DoS experiments:
//  * per-socket bounded receive queues (like OS socket buffers) — floods
//    overflow them and legitimate packets get dropped at the tail;
//  * iid per-datagram loss;
//  * spoofable source addresses (send_raw lets the attacker claim any from).
//
// Locking is striped so concurrent shards do not serialize on one network
// mutex: a SharedMutex guards the queue *map* (binds and unbinds take it
// exclusive; every send/recv takes it shared), and each Queue carries its own
// mutex for the actual enqueue/pop. Two nodes on different shards exchanging
// datagrams therefore contend only when they touch the same destination
// queue — the same contention the real kernel has on a socket buffer. Loss
// and latency-jitter draws come from a per-queue RNG seeded from
// (opts.seed, destination address), so a run's drop pattern per destination
// is deterministic regardless of how sender threads interleave. Virtual time
// and the dropped/delivered totals are atomics; the optional metrics
// registry hangs off a dedicated stats mutex that is only ever taken when a
// registry is attached (the single-threaded harnesses), keeping the swarm
// hot path free of it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "drum/check/annotations.hpp"
#include "drum/net/transport.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/util/rng.hpp"

namespace drum::net {

class MemNetwork {
 public:
  struct Options {
    double loss = 0.0;                 ///< per-datagram drop probability
    std::size_t queue_capacity = 4096; ///< per-socket receive queue bound
    std::uint64_t seed = 1;            ///< loss/ephemeral-port randomness
    /// Virtual-time delivery latency: a datagram sent at t becomes
    /// receivable at t + latency (±jitter fraction). Without it, a request/
    /// reply handshake completes "instantaneously" in the same poll sweep
    /// as the victim's round tick — an artificial clean window no real
    /// network has. Drive the clock with advance_to().
    std::int64_t latency_us = 0;
    double latency_jitter = 0.5;
  };

  MemNetwork();
  explicit MemNetwork(Options opts);
  ~MemNetwork();

  MemNetwork(const MemNetwork&) = delete;
  MemNetwork& operator=(const MemNetwork&) = delete;

  /// Creates the transport for `host`. Hosts need not be pre-registered.
  std::unique_ptr<Transport> transport(std::uint32_t host);

  /// Injects a datagram with an arbitrary (spoofed) source address —
  /// the attacker's primitive.
  void send_raw(const Address& from, const Address& to,
                util::ByteSpan payload);

  /// Advances the virtual clock; datagrams become receivable when their
  /// delivery time is reached. Irrelevant when latency_us == 0.
  void advance_to(std::int64_t now_us);

  /// Total datagrams dropped due to loss or full queues (observability).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Total datagrams delivered into some socket queue.
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Attaches a metrics registry (nullptr detaches). The network then
  /// records "net.delivered", per-cause drop counters ("net.dropped_loss",
  /// "net.dropped_no_listener", "net.dropped_overflow") and the
  /// "net.queue_depth" histogram (destination queue depth after each
  /// delivery — what a flood piles up). The registry must outlive the
  /// network; it is written under the stats lock, so read it only while no
  /// sends are in flight.
  void set_registry(obs::MetricsRegistry* registry);

 private:
  friend class MemSocket;
  friend class MemTransport;

  struct Queue {
    /// Serializes enqueue/pop/callback on this one destination — the
    /// striped replacement for the old network-wide lock.
    check::Mutex mu;
    // Ordered by delivery time (latency jitter can reorder datagrams).
    std::multimap<std::int64_t, Datagram> q DRUM_GUARDED_BY(mu);
    /// Readiness bridge (Socket::set_ready_callback): invoked after each
    /// delivery into this queue, outside every network lock, on the
    /// sender's thread. Null when no listener is attached.
    std::function<void()> on_ready DRUM_GUARDED_BY(mu);
    /// Per-destination deterministic stream for loss and latency draws,
    /// seeded from (network seed, address) at bind.
    util::Rng rng DRUM_GUARDED_BY(mu){0};
  };

  void deliver(const Address& from, const Address& to, util::ByteSpan payload);
  /// Scatter delivery: per-datagram admission identical to deliver(), but
  /// one map-lock acquisition for the whole batch and one readiness edge per
  /// distinct destination queue (Socket::send_many's mem-transport leg).
  void deliver_many(const Address& from, const OutboundDatagram* msgs,
                    std::size_t count);
  /// Admission + enqueue of one datagram into `dst`. True on delivery,
  /// false when dropped (loss, overflow) — the caller fires the queue's
  /// readiness callback outside the lock.
  bool admit(Queue& dst, const Address& from, util::ByteSpan payload)
      DRUM_REQUIRES(dst.mu);
  void drop_no_listener();
  /// Seeds a freshly inserted queue's RNG from the network seed + address.
  static void seed_queue(Queue& dst, std::uint64_t seed, const Address& at);
  bool bind_queue(const Address& at);
  void unbind_queue(const Address& at);
  void set_queue_ready_callback(const Address& at, std::function<void()> cb);
  std::uint16_t pick_ephemeral(std::uint32_t host);

  /// Map structure lock: exclusive for bind/unbind/ephemeral picks, shared
  /// for every datagram path. std::map nodes are stable, so holding it
  /// shared pins a Queue in place while its own mutex does the real work.
  mutable check::SharedMutex map_mu_;
  Options opts_;  ///< immutable after construction
  util::Rng bind_rng_ DRUM_GUARDED_BY(map_mu_);  ///< ephemeral-port picks
  std::map<Address, Queue> queues_ DRUM_GUARDED_BY(map_mu_);

  /// Virtual time; monotonic (advance_to takes a max). Relaxed loads are
  /// fine: readers only compare against enqueue stamps that were produced
  /// under the same queue's mutex or earlier in program order.
  std::atomic<std::int64_t> now_us_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delivered_{0};

  // Optional instrumentation (handles cached at attach time). The stats
  // lock is taken on the datagram path only while a registry is attached —
  // the instrumented harnesses are single-threaded, the multi-shard swarm
  // leaves it detached.
  std::atomic<bool> has_stats_{false};
  mutable check::Mutex stats_mu_;
  obs::Counter* m_delivered_ DRUM_GUARDED_BY(stats_mu_) = nullptr;
  obs::Counter* m_dropped_loss_ DRUM_GUARDED_BY(stats_mu_) = nullptr;
  obs::Counter* m_dropped_no_listener_ DRUM_GUARDED_BY(stats_mu_) = nullptr;
  obs::Counter* m_dropped_overflow_ DRUM_GUARDED_BY(stats_mu_) = nullptr;
  obs::Histogram* m_queue_depth_ DRUM_GUARDED_BY(stats_mu_) = nullptr;
};

}  // namespace drum::net
