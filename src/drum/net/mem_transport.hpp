// In-process datagram network. One MemNetwork is the "LAN"; each node gets a
// MemTransport (a host number) and binds Sockets on it. Thread-safe: nodes
// may run on their own threads, and the attack injector sends from fake
// hosts concurrently.
//
// Models what matters for DoS experiments:
//  * per-socket bounded receive queues (like OS socket buffers) — floods
//    overflow them and legitimate packets get dropped at the tail;
//  * iid per-datagram loss;
//  * spoofable source addresses (send_raw lets the attacker claim any from).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "drum/check/annotations.hpp"
#include "drum/net/transport.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/util/rng.hpp"

namespace drum::net {

class MemNetwork {
 public:
  struct Options {
    double loss = 0.0;                 ///< per-datagram drop probability
    std::size_t queue_capacity = 4096; ///< per-socket receive queue bound
    std::uint64_t seed = 1;            ///< loss/ephemeral-port randomness
    /// Virtual-time delivery latency: a datagram sent at t becomes
    /// receivable at t + latency (±jitter fraction). Without it, a request/
    /// reply handshake completes "instantaneously" in the same poll sweep
    /// as the victim's round tick — an artificial clean window no real
    /// network has. Drive the clock with advance_to().
    std::int64_t latency_us = 0;
    double latency_jitter = 0.5;
  };

  MemNetwork();
  explicit MemNetwork(Options opts);
  ~MemNetwork();

  MemNetwork(const MemNetwork&) = delete;
  MemNetwork& operator=(const MemNetwork&) = delete;

  /// Creates the transport for `host`. Hosts need not be pre-registered.
  std::unique_ptr<Transport> transport(std::uint32_t host);

  /// Injects a datagram with an arbitrary (spoofed) source address —
  /// the attacker's primitive.
  void send_raw(const Address& from, const Address& to,
                util::ByteSpan payload);

  /// Advances the virtual clock; datagrams become receivable when their
  /// delivery time is reached. Irrelevant when latency_us == 0.
  void advance_to(std::int64_t now_us);

  /// Total datagrams dropped due to loss or full queues (observability).
  [[nodiscard]] std::uint64_t dropped() const;
  /// Total datagrams delivered into some socket queue.
  [[nodiscard]] std::uint64_t delivered() const;

  /// Attaches a metrics registry (nullptr detaches). The network then
  /// records "net.delivered", per-cause drop counters ("net.dropped_loss",
  /// "net.dropped_no_listener", "net.dropped_overflow") and the
  /// "net.queue_depth" histogram (destination queue depth after each
  /// delivery — what a flood piles up). The registry must outlive the
  /// network; it is written under the network's lock, so read it only while
  /// no sends are in flight.
  void set_registry(obs::MetricsRegistry* registry);

 private:
  friend class MemSocket;
  friend class MemTransport;

  struct Queue {
    // Ordered by delivery time (latency jitter can reorder datagrams).
    std::multimap<std::int64_t, Datagram> q;
    /// Readiness bridge (Socket::set_ready_callback): invoked after each
    /// delivery into this queue, outside the network lock, on the sender's
    /// thread. Null when no listener is attached.
    std::function<void()> on_ready;
  };

  void deliver(const Address& from, const Address& to, util::ByteSpan payload);
  /// Scatter delivery: per-datagram admission identical to deliver(), but
  /// one lock acquisition for the whole batch and one readiness edge per
  /// distinct destination queue (Socket::send_many's mem-transport leg).
  void deliver_many(const Address& from, const OutboundDatagram* msgs,
                    std::size_t count);
  /// Admission + enqueue of one datagram under mu_. Returns the destination
  /// queue on success, nullptr when the datagram was dropped (loss, no
  /// listener, overflow) — the caller fires the queue's readiness callback
  /// outside the lock.
  Queue* deliver_locked(const Address& from, const Address& to,
                        util::ByteSpan payload) DRUM_REQUIRES(mu_);
  bool bind_queue(const Address& at);
  void unbind_queue(const Address& at);
  void set_queue_ready_callback(const Address& at, std::function<void()> cb);
  std::uint16_t pick_ephemeral(std::uint32_t host);

  mutable check::Mutex mu_;
  Options opts_;  ///< immutable after construction
  util::Rng rng_ DRUM_GUARDED_BY(mu_);
  std::map<Address, Queue> queues_ DRUM_GUARDED_BY(mu_);
  std::int64_t now_us_ DRUM_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ DRUM_GUARDED_BY(mu_) = 0;
  std::uint64_t delivered_ DRUM_GUARDED_BY(mu_) = 0;

  // Optional instrumentation (handles cached at attach time).
  obs::Counter* m_delivered_ DRUM_GUARDED_BY(mu_) = nullptr;
  obs::Counter* m_dropped_loss_ DRUM_GUARDED_BY(mu_) = nullptr;
  obs::Counter* m_dropped_no_listener_ DRUM_GUARDED_BY(mu_) = nullptr;
  obs::Counter* m_dropped_overflow_ DRUM_GUARDED_BY(mu_) = nullptr;
  obs::Histogram* m_queue_depth_ DRUM_GUARDED_BY(mu_) = nullptr;
};

}  // namespace drum::net
