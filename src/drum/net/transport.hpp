// Datagram transport abstraction for the real (non-simulated) Drum protocol
// implementation.
//
// Two implementations exist:
//  * MemTransport — an in-process packet network with configurable loss and
//    spoofable sources; deterministic and fast, used by unit/integration
//    tests and the measurement harness's default mode;
//  * UdpTransport — real UDP sockets (loopback by default), substituting for
//    the paper's 50-machine Emulab LAN.
//
// Semantics are UDP-like by design: unreliable, unordered (MemTransport
// preserves order; UDP on loopback mostly does too), datagram-boundary-
// preserving, and with a *bounded receive queue per bound port* — the OS
// socket buffer in UDP, an explicit cap in MemTransport. The bounded queue is
// what a DoS flood fills.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "drum/util/bytes.hpp"

namespace drum::net {

/// A datagram address: host + port. For UDP, host is an IPv4 address in host
/// byte order; for MemTransport, host is an arbitrary node number.
struct Address {
  std::uint32_t host = 0;
  std::uint16_t port = 0;

  auto operator<=>(const Address&) const = default;
};

std::string to_string(const Address& a);

struct Datagram {
  Address from;  ///< claimed source — spoofable, never trust for security
  util::Bytes payload;
};

/// A bound datagram socket. Not thread-safe; owned and polled by one node.
class Socket {
 public:
  virtual ~Socket() = default;

  /// Non-blocking receive; nullopt when the queue is empty.
  virtual std::optional<Datagram> recv() = 0;

  /// Fire-and-forget send. May drop (loss, full queue, no such port) —
  /// exactly like UDP.
  virtual void send(const Address& to, util::ByteSpan payload) = 0;

  /// The local address this socket is bound to.
  [[nodiscard]] virtual Address local() const = 0;
};

/// Per-node endpoint factory.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds a socket on `port`; port 0 picks an unused high port at random —
  /// this is Drum's "random port" primitive. Returns nullptr if the port is
  /// taken.
  virtual std::unique_ptr<Socket> bind(std::uint16_t port) = 0;

  /// The host part all sockets of this transport are bound on.
  [[nodiscard]] virtual std::uint32_t host() const = 0;
};

}  // namespace drum::net
