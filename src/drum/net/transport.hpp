// Datagram transport abstraction for the real (non-simulated) Drum protocol
// implementation.
//
// Two implementations exist:
//  * MemTransport — an in-process packet network with configurable loss and
//    spoofable sources; deterministic and fast, used by unit/integration
//    tests and the measurement harness's default mode;
//  * UdpTransport — real UDP sockets (loopback by default), substituting for
//    the paper's 50-machine Emulab LAN.
//
// Semantics are UDP-like by design: unreliable, unordered (MemTransport
// preserves order; UDP on loopback mostly does too), datagram-boundary-
// preserving, and with a *bounded receive queue per bound port* — the OS
// socket buffer in UDP, an explicit cap in MemTransport. The bounded queue is
// what a DoS flood fills.
//
// Readiness: sockets are still pull-only (recv() never blocks), but they can
// announce that pulling would succeed. Sockets backed by a real fd expose it
// via native_handle() for epoll; fd-less sockets (MemTransport) accept a
// ready-callback instead. drum::net::EventLoop consumes both — see
// event_loop.hpp and DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "drum/util/bytes.hpp"

namespace drum::net {

/// A datagram address: host + port. For UDP, host is an IPv4 address in host
/// byte order; for MemTransport, host is an arbitrary node number.
struct Address {
  std::uint32_t host = 0;
  std::uint16_t port = 0;

  auto operator<=>(const Address&) const = default;
};

std::string to_string(const Address& a);

struct Datagram {
  Address from;  ///< claimed source — spoofable, never trust for security
  util::Bytes payload;
};

/// One destination + payload pair for a scatter send (Socket::send_many).
/// The payload is a view; the caller keeps the bytes alive until the call
/// returns.
struct OutboundDatagram {
  Address to;
  util::ByteSpan payload;
};

/// A bound datagram socket. recv()/send() are not thread-safe; one node owns
/// and polls the socket. set_ready_callback() is the one cross-thread entry
/// point (see below).
class Socket {
 public:
  virtual ~Socket() = default;

  /// Non-blocking receive; nullopt when the queue is empty.
  virtual std::optional<Datagram> recv() = 0;

  /// Batched non-blocking receive: drains up to `max` datagrams into `out`,
  /// returning how many were read. The default adapts recv(); UdpSocket
  /// overrides it with recvmmsg so a flood victim drains its kernel queue in
  /// one syscall.
  virtual std::size_t recv_batch(Datagram* out, std::size_t max);

  /// Fire-and-forget send. May drop (loss, full queue, no such port) —
  /// exactly like UDP.
  virtual void send(const Address& to, util::ByteSpan payload) = 0;

  /// Batched send of `count` payloads to one destination. The default loops
  /// send(); UdpSocket overrides it with sendmmsg so an attack-traffic
  /// generator reaches line rate.
  virtual void send_batch(const Address& to, const util::ByteSpan* payloads,
                          std::size_t count);

  /// Batched fire-and-forget send to possibly DISTINCT destinations — the
  /// egress mirror of recv_batch. A gossip round fans out to view_push +
  /// view_pull peers plus the round's control replies; sent one at a time
  /// that is a lock acquisition (MemTransport) or a syscall (UDP) per
  /// datagram. The default loops send(); MemSocket takes the network lock
  /// once for the whole fan-out and UdpSocket issues one sendmmsg.
  virtual void send_many(const OutboundDatagram* msgs, std::size_t count);

  /// The local address this socket is bound to.
  [[nodiscard]] virtual Address local() const = 0;

  /// OS-pollable file descriptor, or -1 when the transport has none
  /// (MemTransport). An EventLoop registers fds with epoll and falls back to
  /// set_ready_callback() otherwise.
  [[nodiscard]] virtual int native_handle() const { return -1; }

  /// Readiness bridge for fd-less sockets: `cb` is invoked whenever a
  /// datagram lands in this socket's receive queue, *possibly from another
  /// thread* (the sender's). The callback must be cheap and lock-light — the
  /// EventLoop's bridge just flags the source and signals an eventfd. Pass
  /// nullptr to detach. Sockets with a native_handle ignore this.
  virtual void set_ready_callback(std::function<void()> cb) { (void)cb; }
};

/// Why a bind failed. kNone is reserved for "no error" (success).
enum class BindError : std::uint8_t {
  kNone = 0,
  kPortTaken,       ///< the requested port is already bound
  kPortsExhausted,  ///< port 0: no free ephemeral port left
  kSystem,          ///< OS-level failure (fd limit, permissions, ...)
};

const char* to_string(BindError e);

/// Result of Transport::bind(): a live socket or a typed error. Socket-like
/// on success (operator->, operator*) so straight-line callers read
/// naturally; callers that keep the socket call take().
class BindResult {
 public:
  /// Success. `socket` must be non-null. (Templated so concrete socket
  /// types convert in one implicit step.)
  template <typename S,
            typename = std::enable_if_t<std::is_base_of_v<Socket, S>>>
  BindResult(std::unique_ptr<S> socket)  // NOLINT(*-explicit-*)
      : socket_(std::move(socket)) {}
  /// Failure. `error` must not be kNone.
  BindResult(BindError error)  // NOLINT(*-explicit-*)
      : error_(error) {}

  [[nodiscard]] bool ok() const { return socket_ != nullptr; }
  explicit operator bool() const { return ok(); }
  /// kNone on success.
  [[nodiscard]] BindError error() const { return error_; }

  [[nodiscard]] Socket* get() const { return socket_.get(); }
  Socket* operator->() const { return socket_.get(); }
  Socket& operator*() const { return *socket_; }

  /// Moves the socket out (null when !ok()).
  std::unique_ptr<Socket> take() { return std::move(socket_); }

 private:
  std::unique_ptr<Socket> socket_;
  BindError error_ = BindError::kNone;
};

/// Per-node endpoint factory.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds a socket on `port`; port 0 picks an unused high port at random —
  /// this is Drum's "random port" primitive. On failure the result carries a
  /// typed BindError instead of a socket.
  virtual BindResult bind(std::uint16_t port) = 0;

  /// The host part all sockets of this transport are bound on.
  [[nodiscard]] virtual std::uint32_t host() const = 0;
};

}  // namespace drum::net
