#include "drum/net/mem_transport.hpp"

#include <algorithm>
#include <vector>

#include "drum/check/check.hpp"

namespace drum::net {

namespace {
// Ephemeral ports are picked from this range, mirroring the IANA dynamic
// range. An attacker who wants to hit a random port has ~16k candidates.
constexpr std::uint16_t kEphemeralBase = 49152;
constexpr std::uint16_t kEphemeralCount = 16384;
}  // namespace

class MemSocket final : public Socket {
 public:
  MemSocket(MemNetwork& net, Address local) : net_(net), local_(local) {}
  ~MemSocket() override { net_.unbind_queue(local_); }

  std::optional<Datagram> recv() override {
    check::SharedLock map(net_.map_mu_);
    auto it = net_.queues_.find(local_);
    if (it == net_.queues_.end()) return std::nullopt;
    MemNetwork::Queue& dst = it->second;
    check::MutexLock lock(dst.mu);
    if (dst.q.empty()) return std::nullopt;
    auto first = dst.q.begin();
    if (first->first > net_.now_us_.load(std::memory_order_relaxed)) {
      return std::nullopt;  // still in flight
    }
    Datagram d = std::move(first->second);
    dst.q.erase(first);
    return d;
  }

  // One queue lock per chunk instead of the base class's lock per
  // datagram — the mem-transport analogue of recvmmsg. Everything popped
  // must already be deliverable (ready_at <= now), exactly as if recv() had
  // been called `max` times; in-flight datagrams stay queued.
  std::size_t recv_batch(Datagram* out, std::size_t max) override {
    check::SharedLock map(net_.map_mu_);
    auto it = net_.queues_.find(local_);
    if (it == net_.queues_.end()) return 0;
    MemNetwork::Queue& dst = it->second;
    check::MutexLock lock(dst.mu);
    auto& q = dst.q;
    const std::int64_t now = net_.now_us_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (n < max && !q.empty()) {
      auto first = q.begin();
      if (first->first > now) break;  // still in flight
      out[n++] = std::move(first->second);
      q.erase(first);
    }
#if DRUM_CHECKED
    // The batch must stop for exactly one of three reasons: the caller's
    // window filled, the queue drained, or the head is still in flight. A
    // queue past its bound here means admit()'s admission control broke.
    DRUM_INVARIANT(q.size() <= net_.opts_.queue_capacity,
                   "receive queue exceeded its capacity after batch pop: ",
                   q.size(), "/", net_.opts_.queue_capacity);
    DRUM_INVARIANT(n == max || q.empty() || q.begin()->first > now,
                   "recv_batch stopped with deliverable datagrams pending");
#endif
    return n;
  }

  void send(const Address& to, util::ByteSpan payload) override {
    net_.deliver(local_, to, payload);
  }

  void send_many(const OutboundDatagram* msgs, std::size_t count) override {
    net_.deliver_many(local_, msgs, count);
  }

  [[nodiscard]] Address local() const override { return local_; }

  void set_ready_callback(std::function<void()> cb) override {
    net_.set_queue_ready_callback(local_, std::move(cb));
  }

 private:
  MemNetwork& net_;
  Address local_;
};

class MemTransport final : public Transport {
 public:
  MemTransport(MemNetwork& net, std::uint32_t host) : net_(net), host_(host) {}

  BindResult bind(std::uint16_t port) override {
    Address addr{host_, port};
    if (port == 0) {
      addr.port = net_.pick_ephemeral(host_);
      if (addr.port == 0) return BindError::kPortsExhausted;
      return std::make_unique<MemSocket>(net_, addr);
    }
    if (!net_.bind_queue(addr)) return BindError::kPortTaken;
    return std::make_unique<MemSocket>(net_, addr);
  }

  [[nodiscard]] std::uint32_t host() const override { return host_; }

 private:
  MemNetwork& net_;
  std::uint32_t host_;
};

MemNetwork::MemNetwork() : MemNetwork(Options{}) {}
MemNetwork::MemNetwork(Options opts) : opts_(opts), bind_rng_(opts.seed) {
  DRUM_REQUIRE(opts.loss >= 0.0 && opts.loss <= 1.0,
               "loss must be a probability: ", opts.loss);
  DRUM_REQUIRE(opts.latency_jitter >= 0.0 && opts.latency_jitter <= 1.0,
               "latency jitter must be in [0, 1]: ", opts.latency_jitter);
  DRUM_REQUIRE(opts.queue_capacity > 0, "queue capacity must be positive");
}
MemNetwork::~MemNetwork() = default;

std::unique_ptr<Transport> MemNetwork::transport(std::uint32_t host) {
  return std::make_unique<MemTransport>(*this, host);
}

void MemNetwork::send_raw(const Address& from, const Address& to,
                          util::ByteSpan payload) {
  deliver(from, to, payload);
}

void MemNetwork::set_registry(obs::MetricsRegistry* registry) {
  check::MutexLock lock(stats_mu_);
  if (!registry) {
    has_stats_.store(false, std::memory_order_relaxed);
    m_delivered_ = nullptr;
    m_dropped_loss_ = nullptr;
    m_dropped_no_listener_ = nullptr;
    m_dropped_overflow_ = nullptr;
    m_queue_depth_ = nullptr;
    return;
  }
  m_delivered_ = &registry->counter("net.delivered");
  m_dropped_loss_ = &registry->counter("net.dropped_loss");
  m_dropped_no_listener_ = &registry->counter("net.dropped_no_listener");
  m_dropped_overflow_ = &registry->counter("net.dropped_overflow");
  m_queue_depth_ = &registry->histogram("net.queue_depth");
  has_stats_.store(true, std::memory_order_relaxed);
}

void MemNetwork::seed_queue(Queue& dst, std::uint64_t seed,
                            const Address& at) {
  // SplitMix decorrelates adjacent addresses; the queue's stream depends
  // only on (network seed, destination), never on bind order.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(at.host) << 16) | at.port;
  check::MutexLock lock(dst.mu);
  dst.rng = util::Rng(util::SplitMix64(seed ^ key).next());
}

void MemNetwork::drop_no_listener() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (has_stats_.load(std::memory_order_relaxed)) {
    check::MutexLock stats(stats_mu_);
    if (m_dropped_no_listener_) m_dropped_no_listener_->inc();
  }
}

bool MemNetwork::admit(Queue& dst, const Address& from,
                       util::ByteSpan payload) {
  if (opts_.loss > 0 && dst.rng.chance(opts_.loss)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (has_stats_.load(std::memory_order_relaxed)) {
      check::MutexLock stats(stats_mu_);
      if (m_dropped_loss_) m_dropped_loss_->inc();
    }
    return false;
  }
  if (dst.q.size() >= opts_.queue_capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // the flood's effect
    if (has_stats_.load(std::memory_order_relaxed)) {
      check::MutexLock stats(stats_mu_);
      if (m_dropped_overflow_) m_dropped_overflow_->inc();
    }
    return false;
  }
  const std::int64_t now = now_us_.load(std::memory_order_relaxed);
  std::int64_t ready_at = now;
  if (opts_.latency_us > 0) {
    double jitter =
        1.0 + opts_.latency_jitter * (2.0 * dst.rng.uniform() - 1.0);
    ready_at += static_cast<std::int64_t>(
        static_cast<double>(opts_.latency_us) * jitter);
  }
  DRUM_ASSERT(ready_at >= now, "datagram scheduled in the past");
  dst.q.emplace(ready_at,
                Datagram{from, util::Bytes(payload.begin(), payload.end())});
  // The overflow branch above is the only admission control; a queue past
  // its capacity means the bounded-socket-buffer model is broken.
  DRUM_INVARIANT(dst.q.size() <= opts_.queue_capacity,
                 "receive queue exceeded its capacity: ", dst.q.size(), "/",
                 opts_.queue_capacity);
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (has_stats_.load(std::memory_order_relaxed)) {
    check::MutexLock stats(stats_mu_);
    if (m_delivered_) {
      m_delivered_->inc();
      m_queue_depth_->record(dst.q.size());
    }
  }
  return true;
}

void MemNetwork::deliver(const Address& from, const Address& to,
                         util::ByteSpan payload) {
  // The ready callback fires outside every lock: it typically reaches into
  // a reactor shard (an SPSC ring push, or an EventLoop's own mutex +
  // eventfd), and holding network locks across foreign code invites
  // lock-order cycles.
  std::function<void()> notify;
  {
    check::SharedLock map(map_mu_);
    auto it = queues_.find(to);
    if (it == queues_.end()) {
      drop_no_listener();  // no listener: silently dropped, like UDP
      return;
    }
    Queue& dst = it->second;
    check::MutexLock lock(dst.mu);
    if (admit(dst, from, payload)) {
      notify = dst.on_ready;  // copy: the queue may die after unlock
    }
  }
  if (notify) notify();
}

void MemNetwork::deliver_many(const Address& from, const OutboundDatagram* msgs,
                              std::size_t count) {
  // One map lock for the whole fan-out, and one readiness edge per distinct
  // destination queue: readiness bridges are level-triggered, so a second
  // callback for the same queue is a wasted wakeup.
  std::vector<std::function<void()>> notifies;
  {
    check::SharedLock map(map_mu_);
    std::vector<const Queue*> seen;
    for (std::size_t i = 0; i < count; ++i) {
      auto it = queues_.find(msgs[i].to);
      if (it == queues_.end()) {
        drop_no_listener();
        continue;
      }
      Queue& dst = it->second;
      check::MutexLock lock(dst.mu);
      if (!admit(dst, from, msgs[i].payload) || !dst.on_ready) continue;
      if (std::find(seen.begin(), seen.end(), &dst) != seen.end()) continue;
      seen.push_back(&dst);
      notifies.push_back(dst.on_ready);  // copy: queues may die after unlock
    }
  }
  for (auto& notify : notifies) notify();
}

void MemNetwork::advance_to(std::int64_t now_us) {
  std::int64_t cur = now_us_.load(std::memory_order_relaxed);
  while (now_us > cur &&
         !now_us_.compare_exchange_weak(cur, now_us,
                                        std::memory_order_relaxed)) {
  }
}

bool MemNetwork::bind_queue(const Address& at) {
  check::SharedMutexLock lock(map_mu_);
  auto [it, inserted] = queues_.try_emplace(at);
  if (inserted) seed_queue(it->second, opts_.seed, at);
  return inserted;
}

void MemNetwork::unbind_queue(const Address& at) {
  check::SharedMutexLock lock(map_mu_);
  queues_.erase(at);
}

void MemNetwork::set_queue_ready_callback(const Address& at,
                                          std::function<void()> cb) {
  check::SharedLock map(map_mu_);
  auto it = queues_.find(at);
  if (it == queues_.end()) return;
  check::MutexLock lock(it->second.mu);
  it->second.on_ready = std::move(cb);
}

std::uint16_t MemNetwork::pick_ephemeral(std::uint32_t host) {
  check::SharedMutexLock lock(map_mu_);
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto port = static_cast<std::uint16_t>(kEphemeralBase +
                                           bind_rng_.below(kEphemeralCount));
    Address addr{host, port};
    auto [it, inserted] = queues_.try_emplace(addr);
    if (inserted) {
      seed_queue(it->second, opts_.seed, addr);
      return port;
    }
  }
  return 0;
}

}  // namespace drum::net
