#include "drum/net/mem_transport.hpp"

#include <algorithm>
#include <vector>

#include "drum/check/check.hpp"

namespace drum::net {

namespace {
// Ephemeral ports are picked from this range, mirroring the IANA dynamic
// range. An attacker who wants to hit a random port has ~16k candidates.
constexpr std::uint16_t kEphemeralBase = 49152;
constexpr std::uint16_t kEphemeralCount = 16384;
}  // namespace

class MemSocket final : public Socket {
 public:
  MemSocket(MemNetwork& net, Address local) : net_(net), local_(local) {}
  ~MemSocket() override { net_.unbind_queue(local_); }

  std::optional<Datagram> recv() override {
    check::MutexLock lock(net_.mu_);
    auto it = net_.queues_.find(local_);
    if (it == net_.queues_.end() || it->second.q.empty()) return std::nullopt;
    auto first = it->second.q.begin();
    if (first->first > net_.now_us_) return std::nullopt;  // still in flight
    Datagram d = std::move(first->second);
    it->second.q.erase(first);
    return d;
  }

  // One network lock per chunk instead of the base class's lock per
  // datagram — the mem-transport analogue of recvmmsg. Everything popped
  // must already be deliverable (ready_at <= now), exactly as if recv() had
  // been called `max` times; in-flight datagrams stay queued.
  std::size_t recv_batch(Datagram* out, std::size_t max) override {
    check::MutexLock lock(net_.mu_);
    auto it = net_.queues_.find(local_);
    if (it == net_.queues_.end()) return 0;
    auto& q = it->second.q;
    std::size_t n = 0;
    while (n < max && !q.empty()) {
      auto first = q.begin();
      if (first->first > net_.now_us_) break;  // still in flight
      out[n++] = std::move(first->second);
      q.erase(first);
    }
#if DRUM_CHECKED
    // The batch must stop for exactly one of three reasons: the caller's
    // window filled, the queue drained, or the head is still in flight. A
    // queue past its bound here means deliver()'s admission control broke.
    DRUM_INVARIANT(q.size() <= net_.opts_.queue_capacity,
                   "receive queue exceeded its capacity after batch pop: ",
                   q.size(), "/", net_.opts_.queue_capacity);
    DRUM_INVARIANT(n == max || q.empty() || q.begin()->first > net_.now_us_,
                   "recv_batch stopped with deliverable datagrams pending");
#endif
    return n;
  }

  void send(const Address& to, util::ByteSpan payload) override {
    net_.deliver(local_, to, payload);
  }

  void send_many(const OutboundDatagram* msgs, std::size_t count) override {
    net_.deliver_many(local_, msgs, count);
  }

  [[nodiscard]] Address local() const override { return local_; }

  void set_ready_callback(std::function<void()> cb) override {
    net_.set_queue_ready_callback(local_, std::move(cb));
  }

 private:
  MemNetwork& net_;
  Address local_;
};

class MemTransport final : public Transport {
 public:
  MemTransport(MemNetwork& net, std::uint32_t host) : net_(net), host_(host) {}

  BindResult bind(std::uint16_t port) override {
    Address addr{host_, port};
    if (port == 0) {
      addr.port = net_.pick_ephemeral(host_);
      if (addr.port == 0) return BindError::kPortsExhausted;
      return std::make_unique<MemSocket>(net_, addr);
    }
    if (!net_.bind_queue(addr)) return BindError::kPortTaken;
    return std::make_unique<MemSocket>(net_, addr);
  }

  [[nodiscard]] std::uint32_t host() const override { return host_; }

 private:
  MemNetwork& net_;
  std::uint32_t host_;
};

MemNetwork::MemNetwork() : MemNetwork(Options{}) {}
MemNetwork::MemNetwork(Options opts) : opts_(opts), rng_(opts.seed) {
  DRUM_REQUIRE(opts.loss >= 0.0 && opts.loss <= 1.0,
               "loss must be a probability: ", opts.loss);
  DRUM_REQUIRE(opts.latency_jitter >= 0.0 && opts.latency_jitter <= 1.0,
               "latency jitter must be in [0, 1]: ", opts.latency_jitter);
  DRUM_REQUIRE(opts.queue_capacity > 0, "queue capacity must be positive");
}
MemNetwork::~MemNetwork() = default;

std::unique_ptr<Transport> MemNetwork::transport(std::uint32_t host) {
  return std::make_unique<MemTransport>(*this, host);
}

void MemNetwork::send_raw(const Address& from, const Address& to,
                          util::ByteSpan payload) {
  deliver(from, to, payload);
}

void MemNetwork::set_registry(obs::MetricsRegistry* registry) {
  check::MutexLock lock(mu_);
  if (!registry) {
    m_delivered_ = nullptr;
    m_dropped_loss_ = nullptr;
    m_dropped_no_listener_ = nullptr;
    m_dropped_overflow_ = nullptr;
    m_queue_depth_ = nullptr;
    return;
  }
  m_delivered_ = &registry->counter("net.delivered");
  m_dropped_loss_ = &registry->counter("net.dropped_loss");
  m_dropped_no_listener_ = &registry->counter("net.dropped_no_listener");
  m_dropped_overflow_ = &registry->counter("net.dropped_overflow");
  m_queue_depth_ = &registry->histogram("net.queue_depth");
}

MemNetwork::Queue* MemNetwork::deliver_locked(const Address& from,
                                              const Address& to,
                                              util::ByteSpan payload) {
  if (opts_.loss > 0 && rng_.chance(opts_.loss)) {
    ++dropped_;
    if (m_dropped_loss_) m_dropped_loss_->inc();
    return nullptr;
  }
  auto it = queues_.find(to);
  if (it == queues_.end()) {
    ++dropped_;  // no listener: silently dropped, like UDP
    if (m_dropped_no_listener_) m_dropped_no_listener_->inc();
    return nullptr;
  }
  if (it->second.q.size() >= opts_.queue_capacity) {
    ++dropped_;  // queue overflow: the flood's direct effect
    if (m_dropped_overflow_) m_dropped_overflow_->inc();
    return nullptr;
  }
  std::int64_t ready_at = now_us_;
  if (opts_.latency_us > 0) {
    double jitter = 1.0 + opts_.latency_jitter * (2.0 * rng_.uniform() - 1.0);
    ready_at += static_cast<std::int64_t>(
        static_cast<double>(opts_.latency_us) * jitter);
  }
  DRUM_ASSERT(ready_at >= now_us_, "datagram scheduled in the past");
  it->second.q.emplace(ready_at,
                       Datagram{from, util::Bytes(payload.begin(),
                                                  payload.end())});
  // The overflow branch above is the only admission control; a queue past
  // its capacity means the bounded-socket-buffer model is broken.
  DRUM_INVARIANT(it->second.q.size() <= opts_.queue_capacity,
                 "receive queue exceeded its capacity: ",
                 it->second.q.size(), "/", opts_.queue_capacity);
  ++delivered_;
  if (m_delivered_) {
    m_delivered_->inc();
    m_queue_depth_->record(it->second.q.size());
  }
  return &it->second;
}

void MemNetwork::deliver(const Address& from, const Address& to,
                         util::ByteSpan payload) {
  // The ready callback fires outside the lock: it typically reaches into an
  // EventLoop (its own mutex + eventfd), and holding the network lock across
  // foreign code invites lock-order cycles.
  std::function<void()> notify;
  {
    check::MutexLock lock(mu_);
    if (Queue* q = deliver_locked(from, to, payload)) {
      notify = q->on_ready;  // copy: the queue may die after unlock
    }
  }
  if (notify) notify();
}

void MemNetwork::deliver_many(const Address& from, const OutboundDatagram* msgs,
                              std::size_t count) {
  // One lock for the whole fan-out, and one readiness edge per distinct
  // destination queue: the EventLoop bridge is level-triggered (flag +
  // eventfd), so a second callback for the same queue is a wasted wakeup.
  std::vector<std::function<void()>> notifies;
  {
    check::MutexLock lock(mu_);
    std::vector<const Queue*> seen;
    for (std::size_t i = 0; i < count; ++i) {
      Queue* q = deliver_locked(from, msgs[i].to, msgs[i].payload);
      if (!q || !q->on_ready) continue;
      if (std::find(seen.begin(), seen.end(), q) != seen.end()) continue;
      seen.push_back(q);
      notifies.push_back(q->on_ready);  // copy: queues may die after unlock
    }
  }
  for (auto& notify : notifies) notify();
}

void MemNetwork::advance_to(std::int64_t now_us) {
  check::MutexLock lock(mu_);
  now_us_ = std::max(now_us_, now_us);
}

bool MemNetwork::bind_queue(const Address& at) {
  check::MutexLock lock(mu_);
  auto [it, inserted] = queues_.try_emplace(at);
  (void)it;
  return inserted;
}

void MemNetwork::unbind_queue(const Address& at) {
  check::MutexLock lock(mu_);
  queues_.erase(at);
}

void MemNetwork::set_queue_ready_callback(const Address& at,
                                          std::function<void()> cb) {
  check::MutexLock lock(mu_);
  auto it = queues_.find(at);
  if (it != queues_.end()) it->second.on_ready = std::move(cb);
}

std::uint16_t MemNetwork::pick_ephemeral(std::uint32_t host) {
  check::MutexLock lock(mu_);
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto port = static_cast<std::uint16_t>(kEphemeralBase +
                                           rng_.below(kEphemeralCount));
    Address addr{host, port};
    auto [it, inserted] = queues_.try_emplace(addr);
    (void)it;
    if (inserted) return port;
  }
  return 0;
}

std::uint64_t MemNetwork::dropped() const {
  check::MutexLock lock(mu_);
  return dropped_;
}

std::uint64_t MemNetwork::delivered() const {
  check::MutexLock lock(mu_);
  return delivered_;
}

}  // namespace drum::net
