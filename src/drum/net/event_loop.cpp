#include "drum/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "drum/check/check.hpp"
#include "drum/util/log.hpp"

namespace drum::net {

namespace {
// epoll_event.data.u64 sentinels for the loop's own fds; real sources start
// at 2 (next_id_).
constexpr std::uint64_t kWakeSentinel = 0;
constexpr std::uint64_t kTimerSentinel = 1;

timespec to_timespec(EventLoop::Clock::time_point tp) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                tp.time_since_epoch())
                .count();
  timespec ts{};
  ts.tv_sec = ns / 1'000'000'000;
  ts.tv_nsec = ns % 1'000'000'000;
  return ts;
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  // steady_clock is CLOCK_MONOTONIC on Linux/libstdc++; the timerfd is armed
  // with absolute steady_clock deadlines below.
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  DRUM_REQUIRE(epoll_fd_ >= 0 && wake_fd_ >= 0 && timer_fd_ >= 0,
               "EventLoop: failed to create epoll/eventfd/timerfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeSentinel;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.u64 = kTimerSentinel;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
}

EventLoop::~EventLoop() {
  DRUM_ASSERT(!running_.load(), "EventLoop destroyed while running");
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::set_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (!registry) {
    m_wakeups_ = m_fd_events_ = m_mem_ready_ = m_posts_ = m_timers_fired_ =
        nullptr;
    m_timer_slop_us_ = nullptr;
    return;
  }
  m_wakeups_ = &registry->counter("loop.wakeups");
  m_fd_events_ = &registry->counter("loop.fd_events");
  m_mem_ready_ = &registry->counter("loop.mem_ready");
  m_posts_ = &registry->counter("loop.posts");
  m_timers_fired_ = &registry->counter("loop.timers_fired");
  m_timer_slop_us_ = &registry->histogram("loop.timer_slop_us");
}

void EventLoop::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::set_cycle_callback(Callback fn) {
  DRUM_REQUIRE(!running_.load(),
               "set_cycle_callback while the loop is running");
  cycle_cb_ = std::move(fn);
}

EventLoop::SourceId EventLoop::add_socket(Socket& sock, Callback on_ready) {
  DRUM_REQUIRE(on_ready != nullptr, "add_socket requires a callback");
  const bool has_fd = sock.native_handle() >= 0;
  SourceId id = 0;
  {
    check::MutexLock lock(mu_);
    id = next_id_++;
    Source src;
    src.sock = &sock;
    src.fd = sock.native_handle();
    src.on_ready = std::move(on_ready);
    sources_.emplace(id, std::move(src));
    if (has_fd) {
      epoll_event ev{};
      // Edge-triggered: each datagram arrival re-arms the event (UDP's
      // sk_data_ready fires per packet), so stale unread backlog — a node
      // out of budget mid-round — does not busy-spin the loop.
      ev.events = EPOLLIN | EPOLLET;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sock.native_handle(), &ev) !=
          0) {
        DRUM_DEBUG << "EventLoop: epoll_ctl ADD failed: "
                   << std::strerror(errno);
      }
      // The fd may already hold datagrams that arrived before registration;
      // ET would never report them. Queue one initial dispatch.
      sources_[id].ready_pending = true;
      mem_ready_.push_back(id);
    }
  }
  if (has_fd) {
    wake();
  } else {
    // The bridge: flag + eventfd from whatever thread delivers. Installed
    // outside mu_ — set_ready_callback takes the transport's own lock.
    sock.set_ready_callback([this, id] { notify_source(id); });
    // Same catch-up for datagrams delivered before the bridge attached.
    notify_source(id);
  }
  return id;
}

void EventLoop::remove_socket(SourceId id) {
  Socket* detach = nullptr;
  {
    check::MutexLock lock(mu_);
    auto it = sources_.find(id);
    if (it == sources_.end()) return;
    if (it->second.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    } else {
      detach = it->second.sock;
    }
    sources_.erase(it);
  }
  // Outside the lock: set_ready_callback takes the transport's own lock.
  if (detach) detach->set_ready_callback(nullptr);
}

void EventLoop::notify_source(SourceId id) {
  {
    check::MutexLock lock(mu_);
    auto it = sources_.find(id);
    if (it == sources_.end() || it->second.ready_pending) return;
    it->second.ready_pending = true;
    mem_ready_.push_back(id);
  }
  wake();
}

void EventLoop::arm_timerfd() {
  Clock::time_point earliest =
      timers_.empty() ? Clock::time_point::max() : timers_.begin()->first;
  if (earliest == armed_deadline_) return;
  armed_deadline_ = earliest;
  itimerspec spec{};
  if (earliest != Clock::time_point::max()) {
    spec.it_value = to_timespec(earliest);
    // A deadline already in the past must still fire: timerfd treats an
    // all-zero it_value as "disarm", so round up to 1 ns.
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

EventLoop::TimerId EventLoop::add_timer(Clock::time_point deadline,
                                        Callback fn) {
  DRUM_REQUIRE(fn != nullptr, "add_timer requires a callback");
  check::MutexLock lock(mu_);
  TimerId id = next_id_++;
  auto it = timers_.emplace(deadline, Timer{id, std::move(fn)});
  timer_index_.emplace(id, it);
  arm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  check::MutexLock lock(mu_);
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;
  timers_.erase(it->second);
  timer_index_.erase(it);
  arm_timerfd();
}

void EventLoop::post(Callback fn) {
  DRUM_REQUIRE(fn != nullptr, "post requires a callback");
  {
    check::MutexLock lock(mu_);
    posts_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::stop() {
  stop_requested_.store(true);
  wake();
}

void EventLoop::run() {
  DRUM_REQUIRE(!running_.exchange(true), "EventLoop::run() re-entered");
  // NOTE: stop_requested_ is deliberately NOT cleared here. stop() may land
  // before the spawned loop thread reaches run(); clearing would lose that
  // request and leave the stopper joining forever. Callers reusing a loop
  // after stop() call reset() first, at a point where no concurrent stop()
  // can target the new run.
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  std::vector<Callback> ready_cbs;   // drained per iteration, reused
  std::vector<Callback> post_cbs;
  std::vector<Timer> due_timers;

  while (!stop_requested_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      DRUM_DEBUG << "EventLoop: epoll_wait failed: " << std::strerror(errno);
      break;
    }
    if (m_wakeups_) m_wakeups_->inc();

    bool timer_expired = false;
    ready_cbs.clear();
    {
      check::MutexLock lock(mu_);
      for (int i = 0; i < n; ++i) {
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kWakeSentinel) {
          std::uint64_t drain = 0;
          [[maybe_unused]] ssize_t r =
              ::read(wake_fd_, &drain, sizeof drain);
        } else if (tag == kTimerSentinel) {
          std::uint64_t expirations = 0;
          [[maybe_unused]] ssize_t r =
              ::read(timer_fd_, &expirations, sizeof expirations);
          timer_expired = true;
        } else {
          auto it = sources_.find(tag);
          if (it != sources_.end()) {
            ready_cbs.push_back(it->second.on_ready);
            if (m_fd_events_) m_fd_events_->inc();
          }
        }
      }
      // Bridge-flagged sources (MemSocket deliveries + fd catch-ups).
      for (SourceId id : mem_ready_) {
        auto it = sources_.find(id);
        if (it == sources_.end()) continue;
        it->second.ready_pending = false;
        ready_cbs.push_back(it->second.on_ready);
        if (m_mem_ready_) m_mem_ready_->inc();
      }
      mem_ready_.clear();
      post_cbs.swap(posts_);
    }

    for (auto& cb : ready_cbs) cb();
    for (auto& cb : post_cbs) {
      if (m_posts_) m_posts_->inc();
      cb();
    }
    post_cbs.clear();

    // Fire every timer whose deadline has passed — even if the timerfd did
    // not tick this iteration (a long callback above may have run us past
    // the next deadline).
    (void)timer_expired;
    due_timers.clear();
    auto now = Clock::now();
    {
      check::MutexLock lock(mu_);
      while (!timers_.empty() && timers_.begin()->first <= now) {
        auto it = timers_.begin();
        if (m_timer_slop_us_) {
          auto slop = std::chrono::duration_cast<std::chrono::microseconds>(
                          now - it->first)
                          .count();
          m_timer_slop_us_->record(static_cast<std::uint64_t>(slop));
        }
        due_timers.push_back(std::move(it->second));
        timer_index_.erase(due_timers.back().id);
        timers_.erase(it);
      }
      arm_timerfd();
    }
    for (auto& t : due_timers) {
      if (m_timers_fired_) m_timers_fired_->inc();
      t.fn();
    }

    // End-of-iteration hook: everything the cycle produced (ready sockets,
    // posts, due timers) has been dispatched; the owner can now run its
    // batched per-cycle work (the sharded reactor's drain-verify-ingest
    // pass) exactly once per wakeup.
    if (cycle_cb_) cycle_cb_();
  }
  running_.store(false);
}

}  // namespace drum::net
