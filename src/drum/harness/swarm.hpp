// Swarm — the *real-time* many-nodes-in-one-process harness (DESIGN.md §8).
//
// Cluster simulates the paper's experiments in virtual time; Swarm runs the
// same protocol nodes against the wall clock to measure the *runtime* itself:
// how many nodes one process sustains, at what thread count and CPU cost, and
// with what delivery latency — the ReactorRuntime's reason to exist. Two
// execution modes over identical node code:
//
//  * reactor (default): one ReactorRuntime hosts every node — a single event
//    loop plus a small worker pool, or (shards >= 2, DESIGN.md §13) one
//    independent event-loop shard per core with SPSC cross-shard handoff;
//  * thread-per-node baseline: one NodeRunner (and thus one thread) per node,
//    the deployment shape the paper's per-machine JVMs imply.
//
// An adversary thread drives one strategy from the drum::adversary registry
// — the same registry the Monte-Carlo simulator uses — against the attacked
// nodes' well-known ports (spoofed sources on the mem network; a real socket
// with sendmmsg batching on UDP), so the swarm demonstrates DoS pressure
// with unsynchronized rounds at scale. Colluding insiders are directory
// members whose identities the attacker holds: their frames carry valid
// port boxes (sealed with the real pairwise keys) but they run no protocol
// node, making them authenticated black holes.
//
// Delivery latency is measured end-to-end in wall time: the source embeds a
// steady-clock timestamp in each payload's first 8 bytes; every delivery
// callback subtracts it. examples/swarm.cpp turns the report into
// BENCH_reactor.json.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "drum/adversary/adversary.hpp"
#include "drum/check/annotations.hpp"
#include "drum/core/config.hpp"
#include "drum/core/node.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/runtime/reactor.hpp"
#include "drum/runtime/runner.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/stats.hpp"

namespace drum::harness {

struct SwarmConfig {
  core::Variant variant = core::Variant::kDrum;
  std::size_t n = 512;     ///< live (all correct) nodes
  double alpha = 0.0;      ///< attacked fraction of the group
  double x = 0.0;          ///< fabricated msgs per victim per round
  std::size_t fanout = 4;
  std::uint64_t seed = 1;
  /// Mean local round duration. Scaled down from the paper's 1 s so short
  /// benchmark windows still cover many rounds.
  std::chrono::milliseconds round{200};
  double jitter = 0.2;          ///< per-node tick jitter (+/- fraction)
  std::size_t rate = 10;        ///< source multicasts per round
  std::size_t payload_size = 64;  ///< bytes; >= 8 (timestamp header)
  bool use_udp = false;         ///< real loopback UDP instead of mem net
  std::uint16_t udp_base_port = 31000;
  bool reactor = true;          ///< false: thread-per-node baseline
  std::size_t workers = 2;      ///< reactor worker threads (0 = loop only)
  /// Reactor shards (DESIGN.md §13): 1 = single event loop + `workers`
  /// worker pool (the legacy shape); 0 = one shard per hardware core;
  /// >= 2 = that many shards, each an independent event-loop thread owning
  /// a disjoint slice of the nodes (`workers` is ignored then).
  std::size_t shards = 1;
  /// Derive every pairwise key at construction (a join-time cost in the
  /// paper's model, so benchmarks do not bill X25519 bootstrap to the
  /// measured window). Disable for very large swarms: prewarming is O(n²)
  /// scalar multiplications across the group (a 10k swarm would pay 10^8),
  /// while lazy derivation touches only the partners a node actually
  /// gossips with.
  bool prewarm = true;
  /// Flood pacing: each burst delivers 1 / bursts of the round's planned
  /// datagrams.
  std::size_t attacker_bursts_per_round = 20;
  bool verify_signatures = true;

  // ---- adversary zoo + defense (DESIGN.md §10) -------------------------
  /// Strategy name in the drum::adversary registry. The attacker thread is
  /// armed when alpha > 0 and the strategy can act (x > 0 or insiders
  /// exist).
  std::string adversary = "flood";
  adversary::Params attack_params;
  /// Fraction of the group run as colluding insiders. They occupy the TAIL
  /// ids of the directory, hold real identities (the attacker keeps the
  /// private keys), and run no protocol node.
  double malicious = 0.0;
  /// Peer-scoring + greylist defense applied to every live node
  /// (scoring.enabled selects it).
  core::ScoringConfig scoring;
};

/// What one measurement window produced. All times are wall-clock.
struct SwarmReport {
  std::size_t nodes = 0;
  /// Threads the runtime spawned to execute protocol nodes (loop + workers
  /// for the single-loop reactor; one per shard when sharded; n for the
  /// baseline). Excludes the attacker and the caller.
  std::size_t threads = 0;
  /// Reactor shards that actually ran (after auto-resolution); 0 in
  /// baseline mode.
  std::size_t shards = 0;
  double wall_s = 0.0;
  double cpu_user_s = 0.0;  ///< getrusage(RUSAGE_SELF) delta over the window
  double cpu_sys_s = 0.0;
  std::uint64_t rounds = 0;     ///< sum of node round ticks
  std::uint64_t polls = 0;      ///< sum of poll() invocations
  std::uint64_t delivered = 0;  ///< application deliveries (all nodes)
  std::uint64_t attack_datagrams = 0;
  /// Datagrams the ingress path disposed of: budgeted reads + round-end
  /// flushes + greylist peek-drops. The numerator of the pipeline's
  /// datagrams/sec figure — it counts work retired, not work offered.
  std::uint64_t ingress_datagrams = 0;
  /// Scoring layer (zero when disabled): frames dropped pre-budget because
  /// the claimed sender was greylisted, cumulative greylist entries across
  /// all nodes, and peers still greylisted at the end of the window.
  std::uint64_t greylist_drops = 0;
  std::uint64_t greylist_entries = 0;
  std::uint64_t greylisted_at_end = 0;
  std::size_t colluders = 0;
  std::uint64_t latency_samples = 0;
  double latency_ms_mean = 0.0;
  double latency_ms_p50 = 0.0;
  double latency_ms_p90 = 0.0;
  double latency_ms_p99 = 0.0;
  /// Event-loop telemetry ("loop.*", "reactor.timer_resyncs") as JSON;
  /// "{}" in baseline mode.
  std::string loop_metrics_json = "{}";

  [[nodiscard]] double cpu_total_s() const { return cpu_user_s + cpu_sys_s; }
  /// Process CPU utilization over the window (1.0 = one saturated core).
  [[nodiscard]] double cpu_util() const {
    return wall_s > 0 ? cpu_total_s() / wall_s : 0.0;
  }
  /// Ingress throughput over the window (compare_bench: higher is better).
  [[nodiscard]] double ingress_datagrams_per_sec() const {
    return wall_s > 0 ? static_cast<double>(ingress_datagrams) / wall_s : 0.0;
  }
  /// CPU milliseconds burned per delivered message (lower is better) — the
  /// paper's cost-of-defense lens: a flood wins by inflating this.
  [[nodiscard]] double cpu_ms_per_delivered() const {
    return delivered > 0 ? cpu_total_s() * 1e3 / static_cast<double>(delivered)
                         : 0.0;
  }
};

class Swarm {
 public:
  explicit Swarm(SwarmConfig cfg);
  ~Swarm();

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Launches the runtime (and the attacker when x > 0 and alpha > 0).
  void start();
  /// Drives the source workload from the calling thread for `d` wall time
  /// while the nodes gossip; accumulates the measurement window.
  void run_for(std::chrono::milliseconds d);
  /// Stops attacker and runtime; idempotent.
  void stop();

  /// Assembles the report from the accumulated window + node registries.
  /// Call after stop().
  [[nodiscard]] SwarmReport report() const;

  [[nodiscard]] const SwarmConfig& config() const { return cfg_; }

 private:
  struct LiveNode {
    std::uint32_t id = 0;
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<core::Node> node;
    std::unique_ptr<runtime::NodeRunner> runner;  // baseline mode only
  };

  void on_delivery(std::uint32_t node_id, const core::Node::Delivery& d);
  void attacker_main();

  SwarmConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<net::MemNetwork> mem_net_;  // null in UDP mode
  std::vector<core::Peer> directory_;
  std::vector<LiveNode> nodes_;
  std::vector<std::uint32_t> victims_;
  /// Tail ids whose identities the attacker holds (no live node).
  std::vector<std::uint32_t> colluder_ids_;
  std::vector<crypto::Identity> colluder_identities_;
  std::unique_ptr<runtime::ReactorRuntime> reactor_;  // reactor mode only

  /// Per-node delivery activity, written by delivery callbacks (any runtime
  /// thread) and read by the attacker thread to build the adaptive
  /// strategy's usefulness signal. obs counters are single-thread-confined,
  /// hence this separate atomic array.
  std::vector<std::atomic<std::uint32_t>> activity_;

  /// Serializes start()/stop() and owns the attacker thread handle. Without
  /// it, two concurrent stop() calls both saw started_ == true and both
  /// joined attacker_ — undefined behavior (the PR-2 lifecycle race had the
  /// same shape in NodeRunner).
  mutable check::Mutex lifecycle_mu_;
  bool started_ DRUM_GUARDED_BY(lifecycle_mu_) = false;
  std::thread attacker_ DRUM_GUARDED_BY(lifecycle_mu_);
  /// Built in the constructor (fail fast on unknown names); plan_round()
  /// runs on the attacker thread only.
  std::unique_ptr<adversary::Adversary> adversary_;
  std::atomic<bool> attacker_stop_{false};
  std::atomic<std::uint64_t> attack_sent_{0};

  std::atomic<bool> measuring_{false};
  mutable check::Mutex lat_mu_;
  util::Samples latency_ms_ DRUM_GUARDED_BY(lat_mu_);
  std::atomic<std::uint64_t> delivered_{0};

  // Measurement window accumulators; written only by the run_for() caller.
  double wall_s_ = 0.0;
  double cpu_user_s_ = 0.0;
  double cpu_sys_s_ = 0.0;
};

}  // namespace drum::harness
