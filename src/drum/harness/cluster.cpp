#include "drum/harness/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "drum/check/check.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/net/udp_transport.hpp"

namespace drum::harness {

double ClusterMetrics::mean_throughput_msgs_per_sec() const {
  if (nodes.empty() || window_us <= 0) return 0.0;
  double total = 0;
  for (const auto& n : nodes) total += static_cast<double>(n.delivered);
  double per_node = total / static_cast<double>(nodes.size());
  return per_node * 1e6 / static_cast<double>(window_us);
}

double ClusterMetrics::mean_latency_ms() const {
  util::RunningStats all;
  for (const auto& n : nodes) all.merge(n.latency_us);
  return all.mean() / 1000.0;
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  // A cluster is a fresh simulated world: open a new portbox nonce-tracker
  // window so deliberately re-seeded worlds (variant sweeps, re-runs) are
  // not mistaken for keystream reuse within one execution.
  check::reset_nonce_tracker();
  const std::size_t n = cfg_.n;
  if (n < 4) throw std::invalid_argument("cluster too small");
  n_malicious_ = static_cast<std::size_t>(
      std::llround(cfg_.malicious_fraction * static_cast<double>(n)));
  if (n_malicious_ >= n) throw std::invalid_argument("no correct processes");

  if (!cfg_.use_udp) {
    net::MemNetwork::Options opts;
    opts.loss = cfg_.loss;
    opts.seed = rng_.next();
    opts.latency_us = cfg_.latency_us;
    mem_net_ = std::make_unique<net::MemNetwork>(opts);
    mem_net_->set_registry(&net_registry_);
  }

  // Build identities + directory. Ids [0, n_malicious) are the adversary's
  // members: present in the directory (so correct nodes waste fan-out on
  // them) but never instantiated.
  std::vector<crypto::Identity> identities;
  identities.reserve(n);
  directory_.resize(n);
  const std::uint32_t udp_host = net::parse_ipv4("127.0.0.1");
  for (std::uint32_t id = 0; id < n; ++id) {
    identities.push_back(crypto::Identity::generate(rng_));
    core::Peer& p = directory_[id];
    p.id = id;
    p.host = cfg_.use_udp ? udp_host : id;
    p.wk_pull_port = static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id);
    p.wk_offer_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 1);
    p.wk_pull_reply_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 2);
    p.sign_pub = identities[id].sign_public();
    p.dh_pub = identities[id].dh_public();
  }

  // Attacked set: round(alpha*n) correct members starting at the first
  // correct id; the source is the first correct process (attacked whenever
  // the attack is on), as in the paper.
  auto n_attacked = static_cast<std::size_t>(
      std::llround(cfg_.alpha * static_cast<double>(n)));
  n_attacked = std::min(n_attacked, n - n_malicious_);
  const bool attack_on = cfg_.x > 0 && n_attacked > 0;
  source_ = static_cast<std::uint32_t>(n_malicious_);
  if (attack_on) {
    for (std::size_t i = 0; i < n_attacked; ++i) {
      victims_.push_back(static_cast<std::uint32_t>(n_malicious_ + i));
    }
  }

  // Instantiate the correct nodes.
  for (std::uint32_t id = static_cast<std::uint32_t>(n_malicious_); id < n;
       ++id) {
    LiveNode live;
    live.id = id;
    if (cfg_.use_udp) {
      // Real sockets: all nodes' UDP counters land in the shared network
      // registry (the harness polls every node from one thread).
      auto udp = std::make_unique<net::UdpTransport>(udp_host);
      udp->set_registry(&net_registry_);
      live.transport = std::move(udp);
    } else {
      live.transport = mem_net_->transport(id);
    }
    core::NodeConfig ncfg = core::make_node_config(cfg_.variant, id,
                                                   cfg_.fanout);
    ncfg.wk_pull_port = directory_[id].wk_pull_port;
    ncfg.wk_offer_port = directory_[id].wk_offer_port;
    ncfg.wk_pull_reply_port = directory_[id].wk_pull_reply_port;
    ncfg.verify_signatures = cfg_.verify_signatures;
    ncfg.discard_unread = cfg_.discard_unread;
    live.node = std::make_unique<core::Node>(
        ncfg, identities[id], directory_, *live.transport, rng_.next(),
        [this, id](const core::Node::Delivery& d) { on_delivery(id, d); });
    if (cfg_.trace_capacity > 0) {
      live.trace = std::make_unique<obs::TraceRing>(cfg_.trace_capacity);
      live.node->set_trace(live.trace.get());
    }
    live.next_tick_us = jittered_round(rng_);
    node_index_[id] = nodes_.size();
    nodes_.push_back(std::move(live));
  }

  // 99% of the correct processes other than the source.
  completion_threshold_ = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(nodes_.size() - 1)));
  next_burst_us_ = cfg_.round_us / static_cast<std::int64_t>(
                                       std::max<std::size_t>(
                                           1, cfg_.attacker_bursts_per_round));
  next_send_us_ = 0;

  check_invariants();
}

void Cluster::check_invariants() const {
#if DRUM_CHECKED
  DRUM_INVARIANT(node_index_.size() == nodes_.size(),
                 "node_index_ must cover every live node exactly once");
  for (const auto& [id, idx] : node_index_) {
    DRUM_INVARIANT(idx < nodes_.size() && nodes_[idx].id == id,
                   "node_index_ entry points at the wrong node: id ", id);
    DRUM_INVARIANT(nodes_[idx].node != nullptr && nodes_[idx].transport,
                   "live node missing its node or transport: id ", id);
    DRUM_INVARIANT(id >= n_malicious_,
                   "a malicious member must never be instantiated: id ", id);
  }
  DRUM_INVARIANT(node_index_.contains(source_),
                 "source must be a live correct node");
  for (auto v : victims_) {
    DRUM_INVARIANT(node_index_.contains(v),
                   "victim must be a live correct node: id ", v);
  }
  for (const auto& live : nodes_) {
    DRUM_INVARIANT(live.next_tick_us > now_us_,
                   "round tick armed in the past: node ", live.id);
  }
  for (const auto& [id, t] : tracked_) {
    DRUM_INVARIANT(t.deliveries <= nodes_.size() - 1,
                   "more deliveries than receivers for source ", id.source,
                   " seqno ", id.seqno, ": ", t.deliveries);
  }
#endif
}

Cluster::~Cluster() = default;

bool Cluster::is_attacked(std::uint32_t id) const {
  return std::find(victims_.begin(), victims_.end(), id) != victims_.end();
}

std::int64_t Cluster::jittered_round(util::Rng& rng) const {
  double jitter = 1.0 + cfg_.round_jitter * (2.0 * rng.uniform() - 1.0);
  return static_cast<std::int64_t>(static_cast<double>(cfg_.round_us) *
                                   jitter);
}

void Cluster::fire_attacker_burst() {
  if (victims_.empty() || cfg_.x <= 0) return;
  // Each burst delivers x / bursts_per_round fabricated datagrams per
  // victim, split across the variant's attackable well-known ports.
  const double per_burst =
      cfg_.x / static_cast<double>(cfg_.attacker_bursts_per_round);
  for (auto victim : victims_) {
    const core::Peer& p = directory_[victim];
    // Integerize stochastically so fractional rates are honored on average.
    double want = per_burst;
    auto count = static_cast<std::size_t>(want);
    if (rng_.chance(want - static_cast<double>(count))) ++count;
    for (std::size_t i = 0; i < count; ++i) {
      // Craft a type-correct control message with a garbage box so the
      // victim pays full parse + box-open cost.
      util::Bytes garbage_box(crypto::kPortBoxOverhead + 2);
      for (auto& b : garbage_box) {
        b = static_cast<std::uint8_t>(rng_.below(256));
      }
      net::Address target;
      util::Bytes payload;
      const std::uint64_t k = attacker_seq_++;
      auto fake_sender = static_cast<std::uint32_t>(rng_.below(cfg_.n));
      auto fake_offer = [&] {
        core::PushOffer offer;
        offer.sender = fake_sender;
        offer.boxed_reply_port = garbage_box;
        return core::encode(offer);
      };
      auto fake_pull = [&] {
        core::PullRequest req;
        req.sender = fake_sender;
        req.boxed_reply_port = garbage_box;
        return core::encode(req);
      };
      switch (cfg_.variant) {
        case core::Variant::kPush:
          target = {p.host, p.wk_offer_port};
          payload = fake_offer();
          break;
        case core::Variant::kPull:
          target = {p.host, p.wk_pull_port};
          payload = fake_pull();
          break;
        case core::Variant::kDrumWkPorts:
          // x/2 push, x/4 pull-request, x/4 pull-reply port (paper §9).
          if (k % 4 < 2) {
            target = {p.host, p.wk_offer_port};
            payload = fake_offer();
          } else if (k % 4 == 2) {
            target = {p.host, p.wk_pull_port};
            payload = fake_pull();
          } else {
            target = {p.host, p.wk_pull_reply_port};
            payload = core::encode(core::PullReply{fake_sender, {}});
          }
          break;
        case core::Variant::kDrum:
        case core::Variant::kDrumSharedBounds:
        default:
          if (k % 2 == 0) {
            target = {p.host, p.wk_offer_port};
            payload = fake_offer();
          } else {
            target = {p.host, p.wk_pull_port};
            payload = fake_pull();
          }
          break;
      }
      if (mem_net_) {
        // Spoofed source host: not a group member.
        net::Address spoofed{0xDEAD0000u | static_cast<std::uint32_t>(
                                               rng_.below(65536)),
                             static_cast<std::uint16_t>(
                                 1024 + rng_.below(60000))};
        mem_net_->send_raw(spoofed, target, util::ByteSpan(payload));
      } else {
        // UDP mode: a real attacker socket (lazily bound, reused).
        static thread_local std::unique_ptr<net::Transport> attacker_tr;
        static thread_local std::unique_ptr<net::Socket> attacker_sock;
        if (!attacker_sock) {
          attacker_tr = std::make_unique<net::UdpTransport>(
              net::parse_ipv4("127.0.0.1"));
          attacker_sock = attacker_tr->bind(0).take();
        }
        attacker_sock->send(target, util::ByteSpan(payload));
      }
    }
  }
}

core::MessageId Cluster::multicast_from_source(util::ByteSpan payload) {
  auto& src = nodes_[node_index_.at(source_)];
  core::MessageId id = src.node->multicast(payload);
  TrackedMessage t;
  t.sent_us = now_us_;
  t.in_window = measuring_;
  tracked_.emplace(id, t);
  if (measuring_) ++metrics_.messages_sent;
  return id;
}

void Cluster::fire_workload() {
  util::Bytes payload(cfg_.payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.below(256));
  multicast_from_source(util::ByteSpan(payload));
}

void Cluster::on_delivery(std::uint32_t node_id,
                          const core::Node::Delivery& d) {
  auto it = tracked_.find(d.msg.id);
  if (it == tracked_.end()) return;
  TrackedMessage& t = it->second;
  ++t.deliveries;
  t.max_hops = std::max(t.max_hops, d.hops);
  if (!t.completed && t.deliveries >= completion_threshold_) {
    t.completed = true;
    if (t.in_window) {
      ++metrics_.messages_completed;
      metrics_.propagation_rounds.add(static_cast<double>(t.max_hops));
      metrics_.propagation_us.add(static_cast<double>(now_us_ - t.sent_us));
    }
  }
  if (measuring_ && node_id != source_) {
    auto idx = node_index_.at(node_id) -
               (node_index_.at(node_id) > node_index_.at(source_) ? 1 : 0);
    auto& per = metrics_.nodes[idx];
    ++per.delivered;
    per.latency_us.add(static_cast<double>(now_us_ - t.sent_us));
    per.hops.add(static_cast<double>(d.hops));
  }
}

void Cluster::begin_measurement() {
  metrics_ = ClusterMetrics{};
  metrics_.nodes.clear();
  for (const auto& live : nodes_) {
    if (live.id == source_) continue;
    ClusterMetrics::PerNode per;
    per.id = live.id;
    per.attacked = is_attacked(live.id);
    metrics_.nodes.push_back(per);
  }
  measuring_ = true;
  measure_start_us_ = now_us_;
  series_ = obs::TimeSeries(
      {"round", "t_us", "delivered", "flushed_unread", "net_dropped"});
  next_sample_us_ = now_us_ + cfg_.round_us;
}

void Cluster::end_measurement() {
  measuring_ = false;
  metrics_.window_us = now_us_ - measure_start_us_;
}

void Cluster::run_for_us(std::int64_t duration_us, bool workload) {
  const std::int64_t end = now_us_ + duration_us;
  const std::int64_t send_interval =
      cfg_.rate > 0 ? cfg_.round_us / static_cast<std::int64_t>(cfg_.rate)
                    : 0;
  const std::int64_t burst_interval =
      cfg_.round_us /
      static_cast<std::int64_t>(std::max<std::size_t>(
          1, cfg_.attacker_bursts_per_round));
  if (workload && next_send_us_ < now_us_) next_send_us_ = now_us_;
  if (next_burst_us_ < now_us_) next_burst_us_ = now_us_;

  while (now_us_ < end) {
    // Next event time.
    std::int64_t next = end;
    for (const auto& live : nodes_) {
      next = std::min(next, live.next_tick_us);
    }
    if (!victims_.empty() && cfg_.x > 0) {
      next = std::min(next, next_burst_us_);
    }
    if (workload && send_interval > 0) next = std::min(next, next_send_us_);
    if (measuring_) next = std::min(next, next_sample_us_);
    now_us_ = std::max(now_us_, next);
    if (mem_net_) mem_net_->advance_to(now_us_);

    for (auto& live : nodes_) {
      if (live.next_tick_us <= now_us_) {
        live.node->on_round();
        live.next_tick_us = now_us_ + jittered_round(rng_);
      }
    }
    if (!victims_.empty() && cfg_.x > 0 && next_burst_us_ <= now_us_) {
      fire_attacker_burst();
      next_burst_us_ = now_us_ + burst_interval;
    }
    if (workload && send_interval > 0 && next_send_us_ <= now_us_) {
      fire_workload();
      next_send_us_ = now_us_ + send_interval;
    }
    // One ingress batch across the whole cluster per sweep: every node's
    // backlog drains first, then a single wide crypto pass verifies all of
    // it, then each node ingests its verified frames (DESIGN.md §12).
    {
      core::ingress::IngressBatch batch;
      for (auto& live : nodes_) live.node->drain_ingress(batch);
      batch.dispatch();
    }
    maybe_sample_series();
  }
  check_invariants();
}

void Cluster::maybe_sample_series() {
  if (!measuring_ || now_us_ < next_sample_us_) return;
  std::uint64_t delivered = 0;
  for (const auto& per : metrics_.nodes) delivered += per.delivered;
  std::uint64_t flushed = 0;
  for (const auto& live : nodes_) {
    flushed += live.node->registry().counter_value("node.flushed_unread");
  }
  const std::uint64_t net_dropped = mem_net_ ? mem_net_->dropped() : 0;
  series_.add_row({static_cast<double>(series_.rows() + 1),
                   static_cast<double>(now_us_ - measure_start_us_),
                   static_cast<double>(delivered),
                   static_cast<double>(flushed),
                   static_cast<double>(net_dropped)});
  next_sample_us_ += cfg_.round_us;
}

// All stat summaries are assembled from the nodes' metric registries — the
// single bookkeeping path. Registry merge is the aggregation primitive.
obs::MetricsRegistry Cluster::merged_registry(NodeSet set) const {
  obs::MetricsRegistry merged;
  for (const auto& live : nodes_) {
    if (set == NodeSet::kAttacked && !is_attacked(live.id)) continue;
    if (set == NodeSet::kNonAttacked && is_attacked(live.id)) continue;
    merged.merge(live.node->registry());
  }
  return merged;
}

std::string Cluster::metrics_json() const {
  auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  auto dbl = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };

  std::string out = "{\n  \"config\": {";
  out += "\"variant\": \"" +
         obs::json_escape(core::variant_name(cfg_.variant)) + "\"";
  out += ", \"n\": " + u64(cfg_.n);
  out += ", \"malicious_fraction\": " + dbl(cfg_.malicious_fraction);
  out += ", \"alpha\": " + dbl(cfg_.alpha);
  out += ", \"x\": " + dbl(cfg_.x);
  out += ", \"fanout\": " + u64(cfg_.fanout);
  out += ", \"seed\": " + u64(cfg_.seed);
  out += ", \"round_us\": " + std::to_string(cfg_.round_us);
  out += ", \"use_udp\": " + std::string(cfg_.use_udp ? "true" : "false");
  out += "},\n";
  out += "  \"window_us\": " + std::to_string(metrics_.window_us) + ",\n";
  out += "  \"nodes\": {\n";
  out += "    \"all\": " + merged_registry(NodeSet::kAll).to_json() + ",\n";
  out += "    \"attacked\": " + merged_registry(NodeSet::kAttacked).to_json() +
         ",\n";
  out += "    \"non_attacked\": " +
         merged_registry(NodeSet::kNonAttacked).to_json() + "\n";
  out += "  },\n";
  out += "  \"net\": " + net_registry_.to_json() + ",\n";
  out += "  \"per_node\": [";
  bool first = true;
  static constexpr const char* kNodeCounters[] = {
      "rounds",          "delivered",
      "duplicates",      "datagrams_read",
      "flushed_unread",  "decode_errors",
      "box_failures",    "sig_failures",
      "unknown_sender",  "certs_admitted",
      "pull_requests_served", "push_offers_answered",
      "push_replies_acted"};
  for (const auto& live : nodes_) {
    out += first ? "\n" : ",\n";
    first = false;
    const obs::MetricsRegistry& reg = live.node->registry();
    out += "    {\"id\": " + std::to_string(live.id);
    out += ", \"attacked\": " +
           std::string(is_attacked(live.id) ? "true" : "false");
    for (const char* name : kNodeCounters) {
      out += ", \"" + std::string(name) +
             "\": " + u64(reg.counter_value(std::string("node.") + name));
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Cluster::write_metrics_json(const std::string& path) const {
  return obs::write_text_file(path, metrics_json());
}

}  // namespace drum::harness
